"""Figure 5 — latency CDFs at low and high load (distributed leaders).

Regenerates the two CDF plots (2 destination groups; 2 vs 128
outstanding messages per client) including the extra "White-Box Leaders"
series that isolates deliveries at group primaries. Asserts:

* 5a (low load): PrimCast's CDF is left of (below) every other
  protocol's at the median — it "consistently delivers lower latencies
  at every replica";
* White-Box-at-leaders is faster than White-Box overall (followers pay
  one more step), but still behind PrimCast (§7.5's observation that
  PrimCast wins even against leader-only White-Box deliveries);
* 5b (high load): every protocol's median shifts right vs low load —
  the convoy affects most messages once it kicks in.
"""

from conftest import full_mode

from repro.harness.experiments import figure5
from repro.harness.report import format_table
from repro.harness.runner import run_load_point
from repro.workload.scenarios import wan_distributed_leaders


def _median(curve):
    # curve: [(latency, cum_fraction)] sorted
    for lat, frac in curve:
        if frac >= 0.5:
            return lat
    return curve[-1][0]


def _p(curve, q):
    for lat, frac in curve:
        if frac >= q:
            return lat
    return curve[-1][0]


def test_fig5_latency_cdfs(benchmark):
    loads = (2, 128) if full_mode() else (2, 64)
    curves_by_load = figure5(full=full_mode(), loads=loads)
    benchmark.pedantic(
        run_load_point,
        args=("primcast", wan_distributed_leaders(), 2, 2),
        kwargs=dict(warmup_ms=400, measure_ms=500, keep_samples=False),
        rounds=1,
        iterations=1,
    )

    for load, curves in curves_by_load.items():
        rows = []
        for name, curve in sorted(curves.items()):
            rows.append(
                [
                    name,
                    f"{_p(curve, 0.10):.1f}",
                    f"{_median(curve):.1f}",
                    f"{_p(curve, 0.90):.1f}",
                    f"{_p(curve, 0.99):.1f}",
                ]
            )
        print(f"\n== Figure 5: latency CDF, 2 dest groups, {load} outstanding ==")
        print(format_table(["series", "p10 (ms)", "p50 (ms)", "p90 (ms)", "p99 (ms)"], rows))

    low, high = min(curves_by_load), max(curves_by_load)
    low_curves, high_curves = curves_by_load[low], curves_by_load[high]

    # 5a: PrimCast left of everything, including White-Box leaders-only.
    pc = _median(low_curves["primcast"])
    assert pc < _median(low_curves["whitebox"])
    assert pc < _median(low_curves["whitebox-leaders"])
    assert pc < _median(low_curves["fastcast"])
    # Leaders-only White-Box beats all-replica White-Box.
    assert _median(low_curves["whitebox-leaders"]) < _median(low_curves["whitebox"])

    # 5b: the convoy shifts every protocol's median right at high load.
    for proto in ("primcast", "whitebox", "fastcast"):
        assert _median(high_curves[proto]) > _median(low_curves[proto]), proto
