"""Tests for the classic consensus-based multicast (§4.3, 6/12 steps)."""

import pytest

from repro.baselines.classic import ClassicProcess
from repro.core import uniform_groups
from repro.sim import ConstantLatency, JitteredLatency, Network, Scheduler, child_rng
from repro.verify import check_acyclic_order, check_all, check_timestamp_order


def build(n_groups=2, group_size=3, latency=None, seed=1):
    config = uniform_groups(n_groups, group_size)
    sched = Scheduler()
    net = Network(sched, latency or ConstantLatency(1.0), child_rng(seed, "cl"))
    procs = {
        pid: ClassicProcess(pid, config, sched, net) for pid in config.all_pids
    }
    logs = {pid: [] for pid in procs}
    multicasts = {}
    for pid, p in procs.items():
        p.add_deliver_hook(
            lambda proc, m, ts: (
                logs[proc.pid].append((m.mid, ts, sched.now)),
                multicasts.setdefault(m.mid, m),
            )
        )
    return config, sched, net, procs, logs, multicasts


def test_six_step_collision_free_delivery():
    """1 (start) + 2 (propose consensus) + 1 (ts exchange) + 2 (commit
    consensus) = 6 steps for a global message."""
    config, sched, net, procs, logs, _ = build()
    procs[4].a_multicast({0, 1})
    sched.run(until=50)
    times = [t for pid in range(6) for _, _, t in logs[pid]]
    assert len(times) == 6
    assert max(times) == pytest.approx(6.0, abs=1e-6)


def test_local_message_skips_ts_exchange():
    """A single-group message needs no timestamp exchange: 1 + 2 + 2."""
    config, sched, net, procs, logs, _ = build()
    procs[1].a_multicast({0})
    sched.run(until=50)
    times = [t for pid in (0, 1, 2) for _, _, t in logs[pid]]
    assert max(times) == pytest.approx(5.0, abs=1e-6)
    assert net.counts_by_kind.get("cl-ts", 0) == 0


def test_slower_than_primcast():
    """The gap the paper's Table 1 quantifies: 6 steps vs 3."""
    from repro.harness.steps import measure_collision_free

    primcast = measure_collision_free("primcast", 2, n_groups=4)
    config, sched, net, procs, logs, _ = build(n_groups=4)
    procs[4].a_multicast({0, 1})
    sched.run(until=50)
    classic_steps = max(t for pid in range(6) for _, _, t in logs[pid])
    assert classic_steps == pytest.approx(2 * primcast["max_steps"], abs=1e-6)


def test_ordering_properties_random_run():
    import random

    config, sched, net, procs, logs, multicasts = build(
        n_groups=3, latency=JitteredLatency(1.0, 0.2)
    )
    rng = random.Random(3)
    sent = {}
    for i in range(50):
        sender = rng.choice(config.all_pids)
        dest = frozenset(rng.sample(range(3), rng.randint(1, 3)))
        when = rng.uniform(0, 40)
        sched.call_at(
            when,
            lambda s=sender, d=dest: sent.setdefault(
                procs[s].a_multicast(d).mid, d
            ),
        )
    sched.run(until=5000)
    dest_pids = {mid: set(config.dest_pids(d)) for mid, d in sent.items()}
    check_all(logs, set(sent), dest_pids, set(config.all_pids))


def test_group_members_deliver_identically():
    config, sched, net, procs, logs, _ = build(n_groups=2)
    for i in range(10):
        sched.call_at(i * 0.8, procs[i % 6].a_multicast, {0, 1}, None)
    sched.run(until=500)
    orders = {tuple(m for m, _, _ in logs[pid]) for pid in range(6)}
    assert len(orders) == 1
    assert len(orders.pop()) == 10


def test_uses_group_consensus_messages():
    config, sched, net, procs, logs, _ = build()
    procs[0].a_multicast({0, 1})
    sched.run(until=50)
    # Two consensus instances per group (propose + commit).
    assert net.counts_by_kind["paxos-2a"] > 0
    assert net.counts_by_kind["paxos-2b"] > 0


def test_clock_advances_with_log():
    config, sched, net, procs, logs, _ = build()
    for _ in range(5):
        procs[1].a_multicast({0})
    sched.run(until=100)
    assert procs[0].clock >= 5
    assert procs[2].clock >= 5
