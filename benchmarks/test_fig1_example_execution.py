"""Figure 1 — the paper's example execution, re-enacted and rendered.

§5.2.5: two groups g = {p1,p2,p3} and h = {p4,p5,p6} (primaries p1, p4),
p5 a-multicasts m with m.dest = {g, h}. The bench re-runs exactly this
execution on an exact-Δ network, renders the message exchanges as a
textual space-time diagram, and verifies the figure's two claims:

* p2 a-delivers m **3 communication steps** after the a-multicast;
* without bump messages, quorum-clock() at p2 stays below final-ts(m)
  and m could never be delivered there (the figure's stated reason bump
  messages exist).
"""

import pytest

from repro.core import GroupConfig, PrimCastProcess
from repro.sim import ConstantLatency, Network, Scheduler, child_rng
from repro.sim.trace import record_flights, render_exchanges


def run_example(enable_bumps=True):
    # The figure's numbering: group g = {1, 2, 3}, h = {4, 5, 6}.
    config = GroupConfig([[1, 2, 3], [4, 5, 6]])
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(0, "fig1"))
    flights = record_flights(net)
    procs = {
        pid: PrimCastProcess(pid, config, sched, net, enable_bumps=enable_bumps)
        for pid in config.all_pids
    }
    deliveries = {}
    for pid, p in procs.items():
        p.add_deliver_hook(
            lambda proc, m, ts: deliveries.setdefault(proc.pid, (sched.now, ts))
        )
    # Raise group h's clock so final-ts(m) comes from the remote group
    # at p2 (the figure has final-ts(m) = 2 with g's proposal at 1).
    procs[4].a_multicast({1})
    sched.run(until=20)
    flights.clear()
    deliveries.clear()
    t0 = sched.now
    procs[5].a_multicast({0, 1}, payload="m")
    sched.run(until=t0 + 20)
    return procs, deliveries, flights, t0


def test_fig1_example_execution(benchmark):
    procs, deliveries, flights, t0 = benchmark.pedantic(
        run_example, rounds=1, iterations=1
    )
    p2_time, p2_final = deliveries[2]

    print("\n== Figure 1: example execution (messages up to p2's a-deliver) ==")
    print("p5 a-multicasts m to {g, h}; only exchanges before p2 delivers:")
    print(
        render_exchanges(
            [f for f in flights if f.arrival <= p2_time + 1e-9],
            label_of=lambda pid: f"p{pid}",
        )
    )
    print(
        f"\np2 a-delivers m at t0+{p2_time - t0:.0f} steps "
        f"with final-ts {p2_final}"
    )

    # The figure's headline: 3 communication steps at p2 (and everyone).
    for pid, (when, final) in deliveries.items():
        assert when - t0 == pytest.approx(3.0, abs=1e-6), f"p{pid}"
    # final-ts(m) comes from group h (clock pre-advanced to 1 -> ts 2).
    assert p2_final == 2
    # Bump messages were exchanged inside group g (the figure shows two).
    bumps = [f for f in flights if f.kind == "bump" and f.arrival <= p2_time]
    assert bumps, "the example needs bump messages"


def test_fig1_without_bumps_p2_stalls(benchmark):
    procs, deliveries, flights, t0 = run_example(enable_bumps=False)
    print("\nWithout bumps: quorum-clock() at p2 stays at 1 < final-ts 2;")
    print(f"group g deliveries: {[pid for pid in deliveries if pid <= 3]}")
    # Group h (whose own proposal is the max) can still deliver...
    assert 5 in deliveries
    # ...but no member of group g ever can (the figure's exact point).
    assert all(pid not in deliveries for pid in (1, 2, 3))
    assert procs[2].quorum_clock() < procs[2].final_ts(
        next(iter(procs[2].pending))
    )
