"""Unit tests for physical clocks, cost models, failure injection, RNG."""

import random

import pytest

from repro.sim.clock import US_PER_MS, PhysicalClock, make_clocks
from repro.sim.costs import CostModel, default_cost_model, zero_cost_model
from repro.sim.events import Scheduler
from repro.sim.failures import FailureInjector, max_failures
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.process import SimProcess
from repro.sim.rng import child_rng, child_seed


class Dummy(SimProcess):
    def on_message(self, src, msg):
        pass


class TestPhysicalClock:
    def test_reads_track_simulated_time(self):
        sched = Scheduler()
        clock = PhysicalClock(sched)
        sched.call_at(12.5, lambda: None)
        sched.run()
        assert clock.read_us() == int(12.5 * US_PER_MS)

    def test_offset_applies(self):
        sched = Scheduler()
        clock = PhysicalClock(sched, offset_us=500.0)
        assert clock.read_us() == 500

    def test_drift_scales_elapsed_time(self):
        sched = Scheduler()
        clock = PhysicalClock(sched, drift_ppm=1000.0)  # 0.1% fast
        sched.call_at(1000.0, lambda: None)
        sched.run()
        assert clock.read_us() == int(1000 * US_PER_MS * 1.001)

    def test_make_clocks_bounded_skew(self):
        sched = Scheduler()
        clocks = make_clocks(sched, list(range(50)), 2.0, random.Random(1))
        assert len(clocks) == 50
        for c in clocks.values():
            assert abs(c.offset_us) <= 2.0 * US_PER_MS

    def test_make_clocks_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            make_clocks(Scheduler(), [0], -1.0, random.Random(1))

    def test_monotone_with_positive_offsets(self):
        sched = Scheduler()
        clock = PhysicalClock(sched, offset_us=10.0)
        r1 = clock.read_us()
        sched.call_at(5.0, lambda: None)
        sched.run()
        assert clock.read_us() >= r1


class _Kind:
    def __init__(self, kind):
        self.kind = kind


class TestCostModel:
    def test_defaults_are_zero(self):
        model = CostModel()
        assert model.recv_cost(_Kind("anything")) == 0.0
        assert model.send_cost(_Kind("anything")) == 0.0

    def test_per_kind_lookup(self):
        model = CostModel({"a": 1.0}, {"a": 0.5}, default_recv=0.1, default_send=0.05)
        assert model.recv_cost(_Kind("a")) == 1.0
        assert model.send_cost(_Kind("a")) == 0.5
        assert model.recv_cost(_Kind("b")) == 0.1
        assert model.send_cost(_Kind("b")) == 0.05

    def test_kindless_message_uses_default(self):
        model = CostModel(default_recv=0.3)
        assert model.recv_cost(object()) == 0.3

    def test_default_model_charges_payload_more_than_control(self):
        model = default_cost_model()
        assert model.recv_cost(_Kind("start")) > model.recv_cost(_Kind("ack"))
        assert model.recv_cost(_Kind("wb-accept")) > model.recv_cost(_Kind("wb-ack"))
        assert model.recv_cost(_Kind("fc-2a")) > model.recv_cost(_Kind("fc-2b"))

    def test_zero_model_is_free(self):
        model = zero_cost_model()
        assert model.recv_cost(_Kind("start")) == 0.0


class TestFailureInjector:
    def _system(self):
        sched = Scheduler()
        net = Network(sched, ConstantLatency(1.0), child_rng(1, "x"))
        procs = {i: Dummy(i, sched, net) for i in range(5)}
        return sched, net, procs

    def test_crash_at_time(self):
        sched, net, procs = self._system()
        inj = FailureInjector(sched, procs)
        inj.crash_at(2, 10.0)
        sched.run(until=9.0)
        assert not procs[2].crashed
        sched.run(until=11.0)
        assert procs[2].crashed
        assert inj.crashed_pids == [2]

    def test_crash_unknown_pid_raises(self):
        sched, net, procs = self._system()
        inj = FailureInjector(sched, procs)
        with pytest.raises(KeyError):
            inj.crash_at(99, 1.0)

    def test_crash_random_picks_candidate(self):
        sched, net, procs = self._system()
        inj = FailureInjector(sched, procs)
        pid = inj.crash_random([1, 3], 5.0, random.Random(0))
        assert pid in (1, 3)
        sched.run(until=6.0)
        assert procs[pid].crashed

    def test_double_crash_recorded_once(self):
        sched, net, procs = self._system()
        inj = FailureInjector(sched, procs)
        inj.crash_at(1, 1.0)
        inj.crash_at(1, 2.0)
        sched.run(until=3.0)
        assert inj.crashed_pids == [1]


class TestMaxFailures:
    @pytest.mark.parametrize(
        "n,f", [(1, 0), (2, 0), (3, 1), (4, 1), (5, 2), (7, 3)]
    )
    def test_majority_budget(self, n, f):
        assert max_failures(n) == f

    def test_rejects_empty_group(self):
        with pytest.raises(ValueError):
            max_failures(0)


class TestRng:
    def test_child_seed_deterministic(self):
        assert child_seed(1, "a") == child_seed(1, "a")

    def test_child_seed_varies_by_label_and_root(self):
        assert child_seed(1, "a") != child_seed(1, "b")
        assert child_seed(1, "a") != child_seed(2, "a")

    def test_child_rng_streams_identical(self):
        r1 = child_rng(7, "lat")
        r2 = child_rng(7, "lat")
        assert [r1.random() for _ in range(10)] == [r2.random() for _ in range(10)]


class TestBudgetGuard:
    """crash_within_budget / within_budget keep groups quorum-correct."""

    def _system(self):
        sched = Scheduler()
        net = Network(sched, ConstantLatency(1.0), child_rng(1, "x"))
        procs = {i: Dummy(i, sched, net) for i in range(5)}
        return sched, net, procs

    def test_arms_within_budget(self):
        sched, net, procs = self._system()
        inj = FailureInjector(sched, procs)
        group = [0, 1, 2, 3, 4]  # budget = 2
        assert inj.crash_within_budget(0, 1.0, group)
        assert inj.crash_within_budget(1, 2.0, group)
        sched.run(until=3.0)
        assert inj.crashed_pids == [0, 1]

    def test_refuses_beyond_budget(self):
        sched, net, procs = self._system()
        inj = FailureInjector(sched, procs)
        group = [0, 1, 2, 3, 4]
        assert inj.crash_within_budget(0, 1.0, group)
        assert inj.crash_within_budget(1, 2.0, group)
        assert not inj.crash_within_budget(2, 3.0, group)
        sched.run(until=5.0)
        assert inj.crashed_pids == [0, 1]
        assert not procs[2].crashed

    def test_armed_but_unfired_crashes_count(self):
        # The guard must count *armed* crashes, not only executed ones,
        # or arming several future crashes at once would overshoot.
        sched, net, procs = self._system()
        inj = FailureInjector(sched, procs)
        group = [0, 1, 2]  # budget = 1
        assert inj.crash_within_budget(1, 100.0, group)
        assert not inj.within_budget(2, group)
        assert not inj.crash_within_budget(2, 100.0, group)

    def test_rearming_same_pid_is_free(self):
        sched, net, procs = self._system()
        inj = FailureInjector(sched, procs)
        group = [0, 1, 2]  # budget = 1
        assert inj.crash_within_budget(1, 1.0, group)
        assert inj.within_budget(1, group)
        assert inj.crash_within_budget(1, 2.0, group)
        sched.run(until=3.0)
        assert inj.crashed_pids == [1]

    def test_crash_now_is_immediate(self):
        sched, net, procs = self._system()
        inj = FailureInjector(sched, procs)
        inj.crash_now(3)
        assert procs[3].crashed
        assert inj.crashed_pids == [3]

    def test_crash_now_unknown_pid_raises(self):
        sched, net, procs = self._system()
        inj = FailureInjector(sched, procs)
        with pytest.raises(KeyError):
            inj.crash_now(99)

    def test_targeted_pids_sorted_union(self):
        sched, net, procs = self._system()
        inj = FailureInjector(sched, procs)
        inj.crash_now(4)
        inj.crash_at(1, 50.0)
        assert inj.targeted_pids() == (1, 4)
