"""Localhost cluster launcher: one OS process per protocol process.

Two runners share the same file-based coordination protocol (see
:class:`~repro.net.host.NetNode` for the lifecycle):

* :func:`launch_cluster` — the real thing: spawns one
  ``python -m repro.net node`` subprocess per pid from a JSON topology,
  operates the readiness barrier (``ready-*`` → ``GO``), optionally
  SIGKILLs one node mid-run, then the shutdown barrier (``done-*`` →
  ``STOP``), and collects per-node summaries and delivery logs.
* :func:`run_cluster_inprocess` — every node on one event loop with
  real sockets, used by the tier-1 tests (no subprocess spawn cost);
  "kill" cancels the node's coroutine, marks its scheduler dead and
  closes its sockets, which is indistinguishable from SIGKILL to the
  surviving peers.

Ports are allocated by binding to port 0 and releasing — adequate for
single-host test clusters.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from .host import NetNode, NodeResult, Topology

MessageId = Tuple[int, int]


# ----------------------------------------------------------------------
# spec / topology construction
# ----------------------------------------------------------------------


@dataclass
class ClusterSpec:
    """What to run: uniform groups, a seeded workload, an optional kill."""

    n_groups: int = 2
    group_size: int = 3
    n_messages: int = 16
    seed: int = 1
    extra_group_p: float = 0.5
    #: SIGKILL this pid once the driver has delivered ``kill_after``
    #: messages. Must not be the driver, and its group must keep a
    #: quorum without it.
    kill_pid: Optional[int] = None
    kill_after: int = 4
    hb_interval_ms: float = 50.0
    suspect_ms: float = 500.0
    hb_grace_ms: Optional[float] = None
    run_timeout_s: float = 60.0
    #: Wire encoding: "json" or "binary" (host.Topology.codec).
    codec: str = "json"
    coalesce: bool = True
    batching_ms: float = 0.0
    #: "seq" (exact differential) or "open" (concurrent clients,
    #: statistical verification).
    driver_mode: str = "seq"
    clients: int = 4
    window: int = 4
    rate_hz: float = 0.0

    def validate(self) -> None:
        if self.n_groups < 1 or self.group_size < 1:
            raise ValueError("need at least one group of at least one member")
        if self.codec not in ("json", "binary"):
            raise ValueError(f"unknown codec {self.codec!r}")
        if self.driver_mode not in ("seq", "open"):
            raise ValueError(f"unknown driver mode {self.driver_mode!r}")
        if self.driver_mode == "open":
            if self.clients < 1 or self.window < 1:
                raise ValueError("open-loop driver needs clients >= 1, window >= 1")
            if self.kill_pid is not None:
                raise ValueError(
                    "kill injection requires the sequential driver (the "
                    "kill point is defined by the driver's delivery count)"
                )
        if self.kill_pid is not None:
            if self.kill_pid == 0:
                raise ValueError("cannot kill the driver (pid 0)")
            if self.kill_pid >= self.n_groups * self.group_size:
                raise ValueError(f"kill_pid {self.kill_pid} not in the cluster")
            if self.group_size < 3:
                raise ValueError(
                    "killing a node needs group_size >= 3 so the group "
                    "keeps a majority quorum"
                )


def allocate_ports(n: int, host: str = "127.0.0.1") -> List[int]:
    """Reserve ``n`` distinct free ports by binding then releasing."""
    socks = []
    try:
        for _ in range(n):
            s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            s.bind((host, 0))
            socks.append(s)
        return [s.getsockname()[1] for s in socks]
    finally:
        for s in socks:
            s.close()


def make_topology(spec: ClusterSpec, host: str = "127.0.0.1") -> Topology:
    spec.validate()
    n = spec.n_groups * spec.group_size
    groups = [
        list(range(g * spec.group_size, (g + 1) * spec.group_size))
        for g in range(spec.n_groups)
    ]
    ports = allocate_ports(n, host)
    return Topology(
        groups=groups,
        addresses={pid: (host, ports[pid]) for pid in range(n)},
        seed=spec.seed,
        n_messages=spec.n_messages,
        driver_pid=0,
        extra_group_p=spec.extra_group_p,
        hb_interval_ms=spec.hb_interval_ms,
        suspect_ms=spec.suspect_ms,
        hb_grace_ms=spec.hb_grace_ms,
        run_timeout_s=spec.run_timeout_s,
        codec=spec.codec,
        coalesce=spec.coalesce,
        batching_ms=spec.batching_ms,
        driver_mode=spec.driver_mode,
        clients=spec.clients,
        window=spec.window,
        rate_hz=spec.rate_hz,
        # With a kill configured, the driver pauses after kill_after
        # deliveries until the coordinator writes RELEASE — so the kill
        # lands at a deterministic point in the workload instead of
        # racing the coordinator's file polling.
        hold_after=spec.kill_after if spec.kill_pid is not None else None,
    )


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


@dataclass
class NodeOutcome:
    pid: int
    exit_code: Optional[int]
    killed: bool
    delivered: List[Tuple[MessageId, int]] = field(default_factory=list)
    summary: Optional[Dict[str, Any]] = None


@dataclass
class ClusterResult:
    topology: Topology
    outcomes: Dict[int, NodeOutcome]
    wall_s: float
    #: Where the run's logs live (submit/delivery jsonl, summaries) —
    #: the statistical verifier reads them from here.
    rundir: Optional[Path] = None

    @property
    def survivors(self) -> List[int]:
        return sorted(pid for pid, o in self.outcomes.items() if not o.killed)

    @property
    def ok(self) -> bool:
        """Every surviving node exited 0 having delivered its quota."""
        config = self.topology.make_config()
        for pid in self.survivors:
            o = self.outcomes[pid]
            if o.exit_code != 0:
                return False
            if len(o.delivered) != self.topology.expected_for(config.group_of[pid]):
                return False
        return True

    def delivered_orders(self) -> Dict[int, List[MessageId]]:
        return {
            pid: [mid for mid, _final in o.delivered]
            for pid, o in self.outcomes.items()
        }


def read_delivery_log(path: Path) -> List[Tuple[MessageId, int]]:
    """Parse one node's ``delivery-<pid>.jsonl`` into (mid, final) rows."""
    rows: List[Tuple[MessageId, int]] = []
    if not path.exists():
        return rows
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        rows.append(((obj["mid"][0], obj["mid"][1]), obj["final"]))
    return rows


def read_delivery_log_full(path: Path) -> List[Tuple[MessageId, int, float]]:
    """Like :func:`read_delivery_log`, keeping the local delivery time —
    the (mid, final, t) triple shape ``repro.verify`` checks expect."""
    rows: List[Tuple[MessageId, int, float]] = []
    if not path.exists():
        return rows
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        rows.append(((obj["mid"][0], obj["mid"][1]), obj["final"], obj["t"]))
    return rows


def read_submit_log(path: Path) -> List[Tuple[MessageId, FrozenSet[int], float]]:
    """Parse one node's ``submit-<pid>.jsonl`` into (mid, dests, t)."""
    rows: List[Tuple[MessageId, FrozenSet[int], float]] = []
    if not path.exists():
        return rows
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        obj = json.loads(line)
        rows.append(
            ((obj["mid"][0], obj["mid"][1]), frozenset(obj["dest"]), obj["t"])
        )
    return rows


# ----------------------------------------------------------------------
# subprocess launcher
# ----------------------------------------------------------------------


def _await_files(paths: List[Path], timeout_s: float, what: str) -> None:
    deadline = time.monotonic() + timeout_s
    while True:
        missing = [p for p in paths if not p.exists()]
        if not missing:
            return
        if time.monotonic() >= deadline:
            names = ", ".join(p.name for p in missing)
            raise TimeoutError(f"timed out waiting for {what}: {names}")
        time.sleep(0.02)


def _await_jsonl_lines(path: Path, n: int, timeout_s: float) -> None:
    deadline = time.monotonic() + timeout_s
    while True:
        if path.exists():
            lines = [l for l in path.read_text().splitlines() if l.strip()]
            if len(lines) >= n:
                return
        if time.monotonic() >= deadline:
            raise TimeoutError(f"timed out waiting for {n} lines in {path.name}")
        time.sleep(0.02)


def launch_cluster(
    spec: ClusterSpec,
    rundir: Path,
    python: Optional[str] = None,
) -> ClusterResult:
    """Run a full multi-process cluster under ``rundir`` and collect it.

    Blocking; raises :class:`TimeoutError` if a barrier is not reached
    within the spec's ``run_timeout_s``. Always reaps every subprocess
    it spawned, even on failure paths.
    """
    rundir = Path(rundir)
    rundir.mkdir(parents=True, exist_ok=True)
    topology = make_topology(spec)
    topo_path = rundir / "topology.json"
    topo_path.write_text(json.dumps(topology.to_json(), indent=2) + "\n")

    src_root = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root + (os.pathsep + existing if existing else "")

    pids = [pid for group in topology.groups for pid in group]
    procs: Dict[int, subprocess.Popen[bytes]] = {}
    logs = []
    started = time.monotonic()
    timeout = spec.run_timeout_s
    try:
        for pid in pids:
            log = open(rundir / f"node-{pid}.log", "wb")
            logs.append(log)
            procs[pid] = subprocess.Popen(
                [
                    python or sys.executable,
                    "-m",
                    "repro.net",
                    "node",
                    "--topology",
                    str(topo_path),
                    "--pid",
                    str(pid),
                    "--rundir",
                    str(rundir),
                ],
                stdout=log,
                stderr=subprocess.STDOUT,
                env=env,
            )
        _await_files(
            [rundir / f"ready-{pid}" for pid in pids], timeout, "ready barrier"
        )
        (rundir / "GO").write_text("go\n")

        killed: Optional[int] = None
        if spec.kill_pid is not None:
            _await_jsonl_lines(
                rundir / f"delivery-{topology.driver_pid}.jsonl",
                spec.kill_after,
                timeout,
            )
            procs[spec.kill_pid].kill()
            procs[spec.kill_pid].wait(timeout=10.0)
            killed = spec.kill_pid
            (rundir / "RELEASE").write_text("release\n")

        alive = [pid for pid in pids if pid != killed]
        _await_files(
            [rundir / f"done-{pid}" for pid in alive], timeout, "done barrier"
        )
        (rundir / "STOP").write_text("stop\n")
        for pid in alive:
            procs[pid].wait(timeout=timeout)
    finally:
        for proc in procs.values():
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
        for log in logs:
            log.close()

    outcomes: Dict[int, NodeOutcome] = {}
    for pid in pids:
        summary_path = rundir / f"summary-{pid}.json"
        summary = (
            json.loads(summary_path.read_text()) if summary_path.exists() else None
        )
        outcomes[pid] = NodeOutcome(
            pid=pid,
            exit_code=procs[pid].returncode,
            killed=pid == spec.kill_pid,
            delivered=read_delivery_log(rundir / f"delivery-{pid}.jsonl"),
            summary=summary,
        )
    return ClusterResult(
        topology=topology,
        outcomes=outcomes,
        wall_s=time.monotonic() - started,
        rundir=rundir,
    )


# ----------------------------------------------------------------------
# in-process runner (tier-1 tests)
# ----------------------------------------------------------------------


async def _await_files_async(paths: List[Path], poll_s: float = 0.02) -> None:
    while any(not p.exists() for p in paths):
        await asyncio.sleep(poll_s)


async def _await_jsonl_lines_async(path: Path, n: int, poll_s: float = 0.02) -> None:
    while True:
        if path.exists():
            lines = [l for l in path.read_text().splitlines() if l.strip()]
            if len(lines) >= n:
                return
        await asyncio.sleep(poll_s)


async def run_cluster_inprocess(
    topology: Topology,
    rundir: Path,
    kill_pid: Optional[int] = None,
    kill_after: int = 0,
) -> ClusterResult:
    """All nodes on the calling event loop, real sockets, same barriers."""
    rundir = Path(rundir)
    rundir.mkdir(parents=True, exist_ok=True)
    pids = [pid for group in topology.groups for pid in group]
    nodes = {pid: NetNode(topology, pid, rundir) for pid in pids}
    tasks = {pid: asyncio.create_task(nodes[pid].run()) for pid in pids}
    started = asyncio.get_running_loop().time()

    async def coordinate() -> Dict[int, NodeResult]:
        await _await_files_async([rundir / f"ready-{pid}" for pid in pids])
        (rundir / "GO").write_text("go\n")
        if kill_pid is not None:
            await _await_jsonl_lines_async(
                rundir / f"delivery-{topology.driver_pid}.jsonl", kill_after
            )
            tasks[kill_pid].cancel()
            try:
                await tasks[kill_pid]
            except asyncio.CancelledError:
                pass
            await nodes[kill_pid].kill()
            (rundir / "RELEASE").write_text("release\n")
        alive = [pid for pid in pids if pid != kill_pid]
        await _await_files_async([rundir / f"done-{pid}" for pid in alive])
        (rundir / "STOP").write_text("stop\n")
        return {pid: await tasks[pid] for pid in alive}

    try:
        results = await asyncio.wait_for(
            coordinate(), timeout=topology.run_timeout_s + 10.0
        )
    finally:
        for pid, task in tasks.items():
            if not task.done():
                task.cancel()
        for pid, node in nodes.items():
            if node._transport is not None and (
                pid == kill_pid or not tasks[pid].done()
            ):
                try:
                    await node.kill()
                except Exception:
                    pass

    def read_summary(pid: int) -> Optional[Dict[str, Any]]:
        path = rundir / f"summary-{pid}.json"
        return json.loads(path.read_text()) if path.exists() else None

    outcomes = {
        pid: NodeOutcome(
            pid=pid,
            exit_code=result.exit_code,
            killed=False,
            delivered=result.delivered,
            summary=read_summary(pid),
        )
        for pid, result in results.items()
    }
    if kill_pid is not None:
        outcomes[kill_pid] = NodeOutcome(
            pid=kill_pid,
            exit_code=None,
            killed=True,
            delivered=read_delivery_log(rundir / f"delivery-{kill_pid}.jsonl"),
            summary=None,
        )
    return ClusterResult(
        topology=topology,
        outcomes=outcomes,
        wall_s=asyncio.get_running_loop().time() - started,
        rundir=rundir,
    )
