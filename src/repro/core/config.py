"""Group and quorum configuration (§2.1).

Process groups are disjoint and their union is the whole server set Π.
Each group has a quorum system: any two quorums intersect and at least
one quorum must contain no faulty process. The default is majority
quorums (``floor(n/2) + 1``); arbitrary quorum systems can be supplied
explicitly and are validated for pairwise intersection.
"""

from __future__ import annotations

import sys
from typing import AbstractSet, Dict, FrozenSet, Iterable, List, Optional, Sequence

if sys.version_info >= (3, 10):

    def _popcount(mask: int) -> int:
        return mask.bit_count()

else:  # pragma: no cover - exercised only on 3.9

    def _popcount(mask: int) -> int:
        return bin(mask).count("1")


class GroupConfig:
    """Static system membership.

    Args:
        groups: one list of pids per group (group ids are positional).
        quorum_sets: optional explicit quorum system per group id; when
            omitted, majority quorums are used.
    """

    __slots__ = (
        "groups",
        "group_of",
        "quorum_sets",
        "_member_sets",
        "_majority_sizes",
        "_dest_pids_cache",
        "_member_bits",
        "_quorum_masks",
    )

    def __init__(
        self,
        groups: Sequence[Sequence[int]],
        quorum_sets: Optional[Dict[int, List[FrozenSet[int]]]] = None,
    ) -> None:
        if not groups:
            raise ValueError("need at least one group")
        self.groups: List[List[int]] = [list(g) for g in groups]
        self.group_of: Dict[int, int] = {}
        for gid, members in enumerate(self.groups):
            if not members:
                raise ValueError(f"group {gid} is empty")
            for pid in members:
                if pid in self.group_of:
                    raise ValueError(f"pid {pid} appears in two groups (groups are disjoint)")
                self.group_of[pid] = gid
        self.quorum_sets: Dict[int, List[FrozenSet[int]]] = {}
        if quorum_sets:
            for gid, quorums in quorum_sets.items():
                self._validate_quorums(gid, quorums)
                self.quorum_sets[gid] = [frozenset(q) for q in quorums]
        # Precomputed per-group member sets and majority sizes: the
        # quorum predicates run on every ack of every run, so they must
        # not rebuild these on each call.
        self._member_sets: List[FrozenSet[int]] = [frozenset(g) for g in self.groups]
        self._majority_sizes: List[int] = [len(g) // 2 + 1 for g in self.groups]
        # dest_pids() is called for every multicast submission and every
        # protocol fan-out; destination sets repeat constantly, so the
        # sorted-flattened pid list is memoised per destination set.
        self._dest_pids_cache: Dict[FrozenSet[int], List[int]] = {}
        # Bitmask view of membership for the allocation-free ack
        # trackers: pid -> single-bit mask of the pid's position within
        # its group (0 for non-members), plus each explicit quorum as a
        # mask over the same positions. Majority quorums reduce to a
        # popcount compare.
        self._member_bits: List[Dict[int, int]] = [
            {pid: 1 << i for i, pid in enumerate(g)} for g in self.groups
        ]
        self._quorum_masks: Dict[int, List[int]] = {}
        for gid, quorums in self.quorum_sets.items():
            bits = self._member_bits[gid]
            self._quorum_masks[gid] = [
                sum(bits[pid] for pid in q) for q in quorums
            ]

    def _validate_quorums(self, gid: int, quorums: List[FrozenSet[int]]) -> None:
        if not 0 <= gid < len(self.groups):
            raise ValueError(f"unknown group {gid}")
        members = set(self.groups[gid])
        if not quorums:
            raise ValueError(f"group {gid}: quorum system is empty")
        for q in quorums:
            if not set(q) <= members:
                raise ValueError(f"group {gid}: quorum {set(q)} not within the group")
        for i, a in enumerate(quorums):
            for b in quorums[i:]:
                if not set(a) & set(b):
                    raise ValueError(
                        f"group {gid}: quorums {set(a)} and {set(b)} do not intersect"
                    )

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def all_pids(self) -> List[int]:
        """Every server pid, in group order."""
        return [pid for members in self.groups for pid in members]

    def members(self, gid: int) -> List[int]:
        """Members of group ``gid``."""
        return self.groups[gid]

    def initial_leader(self, gid: int) -> int:
        """The leader of every group's initial epoch (first member)."""
        return self.groups[gid][0]

    def quorum_size(self, gid: int) -> int:
        """Majority quorum size for group ``gid`` (when no explicit
        quorum system is configured)."""
        return len(self.groups[gid]) // 2 + 1

    def dest_pids(self, dest: Iterable[int]) -> List[int]:
        """All pids in the union of the destination groups, sorted by
        group then position (deterministic send order).

        The returned list is memoised and shared between calls with the
        same destination set — callers must not mutate it.
        """
        key = dest if isinstance(dest, frozenset) else frozenset(dest)
        cached = self._dest_pids_cache.get(key)
        if cached is None:
            pids: List[int] = []
            for gid in sorted(key):
                pids.extend(self.groups[gid])
            cached = self._dest_pids_cache[key] = pids
        return cached

    # ------------------------------------------------------------------
    # quorum predicates
    # ------------------------------------------------------------------

    def has_quorum(self, gid: int, pids: Iterable[int]) -> bool:
        """True when ``pids`` contains a quorum of group ``gid``."""
        pid_set: AbstractSet[int] = (
            pids if isinstance(pids, (set, frozenset)) else set(pids)
        )
        quorums = self.quorum_sets.get(gid)
        if quorums is None:
            need = self._majority_sizes[gid]
            if len(pid_set) < need:
                return False
            members = self._member_sets[gid]
            count = 0
            for pid in pid_set:
                if pid in members:
                    count += 1
                    if count >= need:
                        return True
            return False
        return any(q <= pid_set for q in quorums)

    def member_bit(self, gid: int, pid: int) -> int:
        """``pid``'s single-bit position mask within group ``gid``, or 0
        when the pid is not a member. Masks from different groups are
        not comparable."""
        return self._member_bits[gid].get(pid, 0)

    def has_quorum_mask(self, gid: int, mask: int) -> bool:
        """Mask form of :meth:`has_quorum`: ``mask`` is an OR of
        :meth:`member_bit` values of group ``gid``."""
        quorums = self._quorum_masks.get(gid)
        if quorums is None:
            return _popcount(mask) >= self._majority_sizes[gid]
        for qm in quorums:
            if qm & mask == qm:
                return True
        return False

    def quorum_clock_value(self, gid: int, min_clocks: Dict[int, int]) -> int:
        """quorum-clock() (Algorithm 1, line 17): the largest ``ts`` such
        that some quorum of the group has ``min-clock(q) >= ts`` for all
        its members. Missing members count as clock 0.

        For majority quorums this is the q-th largest clock value; for
        explicit quorum systems it is computed directly as
        ``max over quorums of (min over quorum)``.
        """
        members = self.groups[gid]
        quorums = self.quorum_sets.get(gid)
        if quorums is None:
            get = min_clocks.get
            values = [get(pid, 0) for pid in members]
            q = self._majority_sizes[gid]
            n = len(values)
            if n == q:  # e.g. singleton groups: quorum = whole group
                return min(values)
            values.sort()
            return values[n - q]
        return max(min(min_clocks.get(pid, 0) for pid in q) for q in quorums)

    def __repr__(self) -> str:
        sizes = [len(g) for g in self.groups]
        return f"GroupConfig({len(self.groups)} groups, sizes={sizes})"


def uniform_groups(n_groups: int, group_size: int) -> GroupConfig:
    """Convenience: ``n_groups`` disjoint groups of ``group_size`` with
    consecutive pids (group g holds pids ``[g*size, (g+1)*size)``)."""
    if n_groups < 1 or group_size < 1:
        raise ValueError("need at least one group of at least one process")
    groups = [
        list(range(g * group_size, (g + 1) * group_size)) for g in range(n_groups)
    ]
    return GroupConfig(groups)
