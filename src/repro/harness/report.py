"""Plain-text rendering of experiment results (the benches' output)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from .runner import RunResult


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with padded columns."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    sep = "-" * len(line)
    out = [line, sep]
    for row in str_rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def throughput_latency_rows(results: List[RunResult]) -> List[List[str]]:
    """Rows in the shape of the paper's throughput/latency figures."""
    rows = []
    for r in results:
        rows.append(
            [
                r.protocol,
                str(r.n_dest_groups),
                str(r.outstanding),
                f"{r.throughput_kmsgs:.2f}",
                f"{r.latency['p50']:.2f}",
                f"{r.latency['p95']:.2f}",
                f"{r.latency['mean']:.2f}",
                str(int(r.latency["count"])),
            ]
        )
    return rows


THROUGHPUT_HEADERS = [
    "protocol",
    "dests",
    "outstanding",
    "tput (k msg/s)",
    "p50 (ms)",
    "p95 (ms)",
    "mean (ms)",
    "samples",
]


def print_results(title: str, results: List[RunResult]) -> None:
    """Print one figure's curve data."""
    print(f"\n== {title} ==")
    print(format_table(THROUGHPUT_HEADERS, throughput_latency_rows(results)))


def max_throughput_by_protocol(results: List[RunResult]) -> Dict[str, float]:
    """Peak measured throughput (msg/s) per protocol in a sweep."""
    best: Dict[str, float] = {}
    for r in results:
        best[r.protocol] = max(best.get(r.protocol, 0.0), r.throughput)
    return best
