"""Discrete-event simulation substrate.

This package is the "testbed" the reproduction runs on, replacing the
paper's physical cluster + Linux ``tc`` WAN emulation:

* :mod:`repro.sim.events` — deterministic event scheduler.
* :mod:`repro.sim.network` — reliable, per-pair FIFO channels with
  pluggable latency models and fault injection.
* :mod:`repro.sim.latency` — constant / jittered / site-matrix latencies.
* :mod:`repro.sim.process` — processes with a single-server CPU queue.
* :mod:`repro.sim.costs` — per-message CPU cost model (drives saturation).
* :mod:`repro.sim.clock` — loosely synchronized physical clocks (§6).
* :mod:`repro.sim.failures` — crash injection.
"""

from .clock import PhysicalClock, make_clocks
from .costs import CostModel, default_cost_model, zero_cost_model
from .events import EventHandle, Scheduler
from .failures import FailureInjector, max_failures
from .latency import ConstantLatency, JitteredLatency, LatencyModel, SiteMatrixLatency
from .network import Network
from .process import SimProcess
from .rng import child_rng, child_seed
from .trace import Flight, record_flights, render_exchanges

__all__ = [
    "Scheduler",
    "EventHandle",
    "Network",
    "SimProcess",
    "CostModel",
    "default_cost_model",
    "zero_cost_model",
    "LatencyModel",
    "ConstantLatency",
    "JitteredLatency",
    "SiteMatrixLatency",
    "PhysicalClock",
    "make_clocks",
    "FailureInjector",
    "max_failures",
    "child_rng",
    "child_seed",
    "Flight",
    "record_flights",
    "render_exchanges",
]
