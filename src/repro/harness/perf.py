"""Wall-clock performance harness for the simulation substrate.

The paper-reproduction benches are bounded by how fast the simulator
executes events, so the substrate's own speed is tracked as a first-class
metric. This module measures wall-clock seconds and simulated events/sec
for standard load points, optionally captures a cProfile, quantifies the
wire-message savings of the opt-in §7.1 ack/bump batching layer, and
records everything in ``BENCH_perf.json`` so regressions (or wins) are
visible across PRs — see the "Perf trajectory" section of EXPERIMENTS.md.

Conventions:

* Wall times are **best-of-N** (default 3): the minimum is the least
  noisy estimator of the achievable time on a busy machine.
* The seed baseline (:data:`SEED_BASELINE`) was measured on the same
  smoke point before the substrate optimisation work; speedups reported
  by :func:`speedup_vs_seed` are relative to it.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional

from ..workload.scenarios import Scenario, wan_colocated_leaders
from .runner import RunResult, run_load_point

#: Default location of the perf record, at the repository root.
BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_perf.json"

#: Seed-revision baseline for the standard smoke point (Fig 3 scenario,
#: 2 destination groups, 32 outstanding, 700 ms simulated): best-of-2
#: wall seconds and the (deterministic) event count of that run.
SEED_BASELINE = {
    "point": "fig3-wan-colocated-d2-o32",
    "wall_s": 10.139,
    "events": 660110,
}


@dataclass
class PerfPoint:
    """Wall-clock measurement of one simulated load point."""

    point: str
    protocol: str
    scenario: str
    n_dest_groups: int
    outstanding: int
    batching_ms: float
    #: best-of-``repeats`` wall-clock seconds
    wall_s: float
    #: every measured repeat, in order
    walls_s: list = field(default_factory=list)
    #: simulated events executed in one run
    events: int = 0
    #: simulated events per wall-clock second (best run)
    events_per_sec: float = 0.0
    #: delivered msg/s inside the measurement window (simulated)
    throughput: float = 0.0
    #: total wire messages over the run
    wire_messages: int = 0
    message_counts: Dict[str, int] = field(default_factory=dict)


def measure_load_point(
    protocol: str = "primcast",
    scenario: Optional[Scenario] = None,
    n_dest_groups: int = 2,
    outstanding: int = 32,
    seed: int = 1,
    warmup_ms: float = 300.0,
    measure_ms: float = 400.0,
    batching_ms: float = 0.0,
    repeats: int = 3,
    point: Optional[str] = None,
    profile: bool = False,
) -> PerfPoint:
    """Run one load point ``repeats`` times and report best-of wall time.

    With ``profile=True`` the last repeat runs under cProfile and the top
    functions (by internal time) are printed — note cProfile inflates
    wall time roughly 2-3x, so profiled runs are excluded from timing.
    """
    if scenario is None:
        scenario = wan_colocated_leaders()
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    kwargs: Dict[str, Any] = dict(
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
        seed=seed,
        keep_samples=False,
        batching_ms=batching_ms,
    )
    walls = []
    result: Optional[RunResult] = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_load_point(protocol, scenario, n_dest_groups, outstanding, **kwargs)
        walls.append(time.perf_counter() - t0)
    assert result is not None
    if profile:
        profiler = cProfile.Profile()
        profiler.enable()
        run_load_point(protocol, scenario, n_dest_groups, outstanding, **kwargs)
        profiler.disable()
        out = io.StringIO()
        pstats.Stats(profiler, stream=out).sort_stats("tottime").print_stats(20)
        print(out.getvalue())
    best = min(walls)
    name = point or (
        f"{scenario.name}-{protocol}-d{n_dest_groups}-o{outstanding}"
        + (f"-b{batching_ms:g}" if batching_ms else "")
    )
    return PerfPoint(
        point=name,
        protocol=protocol,
        scenario=scenario.name,
        n_dest_groups=n_dest_groups,
        outstanding=outstanding,
        batching_ms=batching_ms,
        wall_s=best,
        walls_s=[round(w, 4) for w in walls],
        events=result.events,
        events_per_sec=result.events / best if best > 0 else 0.0,
        throughput=result.throughput,
        wire_messages=sum(result.message_counts.values()),
        message_counts=dict(result.message_counts),
    )


def speedup_vs_seed(perf: PerfPoint) -> float:
    """Wall-clock speedup of ``perf`` relative to :data:`SEED_BASELINE`
    (only meaningful for the standard smoke point)."""
    return SEED_BASELINE["wall_s"] / perf.wall_s


def batching_delta(
    protocol: str = "primcast",
    scenario: Optional[Scenario] = None,
    n_dest_groups: int = 2,
    outstanding: int = 8,
    batching_ms: float = 2.0,
    seed: int = 1,
    warmup_ms: float = 300.0,
    measure_ms: float = 400.0,
) -> Dict[str, Any]:
    """Wire-message comparison of one load point with batching off vs on.

    Returns a dict with both :class:`PerfPoint` measurements and the
    relative wire-message reduction — the simulated counterpart of the
    §7.1 TCP message-merging experiment.
    """
    if scenario is None:
        scenario = wan_colocated_leaders()
    common = dict(
        protocol=protocol,
        scenario=scenario,
        n_dest_groups=n_dest_groups,
        outstanding=outstanding,
        seed=seed,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
        repeats=1,
    )
    off = measure_load_point(batching_ms=0.0, **common)
    on = measure_load_point(batching_ms=batching_ms, **common)
    reduction = 1.0 - on.wire_messages / off.wire_messages if off.wire_messages else 0.0
    return {
        "off": asdict(off),
        "on": asdict(on),
        "batching_ms": batching_ms,
        "wire_reduction": reduction,
    }


def update_bench(key: str, payload: Any, path: Optional[Path] = None) -> Path:
    """Merge ``payload`` under ``key`` into ``BENCH_perf.json``.

    Existing keys other than ``key`` are preserved, so the substrate and
    batching benches can update their sections independently.
    """
    target = Path(path) if path is not None else BENCH_PATH
    record: Dict[str, Any] = {}
    if target.exists():
        try:
            record = json.loads(target.read_text())
        except (ValueError, OSError):
            record = {}
    record[key] = payload
    record["seed_baseline"] = SEED_BASELINE
    target.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return target
