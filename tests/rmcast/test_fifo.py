"""Unit tests for FIFO non-uniform reliable multicast."""

import pytest

from repro.rmcast.fifo import Envelope, RMcastProcess
from repro.sim.events import Scheduler
from repro.sim.latency import ConstantLatency, JitteredLatency
from repro.sim.network import Network
from repro.sim.rng import child_rng


class Payload:
    __slots__ = ("kind", "tag", "mid")

    def __init__(self, tag, kind="test", mid=None):
        self.tag = tag
        self.kind = kind
        self.mid = mid


class Endpoint(RMcastProcess):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.delivered = []

    def on_r_deliver(self, origin, payload):
        self.delivered.append((origin, payload.tag, self.scheduler.now))


def build(n=4, relay=False, latency=None):
    sched = Scheduler()
    net = Network(sched, latency or ConstantLatency(1.0), child_rng(3, "rm"))
    procs = [Endpoint(i, sched, net, relay=relay) for i in range(n)]
    return sched, net, procs


def test_validity_all_destinations_deliver():
    sched, net, procs = build()
    procs[0].r_multicast(Payload("a"), [1, 2, 3])
    sched.run()
    for p in procs[1:]:
        assert [(0, "a")] == [(o, t) for o, t, _ in p.delivered]


def test_one_communication_step():
    sched, net, procs = build(latency=ConstantLatency(7.0))
    procs[0].r_multicast(Payload("a"), [1])
    sched.run()
    assert procs[1].delivered[0][2] == 7.0


def test_sender_delivers_own_message_when_destination():
    sched, net, procs = build()
    procs[0].r_multicast(Payload("a"), [0, 1])
    sched.run()
    assert [(0, "a")] == [(o, t) for o, t, _ in procs[0].delivered]


def test_sender_not_in_dest_does_not_deliver():
    sched, net, procs = build()
    procs[0].r_multicast(Payload("a"), [1, 2])
    sched.run()
    assert procs[0].delivered == []


def test_integrity_no_duplicates_in_relay_mode():
    sched, net, procs = build(relay=True)
    procs[0].r_multicast(Payload("a"), [1, 2, 3])
    sched.run()
    for p in procs[1:]:
        assert len(p.delivered) == 1
    # Relays happened: more envelope sends than the 3 direct ones.
    assert net.messages_sent > 3


def test_fifo_order_per_sender():
    sched, net, procs = build(latency=JitteredLatency(5.0, 0.8))
    for i in range(30):
        procs[0].r_multicast(Payload(i), [1, 2])
    sched.run()
    for p in (procs[1], procs[2]):
        tags = [t for _, t, _ in p.delivered]
        assert tags == list(range(30))


def test_relay_mode_survives_sender_crash_mid_multicast():
    """Non-uniform agreement strengthened by relaying: if at least one
    correct destination got the envelope, all correct ones do."""
    sched, net, procs = build(relay=True)
    # Simulate a partial send: the sender's envelope only reaches 1.
    env = Envelope(0, 0, Payload("a"), (1, 2, 3))
    procs[0].send(1, env)
    procs[0].crash()
    sched.run()
    assert [t for _, t, _ in procs[1].delivered] == ["a"]
    assert [t for _, t, _ in procs[2].delivered] == ["a"]
    assert [t for _, t, _ in procs[3].delivered] == ["a"]


def test_without_relay_partial_send_is_lost():
    sched, net, procs = build(relay=False)
    env = Envelope(0, 0, Payload("a"), (1, 2, 3))
    procs[0].send(1, env)
    procs[0].crash()
    sched.run()
    assert len(procs[1].delivered) == 1
    assert procs[2].delivered == []


def test_envelope_exposes_payload_kind_and_mid():
    env = Envelope(0, 0, Payload("a", kind="ack", mid=(1, 2)), (1,))
    assert env.kind == "ack"
    assert env.mid == (1, 2)


def test_raw_message_rejected_by_default():
    sched, net, procs = build()
    procs[0].send(1, Payload("raw"))
    with pytest.raises(NotImplementedError):
        sched.run()


def test_separate_seq_spaces_per_origin():
    sched, net, procs = build()
    procs[0].r_multicast(Payload("a"), [2])
    procs[1].r_multicast(Payload("b"), [2])
    sched.run()
    assert len(procs[2].delivered) == 2


def test_dedupe_state_is_per_origin_watermark_not_per_message():
    """The dedupe structure must stay O(origins), not O(messages ever
    received): per-channel FIFO makes a contiguous high watermark sound,
    so a long stream from one origin costs one dict entry."""
    sched, net, procs = build()
    for i in range(200):
        procs[0].r_multicast(Payload(i), [1])
    sched.run()
    assert len(procs[1].delivered) == 200
    assert procs[1].rm._dedupe_high == {0: 199}
    assert procs[1].rm._overflow == {}


def test_relay_overflow_drains_behind_direct_watermark():
    """Relayed-first arrivals park in the sparse overflow set; once the
    direct copy advances the watermark past them they are dropped from
    it, so relay-mode dedupe state is bounded by the reorder window."""
    sched, net, procs = build(relay=True)
    # Relayed copy of seq 0 arrives first (as if forwarded by 2).
    env = Envelope(0, 0, Payload("a"), (1, 2), relayed=True)
    procs[2].send(1, env)
    sched.run()
    assert [t for _, t, _ in procs[1].delivered] == ["a"]
    assert procs[1].rm._overflow == {0: {0}}
    # The direct copy arrives late: duplicate (not re-delivered), and
    # the watermark passes seq 0, draining the overflow entry.
    procs[0].send(1, Envelope(0, 0, Payload("a"), (1, 2)))
    sched.run()
    assert [t for _, t, _ in procs[1].delivered] == ["a"]
    assert procs[1].rm._dedupe_high == {0: 0}
    assert procs[1].rm._overflow == {}
