"""CLI for the net backend: ``python -m repro.net <command>``.

* ``node`` — run ONE protocol process (spawned by the launcher; not
  normally invoked by hand).
* ``cluster`` — launch a full localhost cluster and report it.
* ``diff`` — launch a cluster, run the sim reference on the same
  workload, and fail (exit 1) on any delivery disagreement. This is
  the CI ``net-smoke`` entry point; ``--kill`` adds mid-run crash
  injection (the survivors must elect a new leader and still agree
  with the failure-free reference).
* ``open`` — launch an open-loop cluster (K concurrent clients with
  outstanding windows and optional Poisson arrivals) and fail on any
  violation of the statistical safety checks (``repro.verify`` over
  the merged delivery logs).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

from .cluster import ClusterSpec, launch_cluster
from .differential import diff_cluster_result, verify_cluster_logs
from .host import Topology, run_node


def _add_spec_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--groups", type=int, default=2)
    parser.add_argument("--group-size", type=int, default=3)
    parser.add_argument("--messages", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--extra-group-p", type=float, default=0.5)
    parser.add_argument(
        "--kill", type=int, default=None, metavar="PID",
        help="SIGKILL this pid mid-run (not the driver)",
    )
    parser.add_argument(
        "--kill-after", type=int, default=4, metavar="N",
        help="kill once the driver has delivered N messages",
    )
    parser.add_argument("--hb-interval-ms", type=float, default=50.0)
    parser.add_argument("--suspect-ms", type=float, default=500.0)
    parser.add_argument(
        "--grace-ms", type=float, default=None,
        help="startup grace before suspicion (default: suspect-ms)",
    )
    parser.add_argument(
        "--codec", choices=("json", "binary"), default="json",
        help="wire encoding (receivers auto-detect per frame)",
    )
    parser.add_argument(
        "--no-coalesce", action="store_true",
        help="one socket write per frame (PR-9 behaviour)",
    )
    parser.add_argument(
        "--batching-ms", type=float, default=0.0,
        help="rmcast ack/bump batching window, 0 = off (paper §7.1)",
    )
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument("--rundir", type=str, default=None)


def _spec_from_args(args: argparse.Namespace, **overrides: object) -> ClusterSpec:
    kwargs = dict(
        n_groups=args.groups,
        group_size=args.group_size,
        n_messages=args.messages,
        seed=args.seed,
        extra_group_p=args.extra_group_p,
        kill_pid=args.kill,
        kill_after=args.kill_after,
        hb_interval_ms=args.hb_interval_ms,
        suspect_ms=args.suspect_ms,
        hb_grace_ms=args.grace_ms,
        codec=args.codec,
        coalesce=not args.no_coalesce,
        batching_ms=args.batching_ms,
        run_timeout_s=args.timeout,
    )
    kwargs.update(overrides)
    return ClusterSpec(**kwargs)  # type: ignore[arg-type]


def _rundir_from_args(args: argparse.Namespace) -> Path:
    if args.rundir:
        path = Path(args.rundir)
        path.mkdir(parents=True, exist_ok=True)
        return path
    return Path(tempfile.mkdtemp(prefix="repro-net-"))


def cmd_node(args: argparse.Namespace) -> int:
    topology = Topology.from_json(json.loads(Path(args.topology).read_text()))
    return run_node(topology, args.pid, Path(args.rundir))


def cmd_cluster(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    rundir = _rundir_from_args(args)
    result = launch_cluster(spec, rundir)
    for pid in sorted(result.outcomes):
        o = result.outcomes[pid]
        status = "KILLED" if o.killed else f"exit={o.exit_code}"
        print(
            f"node {pid}: {status} delivered={len(o.delivered)}"
            + (f" expected={o.summary['expected']}" if o.summary else "")
        )
    print(f"cluster {'OK' if result.ok else 'FAILED'} in {result.wall_s:.1f}s "
          f"(rundir: {rundir})")
    return 0 if result.ok else 1


def cmd_diff(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    rundir = _rundir_from_args(args)
    result = launch_cluster(spec, rundir)
    if not result.ok:
        print(f"cluster run FAILED (rundir: {rundir})")
        for pid in sorted(result.outcomes):
            o = result.outcomes[pid]
            status = "KILLED" if o.killed else f"exit={o.exit_code}"
            print(f"  node {pid}: {status} delivered={len(o.delivered)}")
        return 1
    problems = diff_cluster_result(result)
    if problems:
        print(f"differential check FAILED (rundir: {rundir}):")
        for p in problems:
            print(f"  {p}")
        return 1
    survivors = result.survivors
    n_msgs = spec.n_messages
    kill_note = (
        f", survived kill of pid {spec.kill_pid}" if spec.kill_pid is not None else ""
    )
    print(
        f"differential check OK: {len(survivors)} nodes agree with the sim "
        f"reference on {n_msgs} messages{kill_note} "
        f"(codec={spec.codec}, {result.wall_s:.1f}s)"
    )
    return 0


def cmd_open(args: argparse.Namespace) -> int:
    """Open-loop concurrent cluster + statistical safety checks."""
    spec = _spec_from_args(
        args,
        driver_mode="open",
        clients=args.clients,
        window=args.window,
        rate_hz=args.rate,
    )
    rundir = _rundir_from_args(args)
    result = launch_cluster(spec, rundir)
    if not result.ok:
        print(f"cluster run FAILED (rundir: {rundir})")
        for pid in sorted(result.outcomes):
            o = result.outcomes[pid]
            print(f"  node {pid}: exit={o.exit_code} delivered={len(o.delivered)}")
        return 1
    violations = verify_cluster_logs(result)
    if violations:
        print(f"statistical checks FAILED (rundir: {rundir}):")
        for v in violations:
            print(f"  {v.to_dict()}")
        return 1
    total = sum(
        o.summary.get("submitted", 0)
        for o in result.outcomes.values()
        if o.summary
    )
    print(
        f"statistical checks OK: 0 violations over {total} messages from "
        f"{spec.clients} clients (codec={spec.codec}, window={spec.window}, "
        f"rate={args.rate or 'closed-loop'}, {result.wall_s:.1f}s)"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.net")
    sub = parser.add_subparsers(dest="command", required=True)

    np = sub.add_parser("node", help="run one protocol process (launcher use)")
    np.add_argument("--topology", required=True)
    np.add_argument("--pid", type=int, required=True)
    np.add_argument("--rundir", required=True)
    np.set_defaults(fn=cmd_node)

    cp = sub.add_parser("cluster", help="launch a localhost cluster")
    _add_spec_args(cp)
    cp.set_defaults(fn=cmd_cluster)

    dp = sub.add_parser("diff", help="cluster run + sim differential check")
    _add_spec_args(dp)
    dp.set_defaults(fn=cmd_diff)

    op = sub.add_parser(
        "open", help="open-loop concurrent cluster + statistical checks"
    )
    _add_spec_args(op)
    op.add_argument("--clients", type=int, default=4)
    op.add_argument("--window", type=int, default=4)
    op.add_argument(
        "--rate", type=float, default=0.0,
        help="per-client Poisson arrival rate in msgs/sec (0 = closed loop)",
    )
    op.set_defaults(fn=cmd_open)

    args = parser.parse_args(argv)
    return int(args.fn(args))


if __name__ == "__main__":
    sys.exit(main())
