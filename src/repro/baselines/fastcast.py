"""FastCast [Coelho, Schiper, Pedone — DSN'17] (§4.1).

Genuine atomic multicast with collision-free/failure-free latency of 4/8
communication steps. Each group runs consensus twice per message — once
to fix its local timestamp, once on the optimistic final timestamp — and
group leaders exchange *soft* (pre-consensus) and *hard* (post-consensus)
timestamp notifications with every destination process:

1. The sender sends ``m`` to all destination processes (``start``).
2. The leader of each destination group assigns a local timestamp and
   (a) sends it as a **soft** notification to every destination process,
   (b) proposes it through round-1 consensus in its group.
3. When round-1 decides, the leader sends the **hard** notification to
   every destination process.
4. A leader holding softs from all destination leaders proposes their
   maximum — the optimistic final timestamp — through round-2 consensus.
5. Fast path: when the optimistic timestamp (decided by round 2) equals
   the final timestamp (max of all hards), the message is deliverable in
   final-timestamp order — 4 steps end to end. Otherwise a third,
   sequential consensus round on the true final timestamp is run (the
   slow path; with stable leaders soft and hard values coincide, so the
   paper's evaluation always rides the fast path — but both rounds'
   message cost is always paid, which is why FastCast saturates first).

Message complexity per multicast to k groups of n (Table 1):
``kn + 2k²n + 2kn + 2kn²``.

Consensus here is phase-2 Paxos under a stable leader (ballot 0); the
full protocol with leader change lives in :mod:`repro.consensus` — the
paper's evaluation (and ours) runs the failure-free path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Set, Tuple

from ..core.config import GroupConfig
from ..core.messages import MessageId, Multicast
from ..sim.costs import CostModel
from ..sim.events import Scheduler
from ..sim.network import Network
from .base import GroupProtocolProcess
from .delivery import DeliveryQueue

# Consensus round ids.
ROUND_LOCAL = 1  # decide the group's local timestamp
ROUND_OPT = 2  # decide the optimistic final timestamp
ROUND_FINAL = 3  # slow path: decide the true final timestamp


class FcStart:
    __slots__ = ("multicast",)
    kind = "start"

    def __init__(self, multicast: Multicast):
        self.multicast = multicast

    @property
    def mid(self) -> MessageId:
        return self.multicast.mid


class FcSoft:
    """Leader's pre-consensus timestamp proposal (step 2a)."""

    __slots__ = ("multicast", "group", "ts")
    kind = "fc-soft"

    def __init__(self, multicast: Multicast, group: int, ts: int):
        self.multicast = multicast
        self.group = group
        self.ts = ts

    @property
    def mid(self) -> MessageId:
        return self.multicast.mid


class FcHard:
    """Leader's decided local timestamp (step 3)."""

    __slots__ = ("multicast", "group", "ts")
    kind = "fc-hard"

    def __init__(self, multicast: Multicast, group: int, ts: int):
        self.multicast = multicast
        self.group = group
        self.ts = ts

    @property
    def mid(self) -> MessageId:
        return self.multicast.mid


class Fc2A:
    """Paxos phase 2a inside a group (stable-leader ballot)."""

    __slots__ = ("multicast", "round", "ts")
    kind = "fc-2a"

    def __init__(self, multicast: Multicast, round_id: int, ts: int):
        self.multicast = multicast
        self.round = round_id
        self.ts = ts

    @property
    def mid(self) -> MessageId:
        return self.multicast.mid


class Fc2B:
    """Paxos phase 2b, sent to all group members (all learn in 1 step)."""

    __slots__ = ("mid", "round", "ts", "sender")
    kind = "fc-2b"

    def __init__(self, mid: MessageId, round_id: int, ts: int, sender: int):
        self.mid = mid
        self.round = round_id
        self.ts = ts
        self.sender = sender


FASTCAST_KINDS = ("start", "fc-soft", "fc-hard", "fc-2a", "fc-2b")


class FastCastProcess(GroupProtocolProcess):
    """One group member of FastCast (stable leaders)."""

    def __init__(
        self,
        pid: int,
        config: GroupConfig,
        scheduler: Scheduler,
        network: Network,
        cost_model: Optional[CostModel] = None,
        batching_ms: float = 0.0,
    ):
        super().__init__(
            pid, config, scheduler, network, cost_model, batching_ms=batching_ms
        )
        self.is_leader = config.initial_leader(self.gid) == pid
        self.clock = 0
        self._multicasts: Dict[MessageId, Multicast] = {}
        self._proposed: Set[MessageId] = set()  # leader: round-1 started
        self._softs: Dict[MessageId, Dict[int, int]] = {}
        self._hards: Dict[MessageId, Dict[int, int]] = {}
        self._local_ts: Dict[MessageId, int] = {}  # own-group proposal (2a r1)
        # (mid, round) -> {sender: ts}
        self._votes: Dict[Tuple[MessageId, int], Dict[int, int]] = {}
        self._decided: Dict[Tuple[MessageId, int], int] = {}
        self._final: Dict[MessageId, int] = {}
        self._opt_proposed: Set[MessageId] = set()
        self._slow_proposed: Set[MessageId] = set()
        self._queue = DeliveryQueue(self._min_final)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def a_multicast_m(self, multicast: Multicast) -> None:
        self.r_multicast(FcStart(multicast), self.config.dest_pids(multicast.dest))

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def on_r_deliver(self, origin: int, payload: Any) -> None:
        if isinstance(payload, Fc2B):
            self._on_2b(payload)
        elif isinstance(payload, Fc2A):
            self._on_2a(payload)
        elif isinstance(payload, FcSoft):
            self._on_soft(payload)
        elif isinstance(payload, FcHard):
            self._on_hard(payload)
        elif isinstance(payload, FcStart):
            self._on_start(payload.multicast)
        else:
            raise TypeError(f"unexpected payload {payload!r}")

    def _on_start(self, multicast: Multicast) -> None:
        mid = multicast.mid
        self._multicasts.setdefault(mid, multicast)
        if self.is_leader and mid not in self._proposed:
            self._proposed.add(mid)
            self.clock += 1
            soft = FcSoft(multicast, self.gid, self.clock)
            self.r_multicast(soft, self.config.dest_pids(multicast.dest))
            self.r_multicast(Fc2A(multicast, ROUND_LOCAL, self.clock), self.group_members)

    def _on_2a(self, msg: Fc2A) -> None:
        """Accept the leader's proposal and vote (all-to-all 2b)."""
        mid = msg.mid
        self._multicasts.setdefault(mid, msg.multicast)
        if msg.round == ROUND_LOCAL:
            self._local_ts[mid] = msg.ts
            if mid not in self.delivered:
                self._queue.add_pending(mid)
            if msg.ts > self.clock:
                self.clock = msg.ts
        self.r_multicast(Fc2B(mid, msg.round, msg.ts, self.pid), self.group_members)

    def _on_2b(self, msg: Fc2B) -> None:
        key = (msg.mid, msg.round)
        if key in self._decided:
            return
        votes = self._votes.setdefault(key, {})
        votes[msg.sender] = msg.ts
        if not self.config.has_quorum(self.gid, votes.keys()):
            return
        self._decided[key] = msg.ts
        del self._votes[key]
        multicast = self._multicasts.get(msg.mid)
        if msg.round == ROUND_LOCAL:
            # Local timestamp fixed: the leader publishes the hard value.
            if self.is_leader and multicast is not None:
                hard = FcHard(multicast, self.gid, msg.ts)
                self.r_multicast(hard, self.config.dest_pids(multicast.dest))
        elif msg.round in (ROUND_OPT, ROUND_FINAL):
            if msg.ts > self.clock:
                self.clock = msg.ts
            self._maybe_commit(msg.mid)
            self._try_deliver()

    def _on_soft(self, msg: FcSoft) -> None:
        mid = msg.mid
        self._multicasts.setdefault(mid, msg.multicast)
        softs = self._softs.setdefault(mid, {})
        softs[msg.group] = msg.ts
        multicast = msg.multicast
        # §4.1: the optimistic path doubles as the group's early clock
        # update — the leader must never propose below a soft it has
        # seen, or a later local message could undercut an already
        # decided optimistic final timestamp.
        if self.is_leader and msg.ts > self.clock:
            self.clock = msg.ts
        if (
            self.is_leader
            and self.gid in multicast.dest
            and len(softs) == len(multicast.dest)
            and mid not in self._opt_proposed
        ):
            # Step 4: propose the optimistic final timestamp.
            self._opt_proposed.add(mid)
            opt = max(softs.values())
            self.r_multicast(Fc2A(multicast, ROUND_OPT, opt), self.group_members)

    def _on_hard(self, msg: FcHard) -> None:
        mid = msg.mid
        self._multicasts.setdefault(mid, msg.multicast)
        hards = self._hards.setdefault(mid, {})
        hards[msg.group] = msg.ts
        multicast = msg.multicast
        if len(hards) == len(multicast.dest):
            self._final[mid] = max(hards.values())
            self._maybe_commit(mid)
            self._try_deliver()

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------

    def _maybe_commit(self, mid: MessageId) -> None:
        """Fast path: optimistic decision equals the final timestamp.
        Slow path: a ROUND_FINAL decision matching the final timestamp.
        The leader starts the slow path on a fast-path mismatch."""
        if self._queue.is_committed(mid):
            return
        final = self._final.get(mid)
        if final is None:
            return
        opt = self._decided.get((mid, ROUND_OPT))
        if opt == final or self._decided.get((mid, ROUND_FINAL)) == final:
            self._queue.commit(mid, final)
            return
        if opt is not None and opt != final and self.is_leader:
            if mid not in self._slow_proposed:
                self._slow_proposed.add(mid)
                multicast = self._multicasts[mid]
                self.r_multicast(
                    Fc2A(multicast, ROUND_FINAL, final), self.group_members
                )

    def _min_final(self, mid: MessageId) -> int:
        """Lower bound on another pending message's final timestamp: the
        largest proposal seen for it from any source."""
        bound = self._local_ts.get(mid, 0)
        softs = self._softs.get(mid)
        if softs:
            bound = max(bound, max(softs.values()))
        hards = self._hards.get(mid)
        if hards:
            bound = max(bound, max(hards.values()))
        return bound

    def _try_deliver(self) -> None:
        # Deliver committed messages in (final, id) order; a message is
        # held back while another pending one could still end up with a
        # smaller final timestamp (queue bound = largest proposal seen).
        while True:
            popped = self._queue.pop_deliverable(self.clock)
            if popped is None:
                return
            mid, final = popped
            self._record_delivery(self._multicasts[mid], final)
