"""Scoped ``mypy --strict`` gate.

The paper-facing packages (``repro.core``, ``repro.verify``), the
simulation substrate (``repro.sim`` — with ``repro.core`` it forms the
mypyc compilation unit, DESIGN.md §9) and the analysis pass itself must
type-check under ``--strict``; pyproject.toml
relaxes nothing inside that scope and silences everything outside it.
Skips when mypy is not installed (the container image does not bake it
in); the CI ``lint`` job installs mypy and runs this gate for real.
"""

import subprocess
import sys
from pathlib import Path

import pytest

pytest.importorskip("mypy")

REPO_ROOT = Path(__file__).resolve().parents[2]

MYPY_SCOPE = [
    "src/repro/core",
    "src/repro/sim",
    "src/repro/verify",
    "src/repro/analysis",
    "src/repro/chaos",
]


def test_scoped_strict_mypy_passes():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "--strict", *MYPY_SCOPE],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
