"""Forward dataflow over the CFGs of :mod:`repro.analysis.cfg`.

A deliberately small engine: one abstract state type per analysis, a
``transfer`` function over CFG entries, a ``join`` for merge points, and
a worklist iteration to fixpoint. Rules then *replay* each block from
its fixpoint entry state with :func:`walk`, observing the state right
before every entry — which is where findings are emitted.

Monotonicity is the client's obligation: ``join`` must be a least upper
bound and ``transfer`` monotone, or the worklist may not terminate. All
analyses in this package use finite lattices (small maps over local
names / booleans), so fixpoints are reached in a handful of passes.

Determinism: the worklist is seeded in reverse post-order and processed
smallest-id-first, so iteration order — and therefore any tie-breaking
in client joins — is platform-independent.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, Generic, List, Set, TypeVar

from .cfg import CFG, CFGEntry

S = TypeVar("S")


class ForwardAnalysis(Generic[S]):
    """Client interface of one forward may/must analysis."""

    def initial(self) -> S:
        """State on entry to the function."""
        raise NotImplementedError

    def bottom(self) -> S:
        """State for not-yet-reached (or unreachable) blocks."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        """Least upper bound at merge points."""
        raise NotImplementedError

    def transfer(self, entry: CFGEntry, state: S) -> S:
        """State after one CFG entry, given the state before it."""
        raise NotImplementedError


def fixpoint(cfg: CFG, analysis: ForwardAnalysis[S]) -> Dict[int, S]:
    """Block-entry states at the least fixpoint.

    Unreachable blocks keep ``analysis.bottom()`` — rules replaying
    them see the empty state, which for may-analyses means "no facts",
    i.e. no findings from dead code.
    """
    order = cfg.rpo()
    position = {block_id: i for i, block_id in enumerate(order)}
    states: Dict[int, S] = {block_id: analysis.bottom() for block_id in cfg.blocks}
    states[cfg.entry] = analysis.initial()

    worklist: List[int] = []
    queued: Set[int] = set()

    def push(block_id: int) -> None:
        if block_id not in queued:
            queued.add(block_id)
            heapq.heappush(worklist, position[block_id])

    # Seed with every block (in RPO): a block's transfer can generate
    # facts even when its entry state never changes after bottom, so
    # each block must be processed at least once to propagate them.
    for block_id in order:
        push(block_id)
    # Finite lattices + monotone transfers terminate; the guard bounds
    # pathological clients instead of hanging the lint pass.
    budget = 64 * max(1, len(cfg.blocks)) * max(1, len(cfg.blocks))
    while worklist:
        budget -= 1
        if budget < 0:
            raise RuntimeError(
                "dataflow fixpoint did not converge (non-monotone transfer?)"
            )
        block_id = order[heapq.heappop(worklist)]
        queued.discard(block_id)
        state = states[block_id]
        for entry in cfg.blocks[block_id].entries:
            state = analysis.transfer(entry, state)
        for succ in sorted(cfg.blocks[block_id].succs):
            joined = analysis.join(states[succ], state)
            if joined != states[succ]:
                states[succ] = joined
                push(succ)
    return states


def walk(
    cfg: CFG,
    analysis: ForwardAnalysis[S],
    entry_states: Dict[int, S],
    visit: Callable[[CFGEntry, S], None],
) -> None:
    """Replay every block once from its fixpoint entry state, calling
    ``visit(entry, state_before_entry)`` for each CFG entry in order."""
    for block_id in cfg.rpo():
        state = entry_states[block_id]
        for entry in cfg.blocks[block_id].entries:
            visit(entry, state)
            state = analysis.transfer(entry, state)


def analyze(
    cfg: CFG,
    analysis: ForwardAnalysis[S],
    visit: Callable[[CFGEntry, S], None],
) -> Dict[int, S]:
    """Fixpoint + replay in one call; returns the entry states."""
    states = fixpoint(cfg, analysis)
    walk(cfg, analysis, states, visit)
    return states
