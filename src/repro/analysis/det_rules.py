"""Determinism rules (DET0xx).

The simulation is a pure function of the root seed: every benchmark
figure and every golden in ``tests/harness/test_determinism_golden.py``
relies on it. These rules reject the constructs that break that purity
at review time instead of test time:

* **DET001** — ambient nondeterminism: the process-global ``random``
  functions, wall-clock reads (``time.time`` and friends,
  ``datetime.now``), ``uuid`` / ``secrets`` / ``os.urandom``. Simulated
  components must draw randomness from :func:`repro.sim.rng.child_rng`
  and read time from ``Scheduler.now``.
* **DET002** — iteration over a bare ``set`` (or ``dict.keys()``) inside
  a function that emits messages or schedules events, without an
  explicit ``sorted(...)``. Set order is an implementation detail of the
  interpreter; feeding it into the event schedule makes run-to-run
  divergence possible.
* **DET003** — ordering by ``id()`` or the default ``hash()``: both
  vary across interpreter runs.
* **DET004** — ``==`` / ``!=`` on simulated wall-clock floats
  (``Scheduler.now`` and friends): float timestamps accumulate rounding,
  exact equality silently turns into schedule-dependent behaviour.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Optional, Set, Tuple, Union

from .base import ContextVisitor, Finding, ModuleInfo, Rule, register
from .cfg import CFGEntry, build_cfg, iter_child_expressions, iter_functions
from .dataflow import ForwardAnalysis, analyze

if TYPE_CHECKING:  # pragma: no cover
    from .config import AnalysisConfig

#: Wall-clock functions of the ``time`` module.
_TIME_FUNCS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)

#: Wall-clock constructors of ``datetime`` / ``date``.
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
_DATETIME_OWNERS = frozenset({"datetime", "date"})

#: Modules whose import alone is a violation in determinism scope.
_FORBIDDEN_IMPORTS = frozenset({"uuid", "secrets"})


def _call_name(func: ast.expr) -> Tuple[Optional[str], str]:
    """Split a call's func into ``(owner, attr)`` for simple shapes."""
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    if isinstance(func, ast.Name):
        return None, func.id
    return None, ""


class _Det001Visitor(ContextVisitor):
    def __init__(self, rule: Rule, mod: ModuleInfo) -> None:
        super().__init__()
        self.rule = rule
        self.mod = mod
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.rule.finding(self.mod, node, message, self.context))

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".", 1)[0]
            if root in _FORBIDDEN_IMPORTS:
                self._flag(
                    node,
                    f"import of nondeterministic module '{alias.name}' in "
                    f"determinism scope — identifiers must be derived from "
                    f"the run seed (see repro.sim.rng)",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".", 1)[0]
        if root in _FORBIDDEN_IMPORTS:
            self._flag(
                node,
                f"import from nondeterministic module '{node.module}' in "
                f"determinism scope",
            )
        elif root == "random":
            for alias in node.names:
                if alias.name != "Random":
                    self._flag(
                        node,
                        f"'from random import {alias.name}' pulls in the "
                        f"process-global RNG — use repro.sim.rng.child_rng",
                    )
        elif root == "time":
            for alias in node.names:
                if alias.name in _TIME_FUNCS:
                    self._flag(
                        node,
                        f"'from time import {alias.name}' reads the wall "
                        f"clock — simulated components must use Scheduler.now",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        owner, attr = _call_name(node.func)
        if owner == "random" and attr != "Random":
            # Module-level random.* functions share one ambient RNG;
            # random.Random(seed) with a derived seed is the sanctioned
            # escape hatch (repro.sim.rng builds exactly that).
            self._flag(
                node,
                f"call to random.{attr}() uses the process-global RNG — "
                f"draw from a repro.sim.rng child RNG instead",
            )
        elif owner == "time" and attr in _TIME_FUNCS:
            self._flag(
                node,
                f"call to time.{attr}() reads the wall clock — simulated "
                f"components must use Scheduler.now",
            )
        elif owner in _DATETIME_OWNERS and attr in _DATETIME_FUNCS:
            self._flag(
                node,
                f"call to {owner}.{attr}() reads the wall clock — simulated "
                f"components must use Scheduler.now",
            )
        elif owner == "os" and attr == "urandom":
            self._flag(node, "os.urandom() is nondeterministic entropy")
        self.generic_visit(node)


@register
class NoAmbientNondeterminism(Rule):
    rule_id = "DET001"
    title = "no ambient randomness or wall-clock reads on the event path"
    scope = ()  # narrowed to config.det_scope in applies_to

    def applies_to(self, module: str, config: "AnalysisConfig") -> bool:
        scope = config.scope_override.get(self.rule_id, config.det_scope)
        return any(
            module == prefix or module.startswith(prefix + ".") for prefix in scope
        )

    def check(self, mod: ModuleInfo, config: "AnalysisConfig") -> Iterator[Finding]:
        visitor = _Det001Visitor(self, mod)
        visitor.visit(mod.tree)
        return iter(visitor.findings)


# ----------------------------------------------------------------------
# DET002 — unsorted set iteration on emission paths
# ----------------------------------------------------------------------


def _is_set_annotation(node: ast.expr) -> bool:
    """True for ``Set[...]`` / ``FrozenSet[...]`` / ``set`` / etc."""
    target = node.value if isinstance(node, ast.Subscript) else node
    name = ""
    if isinstance(target, ast.Name):
        name = target.id
    elif isinstance(target, ast.Attribute):
        name = target.attr
    return name in {"Set", "FrozenSet", "set", "frozenset", "AbstractSet", "MutableSet"}


def _is_set_expr(node: ast.expr) -> bool:
    """True for expressions that syntactically construct a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in {"set", "frozenset"}
    return False


class _SetTypeCollector(ast.NodeVisitor):
    """Collects names/attributes inferred set-typed in one module."""

    def __init__(self) -> None:
        self.names: Set[str] = set()
        self.attrs: Set[str] = set()

    def _record_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, ast.Attribute):
            self.attrs.add(target.attr)

    def visit_Assign(self, node: ast.Assign) -> None:
        if _is_set_expr(node.value):
            for target in node.targets:
                self._record_target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if _is_set_annotation(node.annotation) or (
            node.value is not None and _is_set_expr(node.value)
        ):
            self._record_target(node.target)
        self.generic_visit(node)

    def visit_arg(self, node: ast.arg) -> None:
        if node.annotation is not None and _is_set_annotation(node.annotation):
            self.names.add(node.arg)
        self.generic_visit(node)


def _function_emits(fn: Union[ast.FunctionDef, ast.AsyncFunctionDef], emission: Set[str]) -> bool:
    """True when the function body directly calls an emission primitive."""
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            _, attr = _call_name(node.func)
            if attr in emission:
                return True
    return False


#: Ordering provenance a local can carry through the dataflow.
_ORDERED = "ordered"  # value proven sorted (flows through list/tuple/…)
_UNORDERED = "unordered"  # value carries set contents in set order


class _ProvState:
    """Map of local name -> ordering provenance; absent = unknown."""

    __slots__ = ("locals",)

    def __init__(self, values: "dict[str, str]") -> None:
        self.locals = values

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _ProvState) and other.locals == self.locals

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(tuple(sorted(self.locals.items())))


class _ProvAnalysis(ForwardAnalysis[_ProvState]):
    """Forward sorted/unsorted provenance through local assignments.

    ``x = sorted(self.pending)`` proves ``x`` ordered on every path it
    dominates; ``x = self.pending`` marks ``x`` as carrying raw set
    contents. The join is may-unordered: a name unordered on *any*
    incoming path stays unordered, and ordered-ness survives a merge
    only when proven on every path.
    """

    def __init__(self, set_names: Set[str], set_attrs: Set[str]) -> None:
        self.set_names = set_names
        self.set_attrs = set_attrs

    def initial(self) -> _ProvState:
        return _ProvState({})

    def bottom(self) -> _ProvState:
        return _ProvState({})

    def join(self, a: _ProvState, b: _ProvState) -> _ProvState:
        merged: "dict[str, str]" = {}
        for name in set(a.locals) | set(b.locals):
            va, vb = a.locals.get(name), b.locals.get(name)
            if va == _UNORDERED or vb == _UNORDERED:
                merged[name] = _UNORDERED
            elif va == _ORDERED and vb == _ORDERED:
                merged[name] = _ORDERED
            # ordered-on-one-path-only degrades to unknown (absent).
        return _ProvState(merged)

    def provenance(self, expr: ast.expr, state: _ProvState) -> Optional[str]:
        """Ordering provenance of a value expression, or None (unknown)."""
        if isinstance(expr, ast.Name):
            known = state.locals.get(expr.id)
            if known is not None:
                return known
            return _UNORDERED if expr.id in self.set_names else None
        if isinstance(expr, ast.Attribute):
            return _UNORDERED if expr.attr in self.set_attrs else None
        if _is_set_expr(expr):
            return _UNORDERED
        if isinstance(expr, ast.Call):
            owner, attr = _call_name(expr.func)
            if owner is None and attr == "sorted":
                return _ORDERED
            if owner is None and attr in {"list", "tuple", "iter", "reversed"}:
                # Order-preserving wrappers carry their argument's
                # provenance (reversed of sorted is still deterministic).
                if expr.args:
                    return self.provenance(expr.args[0], state)
        return None

    def _kill(self, target: ast.expr, values: "dict[str, str]") -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                values.pop(node.id, None)

    def transfer(self, entry: CFGEntry, state: _ProvState) -> _ProvState:
        values = dict(state.locals)
        if isinstance(entry, ast.Assign):
            prov = self.provenance(entry.value, state)
            for target in entry.targets:
                if isinstance(target, ast.Name):
                    if prov is None:
                        values.pop(target.id, None)
                    else:
                        values[target.id] = prov
                else:
                    self._kill(target, values)
        elif isinstance(entry, ast.AnnAssign):
            if isinstance(entry.target, ast.Name):
                if _is_set_annotation(entry.annotation):
                    values[entry.target.id] = _UNORDERED
                elif entry.value is not None:
                    prov = self.provenance(entry.value, state)
                    if prov is None:
                        values.pop(entry.target.id, None)
                    else:
                        values[entry.target.id] = prov
        elif isinstance(entry, ast.AugAssign):
            self._kill(entry.target, values)
        elif isinstance(entry, (ast.For, ast.AsyncFor)):
            # Loop targets hold *elements*, not the collection.
            self._kill(entry.target, values)
        return _ProvState(values)


def _unordered_reason(
    iter_node: ast.expr, analysis: _ProvAnalysis, state: _ProvState
) -> Optional[str]:
    """Why iterating ``iter_node`` is order-hazardous, or None."""
    if isinstance(iter_node, ast.Name):
        known = state.locals.get(iter_node.id)
        if known == _ORDERED:
            return None
        if known == _UNORDERED:
            return f"local '{iter_node.id}' carrying set contents"
        if iter_node.id in analysis.set_names:
            return f"set-typed name '{iter_node.id}'"
        return None
    if isinstance(iter_node, ast.Attribute) and iter_node.attr in analysis.set_attrs:
        return f"set-typed attribute '.{iter_node.attr}'"
    if _is_set_expr(iter_node):
        return "set expression"
    if isinstance(iter_node, ast.Call):
        owner, attr = _call_name(iter_node.func)
        if attr == "keys" and owner is not None:
            # dict.keys() on the emission path: flagged so the
            # ordering contract (insertion order) is made explicit
            # with sorted() rather than relied on silently.
            return "dict .keys() view"
        if owner is None and attr in {"list", "tuple", "iter"} and iter_node.args:
            return _unordered_reason(iter_node.args[0], analysis, state)
    return None


@register
class NoUnsortedSetIterationOnEmissionPaths(Rule):
    """Flow-sensitive DET002: iteration order hazards on emission paths.

    Runs the ordered-provenance dataflow over every function in an
    emission context, so ``x = sorted(self.pending)`` followed by
    ``for m in x`` is proven clean (no allowlisting needed), while
    ``x = self.pending`` followed by ``for m in x`` is caught even
    though ``x`` itself is never annotated as a set.
    """

    rule_id = "DET002"
    title = "no unsorted set/dict-keys iteration where messages are emitted"

    def applies_to(self, module: str, config: "AnalysisConfig") -> bool:
        scope = config.scope_override.get(self.rule_id, config.det_scope)
        return any(
            module == prefix or module.startswith(prefix + ".") for prefix in scope
        )

    def check(self, mod: ModuleInfo, config: "AnalysisConfig") -> Iterator[Finding]:
        collector = _SetTypeCollector()
        collector.visit(mod.tree)
        set_attrs = collector.attrs | set(config.known_set_attrs)
        emission = set(config.emission_calls)
        findings: List[Finding] = []

        functions = iter_functions(mod.tree)
        # A function is in emission context when its own body (incl.
        # nested defs — ast.walk) emits, or any enclosing function does.
        emitting = {
            qual for qual, node, _cls in functions if _function_emits(node, emission)
        }

        for qualname, node, _cls in functions:
            active = qualname in emitting or any(
                qualname.startswith(parent + ".") for parent in emitting
            )
            if not active:
                continue
            analysis = _ProvAnalysis(collector.names, set_attrs)
            cfg = build_cfg(node)

            def visit(entry: CFGEntry, state: _ProvState) -> None:
                sites: List[Tuple[ast.expr, ast.AST]] = []
                if isinstance(entry, (ast.For, ast.AsyncFor)):
                    sites.append((entry.iter, entry))
                for sub in iter_child_expressions(entry):
                    if isinstance(
                        sub,
                        (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
                    ):
                        for gen in sub.generators:
                            sites.append((gen.iter, sub))
                for iter_node, anchor in sites:
                    # sorted(...) is the sanctioned ordering fence.
                    if isinstance(iter_node, ast.Call):
                        owner, attr = _call_name(iter_node.func)
                        if owner is None and attr == "sorted":
                            continue
                    reason = _unordered_reason(iter_node, analysis, state)
                    if reason is not None:
                        findings.append(
                            self.finding(
                                mod,
                                anchor,
                                f"iteration over {reason} in an emission "
                                f"context without sorted(...) — set order may "
                                f"leak into the event schedule",
                                qualname,
                            )
                        )

            analyze(cfg, analysis, visit)
        return iter(findings)


# ----------------------------------------------------------------------
# DET003 — ordering by id() / hash()
# ----------------------------------------------------------------------


def _references_identity(node: ast.expr) -> Optional[str]:
    """Return 'id' / 'hash' when the key expression uses either."""
    if isinstance(node, ast.Name) and node.id in {"id", "hash"}:
        return node.id
    if isinstance(node, ast.Lambda):
        for sub in ast.walk(node.body):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in {"id", "hash"}
            ):
                return sub.func.id
    return None


class _Det003Visitor(ContextVisitor):
    def __init__(self, rule: Rule, mod: ModuleInfo) -> None:
        super().__init__()
        self.rule = rule
        self.mod = mod
        self.findings: List[Finding] = []

    def visit_Call(self, node: ast.Call) -> None:
        owner, attr = _call_name(node.func)
        is_order_call = (owner is None and attr in {"sorted", "min", "max"}) or (
            attr == "sort" and owner is not None
        )
        if is_order_call:
            for kw in node.keywords:
                if kw.arg == "key":
                    ident = _references_identity(kw.value)
                    if ident is not None:
                        self.findings.append(
                            self.rule.finding(
                                self.mod,
                                node,
                                f"ordering by {ident}() is interpreter-run "
                                f"dependent — order by a stable protocol key "
                                f"(mid, pid, timestamp)",
                                self.context,
                            )
                        )
        self.generic_visit(node)


@register
class NoIdentityOrdering(Rule):
    rule_id = "DET003"
    title = "no ordering by id() or default hash()"

    def applies_to(self, module: str, config: "AnalysisConfig") -> bool:
        scope = config.scope_override.get(self.rule_id, config.det_scope)
        return any(
            module == prefix or module.startswith(prefix + ".") for prefix in scope
        )

    def check(self, mod: ModuleInfo, config: "AnalysisConfig") -> Iterator[Finding]:
        visitor = _Det003Visitor(self, mod)
        visitor.visit(mod.tree)
        return iter(visitor.findings)


# ----------------------------------------------------------------------
# DET004 — float equality on simulated timestamps
# ----------------------------------------------------------------------


class _Det004Visitor(ContextVisitor):
    def __init__(
        self,
        rule: Rule,
        mod: ModuleInfo,
        time_attrs: Set[str],
        time_names: Set[str],
    ) -> None:
        super().__init__()
        self.rule = rule
        self.mod = mod
        self.time_attrs = time_attrs
        self.time_names = time_names
        self.findings: List[Finding] = []

    def _is_time_operand(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Attribute) and node.attr in self.time_attrs:
            return f".{node.attr}"
        if isinstance(node, ast.Name) and node.id in self.time_names:
            return node.id
        return None

    def visit_Compare(self, node: ast.Compare) -> None:
        has_eq = any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops)
        if has_eq:
            for operand in [node.left, *node.comparators]:
                name = self._is_time_operand(operand)
                if name is not None:
                    self.findings.append(
                        self.rule.finding(
                            self.mod,
                            node,
                            f"float equality on simulated timestamp '{name}' — "
                            f"compare with <=/>= or an integer logical clock",
                            self.context,
                        )
                    )
                    break
        self.generic_visit(node)


@register
class NoFloatTimestampEquality(Rule):
    rule_id = "DET004"
    title = "no ==/!= on simulated wall-clock floats"

    def applies_to(self, module: str, config: "AnalysisConfig") -> bool:
        scope = config.scope_override.get(self.rule_id, config.det_scope)
        return any(
            module == prefix or module.startswith(prefix + ".") for prefix in scope
        )

    def check(self, mod: ModuleInfo, config: "AnalysisConfig") -> Iterator[Finding]:
        visitor = _Det004Visitor(
            self,
            mod,
            set(config.float_time_attrs),
            set(config.float_time_names),
        )
        visitor.visit(mod.tree)
        return iter(visitor.findings)
