"""Tests for the command-line experiment runner."""

import pytest

from repro.harness.cli import build_parser, main


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "primcast" in out
    assert "worst-case convoy" in out


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "WAN - distributed leaders" in out


def test_point_command(capsys):
    assert (
        main(
            [
                "point",
                "--protocol", "primcast",
                "--scenario", "lan",
                "--dests", "2",
                "--outstanding", "1",
                "--warmup", "20",
                "--measure", "40",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "primcast" in out
    assert "LAN" in out


def test_point_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        main(["point", "--protocol", "zab", "--scenario", "lan"])


def test_parser_has_all_commands():
    parser = build_parser()
    subactions = next(
        a for a in parser._actions if hasattr(a, "choices") and a.choices
    )
    assert set(subactions.choices) == {
        "table1", "table2", "figure2", "figure3", "figure4", "figure5", "point",
    }


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])


def test_figure_commands_accept_executor_flags():
    parser = build_parser()
    for figure in ("figure2", "figure3", "figure4", "figure5"):
        args = parser.parse_args(
            [figure, "--jobs", "4", "--no-cache", "--cache-dir", "/tmp/x"]
        )
        assert args.jobs == 4
        assert args.no_cache is True
        assert args.cache_dir == "/tmp/x"


def test_executor_flag_defaults_are_serial_with_cache():
    from repro.harness.cache import DEFAULT_CACHE_DIR

    args = build_parser().parse_args(["figure2"])
    assert args.jobs == 1
    assert args.no_cache is False
    assert args.cache_dir == DEFAULT_CACHE_DIR


def test_report_executor_aggregates_across_sweeps(capsys):
    # figure3/figure4 run one sweep per --dests entry through the same
    # executor; the report must cover all of them, not the final sweep
    from repro.harness.cli import _report_executor
    from repro.harness.parallel import SweepExecutor, expand_sweep
    from repro.workload.scenarios import lan_scenario

    specs = expand_sweep(
        ("primcast",), lan_scenario(2, 3), 2, (1, 2),
        seed=1, warmup_ms=20.0, measure_ms=40.0,
    )
    executor = SweepExecutor()
    executor.run(specs[:1])
    executor.run(specs[1:])
    _report_executor(executor)
    out = capsys.readouterr().out
    assert "[2 points: 0 cached, 2 simulated, jobs=1]" in out


def test_no_cache_builds_cacheless_executor(tmp_path):
    from repro.harness.cli import _executor

    args = build_parser().parse_args(
        ["figure2", "--jobs", "2", "--no-cache", "--cache-dir", str(tmp_path / "c")]
    )
    executor = _executor(args)
    assert executor.jobs == 2
    assert executor.cache is None
    # and with caching on, the executor carries a ResultCache at the dir
    args = build_parser().parse_args(["figure2", "--cache-dir", str(tmp_path / "c")])
    executor = _executor(args)
    assert executor.cache is not None
    assert str(executor.cache.root) == str(tmp_path / "c")
