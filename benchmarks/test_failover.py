"""Failover bench — primary change under load (Algorithm 3).

Not a paper figure (the evaluation runs failure-free), but the paper's
contribution hinges on remaining safe and live across primary changes,
so we measure it: a steady 2-destination workload runs while group 0's
primary crashes; we report delivery-gap duration at group 0 and verify
ordering afterwards.
"""

from repro.core import uniform_groups
from repro.core.process import PrimCastProcess
from repro.election.omega import make_oracles
from repro.harness.report import format_table
from repro.sim import ConstantLatency, FailureInjector, Network, Scheduler, child_rng
from repro.verify import check_acyclic_order, check_timestamp_order

DELTA = 1.0
POLL = 5.0
CRASH_AT = 50.0


def run_failover():
    config = uniform_groups(2, 3)
    sched = Scheduler()
    net = Network(sched, ConstantLatency(DELTA), child_rng(2, "failover"))
    procs = {
        pid: PrimCastProcess(pid, config, sched, net) for pid in config.all_pids
    }
    oracles = make_oracles(config.groups, procs, sched, POLL)
    for pid, p in procs.items():
        p.omega = oracles[config.group_of[pid]]
        p.omega.subscribe(p._on_omega_output)
    injector = FailureInjector(sched, procs)
    logs = {pid: [] for pid in procs}
    for pid, p in procs.items():
        p.add_deliver_hook(
            lambda proc, m, ts: logs[proc.pid].append((m.mid, ts, sched.now))
        )

    # Steady workload: one multicast to {0, 1} every 1 ms from p4.
    def issue(i=0):
        if i < 150:
            procs[4].a_multicast({0, 1})
            sched.call_after(1.0, issue, i + 1)

    sched.call_at(0.0, issue)
    injector.crash_at(0, CRASH_AT)
    sched.run(until=1000)

    # Delivery gap at a group-0 survivor around the crash.
    times = sorted(t for _, _, t in logs[1])
    gaps = [(b - a, a) for a, b in zip(times, times[1:])]
    max_gap, gap_start = max(gaps)
    return logs, max_gap, gap_start


def test_failover_under_load(benchmark):
    logs, max_gap, gap_start = benchmark.pedantic(
        run_failover, rounds=1, iterations=1
    )
    correct = [pid for pid in logs if pid != 0]
    counts = {pid: len(logs[pid]) for pid in correct}
    print("\n== Failover: primary of group 0 crashes at t=50ms under load ==")
    print(
        format_table(
            ["metric", "value"],
            [
                ["messages issued", 150],
                ["delivered at each survivor", sorted(set(counts.values()))],
                ["max delivery gap (ms)", f"{max_gap:.1f}"],
                ["gap start (ms)", f"{gap_start:.1f}"],
                ["detection + epoch change budget (ms)", f"{POLL + 6 * DELTA:.1f}"],
            ],
        )
    )

    # All 150 messages delivered by every correct destination.
    assert all(c == 150 for c in counts.values())
    check_acyclic_order({pid: logs[pid] for pid in correct})
    check_timestamp_order({pid: logs[pid] for pid in correct})
    # The outage is bounded by detection (poll) + epoch change + catch-up.
    assert gap_start >= CRASH_AT - 10 * DELTA
    assert max_gap < POLL + 20 * DELTA
