"""RACE2xx — concurrency-hazard rules for the coming ``repro.net`` port.

Under the deterministic simulator every handler runs to completion, so
the protocol core has never had to *prove* its mutations are serialised
— the scheduler guaranteed it. Moving ``PrimCastProcess`` onto a real
asyncio transport (the ROADMAP's open item) removes that guarantee in
three specific ways, one rule each:

* **RACE201** — shared protocol state mutated from a public, non-handler
  method. Handlers (``on_*``) and reviewed scheduler entry points run on
  the event loop; anything else is callable from arbitrary threads/tasks
  and would race the handlers.
* **RACE202** — protocol variables (Algorithm 1's ``clock`` / ``e_cur``
  / ``e_prom``) mutated *after* a send on the same control-flow path.
  The paper's pseudocode always establishes state before emitting (the
  ack carries the clock it was stamped with); a write-after-send means
  the wire message and the local state can disagree if the continuation
  is delayed or dies — the classic crash-recovery divergence.
* **RACE203** — an epoch variable read before an ``await``/``yield`` and
  used after it without re-reading. A suspension point can admit an
  epoch change (Algorithm 3 runs concurrently), so the cached value is
  stale; the fix is to re-read ``self.e_cur`` after resuming (comparing
  the stale copy against a fresh read *is* the sanctioned re-validation
  idiom and does not fire).

RACE202/203 are flow-sensitive: they run the forward dataflow engine of
:mod:`repro.analysis.dataflow` over each function's CFG, with the
call-summary layer (:mod:`repro.analysis.effects`) resolving what a
``self._propose(...)`` call sends and writes transitively.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .base import Finding, ModuleInfo, Rule, register
from .cfg import (
    CFGEntry,
    FunctionNode,
    build_cfg,
    iter_child_expressions,
    iter_functions,
)
from .config import AnalysisConfig
from .dataflow import ForwardAnalysis, analyze
from .effects import ModuleEffects, compute_module_effects


def _is_handler(name: str, config: AnalysisConfig) -> bool:
    return any(name.startswith(prefix) for prefix in config.handler_prefixes)


def _self_attr(node: ast.AST) -> Optional[str]:
    """``self.x`` -> ``x`` (bare-self attribute access only)."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _store_targets(entry: CFGEntry) -> List[Tuple[str, ast.AST]]:
    """Bare-self attributes stored to by this entry (any mutation shape:
    assignment, item/slice store, ``del``)."""
    out: List[Tuple[str, ast.AST]] = []

    def record(target: ast.expr) -> None:
        while isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                record(elt)
        elif isinstance(target, ast.Starred):
            record(target.value)
        else:
            attr = _self_attr(target)
            if attr is not None:
                out.append((attr, target))

    if isinstance(entry, ast.Assign):
        for target in entry.targets:
            record(target)
    elif isinstance(entry, ast.AugAssign):
        record(entry.target)
    elif isinstance(entry, ast.AnnAssign) and entry.value is not None:
        record(entry.target)
    elif isinstance(entry, ast.Delete):
        for target in entry.targets:
            record(target)
    return out


def _entry_calls(entry: CFGEntry) -> List[ast.Call]:
    """Call nodes inside one CFG entry (nested scopes excluded)."""
    return [
        node for node in iter_child_expressions(entry) if isinstance(node, ast.Call)
    ]


def _call_writes(
    call: ast.Call, config: AnalysisConfig, effects: ModuleEffects, class_name: str
) -> Set[str]:
    """Bare-self attributes a call mutates: mutator methods on
    ``self.x``, mutating free functions on ``self.x``, and transitive
    writes of ``self.method()`` calls resolved through the summaries."""
    writes: Set[str] = set()
    func = call.func
    if isinstance(func, ast.Attribute):
        receiver_attr = _self_attr(func.value)
        if receiver_attr is not None and func.attr in config.mutator_methods:
            writes.add(receiver_attr)
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            callee = effects.method(class_name, func.attr)
            if callee is not None:
                writes.update(callee.effects.writes)
        if func.attr in config.mutating_funcs and call.args:
            arg_attr = _self_attr(call.args[0])
            if arg_attr is not None:
                writes.add(arg_attr)
    elif isinstance(func, ast.Name):
        if func.id in config.mutating_funcs and call.args:
            arg_attr = _self_attr(call.args[0])
            if arg_attr is not None:
                writes.add(arg_attr)
    return writes


def _call_sends(
    call: ast.Call, config: AnalysisConfig, effects: ModuleEffects, class_name: str
) -> bool:
    """True when this call emits a message, directly (an emission
    primitive) or transitively (a self-method whose summary sends)."""
    func = call.func
    if isinstance(func, ast.Attribute):
        if func.attr in config.emission_calls:
            return True
        if isinstance(func.value, ast.Name) and func.value.id == "self":
            callee = effects.method(class_name, func.attr)
            if callee is not None and callee.effects.sends:
                return True
        return False
    if isinstance(func, ast.Name):
        return func.id in config.emission_calls
    return False


def _process_like_classes(
    effects: ModuleEffects, config: AnalysisConfig
) -> Set[str]:
    """Classes that participate in message dispatch: they define handler
    methods (``on_*`` / ``handle_*``) or bind an r-deliver dispatch
    table. Only their state is *process* state — helper containers
    (delivery queues, spec recorders) own their attributes outright and
    are reached exclusively from handler context."""
    out: Set[str] = set()
    dispatch = set(config.dispatch_attrs)
    for class_name, methods in effects.by_class.items():
        if any(_is_handler(name, config) for name in methods):
            out.add(class_name)
            continue
        if any(dispatch & info.direct.writes for info in methods.values()):
            out.add(class_name)
    return out


class _RaceRule(Rule):
    """Shared scoping: RACE rules run over the configured race scope."""

    def applies_to(self, module: str, config: AnalysisConfig) -> bool:
        scope = config.scope_override.get(self.rule_id, config.race_scope)
        return any(
            module == prefix or module.startswith(prefix + ".") for prefix in scope
        )


@register
class Race201SharedStateOutsideScheduler(_RaceRule):
    """Shared protocol state must only be mutated from scheduler context.

    A *public* method (no leading underscore) of a process class that is
    neither a handler (``on_*`` / ``handle_*``) nor a reviewed scheduler
    entry point (``AnalysisConfig.scheduler_context_api``), yet
    transitively writes one of the shared protocol attributes, is a
    latent race once handlers run on a real event loop: nothing stops an
    application thread from calling it mid-handler. Private helpers are
    exempt — they are only reachable *from* handler context.
    """

    rule_id = "RACE201"
    title = "shared protocol state mutated outside scheduler/handler context"
    default_severity = "error"

    def check(self, mod: ModuleInfo, config: AnalysisConfig) -> Iterator[Finding]:
        shared = set(config.race_shared_attrs)
        effects = compute_module_effects(mod, config)
        process_classes = _process_like_classes(effects, config)
        for info in effects.functions.values():
            if info.class_name not in process_classes:
                continue
            method = info.qualname.rsplit(".", 1)[-1]
            if method.startswith("_") or _is_handler(method, config):
                continue
            if config.is_scheduler_context(mod.module, info.class_name, method):
                continue
            written = sorted(shared & info.effects.writes)
            if written:
                yield self.finding(
                    mod,
                    info.node,
                    f"public method {method!r} mutates shared protocol state "
                    f"({', '.join(written)}) outside scheduler/handler context; "
                    "make it a handler, post it onto the scheduler, or review "
                    "it into scheduler_context_api",
                    context=info.qualname,
                )


class _SentState:
    """Lattice element of the RACE202 may-have-sent analysis."""

    __slots__ = ("sent",)

    def __init__(self, sent: bool) -> None:
        self.sent = sent

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _SentState) and other.sent == self.sent

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(self.sent)


class _SentAnalysis(ForwardAnalysis[_SentState]):
    def __init__(
        self, config: AnalysisConfig, effects: ModuleEffects, class_name: str
    ) -> None:
        self.config = config
        self.effects = effects
        self.class_name = class_name

    def initial(self) -> _SentState:
        return _SentState(False)

    def bottom(self) -> _SentState:
        return _SentState(False)

    def join(self, a: _SentState, b: _SentState) -> _SentState:
        return _SentState(a.sent or b.sent)

    def transfer(self, entry: CFGEntry, state: _SentState) -> _SentState:
        if state.sent:
            return state
        for call in _entry_calls(entry):
            if _call_sends(call, self.config, self.effects, self.class_name):
                return _SentState(True)
        return state


@register
class Race202WriteAfterSend(_RaceRule):
    """Protocol variables must not change after a send on the same path.

    The pseudocode's emissions always capture already-final state (the
    ack of line 42 carries the clock it was stamped with). If a path
    sends and *then* mutates ``clock`` / ``e_cur`` / ``e_prom``, the
    emitted message and the sender's state can diverge whenever the
    continuation is delayed, interleaved, or lost to a crash — invisible
    under the run-to-completion simulator, real under asyncio.
    """

    rule_id = "RACE202"
    title = "protocol variable mutated after a send on the same path"
    default_severity = "error"

    def check(self, mod: ModuleInfo, config: AnalysisConfig) -> Iterator[Finding]:
        protocol_attrs = set(config.state_conformance)
        effects = compute_module_effects(mod, config)
        findings: List[Finding] = []
        for info in effects.functions.values():
            if info.class_name is None:
                continue
            class_name = info.class_name
            analysis = _SentAnalysis(config, effects, class_name)
            cfg = build_cfg(info.node)

            def visit(entry: CFGEntry, state: _SentState) -> None:
                if not state.sent:
                    return
                hits: Dict[str, ast.AST] = {}
                for attr, node in _store_targets(entry):
                    if attr in protocol_attrs:
                        hits.setdefault(attr, node)
                for call in _entry_calls(entry):
                    written = _call_writes(call, config, effects, class_name)
                    for attr in sorted(written & protocol_attrs):
                        hits.setdefault(attr, call)
                for attr in sorted(hits):
                    findings.append(
                        self.finding(
                            mod,
                            hits[attr],
                            f"{attr!r} mutated after a send on the same path; "
                            "emitted messages must carry final state — mutate "
                            "first, send last",
                            context=info.qualname,
                        )
                    )

            analyze(cfg, analysis, visit)
        return iter(findings)


#: RACE203 per-local provenance values.
_FRESH = "fresh"  # holds a current copy of an epoch variable
_STALE = "stale"  # copy taken before a suspension point


class _EpochState:
    """Map of local name -> provenance; absent locals are unrelated."""

    __slots__ = ("locals",)

    def __init__(self, values: Dict[str, str]) -> None:
        self.locals = values

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _EpochState) and other.locals == self.locals

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash(tuple(sorted(self.locals.items())))


class _EpochAnalysis(ForwardAnalysis[_EpochState]):
    def __init__(self, config: AnalysisConfig) -> None:
        self.guard_attrs = set(config.epoch_guard_attrs)

    def initial(self) -> _EpochState:
        return _EpochState({})

    def bottom(self) -> _EpochState:
        return _EpochState({})

    def join(self, a: _EpochState, b: _EpochState) -> _EpochState:
        merged = dict(a.locals)
        for name, value in b.locals.items():
            if merged.get(name) == _STALE or value == _STALE:
                merged[name] = _STALE
            else:
                merged[name] = value
        return _EpochState(merged)

    def _suspends(self, entry: CFGEntry) -> bool:
        return any(
            isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom))
            for node in iter_child_expressions(entry)
        )

    def _captures(self, value: ast.expr) -> bool:
        attr = _self_attr(value)
        return attr is not None and attr in self.guard_attrs

    def _rereads(self, entry: CFGEntry) -> bool:
        return any(
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.guard_attrs
            for node in iter_child_expressions(entry)
        )

    def transfer(self, entry: CFGEntry, state: _EpochState) -> _EpochState:
        values = dict(state.locals)
        if isinstance(entry, ast.Assign) and len(entry.targets) == 1:
            target = entry.targets[0]
            if isinstance(target, ast.Name):
                if self._captures(entry.value):
                    values[target.id] = _FRESH
                else:
                    values.pop(target.id, None)
        elif isinstance(entry, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(entry.target, ast.Name):
                values.pop(entry.target.id, None)
        elif isinstance(entry, (ast.For, ast.AsyncFor)):
            if isinstance(entry.target, ast.Name):
                values.pop(entry.target.id, None)
        # A fresh read of the attribute re-validates cached copies for
        # everything downstream (the ``if epoch != self.e_cur: return``
        # guard idiom) — copies go fresh first, stale again if the same
        # statement also suspends.
        if self._rereads(entry):
            values = {
                name: (_FRESH if v == _STALE else v) for name, v in values.items()
            }
        if self._suspends(entry):
            values = {name: _STALE for name in values}
        return _EpochState(values)


@register
class Race203StaleEpochRead(_RaceRule):
    """Epoch reads must be re-validated after a suspension point.

    A local copy of ``self.e_cur`` / ``self.e_prom`` taken before an
    ``await``/``yield`` may be stale afterwards (Algorithm 3 can advance
    the epoch while the coroutine is parked). Any use of the stale copy
    fires — except in a statement that also re-reads the attribute,
    which is exactly the ``if cached != self.e_cur: return`` /
    ``epoch = self.e_cur`` re-validation idiom.
    """

    rule_id = "RACE203"
    title = "epoch variable read across a suspension point without re-validation"
    default_severity = "error"

    def check(self, mod: ModuleInfo, config: AnalysisConfig) -> Iterator[Finding]:
        guard_attrs = set(config.epoch_guard_attrs)
        findings: List[Finding] = []
        for qualname, node, _class_name in iter_functions(mod.tree):
            if not self._may_suspend(node):
                continue
            analysis = _EpochAnalysis(config)
            cfg = build_cfg(node)

            def visit(entry: CFGEntry, state: _EpochState) -> None:
                stale = {
                    name for name, v in state.locals.items() if v == _STALE
                }
                if not stale:
                    return
                nodes = iter_child_expressions(entry)
                revalidates = any(
                    (attr := _self_attr(n)) is not None and attr in guard_attrs
                    for n in nodes
                )
                if revalidates:
                    return
                for n in nodes:
                    if (
                        isinstance(n, ast.Name)
                        and isinstance(n.ctx, ast.Load)
                        and n.id in stale
                    ):
                        findings.append(
                            self.finding(
                                mod,
                                n,
                                f"{n.id!r} caches an epoch variable from before "
                                "a suspension point; re-read self.e_cur/"
                                "self.e_prom after resuming (or compare against "
                                "a fresh read) before acting on it",
                                context=qualname,
                            )
                        )

            analyze(cfg, analysis, visit)
        return iter(findings)

    @staticmethod
    def _may_suspend(node: FunctionNode) -> bool:
        """Cheap pre-filter: only functions containing a suspension
        point can go stale."""
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Await, ast.Yield, ast.YieldFrom)):
                return True
        return False
