"""Per-function effect signatures over protocol state.

The paper's correctness argument (§2.2, Algorithms 1–3) assigns every
mutation of the protocol variables to a specific pseudocode line; this
module computes the machine-checkable counterpart: for every function in
a module, *which* ``self`` attributes it reads and writes, whether it
emits messages, whether it suspends (``await`` / ``yield``), and which
attributes it mutates on objects *other than* ``self`` (the shape a
monitor poking a process's state would have).

Summaries are transitive over the intra-class (and intra-module
free-function) call graph: ``_on_ack`` calling ``self._propose`` inherits
``_propose``'s write of ``clock`` and ``_send_ack``'s send effect. Calls
that cannot be resolved inside the module (methods of other objects,
imported functions) contribute nothing — the RACE/EFF rules are scoped
so that every effect they reason about is produced in the module that
owns the state, which is exactly the discipline PROTO103 already
enforces for the Algorithm 1 variables.

Writes are detected through every mutation shape the protocol core
uses: plain/augmented/annotated assignment to ``self.x``, item
assignment/deletion ``self.x[k]``, slice deletion ``del self.x[:n]``,
mutator method calls ``self.x.append(...)`` (see
``AnalysisConfig.mutator_methods``) and mutating free functions applied
to an attribute (``heapq.heappush(self.x, ...)``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Set, Tuple

from .base import ModuleInfo
from .cfg import FunctionNode, iter_functions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .config import AnalysisConfig


@dataclass(frozen=True)
class Effects:
    """The effect signature of one function (direct or transitive)."""

    #: ``self`` attributes written (any mutation shape).
    writes: FrozenSet[str]
    #: ``self`` attributes read.
    reads: FrozenSet[str]
    #: attributes mutated through a receiver other than bare ``self``
    #: (``proc.clock = …``, ``self.proc.pending.add(…)``).
    foreign_writes: FrozenSet[str]
    #: calls an emission primitive (``AnalysisConfig.emission_calls``).
    sends: bool
    #: contains an ``await`` / ``yield`` — a scheduling point.
    awaits: bool

    def union(self, other: "Effects") -> "Effects":
        return Effects(
            writes=self.writes | other.writes,
            reads=self.reads | other.reads,
            foreign_writes=self.foreign_writes | other.foreign_writes,
            sends=self.sends or other.sends,
            awaits=self.awaits or other.awaits,
        )


EMPTY_EFFECTS = Effects(frozenset(), frozenset(), frozenset(), False, False)


@dataclass
class FunctionEffects:
    """Summary record for one function in a module."""

    qualname: str
    node: FunctionNode
    class_name: Optional[str]
    direct: Effects
    #: names invoked as ``self.<name>(…)`` (resolved within the class).
    self_calls: FrozenSet[str]
    #: bare names invoked as ``<name>(…)`` (resolved to free functions).
    local_calls: FrozenSet[str]
    #: transitive effects after the call-summary fixpoint.
    effects: Effects


class ModuleEffects:
    """All function summaries of one module, call-graph closed."""

    def __init__(self, functions: Dict[str, FunctionEffects]) -> None:
        self.functions = functions
        self.by_class: Dict[str, Dict[str, FunctionEffects]] = {}
        for info in functions.values():
            if info.class_name is not None:
                method = info.qualname.rsplit(".", 1)[-1]
                self.by_class.setdefault(info.class_name, {})[method] = info

    def method(self, class_name: str, name: str) -> Optional[FunctionEffects]:
        return self.by_class.get(class_name, {}).get(name)

    def call_effects(self, caller: FunctionEffects, name: str) -> Effects:
        """Transitive effects of ``self.<name>()`` / ``<name>()`` as seen
        from ``caller``; empty when the callee is not resolvable."""
        if caller.class_name is not None:
            callee = self.method(caller.class_name, name)
            if callee is not None:
                return callee.effects
        free = self.functions.get(name)
        if free is not None and free.class_name is None:
            return free.effects
        return EMPTY_EFFECTS


def _attr_chain(node: ast.expr) -> Optional[List[str]]:
    """``self.a.b`` -> ["self", "a", "b"]; None for non-name-rooted."""
    parts: List[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        parts.reverse()
        return parts
    return None


class _EffectVisitor(ast.NodeVisitor):
    """Direct (non-transitive) effects of one function body."""

    def __init__(self, config: "AnalysisConfig") -> None:
        self.config = config
        self.writes: Set[str] = set()
        self.reads: Set[str] = set()
        self.foreign_writes: Set[str] = set()
        self.sends = False
        self.awaits = False
        self.self_calls: Set[str] = set()
        self.local_calls: Set[str] = set()

    # -- nested scopes are opaque --------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    # -- suspension points ---------------------------------------------

    def visit_Await(self, node: ast.Await) -> None:
        self.awaits = True
        self.generic_visit(node)

    def visit_Yield(self, node: ast.Yield) -> None:
        self.awaits = True
        self.generic_visit(node)

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.awaits = True
        self.generic_visit(node)

    # -- stores --------------------------------------------------------

    def _record_store(self, target: ast.expr) -> None:
        # Unwrap item/slice stores: ``self.x[k] = v`` mutates ``x``.
        while isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._record_store(elt)
            return
        if isinstance(target, ast.Starred):
            self._record_store(target.value)
            return
        if not isinstance(target, ast.Attribute):
            return
        chain = _attr_chain(target)
        if chain is None:
            # Attribute of a call/subscript result: the mutated object
            # is anonymous; record nothing (cannot name the state).
            return
        if chain[0] == "self" and len(chain) == 2:
            self.writes.add(chain[1])
        else:
            self.foreign_writes.add(chain[-1])

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_store(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._record_store(target)
        self.generic_visit(node)

    # -- reads ---------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            self.reads.add(node.attr)
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            chain = _attr_chain(func)
            method = func.attr
            if method in self.config.emission_calls:
                self.sends = True
            if chain is not None and chain[0] == "self":
                if len(chain) == 2:
                    self.self_calls.add(method)
                elif method in self.config.mutator_methods:
                    # ``self.x.append(…)`` mutates ``self.x``;
                    # ``self.proc.pending.add(…)`` mutates foreign state.
                    if len(chain) == 3:
                        self.writes.add(chain[1])
                    else:
                        self.foreign_writes.add(chain[-2])
            elif chain is not None and method in self.config.mutator_methods:
                # ``proc.t_list.append(…)`` / ``queue.push(…)`` style.
                if len(chain) >= 3:
                    self.foreign_writes.add(chain[-2])
            # Mutating free functions reached via module attribute
            # (``heapq.heappush(self.x, …)``).
            if method in self.config.mutating_funcs and node.args:
                self._record_mutating_arg(node.args[0])
        elif isinstance(func, ast.Name):
            if func.id in self.config.emission_calls:
                self.sends = True
            if func.id in self.config.mutating_funcs and node.args:
                self._record_mutating_arg(node.args[0])
            self.local_calls.add(func.id)
        self.generic_visit(node)

    def _record_mutating_arg(self, arg: ast.expr) -> None:
        chain = _attr_chain(arg)
        if chain is None:
            return
        if chain[0] == "self" and len(chain) == 2:
            self.writes.add(chain[1])
        elif len(chain) >= 2:
            self.foreign_writes.add(chain[-1])


def _direct_effects(
    fn: FunctionNode, config: "AnalysisConfig"
) -> Tuple[Effects, FrozenSet[str], FrozenSet[str]]:
    visitor = _EffectVisitor(config)
    for stmt in fn.body:
        visitor.visit(stmt)
    effects = Effects(
        writes=frozenset(visitor.writes),
        reads=frozenset(visitor.reads),
        foreign_writes=frozenset(visitor.foreign_writes),
        sends=visitor.sends,
        awaits=visitor.awaits,
    )
    return effects, frozenset(visitor.self_calls), frozenset(visitor.local_calls)


#: Memo of the last computed modules, keyed by tree identity. The engine
#: runs five RACE/EFF rules over the same parsed module; one summary
#: computation serves them all. Bounded: entries are evicted FIFO.
_MEMO: Dict[int, Tuple[ast.Module, int, ModuleEffects]] = {}
_MEMO_LIMIT = 8


def compute_module_effects(
    mod: ModuleInfo, config: "AnalysisConfig"
) -> ModuleEffects:
    """Call-graph-closed effect summaries for every function in ``mod``."""
    memo_key = id(mod.tree)
    cached = _MEMO.get(memo_key)
    if cached is not None and cached[0] is mod.tree and cached[1] == id(config):
        return cached[2]

    functions: Dict[str, FunctionEffects] = {}
    for qualname, node, class_name in iter_functions(mod.tree):
        direct, self_calls, local_calls = _direct_effects(node, config)
        functions[qualname] = FunctionEffects(
            qualname=qualname,
            node=node,
            class_name=class_name,
            direct=direct,
            self_calls=self_calls,
            local_calls=local_calls,
            effects=direct,
        )

    module = ModuleEffects(functions)

    # Transitive closure over resolvable calls: iterate to fixpoint.
    # Effects only grow and the universe of attribute names is finite,
    # so this terminates in call-graph-depth passes.
    changed = True
    while changed:
        changed = False
        for info in functions.values():
            acc = info.direct
            for name in sorted(info.self_calls):
                acc = acc.union(module.call_effects(info, name))
            for name in sorted(info.local_calls):
                callee = functions.get(name)
                if callee is not None and callee.class_name is None:
                    acc = acc.union(callee.effects)
            if acc != info.effects:
                info.effects = acc
                changed = True

    while len(_MEMO) >= _MEMO_LIMIT:
        _MEMO.pop(next(iter(_MEMO)))
    _MEMO[memo_key] = (mod.tree, id(config), module)
    return module
