"""Direct tests of the literal-spec predicate implementations."""

import pytest

from helpers import MiniSystem
from repro.core.epoch import Epoch
from repro.core.messages import Ack, Bump, Multicast, Start
from repro.core.spec import SpecRecorder, attach_spec_recorder


@pytest.fixture
def setup():
    sys_ = MiniSystem(n_groups=2)
    rec = SpecRecorder(sys_.processes[1])  # follower of group 0
    return sys_, rec


def m(mid=(9, 0), dest=(0, 1)):
    return Multicast(mid, frozenset(dest))


class TestMinClock:
    def test_counts_own_group_acks(self, setup):
        sys_, rec = setup
        e = Epoch(0, 0)
        rec.record(0, Ack(m(), 0, e, 5, 0))
        assert rec.min_clock(sys_.config, e, 0) == 5

    def test_ignores_remote_group_acks(self, setup):
        sys_, rec = setup
        e = Epoch(0, 0)
        rec.record(3, Ack(m(), 1, Epoch(0, 3), 9, 3))
        assert rec.min_clock(sys_.config, e, 3) == 0

    def test_counts_bumps(self, setup):
        sys_, rec = setup
        e = Epoch(0, 0)
        rec.record(2, Bump(e, 7, 2))
        assert rec.min_clock(sys_.config, e, 2) == 7

    def test_ignores_tuples_above_e_cur(self, setup):
        """Line 15's filter: a promise to a higher epoch removes the
        sender's influence on lower-epoch quorum-clock values."""
        sys_, rec = setup
        e0, e1 = Epoch(0, 0), Epoch(1, 2)
        rec.record(2, Bump(e1, 9, 2))
        assert rec.min_clock(sys_.config, e0, 2) == 0
        assert rec.min_clock(sys_.config, e1, 2) == 9

    def test_takes_max_over_tuples(self, setup):
        sys_, rec = setup
        e = Epoch(0, 0)
        rec.record(0, Ack(m((9, 0)), 0, e, 3, 0))
        rec.record(0, Ack(m((9, 1)), 0, e, 8, 0))
        rec.record(0, Bump(e, 5, 0))
        assert rec.min_clock(sys_.config, e, 0) == 8


class TestQuorumClock:
    def test_paper_example(self):
        """§5.2.3's example: clocks {1,2,3,4,5} in a 5-group, majority
        quorums -> quorum-clock = 3."""
        sys_ = MiniSystem(n_groups=1, group_size=5)
        rec = SpecRecorder(sys_.processes[0])
        e = Epoch(0, 0)
        for pid, ts in zip(range(5), (1, 2, 3, 4, 5)):
            rec.record(pid, Bump(e, ts, pid))
        assert rec.quorum_clock(sys_.config, e) == 3

    def test_empty_m_gives_zero(self, setup):
        sys_, rec = setup
        assert rec.quorum_clock(sys_.config, Epoch(0, 0)) == 0


class TestFinalTs:
    def test_needs_all_groups(self, setup):
        sys_, rec = setup
        e = Epoch(0, 0)
        mc = m()
        rec.record(0, Ack(mc, 0, e, 2, 0))
        rec.record(1, Ack(mc, 0, e, 2, 1))
        assert rec.final_ts(sys_.config, mc.mid) is None  # group 1 missing
        rec.record(3, Ack(mc, 1, Epoch(0, 3), 6, 3))
        rec.record(4, Ack(mc, 1, Epoch(0, 3), 6, 4))
        assert rec.final_ts(sys_.config, mc.mid) == 6

    def test_unknown_message_is_none(self, setup):
        sys_, rec = setup
        assert rec.final_ts(sys_.config, ("nope", 0)) is None


class TestRecorderWiring:
    def test_attach_records_starts(self):
        sys_ = MiniSystem(n_groups=2)
        rec = attach_spec_recorder(sys_.processes[2])
        mc = sys_.multicast(4, {0, 1})
        sys_.run_to_quiescence()
        assert mc.mid in rec.starts
        assert any(t[1] == mc.mid for t in rec.acks)

    def test_remote_ack_adds_start_tuple(self, setup):
        sys_, rec = setup
        mc = m()
        rec.record(3, Ack(mc, 1, Epoch(0, 3), 1, 3))
        assert mc.mid in rec.starts  # line 47
        rec2 = SpecRecorder(sys_.processes[1])
        rec2.record(0, Ack(mc, 0, Epoch(0, 0), 1, 0))
        assert mc.mid not in rec2.starts  # own-group ack: line 41 only
