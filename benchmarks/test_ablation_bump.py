"""Ablation — bump messages (§5.2.5, Figure 1's example).

The paper motivates bump messages with an example: without them,
``quorum-clock()`` at a destination stays below a message's final
timestamp whenever that timestamp comes from a *remote* group, and the
message can never be delivered. This bench disables bump emission and
shows exactly that: local messages still flow, but a global message
whose final timestamp originates remotely stalls forever.
"""

from repro.core.config import uniform_groups
from repro.core.process import PrimCastProcess
from repro.sim import ConstantLatency, Network, Scheduler, child_rng
from repro.harness.report import format_table


def run_case(enable_bumps: bool):
    config = uniform_groups(2, 3)
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(1, "ablate"))
    procs = {
        pid: PrimCastProcess(
            pid, config, sched, net, enable_bumps=enable_bumps
        )
        for pid in config.all_pids
    }
    deliveries = {pid: [] for pid in procs}
    for pid, p in procs.items():
        p.add_deliver_hook(
            lambda proc, m, ts: deliveries[proc.pid].append((m.mid, sched.now))
        )
    # Raise group 1's clock so the global message's final timestamp comes
    # from the remote group (from group 0's perspective).
    for _ in range(3):
        procs[3].a_multicast({1})
    sched.run(until=50)
    m = procs[4].a_multicast({0, 1}, payload="global")
    sched.run(until=500)
    delivered_at_g0 = [t for mid, t in deliveries[1] if mid == m.mid]
    delivered_at_g1 = [t for mid, t in deliveries[4] if mid == m.mid]
    return delivered_at_g0, delivered_at_g1, net.counts_by_kind.get("bump", 0)


def test_bump_ablation(benchmark):
    with_g0, with_g1, bumps_on = run_case(enable_bumps=True)
    without_g0, without_g1, bumps_off = benchmark.pedantic(
        run_case, args=(False,), rounds=1, iterations=1
    )

    rows = [
        ["with bumps", "yes" if with_g0 else "STALLED", "yes" if with_g1 else "STALLED", bumps_on],
        ["without bumps", "yes" if without_g0 else "STALLED", "yes" if without_g1 else "STALLED", bumps_off],
    ]
    print("\n== Ablation: bump messages (global msg, final ts from remote group) ==")
    print(format_table(["variant", "delivered at g0", "delivered at g1", "bump msgs"], rows))

    # With bumps: delivered at both groups.
    assert with_g0 and with_g1
    assert bumps_on > 0
    # Without bumps: group 0 (which needs quorum-clock to pass the
    # remote timestamp) stalls forever; no bump traffic exists.
    assert not without_g0
    assert bumps_off == 0
