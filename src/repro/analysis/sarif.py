"""SARIF 2.1.0 emission for the analysis findings.

One run, one tool (``repro.analysis``), one rule descriptor per
registered rule, one result per finding. The shape follows the OASIS
SARIF 2.1.0 schema closely enough for GitHub code scanning ingestion:

* ``level`` maps ``error`` -> ``error`` and everything else ->
  ``warning``;
* ``physicalLocation`` uses 1-based lines (already 1-based in the AST)
  and 1-based columns (AST columns are 0-based, hence the ``+ 1``);
* ``ruleIndex`` points into the ``tool.driver.rules`` array so viewers
  can resolve titles without a join.

The output is deterministic: rules are sorted by id, results arrive in
the engine's sorted order, and ``json.dumps`` preserves dict insertion
order.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

from .base import Finding, Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "repro.analysis"
_INFO_URI = "https://github.com/primcast-repro"  # repo landing page


def _level_for(severity: str) -> str:
    return "error" if severity == "error" else "warning"


def sarif_report(
    findings: Sequence[Finding], rules: Mapping[str, Rule]
) -> Dict[str, Any]:
    """Build the complete SARIF 2.1.0 log object (JSON-serialisable)."""
    rule_ids = sorted(rules)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    descriptors: List[Dict[str, Any]] = [
        {
            "id": rule_id,
            "name": type(rules[rule_id]).__name__,
            "shortDescription": {"text": rules[rule_id].title},
            "defaultConfiguration": {
                "level": _level_for(rules[rule_id].default_severity)
            },
        }
        for rule_id in rule_ids
    ]

    results: List[Dict[str, Any]] = []
    for finding in findings:
        result: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": _level_for(finding.severity),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        if finding.context:
            # logicalLocations carries the module::qualname context the
            # allowlist keys on — reviewers suppress from the report.
            result["locations"][0]["logicalLocations"] = [
                {"fullyQualifiedName": finding.context}
            ]
        results.append(result)

    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": _INFO_URI,
                        "rules": descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
