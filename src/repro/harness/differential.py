"""Differential testing of the compiled backend against pure python.

The pure-python source is the golden reference for the optionally
mypyc-compiled hot core (see ``repro/_backend.py`` and DESIGN.md §9).
This harness is the enforcement: it runs every golden scenario of
``tests/harness/test_determinism_golden.py`` once under each backend —
in separate subprocesses, so the ``REPRO_COMPILED`` import-time switch
takes effect — and requires the results to be **bit-identical**:
throughput, the latency distribution, per-kind message counts, the
exact executed-event total and the ``repr`` checksum of every latency
sample must match to the last bit.

When the compiled extensions are not installed, the "compiled"
subprocess silently falls back to source (by design — see
``repro._backend``); the harness detects this via ``backend_info()``
and reports the comparison as *skipped* rather than passing vacuously.
``--require-compiled`` turns that skip into a failure, which is what
the CI ``compiled`` job uses so it can never go green without actually
exercising the native modules.

CLI::

    python -m repro.harness.differential [--require-compiled] [--scenario NAME]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: The golden load point: every scenario uses the parameters pinned by
#: tests/harness/test_determinism_golden.py (batching off, compaction
#: daemon off so the schedule is the seed schedule, event-for-event).
SCENARIOS: Tuple[str, ...] = ("primcast", "primcast-hc", "whitebox", "fastcast")


def run_scenario(protocol: str) -> Dict[str, Any]:
    """Run one golden scenario in-process; return its full fingerprint.

    The fingerprint pins everything the golden suite pins: any backend
    divergence in event order, RNG consumption or float arithmetic
    shows up in at least one field.
    """
    from ..workload.scenarios import wan_colocated_leaders
    from .runner import run_load_point

    result = run_load_point(
        protocol,
        wan_colocated_leaders(),
        2,
        4,
        seed=1,
        warmup_ms=200.0,
        measure_ms=300.0,
        keep_samples=True,
        compaction_interval_ms=0.0,
    )
    return {
        "protocol": protocol,
        "throughput": result.throughput,
        "latency": result.latency,
        "message_counts": dict(result.message_counts),
        "events": result.events,
        # repr() round-trips floats exactly; a one-ulp divergence in any
        # single sample changes the checksum.
        "sample_checksum": repr(sum(lat for _, _, lat in result.samples)),
    }


def _worker_main(protocol: str) -> None:
    """Subprocess entry: emit the fingerprint plus backend info as JSON."""
    import repro

    payload = {
        "backend_info": repro.backend_info(),
        "fingerprint": run_scenario(protocol),
    }
    json.dump(payload, sys.stdout)


def run_backend(protocol: str, compiled: bool) -> Dict[str, Any]:
    """Run one scenario in a fresh subprocess under the given backend.

    Returns the worker's JSON payload: ``{"backend_info": ...,
    "fingerprint": ...}``. Raises ``RuntimeError`` when the worker
    fails.
    """
    env = dict(os.environ)
    env["REPRO_COMPILED"] = "1" if compiled else "0"
    proc = subprocess.run(
        [sys.executable, "-m", "repro.harness.differential", "--worker", protocol],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"differential worker failed (protocol={protocol}, "
            f"compiled={compiled}):\n{proc.stdout}{proc.stderr}"
        )
    result: Dict[str, Any] = json.loads(proc.stdout)
    return result


def diff_fingerprints(
    reference: Dict[str, Any], candidate: Dict[str, Any]
) -> List[str]:
    """Field-by-field comparison; returns human-readable mismatches."""
    mismatches: List[str] = []
    for key in sorted(set(reference) | set(candidate)):
        ref, cand = reference.get(key), candidate.get(key)
        if ref != cand:
            mismatches.append(f"{key}: reference={ref!r} candidate={cand!r}")
    return mismatches


def run_differential(
    scenarios: Sequence[str] = SCENARIOS,
) -> Dict[str, Any]:
    """Compare every scenario across backends.

    Returns a report dict::

        {"compiled_available": bool,
         "scenarios": {name: {"status": "identical" | "skipped" | "mismatch",
                              "mismatches": [...]}}}

    A ``"mixed"`` backend (partial build) is treated as compiled so a
    broken install surfaces as a mismatch or a crash, never as a skip.
    """
    report: Dict[str, Any] = {"compiled_available": False, "scenarios": {}}
    for name in scenarios:
        ref = run_backend(name, compiled=False)
        cand = run_backend(name, compiled=True)
        ref_backend = ref["backend_info"]["backend"]
        cand_backend = cand["backend_info"]["backend"]
        if ref_backend != "pure-python":
            raise RuntimeError(
                f"reference run used backend {ref_backend!r}; the "
                "REPRO_COMPILED=0 escape hatch is broken"
            )
        if cand_backend == "pure-python":
            report["scenarios"][name] = {
                "status": "skipped",
                "mismatches": [],
                "reason": "compiled extensions not installed",
            }
            continue
        report["compiled_available"] = True
        mismatches = diff_fingerprints(ref["fingerprint"], cand["fingerprint"])
        report["scenarios"][name] = {
            "status": "identical" if not mismatches else "mismatch",
            "mismatches": mismatches,
        }
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.differential",
        description="compare the compiled backend against the pure-python "
        "golden reference, scenario by scenario, bit for bit",
    )
    parser.add_argument(
        "--worker",
        metavar="PROTOCOL",
        help="internal: run one scenario in-process and print JSON",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=SCENARIOS,
        help="restrict to one scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--require-compiled",
        action="store_true",
        help="fail (exit 2) when the compiled backend is unavailable "
        "instead of skipping",
    )
    args = parser.parse_args(argv)

    if args.worker:
        _worker_main(args.worker)
        return 0

    report = run_differential(args.scenario or SCENARIOS)
    failed = False
    for name, entry in report["scenarios"].items():
        line = f"{name}: {entry['status']}"
        if entry["status"] == "skipped":
            line += f" ({entry['reason']})"
        print(line)
        for mismatch in entry["mismatches"]:
            failed = True
            print(f"  {mismatch}")
    if failed:
        print("FAIL: compiled backend diverges from the pure-python reference")
        return 1
    if not report["compiled_available"]:
        if args.require_compiled:
            print("FAIL: compiled backend required but not installed")
            return 2
        print("compiled backend not installed; nothing compared")
    else:
        print("OK: compiled backend is bit-identical on all scenarios")
    return 0


if __name__ == "__main__":
    sys.exit(main())
