"""Counterexample shrinking: minimize a violating fault schedule.

Given a :class:`~repro.chaos.explorer.CaseSpec` whose run violates a
property, the shrinker searches for the smallest schedule that still
triggers a violation of the *same property*. Two passes run to a fixed
point, both classic delta debugging adapted to fault events:

1. **ddmin over events** — drop event subsets (halving granularity,
   then complements, then finer splits) until no single event can be
   removed without losing the violation;
2. **attribute reduction** — per surviving event, try strictly simpler
   variants: delays with halved ``extra_ms`` / ``duration_ms``, hook
   triggers with smaller ``nth`` and zero ``offset_ms``, ``"leader:G"``
   targets retargeted to a concrete pid.

Every candidate is evaluated by actually re-running the case
(:func:`~repro.chaos.explorer.run_case`) with the candidate schedule:
cheap (a few ms of simulated traffic) and exact — the oracle is the
property checker itself, not a heuristic. Candidates are memoized on
their canonical JSON, and the whole search is bounded by ``max_runs``
so a pathological case cannot loop forever. The result replays
deterministically: the shrunk schedule is pinned into the returned
spec's ``schedule_json``, so ``run_case`` on it reproduces the same
violation bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional

from .explorer import CHAOS_SCENARIOS, CaseResult, CaseSpec, run_case
from .schedule import FaultEvent, FaultSchedule


@dataclass
class ShrinkResult:
    """Outcome of one shrink search."""

    original: CaseSpec
    #: original violation being chased (property name)
    prop: str
    #: spec with the minimized schedule pinned into ``schedule_json``
    minimized: CaseSpec
    #: case result of the final minimized schedule (still violating)
    final: CaseResult
    #: events before / after
    original_events: int
    minimized_events: int
    #: simulation runs spent (including the initial reproduction)
    runs: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "original": self.original.canonical(),
            "prop": self.prop,
            "minimized": self.minimized.canonical(),
            "original_events": self.original_events,
            "minimized_events": self.minimized_events,
            "runs": self.runs,
            "violations": [v.to_dict() for v in self.final.violations],
        }


class _Search:
    """Memoized, run-bounded oracle over candidate event lists."""

    def __init__(
        self,
        spec: CaseSpec,
        schedule: FaultSchedule,
        prop: str,
        max_runs: int,
    ) -> None:
        self.spec = spec
        self.schedule = schedule
        self.prop = prop
        self.max_runs = max_runs
        self.runs = 0
        self._seen: Dict[str, Optional[CaseResult]] = {}

    def out_of_budget(self) -> bool:
        return self.runs >= self.max_runs

    def check(self, events: List[FaultEvent]) -> Optional[CaseResult]:
        """Run the case with ``events``; the result if it still violates
        ``prop``, else None. None also once the run budget is spent."""
        candidate = self.schedule.replace_events(events)
        key = candidate.to_json()
        if key in self._seen:
            return self._seen[key]
        if self.out_of_budget():
            return None
        self.runs += 1
        result = run_case(self.spec.with_schedule(candidate))
        failing = any(v.prop == self.prop for v in result.violations)
        outcome = result if failing else None
        self._seen[key] = outcome
        return outcome


def _ddmin(search: _Search, events: List[FaultEvent]) -> List[FaultEvent]:
    """Zeller's ddmin over the event list."""
    n = 2
    while len(events) >= 2 and not search.out_of_budget():
        chunk = max(1, len(events) // n)
        subsets = [events[i : i + chunk] for i in range(0, len(events), chunk)]
        reduced = False
        # Try each subset alone, then each complement.
        for subset in subsets:
            if search.check(subset) is not None:
                events = subset
                n = 2
                reduced = True
                break
        if reduced:
            continue
        for i in range(len(subsets)):
            complement = [e for j, s in enumerate(subsets) if j != i for e in s]
            if complement and search.check(complement) is not None:
                events = complement
                n = max(2, n - 1)
                reduced = True
                break
        if reduced:
            continue
        if n >= len(events):
            break
        n = min(len(events), n * 2)
    # Final single-event sanity: can the whole thing go? (ddmin never
    # tries the empty list.)
    if events and search.check([]) is not None:
        return []
    return events


def _simpler_variants(event: FaultEvent, group_pids: List[int]) -> List[FaultEvent]:
    """Strictly simpler candidates for one event, most aggressive first."""
    variants: List[FaultEvent] = []
    trigger = event.trigger
    if trigger.kind == "on":
        if trigger.offset_ms > 0.0:
            variants.append(
                replace(event, trigger=replace(trigger, offset_ms=0.0))
            )
        if trigger.nth > 1:
            variants.append(replace(event, trigger=replace(trigger, nth=1)))
            variants.append(
                replace(event, trigger=replace(trigger, nth=trigger.nth // 2))
            )
    if event.kind == "crash" and event.target.startswith("leader:"):
        # Retarget the dynamic leader reference at each concrete member;
        # a pinned pid makes the reproducer independent of election state.
        for pid in group_pids:
            variants.append(replace(event, target=f"pid:{pid}"))
    if event.kind == "delay":
        if event.extra_ms > 1.0:
            variants.append(replace(event, extra_ms=round(event.extra_ms / 2, 3)))
        if event.duration_ms > 1.0:
            variants.append(
                replace(event, duration_ms=round(event.duration_ms / 2, 3))
            )
    return variants


def _reduce_attributes(
    search: _Search,
    events: List[FaultEvent],
    group_members: Dict[int, List[int]],
) -> List[FaultEvent]:
    """Greedy per-event simplification to a fixed point."""
    changed = True
    while changed and not search.out_of_budget():
        changed = False
        for i, event in enumerate(events):
            pids: List[int] = []
            if event.kind == "crash" and event.target.startswith("leader:"):
                pids = group_members.get(int(event.target.partition(":")[2]), [])
            for variant in _simpler_variants(event, pids):
                candidate = list(events)
                candidate[i] = variant
                if search.check(candidate) is not None:
                    events = candidate
                    changed = True
                    break
            if changed:
                break
    return events


def shrink_case(
    spec: CaseSpec,
    max_runs: int = 200,
) -> Optional[ShrinkResult]:
    """Minimize ``spec``'s schedule; None if the case does not violate.

    The returned :attr:`ShrinkResult.minimized` spec has the shrunk
    schedule pinned in ``schedule_json`` — running it through
    :func:`run_case` (or ``python -m repro.chaos replay``) reproduces
    the violation deterministically.
    """
    schedule = spec.resolve_schedule()
    search = _Search(spec, schedule, prop="", max_runs=max_runs)
    search.runs += 1
    original = run_case(spec.with_schedule(schedule))
    if not original.violations:
        return None
    prop = original.violations[0].prop
    search.prop = prop
    search._seen[schedule.to_json()] = original

    scn = CHAOS_SCENARIOS[spec.scenario]
    shape = scn.shape()
    group_members = {g: shape.members(g) for g in range(shape.n_groups)}

    events = list(schedule.events)
    best = original
    # Alternate the two passes until neither makes progress.
    while not search.out_of_budget():
        before = [e.canonical() for e in events]
        events = _ddmin(search, events)
        events = _reduce_attributes(search, events, group_members)
        if [e.canonical() for e in events] == before:
            break
    final = search.check(events)
    if final is not None:
        best = final
    minimized_schedule = schedule.replace_events(events)
    return ShrinkResult(
        original=spec,
        prop=prop,
        minimized=spec.with_schedule(minimized_schedule),
        final=best,
        original_events=len(schedule.events),
        minimized_events=len(events),
        runs=search.runs,
    )
