"""Primary-change tests (Algorithm 3): crash the primary, keep going."""

from typing import Dict

import pytest

from repro.core import PrimCastProcess, uniform_groups
from repro.core.process import CANDIDATE, FOLLOWER, PRIMARY
from repro.election.omega import make_oracles
from repro.sim import ConstantLatency, FailureInjector, Network, Scheduler, child_rng
from repro.verify import check_acyclic_order, check_integrity, check_timestamp_order


class FailoverSystem:
    """PrimCast deployment with live Ω oracles and crash injection."""

    def __init__(self, n_groups=2, group_size=3, delta=1.0, poll_ms=5.0, seed=1):
        self.config = uniform_groups(n_groups, group_size)
        self.scheduler = Scheduler()
        self.network = Network(
            self.scheduler, ConstantLatency(delta), child_rng(seed, "net")
        )
        self.processes: Dict[int, PrimCastProcess] = {}
        for pid in self.config.all_pids:
            self.processes[pid] = PrimCastProcess(
                pid, self.config, self.scheduler, self.network
            )
        self.oracles = make_oracles(
            self.config.groups, self.processes, self.scheduler, poll_ms
        )
        for pid, proc in self.processes.items():
            proc.omega = self.oracles[self.config.group_of[pid]]
            proc.omega.subscribe(proc._on_omega_output)
        self.injector = FailureInjector(self.scheduler, self.processes)
        self.deliveries = {pid: [] for pid in self.config.all_pids}
        for proc in self.processes.values():
            proc.add_deliver_hook(
                lambda p, m, ts: self.deliveries[p.pid].append(
                    (m.mid, ts, self.scheduler.now)
                )
            )

    def logs(self):
        return self.deliveries

    def correct(self):
        return {p for p, proc in self.processes.items() if not proc.crashed}

    def check_safety(self):
        check_integrity(
            self.logs(),
            set().union(*(set(m for m, _, _ in log) for log in self.deliveries.values()))
            if any(self.deliveries.values())
            else set(),
        )
        check_acyclic_order(self.logs())
        check_timestamp_order(self.logs())


def delivered_mids(sys_, pid):
    return [mid for mid, _, _ in sys_.deliveries[pid]]


def test_crash_primary_before_start_arrives_message_still_delivered():
    sys_ = FailoverSystem()
    sys_.injector.crash_at(0, 0.5)  # group 0 primary dies before anything
    m = sys_.processes[4].a_multicast({0, 1}, payload="x")
    sys_.scheduler.run(until=200)
    for pid in (1, 2, 3, 4, 5):
        assert delivered_mids(sys_, pid) == [m.mid], f"pid {pid}"
    sys_.check_safety()


def test_new_primary_role_and_epoch_after_crash():
    sys_ = FailoverSystem()
    sys_.injector.crash_at(0, 1.0)
    sys_.scheduler.run(until=100)
    p1, p2 = sys_.processes[1], sys_.processes[2]
    assert p1.role == PRIMARY
    assert p2.role == FOLLOWER
    assert p1.e_cur.leader == 1
    assert p1.e_cur == p2.e_cur
    assert p1.e_cur.number >= 1


def test_crash_primary_mid_protocol_no_safety_violation():
    """Crash the primary right after it proposed (acks in flight)."""
    sys_ = FailoverSystem()
    m = sys_.processes[4].a_multicast({0, 1}, payload="x")
    # Start arrives at the group-0 primary at t=1, its ack departs then;
    # crash it at t=1.2, after the ack has been sent.
    sys_.injector.crash_at(0, 1.2)
    sys_.scheduler.run(until=300)
    for pid in (1, 2, 3, 4, 5):
        assert m.mid in delivered_mids(sys_, pid), f"pid {pid}"
    sys_.check_safety()
    finals = {ts for pid in (1, 2, 3, 4, 5) for mid, ts, _ in sys_.deliveries[pid]}
    assert len(finals) == 1


def test_crash_primary_before_proposal_reaches_followers():
    """Crash so the ack reaches remote group but (relay-free) semantics
    still converge via the epoch change re-proposal."""
    sys_ = FailoverSystem()
    m = sys_.processes[4].a_multicast({0, 1}, payload="x")
    sys_.injector.crash_at(0, 0.9)  # before the start (t=1.0) arrives
    sys_.scheduler.run(until=300)
    for pid in (1, 2, 3, 4, 5):
        assert m.mid in delivered_mids(sys_, pid)
    sys_.check_safety()


def test_traffic_during_failover_is_ordered():
    sys_ = FailoverSystem(n_groups=2)
    mids = []
    for i, (sender, when) in enumerate(
        [(4, 0.0), (1, 2.0), (5, 4.0), (2, 6.0), (4, 8.0), (1, 12.0), (5, 20.0)]
    ):
        def issue(s=sender):
            mids.append(sys_.processes[s].a_multicast({0, 1}).mid)

        sys_.scheduler.call_at(when, issue)
    sys_.injector.crash_at(0, 3.0)
    sys_.scheduler.run(until=500)
    for pid in (1, 2, 3, 4, 5):
        assert set(delivered_mids(sys_, pid)) == set(mids)
    # All correct destinations deliver in one common order.
    orders = {tuple(delivered_mids(sys_, pid)) for pid in (1, 2)}
    assert len(orders) == 1
    sys_.check_safety()


def test_quorum_clock_prevents_smaller_timestamps_after_failover():
    """New-epoch proposals must exceed everything the old quorum saw."""
    sys_ = FailoverSystem()
    for _ in range(5):
        sys_.processes[1].a_multicast({0})
    sys_.scheduler.run(until=50)
    old_clock = max(sys_.processes[pid].clock for pid in (1, 2))
    sys_.injector.crash_at(0, 50.5)
    sys_.scheduler.run(until=100)
    new_primary = sys_.processes[1]
    assert new_primary.role == PRIMARY
    m = sys_.processes[2].a_multicast({0})
    sys_.scheduler.run(until=150)
    final = [ts for mid, ts, _ in sys_.deliveries[2] if mid == m.mid][0]
    assert final > old_clock
    sys_.check_safety()


def test_successive_failovers():
    sys_ = FailoverSystem(n_groups=1, group_size=5)
    m1 = sys_.processes[3].a_multicast({0})
    sys_.injector.crash_at(0, 1.2)
    sys_.scheduler.run(until=100)
    m2 = sys_.processes[3].a_multicast({0})
    sys_.injector.crash_at(1, 101.0)
    sys_.scheduler.run(until=250)
    m3 = sys_.processes[3].a_multicast({0})
    sys_.scheduler.run(until=400)
    for pid in (2, 3, 4):
        assert delivered_mids(sys_, pid) == [m1.mid, m2.mid, m3.mid]
    assert sys_.processes[2].role == PRIMARY
    sys_.check_safety()


def test_stale_primary_cannot_disrupt_new_epoch():
    """A primary that is merely slow (not crashed) but deposed by Omega
    cannot cause conflicting deliveries."""
    sys_ = FailoverSystem()
    # Disconnect p0 from its group so Omega-side (crash-based here) we
    # simulate by crashing; the deposed-but-alive case is covered by the
    # epoch guard (E = E_cur) on follower echoes, exercised via a
    # candidate race below: p1 and p2 never both become primary for the
    # same epoch because epochs embed the leader id.
    sys_.injector.crash_at(0, 0.5)
    sys_.scheduler.run(until=60)
    assert sys_.processes[1].role == PRIMARY
    e1 = sys_.processes[1].e_cur
    assert e1.leader == 1
    # Any epoch p2 could start would be distinct (leader id differs).
    assert e1.next_for(2) != e1.next_for(1)


def test_failover_delivery_latency_bounded():
    """After the failure is detected, delivery resumes within a few
    communication steps (liveness, §5.2.7)."""
    sys_ = FailoverSystem(poll_ms=5.0)
    sys_.injector.crash_at(0, 0.5)
    m = sys_.processes[4].a_multicast({0, 1})
    sys_.scheduler.run(until=100)
    times = [t for pid in (1, 2) for mid, _, t in sys_.deliveries[pid] if mid == m.mid]
    assert times, "message not delivered after failover"
    # detection <= 5ms, epoch change ~3 steps, re-propose + commit ~3-4.
    assert max(times) < 25.0
