"""Tests for the content-addressed result cache (repro.harness.cache).

Covers the three load-bearing behaviours:

* a hit returns an *identical* RunResult without invoking the simulator
  (asserted by monkeypatching the runner away and via the stored events
  counter);
* the code fingerprint covers every package the simulated event path
  can reach (including ``rmcast``/``election``/``consensus``, pulled in
  transitively by the runner and baselines) and any change to a
  fingerprinted file invalidates every entry automatically;
* stale generations are retained up to ``keep_generations`` (LRU), so
  bisects sharing a cache directory keep each other warm;
* corrupt entries are discarded and re-run, never fatal.
"""

import ast
import json
import os
from pathlib import Path

import pytest

import repro.harness.parallel as parallel_mod
from repro.harness.cache import (
    FINGERPRINT_PACKAGES,
    ResultCache,
    code_fingerprint,
    spec_key,
)
from repro.harness.parallel import SweepExecutor, expand_sweep, point_spec
from repro.workload.scenarios import lan_scenario

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def tiny_specs(keep_samples=False):
    return expand_sweep(
        ("primcast",),
        lan_scenario(2, 3),
        2,
        (1, 2),
        seed=1,
        warmup_ms=20.0,
        measure_ms=40.0,
        keep_samples=keep_samples,
    )


def no_simulation(monkeypatch):
    """After this, any attempt to actually simulate explodes."""

    def boom(*args, **kwargs):
        raise AssertionError("simulation ran on what should be a cache hit")

    monkeypatch.setattr(parallel_mod, "run_load_point", boom)


# ----------------------------------------------------------------------
# hits
# ----------------------------------------------------------------------


def test_cache_hit_returns_identical_result_without_simulating(
    tmp_path, monkeypatch
):
    specs = tiny_specs(keep_samples=True)
    cold = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "c"))
    want = cold.run(specs)
    assert cold.last_stats == {"points": 2, "hits": 0, "ran": 2}

    no_simulation(monkeypatch)
    warm = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "c"))
    got = warm.run(specs)
    assert warm.last_stats == {"points": 2, "hits": 2, "ran": 0}
    assert got == want
    # the events counter is the stored simulation's, not a fresh run's
    assert [r.events for r in got] == [r.events for r in want]
    assert all(r.events > 0 for r in got)


def test_cache_counters_and_partial_hits(tmp_path):
    specs = tiny_specs()
    cache = ResultCache(tmp_path / "c")
    executor = SweepExecutor(jobs=1, cache=cache)
    executor.run(specs[:1])
    assert (cache.misses, cache.stores, cache.hits) == (1, 1, 0)
    executor.run(specs)
    assert executor.last_stats == {"points": 2, "hits": 1, "ran": 1}
    # total_stats aggregates over the executor's lifetime (the CLI
    # reports it across the one-sweep-per-dest-count figure commands)
    assert executor.total_stats == {"points": 3, "hits": 1, "ran": 2}


def test_cache_key_separates_distinct_specs():
    a = point_spec("primcast", lan_scenario(2, 3), 2, 1, seed=1)
    b = point_spec("primcast", lan_scenario(2, 3), 2, 1, seed=2)
    c = point_spec("whitebox", lan_scenario(2, 3), 2, 1, seed=1)
    assert len({spec_key(a), spec_key(b), spec_key(c)}) == 3


# ----------------------------------------------------------------------
# invalidation by code fingerprint
# ----------------------------------------------------------------------


def fake_tree(root: Path) -> Path:
    src = root / "src" / "repro"
    for package in FINGERPRINT_PACKAGES:
        (src / package).mkdir(parents=True)
        (src / package / "mod.py").write_text(f"x = '{package}'\n")
    return src


def test_fingerprint_covers_every_simulation_package(tmp_path):
    src = fake_tree(tmp_path)
    base = code_fingerprint(src)
    for package in FINGERPRINT_PACKAGES:
        target = src / package / "mod.py"
        original = target.read_text()
        target.write_text(original + "# touched\n")
        assert code_fingerprint(src) != base, (
            f"editing {package}/ must change the fingerprint"
        )
        target.write_text(original)
    assert code_fingerprint(src) == base


def test_fingerprint_ignores_non_fingerprinted_files(tmp_path):
    src = fake_tree(tmp_path)
    base = code_fingerprint(src)
    (src / "analysis").mkdir()
    (src / "analysis" / "mod.py").write_text("y = 1\n")
    (src / "core" / "notes.md").write_text("not python\n")
    assert code_fingerprint(src) == base


def test_real_tree_fingerprint_is_stable():
    assert code_fingerprint(SRC_REPRO) == code_fingerprint(SRC_REPRO)


def _repro_import_closure(entry_rel: str):
    """Top-level ``repro.*`` packages statically reachable from one
    module, by walking relative imports file-to-file."""
    queue = [SRC_REPRO / entry_rel]
    seen = set()
    packages = set()
    while queue:
        path = queue.pop()
        if path in seen or not path.is_file():
            continue
        seen.add(path)
        rel = path.relative_to(SRC_REPRO)
        if len(rel.parts) > 1:
            packages.add(rel.parts[0])
        for node in ast.walk(ast.parse(path.read_text())):
            if not isinstance(node, ast.ImportFrom) or node.level == 0:
                continue
            base = path.parent
            for _ in range(node.level - 1):
                base = base.parent
            target = base.joinpath(*(node.module or "").split("."))
            queue.append(target.with_suffix(".py"))
            queue.append(target / "__init__.py")
    return packages


def test_fingerprint_covers_runner_import_closure():
    # every package the simulated event path can reach must feed the
    # fingerprint, or edits there silently serve stale cached results
    reached = _repro_import_closure("harness/runner.py")
    missing = reached - set(FINGERPRINT_PACKAGES)
    assert not missing, (
        f"packages on the simulated event path are not fingerprinted: "
        f"{sorted(missing)}"
    )
    # the full DET001 determinism scope is fingerprinted, reachable from
    # the runner's static closure or not (e.g. consensus via classic)
    assert {"rmcast", "election", "consensus", "core", "sim", "baselines"} <= set(
        FINGERPRINT_PACKAGES
    )


@pytest.mark.parametrize("package", ["core", "rmcast", "election", "consensus"])
def test_touching_simulation_package_invalidates_all_entries(
    tmp_path, package
):
    src = fake_tree(tmp_path)
    root = tmp_path / "cache"
    specs = tiny_specs()
    executor = SweepExecutor(jobs=1, cache=ResultCache(root, src_root=src))
    executor.run(specs)
    assert executor.last_stats["ran"] == 2

    # same code -> hits
    warm = SweepExecutor(jobs=1, cache=ResultCache(root, src_root=src))
    warm.run(specs)
    assert warm.last_stats == {"points": 2, "hits": 2, "ran": 0}

    # change a file under the package -> new fingerprint, forced re-run;
    # the previous generation stays on disk (retained for bisects)
    (src / package / "mod.py").write_text(f"x = '{package}-v2'\n")
    stale = ResultCache(root, src_root=src)
    invalidated = SweepExecutor(jobs=1, cache=stale)
    invalidated.run(specs)
    assert invalidated.last_stats == {"points": 2, "hits": 0, "ran": 2}
    generations = {p.name for p in root.iterdir() if p.is_dir()}
    assert stale.fingerprint in generations
    assert len(generations) == 2


def test_bisect_between_two_fingerprints_keeps_both_warm(tmp_path):
    src = fake_tree(tmp_path)
    root = tmp_path / "cache"
    specs = tiny_specs()
    original = (src / "core" / "mod.py").read_text()
    SweepExecutor(jobs=1, cache=ResultCache(root, src_root=src)).run(specs)

    (src / "core" / "mod.py").write_text("x = 'core-v2'\n")
    SweepExecutor(jobs=1, cache=ResultCache(root, src_root=src)).run(specs)

    # hop back to the first checkout: its generation survived -> all hits
    (src / "core" / "mod.py").write_text(original)
    back = SweepExecutor(jobs=1, cache=ResultCache(root, src_root=src))
    back.run(specs)
    assert back.last_stats == {"points": 2, "hits": 2, "ran": 0}


def test_prune_keeps_newest_generations_up_to_budget(tmp_path):
    src = fake_tree(tmp_path)
    root = tmp_path / "cache"
    root.mkdir()
    for i in range(5):
        d = root / f"gen{i}"
        d.mkdir()
        os.utime(d, (1000 + i, 1000 + i))
    ResultCache(root, src_root=src, keep_generations=3)
    kept = sorted(p.name for p in root.iterdir() if p.is_dir())
    # budget 3 = one slot for the current generation + the 2 newest others
    assert kept == ["gen3", "gen4"]


def test_keep_generations_1_restores_prune_everything_behaviour(tmp_path):
    src = fake_tree(tmp_path)
    root = tmp_path / "cache"
    specs = tiny_specs()
    SweepExecutor(jobs=1, cache=ResultCache(root, src_root=src)).run(specs)
    (src / "core" / "mod.py").write_text("x = 'core-v2'\n")
    only = ResultCache(root, src_root=src, keep_generations=1)
    assert [p.name for p in root.iterdir() if p.is_dir()] == []
    SweepExecutor(jobs=1, cache=only).run(specs)
    assert [p.name for p in root.iterdir() if p.is_dir()] == [only.fingerprint]


def test_keep_generations_must_be_positive(tmp_path):
    with pytest.raises(ValueError):
        ResultCache(tmp_path / "c", keep_generations=0)


# ----------------------------------------------------------------------
# corruption
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "corruption",
    [
        "not json at all {{{",
        json.dumps({"wrong": "schema"}),
        json.dumps({"spec": {}, "result": {"protocol": "primcast"}}),
        "",
    ],
)
def test_corrupt_entries_are_discarded_not_fatal(tmp_path, corruption):
    specs = tiny_specs()
    cache = ResultCache(tmp_path / "c")
    executor = SweepExecutor(jobs=1, cache=cache)
    want = executor.run(specs)

    entry = cache.entry_path(specs[0])
    assert entry.is_file()
    entry.write_text(corruption)

    fresh = ResultCache(tmp_path / "c")
    assert fresh.get(specs[0]) is None
    assert not entry.exists(), "corrupt entry must be deleted"
    # the other entry is untouched and still hits
    assert fresh.get(specs[1]) == want[1]

    # a rerun repopulates the discarded slot
    repair = SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "c"))
    got = repair.run(specs)
    assert got == want
    assert repair.last_stats == {"points": 2, "hits": 1, "ran": 1}


def test_clear_removes_everything(tmp_path):
    cache = ResultCache(tmp_path / "c")
    executor = SweepExecutor(jobs=1, cache=cache)
    specs = tiny_specs()
    executor.run(specs)
    cache.clear()
    assert not (tmp_path / "c").exists()
    fresh = ResultCache(tmp_path / "c")
    assert fresh.get(specs[0]) is None


def test_fingerprint_covers_chaos_import_closure():
    # chaos cases run the same simulated event path plus the verify
    # checkers; a caching executor keyed on CaseSpec.canonical() must
    # see edits anywhere in that closure, or it would replay stale
    # campaign results.
    reached = _repro_import_closure("chaos/explorer.py")
    missing = reached - set(FINGERPRINT_PACKAGES)
    assert not missing, (
        f"packages reachable from the chaos explorer are not "
        f"fingerprinted: {sorted(missing)}"
    )
    assert {"chaos", "verify"} <= set(FINGERPRINT_PACKAGES)


def test_case_spec_results_round_trip_through_cache(tmp_path):
    """The cache decodes entries through the spec's own result decoder:
    a chaos CaseSpec entry must come back as a CaseResult, losslessly
    (the campaign checkpoint/resume path depends on this)."""
    from repro.chaos.explorer import CaseResult, CaseSpec

    cache = ResultCache(tmp_path / "c")
    spec = CaseSpec(scenario="lan-small", seed=1)
    result = spec.run()
    cache.put(spec, result)
    back = cache.get(spec)
    assert isinstance(back, CaseResult)
    assert back.to_dict() == result.to_dict()
    # PointSpec and CaseSpec entries coexist in one generation dir.
    point = tiny_specs()[0]
    cache.put(point, point.run())
    assert cache.get(point).to_dict() is not None
    assert cache.get(spec).to_dict() == result.to_dict()
