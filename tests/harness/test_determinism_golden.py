"""Golden determinism pins for the harness (batching off).

The substrate optimisation work is only legal if it is *bit-identical*
to the seed revision: same event schedule, same RNG consumption, same
float arithmetic. These tests pin exact golden values captured from the
seed code for all four protocols on one standard load point, so any
future "optimisation" that perturbs event order or arithmetic — however
slightly — fails loudly instead of silently shifting every figure.

The goldens are exact (``==``, not ``approx``): the simulation is a
deterministic function of the seed and floats compare reproducibly on
one platform. If a change legitimately alters the schedule (a protocol
fix, not an optimisation), re-capture the goldens and say so in the PR.

The PrimCast ``events`` pins are seed + 2: the default-on compaction
daemon adds exactly one timer event per 250 ms sweep (two in this
500 ms run — the tick landing exactly on the until-limit fires). Every
other field is bit-identical to the seed capture, and
``test_compaction_off_matches_seed_event_count`` pins the original
totals with the daemon disabled.
"""

import pytest

from repro.harness.runner import run_load_point
from repro.workload.scenarios import wan_colocated_leaders

# Captured from the seed revision (d8644d8 lineage) with:
#   run_load_point(proto, wan_colocated_leaders(), 2, 4, seed=1,
#                  warmup_ms=200.0, measure_ms=300.0, keep_samples=True)
# sample_checksum = repr(sum(lat for _, _, lat in result.samples))
# PrimCast event totals re-captured (+2 compaction ticks) when the state
# GC daemon became default-on; seed totals live in SEED_EVENTS below.
GOLDEN = {
    "primcast": {
        "throughput": 1346.6666666666667,
        "latency": {
            "count": 404,
            "mean": 67.86728832238671,
            "p50": 63.77835483410627,
            "p95": 80.97609880275343,
            "p99": 82.05259086465999,
        },
        "message_counts": {"start": 4536, "ack": 24924, "bump": 6531},
        "events": 67746,
        "sample_checksum": "27418.38448224423",
    },
    "primcast-hc": {
        "throughput": 1336.6666666666667,
        "latency": {
            "count": 401,
            "mean": 67.74681618010328,
            "p50": 63.31866466957172,
            "p95": 80.68988955338031,
            "p99": 82.66437416651604,
        },
        "message_counts": {"start": 4518, "ack": 24840, "bump": 7227},
        "events": 68884,
        "sample_checksum": "27166.473288221416",
    },
    "whitebox": {
        "throughput": 876.6666666666667,
        "latency": {
            "count": 263,
            "mean": 99.0814507663472,
            "p50": 120.41248056150968,
            "p95": 143.23634947668918,
            "p99": 145.3086733624923,
        },
        "message_counts": {
            "start": 1038,
            "wb-accept": 6144,
            "wb-ack": 6020,
            "wb-deliver": 1792,
        },
        "events": 28810,
        "sample_checksum": "26058.421551549316",
    },
    "fastcast": {
        "throughput": 926.6666666666667,
        "latency": {
            "count": 278,
            "mean": 97.868714982003,
            "p50": 67.81825210750786,
            "p95": 145.17899175286897,
            "p99": 146.85132735461713,
        },
        "message_counts": {
            "start": 3084,
            "fc-soft": 6144,
            "fc-2a": 6144,
            "fc-2b": 17394,
            "fc-hard": 5376,
        },
        "events": 71957,
        "sample_checksum": "27207.502764996832",
    },
}


#: Seed-revision event totals (no compaction daemon). The PrimCast
#: GOLDEN entries above are exactly these + 2 daemon ticks.
SEED_EVENTS = {"primcast": 67744, "primcast-hc": 68882}


def _run(protocol, **kwargs):
    return run_load_point(
        protocol,
        wan_colocated_leaders(),
        2,
        4,
        seed=1,
        warmup_ms=200.0,
        measure_ms=300.0,
        keep_samples=True,
        **kwargs,
    )


@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_matches_seed_golden(protocol):
    golden = GOLDEN[protocol]
    result = _run(protocol)
    assert result.throughput == golden["throughput"]
    assert result.latency == golden["latency"]
    assert result.message_counts == golden["message_counts"]
    assert result.events == golden["events"]
    checksum = repr(sum(lat for _, _, lat in result.samples))
    assert checksum == golden["sample_checksum"]


@pytest.mark.parametrize("protocol", sorted(SEED_EVENTS))
def test_compaction_off_matches_seed_event_count(protocol):
    """With the GC daemon disabled the schedule is the *seed* schedule,
    event-for-event — and every other golden field still matches, which
    is the strongest statement that compaction itself (not just the
    daemon's ticks) never perturbs protocol behaviour."""
    golden = GOLDEN[protocol]
    result = _run(protocol, compaction_interval_ms=0.0)
    assert result.events == SEED_EVENTS[protocol]
    assert result.throughput == golden["throughput"]
    assert result.latency == golden["latency"]
    assert result.message_counts == golden["message_counts"]
    checksum = repr(sum(lat for _, _, lat in result.samples))
    assert checksum == golden["sample_checksum"]


def test_same_seed_same_process_is_identical():
    """Two in-process runs with the same seed must agree sample-for-sample
    (no hidden global state in the substrate or the batching layer)."""
    a, b = _run("primcast"), _run("primcast")
    assert a.samples == b.samples
    assert a.message_counts == b.message_counts
    assert a.events == b.events


# ----------------------------------------------------------------------
# Backend parametrization: the same goldens over REPRO_COMPILED
# ----------------------------------------------------------------------
#
# The hot core optionally compiles with mypyc (DESIGN.md §9); the pure
# python above is the golden reference. These tests re-pin the goldens
# through the differential worker subprocess under each backend, so a
# compiled build that perturbs the schedule by one event or one ulp
# fails the exact same pins. When the extensions are not built the
# compiled parametrization skips cleanly (never passes vacuously).

import functools
import os
import subprocess
import sys

from repro.harness.differential import run_backend

BACKENDS = ["pure-python", "compiled"]


@functools.lru_cache(maxsize=None)
def _compiled_available():
    """True iff a REPRO_COMPILED=1 subprocess actually loads extensions."""
    import json

    env = dict(os.environ)
    env["REPRO_COMPILED"] = "1"
    out = subprocess.run(
        [
            sys.executable,
            "-c",
            "import json, repro; print(json.dumps(repro.backend_info()))",
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    assert out.returncode == 0, out.stderr
    return json.loads(out.stdout)["backend"] != "pure-python"


def _fingerprint(protocol, backend):
    if backend == "compiled" and not _compiled_available():
        pytest.skip("compiled extensions not built (REPRO_MYPYC=1 install)")
    payload = run_backend(protocol, compiled=(backend == "compiled"))
    expected = "pure-python" if backend == "pure-python" else "compiled"
    assert payload["backend_info"]["backend"] == expected
    return payload["fingerprint"]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("protocol", sorted(GOLDEN))
def test_backend_matches_seed_golden(protocol, backend):
    """Both backends reproduce the seed goldens bit-for-bit.

    The worker runs with the compaction daemon off, so the event pin is
    the *seed* total (SEED_EVENTS) where one exists, and the golden
    total (identical: those protocols have no daemon ticks) otherwise.
    """
    golden = GOLDEN[protocol]
    fp = _fingerprint(protocol, backend)
    assert fp["throughput"] == golden["throughput"]
    assert fp["latency"] == golden["latency"]
    assert fp["message_counts"] == golden["message_counts"]
    assert fp["events"] == SEED_EVENTS.get(protocol, golden["events"])
    assert fp["sample_checksum"] == golden["sample_checksum"]


def test_compiled_chaos_smoke():
    """A seeded chaos campaign runs clean on the compiled backend.

    The chaos layer pokes the hot core through every awkward interface
    (probe hooks, transmit interceptors, instance-attribute wrapping of
    on_r_deliver) — exactly the dynamic behaviour a compiled build is
    most likely to break. Skips when the extensions are not built; the
    pure-python equivalent is tests/chaos/test_chaos_cli.py.
    """
    if not _compiled_available():
        pytest.skip("compiled extensions not built (REPRO_MYPYC=1 install)")
    env = dict(os.environ)
    env["REPRO_COMPILED"] = "1"
    out = subprocess.run(
        [sys.executable, "-m", "repro.chaos", "run", "--seeds", "2"],
        capture_output=True,
        text=True,
        env=env,
    )
    assert out.returncode == 0, out.stdout + out.stderr
