"""Tests for Skeen's protocol (process-addressed, non-fault-tolerant)."""

import random

import pytest

from repro.baselines.skeen import SkeenProcess
from repro.sim import ConstantLatency, JitteredLatency, Network, Scheduler, child_rng
from repro.verify import check_acyclic_order, check_integrity, check_timestamp_order


def build(n=4, latency=None, seed=1):
    sched = Scheduler()
    net = Network(sched, latency or ConstantLatency(1.0), child_rng(seed, "sk"))
    procs = {i: SkeenProcess(i, sched, net) for i in range(n)}
    logs = {i: [] for i in range(n)}
    for i, p in procs.items():
        p.add_deliver_hook(
            lambda proc, m, ts: logs[proc.pid].append((m.mid, ts, sched.now))
        )
    return sched, net, procs, logs


def test_two_step_delivery():
    sched, net, procs, logs = build()
    procs[0].a_multicast({1, 2, 3})
    sched.run()
    for pid in (1, 2, 3):
        assert logs[pid][0][2] == pytest.approx(2.0)


def test_sender_in_dest_delivers_too():
    sched, net, procs, logs = build()
    m = procs[0].a_multicast({0, 1})
    sched.run()
    assert [x[0] for x in logs[0]] == [m.mid]
    assert [x[0] for x in logs[1]] == [m.mid]


def test_final_is_max_of_local_timestamps():
    sched, net, procs, logs = build()
    procs[1].a_multicast({1})  # bumps p1's clock to 1
    sched.run()
    m = procs[0].a_multicast({1, 2})
    sched.run()
    finals = {ts for pid in (1, 2) for mid, ts, _ in logs[pid] if mid == m.mid}
    assert finals == {2}  # p1 proposes 2, p2 proposes 1


def test_partial_order_on_random_workload():
    sched, net, procs, logs = build(n=6, latency=JitteredLatency(2.0, 0.3))
    rng = random.Random(5)
    mids = []
    for i in range(60):
        sender = rng.randrange(6)
        dest = set(rng.sample(range(6), rng.randint(1, 4)))
        when = rng.uniform(0, 40)
        sched.call_at(
            when, lambda s=sender, d=frozenset(dest): mids.append(procs[s].a_multicast(d).mid)
        )
    sched.run()
    check_integrity(logs, set(mids))
    check_acyclic_order(logs)
    check_timestamp_order(logs)
    # agreement: every destination delivered every message
    for mid in mids:
        pass  # dest sets are not retained here; order checks above suffice


def test_concurrent_messages_same_dest_totally_ordered():
    sched, net, procs, logs = build()
    a = procs[0].a_multicast({2, 3})
    b = procs[1].a_multicast({2, 3})
    sched.run()
    order2 = [mid for mid, _, _ in logs[2]]
    order3 = [mid for mid, _, _ in logs[3]]
    assert set(order2) == {a.mid, b.mid}
    assert order2 == order3


def test_empty_dest_rejected():
    sched, net, procs, logs = build()
    with pytest.raises(ValueError):
        procs[0].a_multicast(set())
