"""Tests for the White-Box baseline (§4.2)."""

import pytest

from helpers import MiniSystem, random_workload
from repro.verify import check_all


def build(**kw):
    return MiniSystem(protocol="whitebox", **kw)


def test_three_steps_at_primaries_four_at_followers():
    sys_ = build(n_groups=2)
    sys_.multicast(4, {0, 1})
    sys_.run()
    for pid in (0, 3):  # primaries
        assert sys_.deliveries[pid][0][2] == pytest.approx(3.0, abs=1e-6)
    for pid in (1, 2, 4, 5):  # followers
        assert sys_.deliveries[pid][0][2] == pytest.approx(4.0, abs=1e-6)


def test_local_message_stays_local():
    sys_ = build(n_groups=3)
    m = sys_.multicast(0, {1})
    sys_.run()
    for pid in (3, 4, 5):
        assert [x[0] for x in sys_.deliveries[pid]] == [m.mid]
    for pid in (0, 1, 2, 6, 7, 8):
        assert sys_.deliveries[pid] == []


def test_followers_follow_primary_order():
    sys_ = build(n_groups=2)
    a = sys_.multicast(1, {0, 1})
    b = sys_.multicast(4, {0, 1})
    c = sys_.multicast(2, {0})
    sys_.run_to_quiescence()
    primary_order = [mid for mid, _, _ in sys_.deliveries[0]]
    for pid in (1, 2):
        assert [mid for mid, _, _ in sys_.deliveries[pid]] == primary_order


def test_message_complexity_matches_table1_shape():
    sys_ = build(n_groups=4)
    sys_.multicast(1, {0, 1, 2})  # k=3, n=3
    sys_.run_to_quiescence()
    counts = sys_.network.counts_by_kind
    k, n = 3, 3
    assert counts["start"] == k
    assert counts["wb-accept"] == k * k * n
    assert counts["wb-ack"] == k * k * n
    assert counts["wb-deliver"] == k * (n - 1)


def test_ordering_properties_random_run():
    sys_ = build(n_groups=3)
    random_workload(sys_, 70, seed=21)
    sys_.run_to_quiescence()
    check_all(
        sys_.logs, set(sys_.multicasts), sys_.dest_pids_of(), sys_.correct_pids()
    )


def test_quorum_of_acks_required_before_delivery():
    """With a majority of a destination group's followers crashed, the
    primary cannot gather the ack quorum and must not deliver."""
    sys_ = build(n_groups=2, group_size=5)
    # Crash 3 of 5 in group 1 (incl. two followers needed for quorum).
    for pid in (6, 7, 8):
        sys_.processes[pid].crash()
    sys_.multicast(0, {0, 1})
    sys_.run(until=200)
    assert sys_.deliveries[0] == []


def test_final_timestamps_consistent():
    sys_ = build(n_groups=3)
    random_workload(sys_, 40, seed=9)
    sys_.run_to_quiescence()
    finals = {}
    for log in sys_.deliveries.values():
        for mid, ts, _ in log:
            assert finals.setdefault(mid, ts) == ts
