"""Unit tests for group/quorum configuration."""

import pytest

from repro.core.config import GroupConfig, uniform_groups


class TestGroupConfig:
    def test_group_of_mapping(self):
        config = GroupConfig([[0, 1, 2], [3, 4]])
        assert config.group_of[0] == 0
        assert config.group_of[4] == 1
        assert config.n_groups == 2
        assert config.all_pids == [0, 1, 2, 3, 4]

    def test_groups_must_be_disjoint(self):
        with pytest.raises(ValueError, match="disjoint"):
            GroupConfig([[0, 1], [1, 2]])

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            GroupConfig([[0], []])

    def test_no_groups_rejected(self):
        with pytest.raises(ValueError):
            GroupConfig([])

    def test_initial_leader_is_first_member(self):
        config = GroupConfig([[5, 1, 2]])
        assert config.initial_leader(0) == 5

    def test_majority_quorum_sizes(self):
        assert GroupConfig([[0]]).quorum_size(0) == 1
        assert GroupConfig([[0, 1]]).quorum_size(0) == 2
        assert GroupConfig([[0, 1, 2]]).quorum_size(0) == 2
        assert GroupConfig([list(range(5))]).quorum_size(0) == 3

    def test_dest_pids_sorted_by_group(self):
        config = GroupConfig([[0, 1], [2, 3], [4, 5]])
        assert config.dest_pids({2, 0}) == [0, 1, 4, 5]

    def test_has_quorum_majority(self):
        config = GroupConfig([[0, 1, 2]])
        assert not config.has_quorum(0, [0])
        assert config.has_quorum(0, [0, 2])
        assert config.has_quorum(0, [0, 1, 2])

    def test_has_quorum_ignores_foreign_pids(self):
        config = GroupConfig([[0, 1, 2], [3, 4, 5]])
        assert not config.has_quorum(0, [0, 3, 4])


class TestExplicitQuorums:
    def test_explicit_quorums_accepted(self):
        quorums = {0: [frozenset({0, 1}), frozenset({1, 2}), frozenset({0, 2})]}
        config = GroupConfig([[0, 1, 2]], quorum_sets=quorums)
        assert config.has_quorum(0, [0, 1])
        assert not config.has_quorum(0, [0])

    def test_non_intersecting_quorums_rejected(self):
        with pytest.raises(ValueError, match="intersect"):
            GroupConfig(
                [[0, 1, 2, 3]],
                quorum_sets={0: [frozenset({0, 1}), frozenset({2, 3})]},
            )

    def test_quorum_outside_group_rejected(self):
        with pytest.raises(ValueError):
            GroupConfig([[0, 1]], quorum_sets={0: [frozenset({0, 9})]})

    def test_weighted_style_quorum_clock(self):
        """quorum-clock with an asymmetric quorum system: {0} alone is a
        quorum (e.g. a 'super node'), so its clock alone sets the bound."""
        quorums = {0: [frozenset({0}), frozenset({0, 1, 2})]}
        config = GroupConfig([[0, 1, 2]], quorum_sets=quorums)
        assert config.quorum_clock_value(0, {0: 7, 1: 1, 2: 1}) == 7


class TestQuorumClockValue:
    def test_majority_is_qth_largest(self):
        config = GroupConfig([[0, 1, 2, 3, 4]])
        clocks = {0: 1, 1: 2, 2: 3, 3: 4, 4: 5}
        # The paper's example (§5.2.3): quorum {3,4,5} -> value 3.
        assert config.quorum_clock_value(0, clocks) == 3

    def test_missing_members_count_as_zero(self):
        config = GroupConfig([[0, 1, 2]])
        assert config.quorum_clock_value(0, {0: 9}) == 0
        assert config.quorum_clock_value(0, {0: 9, 1: 4}) == 4

    def test_all_equal(self):
        config = GroupConfig([[0, 1, 2]])
        assert config.quorum_clock_value(0, {0: 5, 1: 5, 2: 5}) == 5


class TestUniformGroups:
    def test_layout(self):
        config = uniform_groups(3, 4)
        assert config.groups == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]]

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            uniform_groups(0, 3)
        with pytest.raises(ValueError):
            uniform_groups(3, 0)
