"""Smoke tests: every example runs to completion and prints its claims."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(name, *args, timeout=300):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "ordered identically everywhere" in result.stdout


def test_partitioned_kv():
    result = run_example("partitioned_kv.py")
    assert result.returncode == 0, result.stderr
    assert "replicas converged" in result.stdout


def test_failover():
    result = run_example("failover.py")
    assert result.returncode == 0, result.stderr
    assert "ordering checks passed" in result.stdout
    assert "role = primary" in result.stdout


def test_protocol_trace():
    result = run_example("protocol_trace.py")
    assert result.returncode == 0, result.stderr
    assert "3 communication steps" in result.stdout


@pytest.mark.slow
def test_wan_convoy_quick():
    result = run_example("wan_convoy.py", "--quick", timeout=600)
    assert result.returncode == 0, result.stderr
    assert "Worst-case convoy" in result.stdout
