"""Tests for the §6 hybrid-clock variant (PrimCast HC)."""

import pytest

from helpers import MiniSystem, random_workload
from repro.core.process import PrimCastProcess
from repro.core.config import uniform_groups
from repro.harness.steps import measure_primcast_convoy
from repro.sim import ConstantLatency, Network, Scheduler, child_rng
from repro.verify import check_all


def test_hybrid_requires_physical_clock():
    config = uniform_groups(1, 3)
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(1, "n"))
    with pytest.raises(ValueError):
        PrimCastProcess(0, config, sched, net, hybrid_clock=True)


def test_hybrid_timestamps_track_real_time():
    sys_ = MiniSystem(n_groups=2, hybrid_clock=True, epsilon_ms=0.1)
    sys_.scheduler.call_at(50.0, lambda: sys_.multicast(0, {0, 1}))
    sys_.run_to_quiescence()
    (mid, final, _), = sys_.deliveries[3]
    # Proposal happened around t=51ms; the timestamp is in microseconds
    # of skewed real time.
    assert 45_000 < final < 60_000


def test_hybrid_still_monotone_when_clock_behind():
    """clock = max(clock+1, real-clock): with a badly lagging hardware
    clock the logical +1 still guarantees monotonicity."""
    sys_ = MiniSystem(n_groups=1, hybrid_clock=True, epsilon_ms=0.0)
    proc = sys_.processes[0]
    proc.physical_clock.offset_us = -10_000_000  # 10s in the past
    for _ in range(5):
        sys_.multicast(0, {0})
    sys_.run_to_quiescence()
    finals = [ts for _, ts, _ in sys_.deliveries[0]]
    assert finals == sorted(finals)
    assert len(set(finals)) == 5


def test_hybrid_ordering_properties_hold():
    sys_ = MiniSystem(n_groups=3, hybrid_clock=True, epsilon_ms=2.0)
    random_workload(sys_, 60, seed=13)
    sys_.run_to_quiescence()
    check_all(
        sys_.logs, set(sys_.multicasts), sys_.dest_pids_of(), sys_.correct_pids()
    )


def test_hybrid_collision_free_latency_unchanged():
    sys_ = MiniSystem(n_groups=2, hybrid_clock=True, epsilon_ms=0.5)
    sys_.multicast(4, {0, 1})
    sys_.run()
    for pid in range(6):
        assert sys_.deliveries[pid][0][2] == pytest.approx(3.0, abs=1e-6)


def test_hybrid_reduces_worst_case_convoy():
    """§6: failure-free latency drops from 5Δ to 4Δ + 2ε."""
    plain = measure_primcast_convoy(hybrid=False, delta_ms=10.0)
    hc = measure_primcast_convoy(hybrid=True, delta_ms=10.0, epsilon_ms=1.0)
    assert plain["measured_steps"] > 4.5
    assert plain["measured_steps"] <= plain["analytic_steps"] + 0.01
    assert hc["measured_steps"] <= hc["analytic_steps"] + 0.01
    assert hc["measured_steps"] < plain["measured_steps"] - 0.5


def test_hybrid_bound_scales_with_epsilon():
    small = measure_primcast_convoy(hybrid=True, delta_ms=10.0, epsilon_ms=0.5)
    large = measure_primcast_convoy(hybrid=True, delta_ms=10.0, epsilon_ms=3.0)
    assert small["measured_steps"] < large["measured_steps"]
    # Neither exceeds min(5, 4 + 2*eps/delta).
    assert large["measured_steps"] <= 5.0


def test_unsynchronized_clocks_do_not_break_correctness():
    """§6: the modification cannot hurt correctness even with wild skew."""
    sys_ = MiniSystem(n_groups=2, hybrid_clock=True, epsilon_ms=500.0, seed=3)
    random_workload(sys_, 40, seed=17)
    sys_.run_to_quiescence()
    check_all(
        sys_.logs, set(sys_.multicasts), sys_.dest_pids_of(), sys_.correct_pids()
    )
