#!/usr/bin/env python3
"""Primary failover: crash a group's primary under live traffic.

PrimCast's fault tolerance (Algorithm 3) in action: a steady stream of
global messages flows between two groups while group 0's primary
crashes. The Ω oracle detects the crash, the next replica runs the
epoch-change protocol (new-epoch → promise → new-state → accept),
re-sends the acks of every inherited proposal, and delivery resumes —
with no message lost, duplicated or reordered.

Run:
    python examples/failover.py
"""

from repro.core import PrimCastProcess, uniform_groups
from repro.core.process import PRIMARY
from repro.election import make_oracles
from repro.sim import ConstantLatency, FailureInjector, Network, Scheduler, child_rng
from repro.verify import check_acyclic_order, check_timestamp_order

DELTA_MS = 1.0
DETECT_MS = 5.0
CRASH_AT_MS = 25.0
N_MESSAGES = 80


def main() -> None:
    config = uniform_groups(n_groups=2, group_size=3)
    scheduler = Scheduler()
    network = Network(scheduler, ConstantLatency(DELTA_MS), child_rng(3, "net"))
    processes = {
        pid: PrimCastProcess(pid, config, scheduler, network)
        for pid in config.all_pids
    }
    oracles = make_oracles(config.groups, processes, scheduler, DETECT_MS)
    for pid, proc in processes.items():
        proc.omega = oracles[config.group_of[pid]]
        proc.omega.subscribe(proc._on_omega_output)
    injector = FailureInjector(scheduler, processes)

    logs = {pid: [] for pid in processes}
    for pid, proc in processes.items():
        proc.add_deliver_hook(
            lambda p, m, ts: logs[p.pid].append((m.mid, ts, scheduler.now))
        )

    # Steady traffic: one global message per millisecond from group 1.
    def issue(i: int = 0) -> None:
        if i < N_MESSAGES:
            processes[4].a_multicast({0, 1}, payload=f"msg-{i}")
            scheduler.call_after(1.0, issue, i + 1)

    scheduler.call_at(0.0, issue)
    injector.crash_at(0, CRASH_AT_MS)
    print(f"group 0 = {config.members(0)}, primary = 0; crash at t={CRASH_AT_MS}ms")

    scheduler.run(until=2000.0)

    survivor = processes[1]
    print(f"\nafter the run: replica 1 role = {survivor.role}, "
          f"epoch = {survivor.e_cur} (leader {survivor.e_cur.leader})")
    assert survivor.role == PRIMARY, "replica 1 should have taken over"

    correct_logs = {pid: logs[pid] for pid in (1, 2, 3, 4, 5)}
    for pid, log in correct_logs.items():
        assert len(log) == N_MESSAGES, f"replica {pid} delivered {len(log)}"
    check_acyclic_order(correct_logs)
    check_timestamp_order(correct_logs)

    # Where was the outage? Look at delivery-time gaps at replica 1.
    times = [t for _, _, t in logs[1]]
    gaps = sorted(
        ((b - a), a) for a, b in zip(times, times[1:])
    )
    worst_gap, gap_at = gaps[-1]
    print(f"all {N_MESSAGES} messages delivered by every correct replica")
    print(f"worst delivery gap at replica 1: {worst_gap:.1f} ms "
          f"(starting t={gap_at:.1f} ms — detection {DETECT_MS} ms + "
          f"epoch change + catch-up)")
    print("ordering checks passed: no loss, duplication or reordering")


if __name__ == "__main__":
    main()
