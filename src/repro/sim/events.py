"""Discrete-event scheduler.

The scheduler is the heart of the simulation substrate: every network
delivery, timer and client action is an event on a single priority queue.
Simulated time is a float in **milliseconds**. Determinism is guaranteed by
breaking ties on an insertion sequence number, so two runs with the same
seed produce identical event orders.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class EventHandle:
    """Handle returned by :meth:`Scheduler.call_at`, usable to cancel.

    The scheduler's heap holds plain ``(time, seq, handle)`` tuples so
    ordering is decided by C-level float/int comparisons; the handle
    itself is never compared.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired)."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "armed"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class Scheduler:
    """A deterministic discrete-event scheduler.

    Usage::

        sched = Scheduler()
        sched.call_after(1.5, handler, arg1, arg2)
        sched.run(until=100.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._seq = 0
        self._heap: List[tuple] = []
        self._events_processed = 0
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._events_processed

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule event in the past: {time} < now={self._now}"
            )
        handle = EventHandle(time, self._seq, fn, args)
        heapq.heappush(self._heap, (time, self._seq, handle))
        self._seq += 1
        return handle

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(self._now + delay, fn, *args)

    def stop(self) -> None:
        """Request :meth:`run` to return before the next event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of armed (non-cancelled) events still queued."""
        return sum(1 for _, _, e in self._heap if not e.cancelled)

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run events in order until the queue drains.

        Args:
            until: if given, stop once the next event would fire strictly
                after this time; ``now`` is advanced to ``until``.
            max_events: if given, stop after executing this many events
                (safety valve against runaway simulations).

        Returns:
            The simulated time at which the run stopped.
        """
        self._stopped = False
        executed = 0
        heap = self._heap
        heappop = heapq.heappop
        while heap and not self._stopped:
            time, _, event = heap[0]
            if event.cancelled:
                heappop(heap)
                continue
            if until is not None and time > until:
                break
            if max_events is not None and executed >= max_events:
                break
            heappop(heap)
            self._now = time
            event.fn(*event.args)
            self._events_processed += 1
            executed += 1
        if until is not None and self._now < until and not self._stopped:
            self._now = until
        return self._now
