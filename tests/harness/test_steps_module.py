"""Unit tests for the step-measurement helpers (Table 1 machinery)."""

import pytest

from repro.harness.steps import (
    build_bare_system,
    measure_collision_free,
    measure_primcast_convoy,
)


class TestBuildBareSystem:
    def test_builds_all_protocols(self):
        for proto in ("primcast", "primcast-hc", "whitebox", "fastcast"):
            sched, net, config, procs = build_bare_system(proto, 2, 3)
            assert len(procs) == 6

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            build_bare_system("zab", 2, 3)

    def test_clock_offsets_applied(self):
        sched, net, config, procs = build_bare_system(
            "primcast-hc", 2, 3, clock_offsets_ms={0: 5.0}
        )
        assert procs[0].physical_clock.offset_us == 5000.0
        assert procs[1].physical_clock.offset_us == 0.0

    def test_zero_cost_cpu(self):
        sched, net, config, procs = build_bare_system("primcast", 2, 3)
        assert procs[0].cost_model.recv_cost(type("M", (), {"kind": "start"})()) == 0


class TestMeasureCollisionFree:
    def test_latency_scales_with_delta(self):
        r1 = measure_collision_free("primcast", 2, n_groups=4, delta_ms=1.0)
        r10 = measure_collision_free("primcast", 2, n_groups=4, delta_ms=10.0)
        assert r1["max_steps"] == r10["max_steps"] == 3.0

    def test_steps_per_destination_reported(self):
        r = measure_collision_free("whitebox", 2, n_groups=4)
        assert len(r["steps_by_pid"]) == 6
        assert set(r["steps_by_pid"].values()) == {3.0, 4.0}

    def test_non_destinations_not_counted(self):
        r = measure_collision_free("primcast", 1, n_groups=4)
        assert len(r["steps_by_pid"]) == 3
        assert not r["missing"]

    def test_message_breakdown_by_kind(self):
        r = measure_collision_free("primcast", 2, n_groups=4)
        kinds = r["messages_by_kind"]
        assert kinds["start"] == 6
        assert kinds["ack"] == 36


class TestMeasureConvoy:
    def test_window_scales_with_epsilon(self):
        small = measure_primcast_convoy(True, epsilon_ms=0.5)
        large = measure_primcast_convoy(True, epsilon_ms=2.0)
        assert small["window_steps"] < large["window_steps"]

    def test_plain_window_is_two_steps(self):
        r = measure_primcast_convoy(False)
        assert r["window_steps"] == pytest.approx(2.0)

    def test_result_fields(self):
        r = measure_primcast_convoy(False)
        assert set(r) == {
            "protocol",
            "measured_steps",
            "analytic_steps",
            "collision_free_steps",
            "window_steps",
        }
