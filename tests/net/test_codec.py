"""Wire codec tests: lossless round trips and registry exhaustiveness.

The round-trip property uses seeded random message generators and
compares :func:`canonical_message_bytes` before and after a decode —
equal canonical bytes is content equality for the slotted wire classes.
The registry test fails the moment someone adds a wire-message class
without registering a codec for it.
"""

from __future__ import annotations

import inspect
import random

import pytest

import repro.core.messages as messages_mod
from repro.core.epoch import Epoch
from repro.core.messages import (
    Ack,
    AcceptEpoch,
    Bump,
    EpochPromise,
    Multicast,
    NewEpoch,
    NewState,
    Start,
)
from repro.net.codec import (
    BINARY_CODECS,
    CODECS,
    CodecError,
    FrameDecoder,
    canonical_message_bytes,
    decode_message,
    decode_message_binary,
    decode_value,
    decode_value_binary,
    encode_frame,
    encode_hb_frame,
    encode_message,
    encode_message_binary,
    encode_msg_frame,
    encode_value,
    encode_value_binary,
)
from repro.rmcast.fifo import Batch, Envelope

# ----------------------------------------------------------------------
# generators (seeded, minimal shrink-friendly shapes)
# ----------------------------------------------------------------------


def rand_epoch(rng: random.Random) -> Epoch:
    return Epoch(rng.randrange(0, 5), rng.randrange(0, 9))


def rand_payload(rng: random.Random, depth: int = 0):
    choices = ["int", "str", "none", "bool", "float"]
    if depth < 2:
        choices += ["list", "tuple", "dict", "fset"]
    kind = rng.choice(choices)
    if kind == "int":
        return rng.randrange(-1000, 1000)
    if kind == "str":
        return "".join(rng.choice("abcxyz{}\"'\\") for _ in range(rng.randrange(0, 6)))
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "float":
        return rng.choice([0.0, -1.5, 3.25, 1e9])
    if kind == "list":
        return [rand_payload(rng, depth + 1) for _ in range(rng.randrange(0, 3))]
    if kind == "tuple":
        return tuple(rand_payload(rng, depth + 1) for _ in range(rng.randrange(0, 3)))
    if kind == "dict":
        return {
            f"k{i}": rand_payload(rng, depth + 1) for i in range(rng.randrange(0, 3))
        }
    return frozenset(rng.sample(range(10), rng.randrange(0, 3)))


def rand_multicast(rng: random.Random) -> Multicast:
    mid = (rng.randrange(0, 9), rng.randrange(0, 100))
    dest = frozenset(rng.sample(range(4), rng.randrange(1, 4)))
    return Multicast(mid, dest, rand_payload(rng))


def rand_dp(rng: random.Random):
    if rng.random() < 0.5:
        return None
    return (rand_epoch(rng), rng.randrange(0, 50))


def rand_t_seq(rng: random.Random):
    return [
        (rand_epoch(rng), rand_multicast(rng), rng.randrange(0, 100))
        for _ in range(rng.randrange(0, 3))
    ]


MESSAGE_GENERATORS = {
    Start: lambda rng: Start(rand_multicast(rng)),
    Ack: lambda rng: Ack(
        rand_multicast(rng),
        rng.randrange(0, 4),
        rand_epoch(rng),
        rng.randrange(0, 100),
        rng.randrange(0, 9),
        rand_dp(rng),
    ),
    Bump: lambda rng: Bump(
        rand_epoch(rng), rng.randrange(0, 100), rng.randrange(0, 9), rand_dp(rng)
    ),
    NewEpoch: lambda rng: NewEpoch(rand_epoch(rng)),
    EpochPromise: lambda rng: EpochPromise(
        rand_epoch(rng),
        rng.randrange(0, 9),
        rng.randrange(0, 100),
        rand_epoch(rng),
        rand_t_seq(rng),
        rng.randrange(0, 20),
    ),
    NewState: lambda rng: NewState(
        rand_epoch(rng), rand_t_seq(rng), rng.randrange(0, 100), rng.randrange(0, 20)
    ),
    AcceptEpoch: lambda rng: AcceptEpoch(rand_epoch(rng), rng.randrange(0, 9)),
    Envelope: lambda rng: Envelope(
        rng.randrange(0, 9),
        rng.randrange(0, 1000),
        MESSAGE_GENERATORS[Ack](rng) if rng.random() < 0.7 else rand_payload(rng),
        tuple(sorted(rng.sample(range(9), rng.randrange(1, 4)))),
        rng.random() < 0.3,
    ),
    Batch: lambda rng: Batch(
        tuple(
            MESSAGE_GENERATORS[Envelope](rng) for _ in range(rng.randrange(1, 4))
        )
    ),
}


# ----------------------------------------------------------------------
# registry exhaustiveness
# ----------------------------------------------------------------------


def wire_message_classes():
    """Every class that can appear as a frame payload: the protocol
    messages of repro.core.messages (class-level ``kind``) plus the
    rmcast wire wrappers."""
    found = []
    for _name, obj in inspect.getmembers(messages_mod, inspect.isclass):
        if obj.__module__ == messages_mod.__name__ and "kind" in vars(obj):
            found.append(obj)
    return found + [Envelope, Batch]


def test_every_wire_message_has_a_codec():
    missing = [cls for cls in wire_message_classes() if cls not in CODECS]
    assert not missing, (
        f"wire message classes without a codec entry: "
        f"{[c.__name__ for c in missing]} — register them in "
        f"repro.net.codec.CODECS (and add a generator in this test)"
    )


def test_every_wire_message_has_a_generator():
    missing = [cls for cls in wire_message_classes() if cls not in MESSAGE_GENERATORS]
    assert not missing, (
        f"wire message classes without a round-trip generator: "
        f"{[c.__name__ for c in missing]}"
    )


def test_codec_tags_are_unique():
    tags = [tag for tag, _, _ in CODECS.values()]
    assert len(tags) == len(set(tags))


def test_every_wire_message_has_a_binary_codec():
    # The binary fast path must cover exactly the JSON registry: a class
    # registered in one but not the other would make the codec setting
    # change which messages are encodable at all.
    assert set(BINARY_CODECS) == set(CODECS), (
        "CODECS and BINARY_CODECS must register the same classes — "
        "add the missing binary encoder/decoder in repro.net.codec"
    )


def test_binary_codec_tags_are_unique():
    tags = [tag for tag, _, _ in BINARY_CODECS.values()]
    assert len(tags) == len(set(tags))


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------


@pytest.mark.parametrize("cls", sorted(MESSAGE_GENERATORS, key=lambda c: c.__name__))
def test_message_roundtrip_property(cls):
    rng = random.Random(f"codec-{cls.__name__}")
    for _ in range(50):
        msg = MESSAGE_GENERATORS[cls](rng)
        encoded = encode_message(msg)
        decoded = decode_message(encoded)
        assert type(decoded) is cls
        assert canonical_message_bytes(decoded) == canonical_message_bytes(msg)


def test_value_roundtrip_property():
    rng = random.Random("codec-values")
    for _ in range(200):
        value = rand_payload(rng)
        assert decode_value(encode_value(value)) == value


@pytest.mark.parametrize("cls", sorted(MESSAGE_GENERATORS, key=lambda c: c.__name__))
def test_binary_message_roundtrip_property(cls):
    rng = random.Random(f"codec-bin-{cls.__name__}")
    for _ in range(50):
        msg = MESSAGE_GENERATORS[cls](rng)
        encoded = encode_message_binary(msg)
        decoded = decode_message_binary(encoded)
        assert type(decoded) is cls
        assert canonical_message_bytes(decoded) == canonical_message_bytes(msg)
        # Bit-stable: re-encoding the decoded message reproduces the
        # exact bytes (unordered containers are canonically sorted).
        assert encode_message_binary(decoded) == encoded


@pytest.mark.parametrize("cls", sorted(MESSAGE_GENERATORS, key=lambda c: c.__name__))
def test_cross_format_roundtrip_property(cls):
    # Both codecs are lossless encodings of the same content: a message
    # that crosses formats (binary decode -> JSON encode -> JSON decode
    # -> binary encode) must reproduce the original bytes of *each*
    # format — nodes running different codec settings interoperate.
    rng = random.Random(f"codec-cross-{cls.__name__}")
    for _ in range(25):
        msg = MESSAGE_GENERATORS[cls](rng)
        json_bytes = encode_message(msg)
        bin_bytes = encode_message_binary(msg)
        via_binary = decode_message_binary(bin_bytes)
        assert encode_message(via_binary) == json_bytes
        via_json = decode_message(json_bytes)
        assert encode_message_binary(via_json) == bin_bytes


def test_binary_value_roundtrip_property():
    rng = random.Random("codec-bin-values")
    for _ in range(200):
        value = rand_payload(rng)
        out = bytearray()
        encode_value_binary(value, out)
        decoded, off = decode_value_binary(bytes(out), 0)
        assert off == len(out)
        assert decoded == value


def test_binary_bigint_escape_roundtrip():
    # Width-0 escape: ints beyond 8 bytes still round-trip exactly.
    for n in (2**70, -(2**80), 2**63, -(2**63) - 1):
        out = bytearray()
        encode_value_binary(n, out)
        decoded, off = decode_value_binary(bytes(out), 0)
        assert off == len(out)
        assert decoded == n


def test_binary_rejects_trailing_garbage():
    rng = random.Random("codec-bin-trailing")
    encoded = encode_message_binary(MESSAGE_GENERATORS[Ack](rng))
    with pytest.raises(CodecError):
        decode_message_binary(encoded + b"\x00")


def test_epoch_is_not_flattened_to_a_tuple():
    # Epoch is a NamedTuple; the codec must keep its identity, not
    # degrade it to a plain tuple (a real bug this test pins).
    e = Epoch(3, 7)
    decoded = decode_value(encode_value(e))
    assert isinstance(decoded, Epoch)
    assert decoded.leader == 7


def test_unregistered_message_raises():
    class Rogue:
        kind = "rogue"

    with pytest.raises(CodecError):
        encode_message(Rogue())


def test_plain_dict_payload_cannot_collide_with_tags():
    sneaky = {"__": "ep", "n": 1, "l": 2}
    decoded = decode_value(encode_value(sneaky))
    assert decoded == sneaky
    assert not isinstance(decoded, Epoch)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------


def test_frame_decoder_arbitrary_chunking():
    rng = random.Random("framing")
    frames = [
        encode_message(MESSAGE_GENERATORS[Ack](rng)) for _ in range(20)
    ]
    stream = b"".join(encode_frame(f) for f in frames)
    for trial in range(10):
        decoder = FrameDecoder()
        out = []
        i = 0
        while i < len(stream):
            n = rng.randrange(1, 7)
            out.extend(decoder.feed(stream[i : i + n]))
            i += n
        assert len(out) == len(frames)
        assert out == frames


def test_frame_decoder_rejects_oversized_length():
    decoder = FrameDecoder()
    with pytest.raises(CodecError):
        decoder.feed(b"\xff\xff\xff\xff")


def test_frame_decoder_mixed_binary_json_chunked_stream():
    # One TCP stream interleaving binary and JSON frames (message and
    # heartbeat), fed in arbitrary chunk sizes: the decoder dispatches
    # per frame on the first body byte, so mixed-codec peers — e.g. a
    # rolling upgrade — interoperate on a single connection.
    rng = random.Random("mixed-framing")
    expected = []
    stream = b""
    for _ in range(40):
        binary = rng.random() < 0.5
        if rng.random() < 0.25:
            pid = rng.randrange(0, 9)
            stream += encode_hb_frame(pid, binary=binary)
            expected.append(("hb", pid, None))
        else:
            src = rng.randrange(0, 9)
            cls = rng.choice(sorted(MESSAGE_GENERATORS, key=lambda c: c.__name__))
            msg = MESSAGE_GENERATORS[cls](rng)
            stream += encode_msg_frame(src, msg, binary=binary)
            expected.append(("m", src, msg))
    for _trial in range(10):
        decoder = FrameDecoder()
        out = []
        i = 0
        while i < len(stream):
            n = rng.randrange(1, 9)
            out.extend(decoder.feed(stream[i : i + n]))
            i += n
        assert len(out) == len(expected)
        for frame, (kind, ident, msg) in zip(out, expected):
            assert frame["t"] == kind
            if kind == "hb":
                assert int(frame["pid"]) == ident
            else:
                assert int(frame["src"]) == ident
                # Binary frames arrive pre-decoded ("msg"); JSON frames
                # carry the tagged dict ("m") — exactly what the host
                # dispatches on.
                decoded = frame.get("msg")
                if decoded is None:
                    decoded = decode_message(frame["m"])
                assert canonical_message_bytes(decoded) == canonical_message_bytes(msg)
