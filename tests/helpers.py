"""Shared helpers for the test suite: mini system builders and drivers."""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.baselines import ClassicProcess, FastCastProcess, WhiteBoxProcess
from repro.core import GroupConfig, Multicast, PrimCastProcess, uniform_groups
from repro.sim import (
    ConstantLatency,
    CostModel,
    JitteredLatency,
    LatencyModel,
    Network,
    PhysicalClock,
    Scheduler,
    child_rng,
)
from repro.sim.clock import US_PER_MS

PROTOCOL_CLASSES = {
    "primcast": PrimCastProcess,
    "whitebox": WhiteBoxProcess,
    "fastcast": FastCastProcess,
    "classic": ClassicProcess,
}


class MiniSystem:
    """A small deployment plus recording of every a-delivery."""

    def __init__(
        self,
        protocol: str = "primcast",
        n_groups: int = 2,
        group_size: int = 3,
        latency: Optional[LatencyModel] = None,
        cost_model: Optional[CostModel] = None,
        seed: int = 1,
        hybrid_clock: bool = False,
        epsilon_ms: float = 1.0,
    ):
        self.config = uniform_groups(n_groups, group_size)
        self.scheduler = Scheduler()
        self.network = Network(
            self.scheduler, latency or ConstantLatency(1.0), child_rng(seed, "net")
        )
        self.processes: Dict[int, Any] = {}
        skew_rng = child_rng(seed, "skew")
        for pid in self.config.all_pids:
            if protocol == "primcast":
                clock = PhysicalClock(
                    self.scheduler,
                    skew_rng.uniform(-epsilon_ms, epsilon_ms) * US_PER_MS,
                )
                proc = PrimCastProcess(
                    pid,
                    self.config,
                    self.scheduler,
                    self.network,
                    cost_model,
                    physical_clock=clock,
                    hybrid_clock=hybrid_clock,
                )
            else:
                proc = PROTOCOL_CLASSES[protocol](
                    pid, self.config, self.scheduler, self.network, cost_model
                )
            self.processes[pid] = proc
        # pid -> [(mid, final_ts, time)]
        self.deliveries: Dict[int, List[Tuple[Any, int, float]]] = {
            pid: [] for pid in self.config.all_pids
        }
        self.multicasts: Dict[Any, Multicast] = {}
        for proc in self.processes.values():
            proc.add_deliver_hook(self._hook)

    def _hook(self, proc: Any, multicast: Multicast, final_ts: int) -> None:
        self.deliveries[proc.pid].append((multicast.mid, final_ts, self.scheduler.now))
        self.multicasts[multicast.mid] = multicast

    # ------------------------------------------------------------------

    def multicast(self, sender_pid: int, dest: Set[int], payload: Any = None) -> Multicast:
        m = self.processes[sender_pid].a_multicast(dest, payload)
        self.multicasts[m.mid] = m
        return m

    def run(self, until: float = 1000.0) -> None:
        self.scheduler.run(until=until)

    def run_to_quiescence(self, max_time: float = 100000.0) -> None:
        """Run until no events remain (or max_time)."""
        self.scheduler.run(until=max_time)

    # ------------------------------------------------------------------
    # views for the property checkers
    # ------------------------------------------------------------------

    @property
    def logs(self) -> Dict[int, List[Tuple[Any, int, float]]]:
        return self.deliveries

    def dest_pids_of(self) -> Dict[Any, Set[int]]:
        return {
            mid: set(self.config.dest_pids(m.dest))
            for mid, m in self.multicasts.items()
        }

    def correct_pids(self) -> Set[int]:
        return {
            pid for pid, proc in self.processes.items() if not proc.crashed
        }


def random_workload(
    system: MiniSystem,
    n_messages: int,
    seed: int = 7,
    max_dest_groups: Optional[int] = None,
    spread_ms: float = 50.0,
) -> List[Multicast]:
    """Inject ``n_messages`` multicasts from random senders at random
    times with random destination sets."""
    rng = random.Random(seed)
    n_groups = system.config.n_groups
    max_d = max_dest_groups or n_groups
    sent = []
    all_pids = system.config.all_pids
    for _ in range(n_messages):
        sender = system.processes[rng.choice(all_pids)]
        n_dest = rng.randint(1, max_d)
        dest = set(rng.sample(range(n_groups), n_dest))
        when = rng.uniform(0, spread_ms)

        def issue(proc=sender, d=frozenset(dest)) -> None:
            m = proc.a_multicast(d, payload=None)
            system.multicasts[m.mid] = m
            sent.append(m)

        system.scheduler.call_at(when, issue)
    return sent
