"""Tests for delivered-state compaction."""

import pytest

from helpers import MiniSystem, random_workload
from repro.verify import check_all


def test_compaction_frees_delivered_state():
    sys_ = MiniSystem(n_groups=2)
    for _ in range(10):
        sys_.multicast(1, {0, 1})
    sys_.run_to_quiescence()
    proc = sys_.processes[0]
    assert len(proc.acks) == 10
    freed = proc.compact_delivered()
    assert freed == 10
    assert not proc.acks
    assert not proc._final_cache
    assert len(proc.delivered) == 10  # dedup state kept
    assert len(proc.t_list) == 10  # epoch-change state kept


def test_periodic_compaction_does_not_change_results():
    def run(compact):
        sys_ = MiniSystem(n_groups=3, seed=4)
        if compact:
            for proc in sys_.processes.values():
                proc.post_job(
                    lambda p=proc: _compact_loop(p), delay=5.0
                )
        random_workload(sys_, 60, seed=12)
        sys_.run_to_quiescence()
        return {
            pid: [(mid, ts) for mid, ts, _ in log]
            for pid, log in sys_.logs.items()
        }, sys_

    def _compact_loop(proc):
        proc.compact_delivered()
        if not proc.crashed:
            proc.post_job(lambda: _compact_loop(proc), delay=5.0)

    plain, _ = run(compact=False)
    compacted, sys_ = run(compact=True)
    assert plain == compacted
    check_all(
        sys_.logs, set(sys_.multicasts), sys_.dest_pids_of(), sys_.correct_pids()
    )


def test_straggler_ack_after_compaction_is_harmless():
    sys_ = MiniSystem(n_groups=2)
    m = sys_.multicast(4, {0, 1})
    sys_.run_to_quiescence()
    proc = sys_.processes[0]
    proc.compact_delivered()
    from repro.core.messages import Ack

    # A duplicate-ish late ack (e.g. resent after an epoch change).
    proc._on_ack(5, Ack(sys_.multicasts[m.mid], 1, proc.e_cur, 1, 5))
    assert m.mid in proc.delivered
    assert len(proc.delivery_log) == 1  # no re-delivery


def _compact_all(sys_):
    for proc in sys_.processes.values():
        proc.compact_delivered()


def test_watermark_truncates_t_after_reports_refresh():
    """Delivered-prefix reports piggyback on acks, so they lag deliveries
    by the in-flight window: after one quiescent round the watermark is
    still behind, and a second round of traffic (whose acks carry the
    round-1 deliveries) unlocks truncation of the round-1 prefix."""
    sys_ = MiniSystem(n_groups=2)
    round1 = [sys_.multicast(1, {0, 1}) for _ in range(10)]
    sys_.run(until=1000.0)
    _compact_all(sys_)
    # Round 2 refreshes every member's report past the round-1 prefix.
    for _ in range(3):
        sys_.multicast(1, {0, 1})
    sys_.run(until=2000.0)
    _compact_all(sys_)
    for proc in sys_.processes.values():
        assert proc._t_base >= 10, f"pid {proc.pid} t_base {proc._t_base}"
        assert len(proc.t_list) <= 3
        dropped = {m.mid for m in round1}
        assert not dropped & set(proc.t_by_mid)
        # my_acks tuples of truncated entries are pruned with them...
        assert not {t for t in proc.my_acks if t[0] in dropped}
        # ...while the delivered dedupe set keeps every mid.
        assert dropped <= proc.delivered


def test_straggler_rebuilt_tracker_is_swept_by_next_compaction():
    sys_ = MiniSystem(n_groups=2)
    m = sys_.multicast(4, {0, 1})
    sys_.run_to_quiescence()
    proc = sys_.processes[0]
    proc.compact_delivered()
    assert m.mid not in proc.acks
    from repro.core.messages import Ack

    # The straggler ack rebuilds an ack tracker for the delivered mid
    # (observing its clock value must keep feeding the protocol)...
    proc._on_ack(5, Ack(sys_.multicasts[m.mid], 1, proc.e_cur, 1, 5))
    assert m.mid in proc.acks
    # ...and the next sweep reclaims it instead of leaking it forever.
    proc.compact_delivered()
    assert m.mid not in proc.acks
