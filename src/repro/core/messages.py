"""PrimCast wire messages (the tuples of Algorithms 1–3).

Every message carries a short ``kind`` string used by the CPU cost model
(:mod:`repro.sim.costs`) and, where applicable, the multicast id ``mid``
used by the genuineness tracer. ``start`` is the only payload-bearing
kind; acks and bumps are the small mergeable control messages §7.1
credits for PrimCast's throughput.
"""

from __future__ import annotations

from typing import Any, FrozenSet, List, Optional, Tuple

from .epoch import Epoch

#: Delivered-prefix report piggybacked on acks and bumps for the state
#: GC watermark (see ``PrimCastProcess.compact_delivered``): (epoch the
#: report was made in, absolute count of leading T positions the sender
#: has a-delivered). Costless on the wire model (message kinds and
#: counts are unchanged) and ignored by receivers that predate it.
DpReport = Tuple[Epoch, int]

#: Multicast id: (origin pid, per-origin sequence number). Totally
#: ordered, used to break final-timestamp ties (Algorithm 1, line 30).
MessageId = Tuple[int, int]


class Multicast:
    """An application message submitted via a-multicast.

    Attributes:
        mid: unique, totally ordered id.
        dest: destination *group* ids (``m.dest`` in the paper).
        payload: opaque application payload.
    """

    __slots__ = ("mid", "dest", "payload")

    def __init__(self, mid: MessageId, dest: FrozenSet[int], payload: Any = None) -> None:
        if not dest:
            raise ValueError("a multicast needs at least one destination group")
        self.mid = mid
        self.dest = frozenset(dest)
        self.payload = payload

    @property
    def is_local(self) -> bool:
        """True when addressed to a single group (§2.2)."""
        return len(self.dest) == 1

    def __repr__(self) -> str:
        return f"<Multicast {self.mid} dest={sorted(self.dest)}>"


class Start:
    """⟨start, m⟩ — carries the payload to every destination process."""

    __slots__ = ("multicast",)
    kind = "start"

    def __init__(self, multicast: Multicast) -> None:
        self.multicast = multicast

    @property
    def mid(self) -> MessageId:
        return self.multicast.mid


class Ack:
    """⟨ack, m, h, E, ts, q⟩ — process ``q`` of group ``h`` acknowledges
    local timestamp ``ts`` for ``m``, proposed in epoch ``E``.

    Carries the multicast object so a remote ack also acts as a start
    tuple (Algorithm 2, line 47).
    """

    __slots__ = ("multicast", "group", "epoch", "ts", "sender", "dp")
    kind = "ack"

    def __init__(
        self,
        multicast: Multicast,
        group: int,
        epoch: Epoch,
        ts: int,
        sender: int,
        dp: Optional[DpReport] = None,
    ) -> None:
        self.multicast = multicast
        self.group = group
        self.epoch = epoch
        self.ts = ts
        self.sender = sender
        self.dp = dp

    @property
    def mid(self) -> MessageId:
        return self.multicast.mid

    def __repr__(self) -> str:
        return (
            f"<Ack m={self.multicast.mid} g={self.group} {self.epoch} "
            f"ts={self.ts} from={self.sender}>"
        )


class Bump:
    """⟨bump, E, ts, q⟩ — clock value propagation inside a group
    (Algorithm 2, line 50). ``E`` is the sender's *promised* epoch, so a
    process promised to a newer epoch cannot influence quorum-clock()
    computations of older epochs (§5.2.4)."""

    __slots__ = ("epoch", "ts", "sender", "dp")
    kind = "bump"

    def __init__(
        self, epoch: Epoch, ts: int, sender: int, dp: Optional[DpReport] = None
    ) -> None:
        self.epoch = epoch
        self.ts = ts
        self.sender = sender
        self.dp = dp


class NewEpoch:
    """⟨new-epoch, E⟩ — a candidate announces epoch E (Algorithm 3)."""

    __slots__ = ("epoch",)
    kind = "new-epoch"

    def __init__(self, epoch: Epoch) -> None:
        self.epoch = epoch


class EpochPromise:
    """⟨promise, E, p, clock, E_cur, T⟩ — a member promises epoch E and
    reports its state to the candidate (Algorithm 3, line 64).

    ``t_seq`` is the live *suffix* of the sender's T: everything below
    absolute position ``t_base`` was truncated by state GC, which is
    only legal once every group member delivered it — so the candidate
    can reconstruct nothing it could ever need from the prefix. Payload
    size is O(undelivered), not O(history)."""

    __slots__ = ("epoch", "sender", "clock", "e_cur", "t_seq", "t_base")
    kind = "promise"

    def __init__(
        self,
        epoch: Epoch,
        sender: int,
        clock: int,
        e_cur: Epoch,
        t_seq: List[Tuple[Epoch, Multicast, int]],
        t_base: int = 0,
    ) -> None:
        self.epoch = epoch
        self.sender = sender
        self.clock = clock
        self.e_cur = e_cur
        self.t_seq = t_seq
        self.t_base = t_base


class NewState:
    """⟨new-state, E, T, ts⟩ — the candidate installs the chosen state
    (Algorithm 3, line 69). ``t_seq`` starts at absolute position
    ``t_base`` (the winning promise's truncation watermark)."""

    __slots__ = ("epoch", "t_seq", "ts", "t_base")
    kind = "new-state"

    def __init__(
        self,
        epoch: Epoch,
        t_seq: List[Tuple[Epoch, Multicast, int]],
        ts: int,
        t_base: int = 0,
    ) -> None:
        self.epoch = epoch
        self.t_seq = t_seq
        self.ts = ts
        self.t_base = t_base


class AcceptEpoch:
    """⟨accept, E, p⟩ — a member confirms it installed epoch E
    (Algorithm 3, line 74)."""

    __slots__ = ("epoch", "sender")
    kind = "accept-epoch"

    def __init__(self, epoch: Epoch, sender: int) -> None:
        self.epoch = epoch
        self.sender = sender


PRIMCAST_KINDS = (
    "start",
    "ack",
    "bump",
    "new-epoch",
    "promise",
    "new-state",
    "accept-epoch",
)
