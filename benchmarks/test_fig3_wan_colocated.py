"""Figure 3 — WAN with colocated leaders: 1, 2, 4 and 8 destinations.

Regenerates the four subfigures (throughput vs p95 latency per number of
destination groups) and asserts the paper's claims for this deployment:

* PrimCast and FastCast share the same latency floor until saturation
  (FastCast delivers quickly at non-leader replicas with n=3), while
  White-Box pays an extra intra-group step at followers — visible in
  the all-client p95;
* PrimCast's peak throughput is a multiple of FastCast's (paper: 1.6x
  at 1 destination up to 5x at 2);
* the convoy effect is negligible here (it scales with cross-group
  latency, which is LAN-like), so hybrid clocks change nothing.
"""

import pytest
from conftest import full_mode

from repro.harness.experiments import figure3
from repro.harness.report import max_throughput_by_protocol, print_results
from repro.harness.runner import run_load_point
from repro.workload.scenarios import wan_colocated_leaders


def test_fig3_wan_colocated(benchmark):
    dest_counts = (1, 2, 4, 8) if full_mode() else (1, 2, 4)
    by_dest = figure3(full=full_mode(), dest_counts=dest_counts)
    for d, results in by_dest.items():
        print_results(f"Figure 3: WAN colocated leaders, {d} destination group(s)", results)
    benchmark.pedantic(
        run_load_point,
        args=("primcast", wan_colocated_leaders(), 2, 4),
        kwargs=dict(warmup_ms=300, measure_ms=400, keep_samples=False),
        rounds=1,
        iterations=1,
    )

    for d, results in by_dest.items():
        peak = max_throughput_by_protocol(results)
        # PrimCast sustains more load than FastCast at every dest count
        # (paper: 1.6x at 1 dest, up to 5x at 2).
        factor = 1.5 if d == 1 else 2.0
        assert peak["primcast"] >= factor * peak["fastcast"], f"d={d}"
        assert peak["primcast"] >= peak["whitebox"], f"d={d}"

        by_key = {(r.protocol, r.outstanding): r for r in results}
        low = min(r.outstanding for r in results)
        # White-Box p95 (all replicas) sits above PrimCast's: followers
        # pay one extra intra-group step (tens of ms here).
        if d >= 2:
            assert (
                by_key[("whitebox", low)].latency["p95"]
                > by_key[("primcast", low)].latency["p95"] + 5.0
            ), f"d={d}"
        # Hybrid clocks: no effect with colocated leaders.
        assert by_key[("primcast-hc", low)].latency["p95"] == pytest.approx(
            by_key[("primcast", low)].latency["p95"], rel=0.5
        )
