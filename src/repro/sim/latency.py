"""Network latency models.

A latency model maps a ``(src, dst)`` process pair to a one-way message
delay in milliseconds, optionally with jitter. The paper's deployments
(Table 2) are expressed as RTT matrices between *sites* with a 5% standard
deviation; :class:`SiteMatrixLatency` reproduces that. All models return
**one-way** latency (half the RTT).

For the hot transmit path the network asks once per directed pair for
:meth:`LatencyModel.pair_params` — the ``(mean, stddev, floor)`` triple
behind :meth:`LatencyModel.sample` — and then draws the truncated-normal
sample inline with **exactly** the arithmetic and RNG consumption of
``sample()``: one ``rng.gauss(mean, stddev)`` call iff ``stddev != 0``,
clamped below at ``floor``. Models that cannot express their delay this
way return ``None`` and the network falls back to calling ``sample()``
per message.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from .._backend import mypyc_attr

#: The per-pair sampling recipe: (mean_ms, stddev_ms, floor_ms). A zero
#: stddev means the delay is exactly the mean and no randomness is drawn.
PairParams = Tuple[float, float, float]


@mypyc_attr(allow_interpreted_subclasses=True)
class LatencyModel:
    """Base class for one-way latency models."""

    __slots__ = ()

    def sample(self, src: int, dst: int, rng: random.Random) -> float:
        """Return a one-way latency in ms for a message from src to dst."""
        raise NotImplementedError

    def mean(self, src: int, dst: int) -> float:
        """Return the mean one-way latency in ms (no jitter)."""
        raise NotImplementedError

    def pair_params(self, src: int, dst: int) -> Optional[PairParams]:
        """``(mean, stddev, floor)`` such that drawing
        ``rng.gauss(mean, stddev)`` (iff ``stddev != 0``) clamped at
        ``floor`` is bit-identical to :meth:`sample` for this pair, or
        ``None`` when the model cannot be expressed this way (the
        network then calls ``sample()`` per message)."""
        return None


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``delay_ms`` (one communication step).

    Used by the step-counting experiments for Table 1, where latency must
    be an exact multiple of the communication step.
    """

    __slots__ = ("delay_ms",)

    def __init__(self, delay_ms: float = 1.0) -> None:
        if delay_ms < 0:
            raise ValueError("delay must be non-negative")
        self.delay_ms = delay_ms

    def sample(self, src: int, dst: int, rng: random.Random) -> float:
        return self.delay_ms

    def mean(self, src: int, dst: int) -> float:
        return self.delay_ms

    def pair_params(self, src: int, dst: int) -> Optional[PairParams]:
        return (self.delay_ms, 0.0, 0.0)

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay_ms}ms)"


class JitteredLatency(LatencyModel):
    """A single mean latency with truncated-normal jitter.

    ``stddev_frac`` is the standard deviation as a fraction of the mean
    (the paper uses 5%). Samples are truncated below at 10% of the mean so
    jitter can never produce a negative or implausibly small delay.
    """

    __slots__ = ("mean_ms", "stddev_frac")

    def __init__(self, mean_ms: float, stddev_frac: float = 0.05) -> None:
        if mean_ms < 0:
            raise ValueError("mean must be non-negative")
        if stddev_frac < 0:
            raise ValueError("stddev_frac must be non-negative")
        self.mean_ms = mean_ms
        self.stddev_frac = stddev_frac

    def sample(self, src: int, dst: int, rng: random.Random) -> float:
        if self.mean_ms == 0 or self.stddev_frac == 0:
            return self.mean_ms
        value = rng.gauss(self.mean_ms, self.mean_ms * self.stddev_frac)
        floor = 0.1 * self.mean_ms
        return value if value > floor else floor

    def mean(self, src: int, dst: int) -> float:
        return self.mean_ms

    def pair_params(self, src: int, dst: int) -> Optional[PairParams]:
        mean = self.mean_ms
        if mean == 0 or self.stddev_frac == 0:
            return (mean, 0.0, 0.0)
        return (mean, mean * self.stddev_frac, 0.1 * mean)

    def __repr__(self) -> str:
        return f"JitteredLatency({self.mean_ms}ms ±{self.stddev_frac:.0%})"


class SiteMatrixLatency(LatencyModel):
    """Latency defined by a symmetric RTT matrix between *sites*.

    Args:
        site_of: mapping from process id to site index.
        rtt_ms: square matrix of round-trip times between sites;
            ``rtt_ms[i][j]`` is the RTT between site i and site j. The
            diagonal is the intra-site RTT.
        stddev_frac: jitter as a fraction of the mean (default 5%, as in
            the paper's emulation).

    One-way latency is half the RTT, with truncated-normal jitter.
    """

    __slots__ = ("site_of", "rtt_ms", "stddev_frac", "_pair_cache")

    def __init__(
        self,
        site_of: Dict[int, int],
        rtt_ms: Sequence[Sequence[float]],
        stddev_frac: float = 0.05,
    ) -> None:
        n = len(rtt_ms)
        for row in rtt_ms:
            if len(row) != n:
                raise ValueError("rtt_ms must be a square matrix")
        for i in range(n):
            for j in range(n):
                if abs(rtt_ms[i][j] - rtt_ms[j][i]) > 1e-9:
                    raise ValueError(f"rtt_ms must be symmetric (at {i},{j})")
                if rtt_ms[i][j] < 0:
                    raise ValueError("RTTs must be non-negative")
        for pid, site in site_of.items():
            if not 0 <= site < n:
                raise ValueError(f"process {pid} mapped to unknown site {site}")
        self.site_of = dict(site_of)
        self.rtt_ms: List[List[float]] = [list(row) for row in rtt_ms]
        self.stddev_frac = stddev_frac
        # (src, dst) -> (mean, stddev, floor), filled on first use. The
        # pair space is tiny (n_processes²) and each entry is consulted
        # once per wire message (or once per pair via pair_params), so
        # the two dict lookups + division are worth caching away.
        self._pair_cache: Dict[Tuple[int, int], PairParams] = {}

    def mean(self, src: int, dst: int) -> float:
        return self.rtt_ms[self.site_of[src]][self.site_of[dst]] / 2.0

    def _params(self, src: int, dst: int) -> PairParams:
        entry = self._pair_cache.get((src, dst))
        if entry is None:
            mean = self.rtt_ms[self.site_of[src]][self.site_of[dst]] / 2.0
            entry = (mean, mean * self.stddev_frac, 0.1 * mean)
            self._pair_cache[(src, dst)] = entry
        return entry

    def sample(self, src: int, dst: int, rng: random.Random) -> float:
        mean, stddev, floor = self._params(src, dst)
        if mean == 0 or stddev == 0:
            return mean
        value = rng.gauss(mean, stddev)
        return value if value > floor else floor

    def pair_params(self, src: int, dst: int) -> Optional[PairParams]:
        mean, stddev, floor = self._params(src, dst)
        if mean == 0 or stddev == 0:
            return (mean, 0.0, 0.0)
        return (mean, stddev, floor)

    def __repr__(self) -> str:
        n_sites = len(self.rtt_ms)
        return f"SiteMatrixLatency({n_sites} sites ±{self.stddev_frac:.0%})"
