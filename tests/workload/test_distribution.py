"""Statistical tests on the workload's destination distribution (§7.2)."""

import random
from collections import Counter

from repro.harness.runner import build_system
from repro.sim.costs import zero_cost_model
from repro.workload.generator import Client
from repro.workload.scenarios import lan_scenario


def make_client(n_dest, n_groups=8, pid=0):
    scenario = lan_scenario(n_groups=n_groups, group_size=3)
    system = build_system("primcast", scenario, cost_model=zero_cost_model())
    replica = system.processes[pid]
    return Client(replica, n_dest, n_groups, 1, random.Random(99))


def test_other_groups_chosen_uniformly():
    client = make_client(n_dest=2, n_groups=8, pid=0)
    counts = Counter()
    n = 7000
    for _ in range(n):
        dest = client._pick_dest()
        for g in dest:
            if g != 0:
                counts[g] += 1
    # Each of the 7 other groups should get ~n/7 picks.
    expected = n / 7
    for g in range(1, 8):
        assert abs(counts[g] - expected) < 0.15 * expected, counts


def test_no_duplicate_groups_in_destination():
    client = make_client(n_dest=4)
    for _ in range(200):
        dest = client._pick_dest()
        assert len(dest) == 4  # sets: all distinct


def test_all_groups_destination_includes_everyone():
    client = make_client(n_dest=8)
    assert client._pick_dest() == set(range(8))


def test_payload_passed_through():
    scenario = lan_scenario(n_groups=2, group_size=3)
    system = build_system("primcast", scenario, cost_model=zero_cost_model())
    client = Client(
        system.processes[0], 1, 2, 1, random.Random(0), payload={"op": "x"}
    )
    client.start()
    system.scheduler.run(until=5.0)
    # The replica delivered its own message; the payload survived.
    delivered = system.processes[0].delivery_log
    assert delivered
    mid = delivered[0][0]
    assert system.processes[0].started[mid].payload == {"op": "x"}
