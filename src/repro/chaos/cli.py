"""Command-line entry point: ``python -m repro.chaos <command>``.

Three subcommands, mirroring the ``repro.analysis`` CLI conventions
(exit 0 — clean, 1 — violations found / not reproduced, 2 — usage
error; ``--json`` swaps the human-readable summary for a
machine-readable report):

``run``
    Run a seeded campaign: ``python -m repro.chaos run --seeds 8
    --scenario fig3-reduced``. Exit 0 iff no case violated a property.
    The CI ``chaos-smoke`` job gates on exactly this invocation.

``replay``
    Re-run a reproducer file written by ``shrink`` (or a hand-edited
    schedule). When the file carries expected violations, exit 0 iff
    the replay reproduces them exactly; otherwise exit 0 iff the
    replay is clean.

``shrink``
    Minimize the schedule of one violating case and write a replay
    file. Exit 0 on a successful shrink, 1 when the case does not
    violate (nothing to shrink).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from ..harness.parallel import SweepExecutor
from .explorer import (
    CHAOS_SCENARIOS,
    MUTATIONS,
    CaseSpec,
    ProgressFn,
    run_campaign,
    run_case,
)
from .shrink import shrink_case

#: Replay file format version (bumped on incompatible changes).
REPLAY_VERSION = 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Deterministic fault-schedule exploration for the "
        "PrimCast reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a seeded chaos campaign")
    run_p.add_argument(
        "--scenario",
        default="fig3-reduced",
        choices=sorted(CHAOS_SCENARIOS),
        help="chaos scenario (default: fig3-reduced)",
    )
    run_p.add_argument(
        "--seeds",
        type=int,
        default=8,
        metavar="N",
        help="number of seeds to explore (default: 8)",
    )
    run_p.add_argument(
        "--seed-base",
        type=int,
        default=0,
        metavar="S",
        help="first seed; the campaign runs seeds S..S+N-1 (default: 0)",
    )
    run_p.add_argument(
        "--mutation",
        default="",
        choices=list(MUTATIONS),
        help="protocol mutation to inject (shrinker self-validation)",
    )
    run_p.add_argument(
        "--allow-over-budget",
        action="store_true",
        help="let schedules crash beyond the per-group quorum budget",
    )
    run_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="J",
        help="worker processes (default: 1; report is identical either way)",
    )
    run_p.add_argument(
        "--max-cases",
        type=int,
        default=None,
        metavar="N",
        help="case budget; seeds beyond it are skipped and reported as "
        "skipped_seeds (never silently dropped)",
    )
    run_p.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="content-addressed result cache: completed cases checkpoint "
        "here as they finish, so a killed campaign re-run with the same "
        "cache resumes with zero re-executions (default: no cache)",
    )
    run_p.add_argument(
        "--progress-every",
        type=int,
        default=0,
        metavar="N",
        help="print campaign progress to stderr every N completed cases "
        "(default: 0 = only the final stats line)",
    )
    run_p.add_argument(
        "--json", action="store_true", help="emit the full JSON campaign report"
    )
    run_p.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="also write the JSON campaign report to FILE",
    )

    replay_p = sub.add_parser("replay", help="re-run a reproducer file")
    replay_p.add_argument("file", type=Path, help="replay file (from shrink)")
    replay_p.add_argument(
        "--json", action="store_true", help="emit a JSON replay report"
    )

    shrink_p = sub.add_parser("shrink", help="minimize one violating case")
    shrink_p.add_argument(
        "--scenario",
        default="fig3-reduced",
        choices=sorted(CHAOS_SCENARIOS),
        help="chaos scenario (default: fig3-reduced)",
    )
    shrink_p.add_argument("--seed", type=int, required=True, help="case seed")
    shrink_p.add_argument(
        "--mutation",
        default="",
        choices=list(MUTATIONS),
        help="protocol mutation to inject (shrinker self-validation)",
    )
    shrink_p.add_argument(
        "--allow-over-budget",
        action="store_true",
        help="let the schedule crash beyond the per-group quorum budget",
    )
    shrink_p.add_argument(
        "--max-runs",
        type=int,
        default=200,
        metavar="N",
        help="simulation-run budget for the search (default: 200)",
    )
    shrink_p.add_argument(
        "--out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the replay file here (default: stdout only)",
    )
    shrink_p.add_argument(
        "--json", action="store_true", help="emit a JSON shrink report"
    )
    return parser


def _dump(data: Dict[str, Any]) -> str:
    return json.dumps(data, sort_keys=True, indent=2) + "\n"


def _cmd_run(args: argparse.Namespace) -> int:
    seeds = list(range(args.seed_base, args.seed_base + args.seeds))

    # Progress and executor stats go to stderr only: stdout (--json) and
    # --out carry the canonical report, which must stay byte-identical
    # across jobs/cache settings (the CI campaign-smoke job cmp's them).
    progress: Optional[ProgressFn] = None
    if args.progress_every > 0:
        every = args.progress_every

        def _emit_progress(done: int, total: int, violations: int) -> None:
            if done % every == 0 or done == total:
                print(
                    f"chaos progress: {done}/{total} cases, "
                    f"{violations} violations",
                    file=sys.stderr,
                )

        progress = _emit_progress

    cache = None
    if args.cache_dir is not None:
        from ..harness.cache import ResultCache

        cache = ResultCache(root=args.cache_dir)
    executor = SweepExecutor(jobs=args.jobs, cache=cache)
    try:
        report = run_campaign(
            args.scenario,
            seeds,
            mutation=args.mutation,
            allow_over_budget=args.allow_over_budget,
            executor=executor,
            max_cases=args.max_cases,
            progress=progress,
        )
        stats = dict(executor.total_stats)
        pool_stats = executor.pool_stats()
    finally:
        executor.close()
    print(
        f"chaos campaign: cases={stats['points']} cached={stats['hits']} "
        f"simulated={stats['ran']} jobs={args.jobs} "
        f"workers={pool_stats.get('spawned', 0)} "
        f"skipped={len(report.skipped_seeds)}",
        file=sys.stderr,
    )
    text = report.to_json()
    if args.out is not None:
        args.out.write_text(text, encoding="utf-8")
    if args.json:
        sys.stdout.write(text)
    else:
        summary = report.to_dict()["summary"]
        print(
            f"chaos run: scenario={args.scenario} cases={summary['cases']} "
            f"crashes={summary['crashes_applied']} "
            f"violations={summary['violations']}"
            + (
                f" skipped={summary['skipped_cases']}"
                if report.skipped_seeds
                else ""
            )
        )
        for case in report.failing_cases:
            for violation in case.violations:
                print(f"  seed {case.spec.seed}: [{violation.prop}] {violation.message}")
    return 1 if report.failing_cases else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        payload = json.loads(args.file.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read replay file: {exc}", file=sys.stderr)
        return 2
    if payload.get("version") != REPLAY_VERSION:
        print(
            f"error: unsupported replay file version {payload.get('version')!r}",
            file=sys.stderr,
        )
        return 2
    spec = CaseSpec(**payload["spec"])
    expect = payload.get("expect")
    result = run_case(spec)
    got = [v.to_dict() for v in result.violations]
    if expect is not None:
        reproduced = got == expect
        code = 0 if reproduced else 1
    else:
        reproduced = not got
        code = 0 if not got else 1
    if args.json:
        sys.stdout.write(
            _dump(
                {
                    "spec": spec.canonical(),
                    "expect": expect,
                    "violations": got,
                    "reproduced": reproduced,
                }
            )
        )
    else:
        verdict = "reproduced" if reproduced else "NOT reproduced"
        print(
            f"chaos replay: seed={spec.seed} violations={len(got)} ({verdict})"
        )
        for violation in result.violations:
            print(f"  [{violation.prop}] {violation.message}")
    return code


def _cmd_shrink(args: argparse.Namespace) -> int:
    spec = CaseSpec(
        scenario=args.scenario,
        seed=args.seed,
        mutation=args.mutation,
        allow_over_budget=args.allow_over_budget,
    )
    result = shrink_case(spec, max_runs=args.max_runs)
    if result is None:
        print(
            f"chaos shrink: seed {args.seed} does not violate — nothing to shrink"
        )
        return 1
    replay_file = {
        "version": REPLAY_VERSION,
        "spec": result.minimized.canonical(),
        "expect": [v.to_dict() for v in result.final.violations],
    }
    if args.out is not None:
        args.out.write_text(_dump(replay_file), encoding="utf-8")
    if args.json:
        sys.stdout.write(_dump(result.to_dict()))
    else:
        print(
            f"chaos shrink: [{result.prop}] {result.original_events} -> "
            f"{result.minimized_events} events in {result.runs} runs"
        )
        if args.out is not None:
            print(f"  replay file: {args.out}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors; normalize --help's 0.
        return int(exc.code or 0)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "replay":
        return _cmd_replay(args)
    return _cmd_shrink(args)
