#!/usr/bin/env python3
"""Geo-distributed deployment: delivery latency and the convoy effect.

Reproduces, at example scale, the heart of the paper's WAN evaluation
(§7.5): 8 groups, each in its own region (90 ms RTT between regions,
30 ms within), clients colocated with every replica. It runs PrimCast,
PrimCast HC, White-Box and FastCast at a low and a high load and prints
the latency picture, then demonstrates the *worst-case* convoy with the
crafted two-message scenario of §3.2/§6 — where hybrid clocks provably
shave the failure-free latency from 5 steps to 4 + 2ε/Δ.

Run:
    python examples/wan_convoy.py
"""

import sys

from repro.harness.report import format_table
from repro.harness.runner import run_load_point
from repro.harness.steps import measure_primcast_convoy
from repro.workload.scenarios import wan_distributed_leaders


def main() -> None:
    quick = "--quick" in sys.argv
    scenario = wan_distributed_leaders()
    print(f"scenario: {scenario.name}")
    print(f"  cross-region RTT 90 ms, intra-region RTT 30 ms, 8 groups x 3\n")

    loads = ((2, "low load"),) if quick else ((2, "low load"), (32, "high load"))
    rows = []
    for outstanding, label in loads:
        for protocol in ("primcast", "primcast-hc", "whitebox", "fastcast"):
            result = run_load_point(
                protocol,
                scenario,
                n_dest_groups=2,
                outstanding=outstanding,
                warmup_ms=300.0 if quick else 600.0,
                measure_ms=400.0 if quick else 800.0,
                keep_samples=False,
            )
            rows.append(
                [
                    label,
                    protocol,
                    f"{result.throughput_kmsgs:.2f}k",
                    f"{result.latency['p50']:.1f}",
                    f"{result.latency['p95']:.1f}",
                ]
            )
    print(format_table(
        ["load", "protocol", "tput (msg/s)", "p50 (ms)", "p95 (ms)"], rows
    ))
    print("""
PrimCast delivers at every replica about one intra-group step (~15 ms)
before FastCast and well before White-Box's followers; under load,
delivery latencies grow as messages wait for earlier-timestamped ones
(the convoy effect).
""")

    print("Worst-case convoy (crafted scenario, Δ = 10 ms):")
    plain = measure_primcast_convoy(hybrid=False, delta_ms=10.0)
    rows = [["PrimCast", plain["analytic_steps"], plain["measured_steps"]]]
    for eps in (0.5, 1.0, 2.0):
        hc = measure_primcast_convoy(hybrid=True, delta_ms=10.0, epsilon_ms=eps)
        rows.append([f"PrimCast HC (eps={eps}ms)", hc["analytic_steps"], hc["measured_steps"]])
    print(format_table(["variant", "bound (steps)", "measured (steps)"], rows))
    print("\nWith 2ε an order of magnitude below Δ, loosely synchronized")
    print("clocks recover almost a full communication step of the convoy.")


if __name__ == "__main__":
    main()
