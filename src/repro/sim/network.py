"""Simulated message-passing network.

Channels are pairwise, reliable and FIFO (the paper's prototype relies on
TCP, §7.1): messages between a given ``(src, dst)`` pair are delivered in
send order even when sampled latencies would reorder them. Channels never
create, corrupt or duplicate messages. A crashed process neither sends
nor receives.

The transport keeps one :class:`_Channel` object per directed pair,
created lazily on first use. A channel caches everything the hot path
needs — the receiver's enqueue callback, the latency model's
``(mean, stddev, floor)`` sampling recipe and the FIFO arrival clamp —
so delivering a message costs one dict lookup instead of four (receiver,
latency cache, arrival clamp read, arrival clamp write). The inline
sampling consumes the RNG and performs float arithmetic **exactly** as
``LatencyModel.sample`` does, so the event schedule is bit-identical to
the per-call form (pinned by the golden determinism suite).

The network also hosts the observability hooks used by the evaluation
harness and the verification layer:

* ``counts_by_kind`` — how many messages of each protocol kind were sent
  (drives the Table 1 message-complexity measurements).
* ``trace_hooks`` — callbacks invoked on every send, used by the
  genuineness checker to assert that only the sender and destinations of
  a multicast exchange messages for it.
* ``add_transmit_interceptor`` — callbacks that may delay or swallow a
  departure (fault injection, flight recording). Replaces the historical
  pattern of assigning over ``network.transmit`` on the instance, which
  a slotted (or compiled) Network cannot support.
"""

from __future__ import annotations

import random
from collections import Counter
from heapq import heappush
from math import inf
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from .events import Scheduler
from .latency import LatencyModel

if TYPE_CHECKING:  # pragma: no cover
    from .process import SimProcess

TraceHook = Callable[[int, int, Any, float], None]

#: An interceptor sees every departure before the transport does. It
#: returns the (possibly adjusted) departure time to let the message
#: proceed, or ``None`` to swallow it entirely (the interceptor then owns
#: re-injection, if any). Interceptors run in installation order.
TransmitInterceptor = Callable[[int, int, Any, float], Optional[float]]

#: Minimum spacing between two deliveries on one channel, used to preserve
#: FIFO order when jitter would reorder messages (models TCP in-order
#: delivery on one connection).
_FIFO_EPSILON = 1e-9

#: Directed pairs are keyed as ``src * _PID_STRIDE + dst`` — an int key
#: hashes faster than a tuple and allocates nothing. Pids must stay below
#: the stride (enforced at channel creation).
_PID_STRIDE = 1 << 20


class _Channel:
    """Cached hot-path state of one directed ``(src, dst)`` pair."""

    __slots__ = ("enqueue", "mean", "stddev", "floor", "last", "is_self", "direct")

    def __init__(
        self,
        enqueue: Callable[[int, Any], None],
        is_self: bool,
        direct: bool,
        mean: float,
        stddev: float,
        floor: float,
    ) -> None:
        #: the receiver's (pre-bound) enqueue_message callback
        self.enqueue = enqueue
        #: src == dst: zero latency, no FIFO clamp (not a wire)
        self.is_self = is_self
        #: latency params known — sample inline; else fall back to
        #: ``latency.sample`` per message (custom models)
        self.direct = direct
        self.mean = mean
        self.stddev = stddev
        self.floor = floor
        #: arrival time of the last message on this channel (FIFO clamp)
        self.last = -inf


class Network:
    """Routes messages between registered processes.

    Args:
        scheduler: the shared discrete-event scheduler.
        latency: one-way latency model.
        rng: RNG used for latency sampling (derive via
            :func:`repro.sim.rng.child_rng` for determinism).
    """

    __slots__ = (
        "scheduler",
        "latency",
        "rng",
        "processes",
        "counts_by_kind",
        "messages_sent",
        "trace_hooks",
        "_interceptors",
        "_channels",
        "_blocked_pairs",
        "_parked",
        "_gauss",
    )

    def __init__(
        self, scheduler: Scheduler, latency: LatencyModel, rng: random.Random
    ) -> None:
        self.scheduler = scheduler
        self.latency = latency
        self.rng = rng
        # Bound once: the jitter draw happens for nearly every wire
        # message, and ``self.rng.gauss`` re-binds the method each time.
        self._gauss = rng.gauss
        self.processes: Dict[int, "SimProcess"] = {}
        self.counts_by_kind: "Counter[str]" = Counter()
        self.messages_sent = 0
        self.trace_hooks: List[TraceHook] = []
        self._interceptors: List[TransmitInterceptor] = []
        # Directed pair -> channel, keyed by src * _PID_STRIDE + dst.
        self._channels: Dict[int, _Channel] = {}
        # Directed pair -> number of active blocks. Refcounting (rather
        # than a plain set) makes overlapping partitions compose: a pair
        # blocked by two partitions stays blocked until *both* are
        # lifted, so healing one partition cannot prematurely release
        # parked traffic of the other (which would break channel FIFO
        # for messages parked behind the still-standing block).
        self._blocked_pairs: Dict[Tuple[int, int], int] = {}
        # Messages caught by a partition. Channels are reliable (§2.1):
        # before the GST traffic is *delayed*, not lost, so parked
        # messages are released when the pair heals.
        self._parked: List[Tuple[int, int, Any]] = []

    def register(self, proc: "SimProcess") -> None:
        """Attach a process; its pid must be unique."""
        if proc.pid in self.processes:
            raise ValueError(f"duplicate pid {proc.pid}")
        self.processes[proc.pid] = proc

    def add_trace_hook(self, hook: TraceHook) -> None:
        """Register ``hook(src, dst, msg, depart_time)`` on every send."""
        self.trace_hooks.append(hook)

    def add_transmit_interceptor(self, interceptor: TransmitInterceptor) -> None:
        """Register an interceptor on the transmit path (see
        :data:`TransmitInterceptor`). Used by the chaos nemesis (delay
        spikes) and the flight recorder."""
        self._interceptors.append(interceptor)

    def remove_transmit_interceptor(self, interceptor: TransmitInterceptor) -> None:
        """Remove a previously installed interceptor (no-op if absent)."""
        try:
            self._interceptors.remove(interceptor)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def block_pair(self, a: int, b: int) -> None:
        """Park all traffic between a and b (both directions): partition.

        Blocks are refcounted: blocking the same pair twice (e.g. via
        two overlapping :meth:`partition` calls) requires two unblocks
        before traffic flows again.
        """
        blocked = self._blocked_pairs
        blocked[(a, b)] = blocked.get((a, b), 0) + 1
        blocked[(b, a)] = blocked.get((b, a), 0) + 1

    def unblock_pair(self, a: int, b: int) -> None:
        """Drop one block on the pair; parked traffic is released once no
        block remains (and never sooner — see ``_blocked_pairs``)."""
        blocked = self._blocked_pairs
        for pair in ((a, b), (b, a)):
            count = blocked.get(pair, 0)
            if count > 1:
                blocked[pair] = count - 1
            elif count == 1:
                del blocked[pair]
        self._release_parked()

    def partition(self, side_a: List[int], side_b: List[int]) -> None:
        """Block all pairs across the two sides (traffic is delayed, not
        lost — the pre-GST asynchrony of §2.1)."""
        for a in side_a:
            for b in side_b:
                self.block_pair(a, b)

    def heal(self) -> None:
        """Remove all partitions and release parked traffic in order."""
        self._blocked_pairs.clear()
        self._release_parked()

    def _release_parked(self) -> None:
        if not self._parked:
            return
        parked, self._parked = self._parked, []
        for src, dst, msg in parked:
            if (src, dst) in self._blocked_pairs:
                self._parked.append((src, dst, msg))
            else:
                self._deliver(src, dst, msg, self.scheduler.now)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------

    def _channel(self, src: int, dst: int, key: int) -> _Channel:
        """Build (and cache) the channel for one directed pair."""
        receiver = self.processes.get(dst)
        if receiver is None:
            raise KeyError(f"unknown destination pid {dst}")
        if not (0 <= src < _PID_STRIDE and 0 <= dst < _PID_STRIDE):
            raise ValueError(
                f"pids must be in [0, {_PID_STRIDE}) for channel keying, "
                f"got ({src}, {dst})"
            )
        if src == dst:
            ch = _Channel(receiver._enqueue_cb, True, False, 0.0, 0.0, 0.0)
        else:
            params = self.latency.pair_params(src, dst)
            if params is None:
                ch = _Channel(receiver._enqueue_cb, False, False, 0.0, 0.0, 0.0)
            else:
                mean, stddev, floor = params
                ch = _Channel(receiver._enqueue_cb, False, True, mean, stddev, floor)
        self._channels[key] = ch
        return ch

    def transmit(self, src: int, dst: int, msg: Any, depart_time: float) -> None:
        """Send ``msg`` from src to dst, departing at ``depart_time``.

        Called by :class:`~repro.sim.process.SimProcess` once the sender's
        CPU has finished the handler that produced the message. Local
        (self) messages skip the network but still go through the
        receiver's inbox, so handling them costs CPU like any other.

        This is the hottest function of the substrate: every wire message
        of every protocol passes through it once. The body is the fast
        path — interceptors, trace hooks and fault injection only cost
        when actually in use, and delivery is inlined rather than
        delegated.
        """
        if self._interceptors:
            for interceptor in self._interceptors:
                adjusted = interceptor(src, dst, msg, depart_time)
                if adjusted is None:
                    return
                depart_time = adjusted
        self.messages_sent += 1
        # All wire message classes carry a class-level ``kind`` (asserted
        # by the core/messages test suite); the try/except only triggers
        # for ad-hoc payloads injected by tests.
        try:
            kind = msg.kind
        except AttributeError:
            kind = None
        if kind is not None:
            self.counts_by_kind[kind] += 1
        if self.trace_hooks:
            for hook in self.trace_hooks:
                hook(src, dst, msg, depart_time)

        if self._blocked_pairs and (src, dst) in self._blocked_pairs:
            self._parked.append((src, dst, msg))
            return

        try:
            ch = self._channels[src * _PID_STRIDE + dst]
        except KeyError:
            ch = self._channel(src, dst, src * _PID_STRIDE + dst)
        if ch.is_self:
            arrival = depart_time
        else:
            if ch.direct:
                # Inlined LatencyModel.sample: same RNG consumption, same
                # float arithmetic (see latency.pair_params).
                stddev = ch.stddev
                if stddev != 0.0:
                    value = self._gauss(ch.mean, stddev)
                    floor = ch.floor
                    arrival = depart_time + (value if value > floor else floor)
                else:
                    arrival = depart_time + ch.mean
            else:
                arrival = depart_time + self.latency.sample(src, dst, self.rng)
            # Enforce per-channel FIFO (TCP-like): never deliver before a
            # previously sent message on the same channel.
            if arrival <= ch.last:
                arrival = ch.last + _FIFO_EPSILON
            ch.last = arrival
        # Equivalent to scheduler.schedule(...) with the past-check
        # elided: arrival >= depart_time >= now by construction.
        sched = self.scheduler
        heappush(sched._heap, (arrival, sched._seq, ch.enqueue, (src, msg)))
        sched._seq += 1

    def _deliver(self, src: int, dst: int, msg: Any, depart_time: float) -> None:
        """Slow-path delivery, used when parked traffic is released."""
        ch = self._channels.get(src * _PID_STRIDE + dst)
        if ch is None:
            ch = self._channel(src, dst, src * _PID_STRIDE + dst)
        if ch.is_self:
            arrival = depart_time
        else:
            if ch.direct:
                stddev = ch.stddev
                if stddev != 0.0:
                    value = self._gauss(ch.mean, stddev)
                    floor = ch.floor
                    arrival = depart_time + (value if value > floor else floor)
                else:
                    arrival = depart_time + ch.mean
            else:
                arrival = depart_time + self.latency.sample(src, dst, self.rng)
            if arrival <= ch.last:
                arrival = ch.last + _FIFO_EPSILON
            ch.last = arrival
        self.scheduler.schedule(arrival, ch.enqueue, (src, msg))
