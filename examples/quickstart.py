#!/usr/bin/env python3
"""Quickstart: atomic multicast across two replica groups.

Builds the smallest interesting PrimCast deployment — two groups of
three replicas on a 1 ms network — multicasts a few messages (local and
global), and prints each replica's delivery log to show the partial
order: messages sharing a destination group are delivered in the same
relative order everywhere, and every delivery carries the same final
timestamp at every destination.

Run:
    python examples/quickstart.py
"""

from repro.core import PrimCastProcess, uniform_groups
from repro.sim import ConstantLatency, Network, Scheduler, child_rng


def main() -> None:
    # 1. Membership: two disjoint groups of three replicas.
    config = uniform_groups(n_groups=2, group_size=3)
    print(f"deployment: {config}")
    print(f"  group 0 = {config.members(0)}, group 1 = {config.members(1)}")

    # 2. Simulation substrate: scheduler + 1 ms constant-latency network.
    scheduler = Scheduler()
    network = Network(scheduler, ConstantLatency(1.0), child_rng(42, "net"))

    # 3. One PrimCast process per replica.
    replicas = {
        pid: PrimCastProcess(pid, config, scheduler, network)
        for pid in config.all_pids
    }

    # 4. Observe deliveries.
    logs = {pid: [] for pid in replicas}
    for pid, replica in replicas.items():
        replica.add_deliver_hook(
            lambda proc, m, final_ts: logs[proc.pid].append(
                (m.payload, final_ts, scheduler.now)
            )
        )

    # 5. Multicast: two local messages and two global ones, from
    #    different senders.
    replicas[0].a_multicast({0}, payload="local to group 0")
    replicas[4].a_multicast({0, 1}, payload="global A")
    replicas[3].a_multicast({1}, payload="local to group 1")
    replicas[1].a_multicast({0, 1}, payload="global B")

    # 6. Run the simulation to quiescence.
    scheduler.run(until=100.0)

    # 7. Show per-replica delivery orders.
    print("\ndelivery logs (payload, final timestamp, sim time ms):")
    for pid in sorted(logs):
        print(f"  replica {pid} (group {config.group_of[pid]}):")
        for payload, final_ts, when in logs[pid]:
            print(f"    t={when:6.3f}  ts={final_ts}  {payload!r}")

    # The two global messages appear in the same order at every replica.
    global_orders = {
        tuple(p for p, _, _ in logs[pid] if p.startswith("global"))
        for pid in logs
    }
    assert len(global_orders) == 1, "global messages must be totally ordered"
    print(f"\nglobal messages ordered identically everywhere: {global_orders.pop()}")


if __name__ == "__main__":
    main()
