"""White-box tests of PrimCastProcess internals and edge cases."""

import pytest

from helpers import MiniSystem
from repro.core.epoch import Epoch
from repro.core.messages import Ack, Bump, Multicast, Start
from repro.core.process import FOLLOWER, PRIMARY, PROMISED


def make_multicast(mid, dest):
    return Multicast(mid, frozenset(dest))


class TestAckHandling:
    def test_follower_ignores_ack_from_wrong_epoch_leader(self):
        """Line 42: only acks from the *current* epoch's leader are
        echoed."""
        sys_ = MiniSystem(n_groups=1)
        follower = sys_.processes[1]
        m = make_multicast((9, 0), {0})
        stale_epoch = Epoch(1, 2)  # p2 owns it; not follower's E_cur
        follower._on_ack(2, Ack(m, 0, stale_epoch, 5, 2))
        assert m.mid not in follower.t_by_mid

    def test_follower_echoes_current_primary_ack(self):
        sys_ = MiniSystem(n_groups=1)
        follower = sys_.processes[1]
        m = make_multicast((9, 0), {0})
        follower._on_ack(0, Ack(m, 0, follower.e_cur, 1, 0))
        assert follower.t_by_mid[m.mid] == (follower.e_cur, 1)
        assert (m.mid, follower.e_cur, 1) in follower.my_acks

    def test_primary_does_not_echo_its_own_ack(self):
        sys_ = MiniSystem(n_groups=1)
        primary = sys_.processes[0]
        m = make_multicast((9, 0), {0})
        primary._on_start(9, Start(m))
        acks_before = len(primary.my_acks)
        # Self-delivery of its own ack must not create a second one.
        primary._on_ack(0, Ack(m, 0, primary.e_cur, 1, 0))
        assert len(primary.my_acks) == acks_before

    def test_remote_ack_carries_start(self):
        """Line 47: a remote ack acts as the start tuple, so a primary
        can propose without ever seeing the start message."""
        sys_ = MiniSystem(n_groups=2)
        primary0 = sys_.processes[0]
        m = make_multicast((9, 0), {0, 1})
        remote_epoch = Epoch(0, 3)
        primary0._on_ack(3, Ack(m, 1, remote_epoch, 4, 3))
        assert m.mid in primary0.started
        assert m.mid in primary0.t_by_mid  # proposed immediately

    def test_remote_ack_bumps_clock_and_emits_bump(self):
        sys_ = MiniSystem(n_groups=2)
        follower = sys_.processes[1]
        m = make_multicast((9, 0), {0, 1})
        sent_before = sys_.network.messages_sent
        follower._on_ack(3, Ack(m, 1, Epoch(0, 3), 7, 3))
        sys_.run(until=0.1)
        assert follower.clock == 7
        assert sys_.network.counts_by_kind.get("bump", 0) >= 1

    def test_remote_ack_below_clock_no_bump(self):
        sys_ = MiniSystem(n_groups=2)
        follower = sys_.processes[1]
        follower.clock = 10
        m = make_multicast((9, 0), {0, 1})
        follower._on_ack(3, Ack(m, 1, Epoch(0, 3), 7, 3))
        sys_.run(until=0.1)
        assert sys_.network.counts_by_kind.get("bump", 0) == 0


class TestDeliveryGating:
    def test_promised_process_does_not_deliver(self):
        """Line 53: delivery only in primary/follower roles. Build a
        fully deliverable message by hand, then flip the role."""
        sys_ = MiniSystem(n_groups=1)
        follower = sys_.processes[1]
        m = make_multicast((9, 0), {0})
        follower._on_ack(0, Ack(m, 0, follower.e_cur, 1, 0))  # echo + T
        follower.role = PROMISED
        follower._on_ack(2, Ack(m, 0, follower.e_cur, 1, 2))
        follower._on_ack(1, Ack(m, 0, follower.e_cur, 1, 1))  # own echo
        assert m.mid not in follower.delivered  # gated by the role
        follower.role = FOLLOWER
        follower._try_deliver()
        assert m.mid in follower.delivered

    def test_quorum_clock_gates_delivery(self):
        """A message whose final ts exceeds quorum-clock stays pending."""
        sys_ = MiniSystem(n_groups=2)
        p1 = sys_.processes[1]
        m = make_multicast((9, 0), {0, 1})
        # Feed p1 everything except clock evidence: quorums of acks with
        # a high remote timestamp.
        p1._on_ack(0, Ack(m, 0, Epoch(0, 0), 1, 0))
        for sender in (3, 4):
            p1._on_ack(sender, Ack(m, 1, Epoch(0, 3), 9, sender))
        p1._on_ack(2, Ack(m, 0, Epoch(0, 0), 1, 2))
        assert p1.final_ts(m.mid) == 9
        assert m.mid not in p1.delivered  # quorum-clock still below 9
        # Bumps from a quorum of group members push quorum-clock past 9.
        p1._on_bump(0, Bump(Epoch(0, 0), 9, 0))
        p1._on_bump(2, Bump(Epoch(0, 0), 9, 2))
        p1.clock = 9
        p1._try_deliver()
        assert m.mid in p1.delivered

    def test_min_ts_uses_t_entry(self):
        sys_ = MiniSystem(n_groups=1)
        primary = sys_.processes[0]
        m = make_multicast((9, 0), {0})
        primary._on_start(9, Start(m))
        # Proposed with ts 1; nothing else known.
        assert primary.min_ts(m.mid) == 1

    def test_min_ts_lower_bound_without_proposal(self):
        sys_ = MiniSystem(n_groups=2)
        p1 = sys_.processes[1]
        m = make_multicast((9, 0), {0, 1})
        p1.started[m.mid] = m
        # No T entry: bound comes from 1 + min(leader clock, quorum clock).
        assert p1.min_ts(m.mid) == 1


class TestEpochBookkeeping:
    def test_deferred_clock_tuples_fold_on_install(self):
        sys_ = MiniSystem(n_groups=1)
        follower = sys_.processes[2]
        future = Epoch(1, 1)
        m = make_multicast((9, 0), {0})
        # Ack from a future epoch: ignored by min-clock for now.
        follower._on_ack(1, Ack(m, 0, future, 6, 1))
        assert follower.min_clock(1) == 0
        # Promise + install the future epoch.
        from repro.core.messages import NewEpoch, NewState

        follower._on_new_epoch(1, NewEpoch(future))
        follower._on_new_state(1, NewState(future, [(future, m, 6)], 6))
        assert follower.e_cur == future
        assert follower.min_clock(1) == 6

    def test_new_state_rebuilds_pending_and_heaps(self):
        sys_ = MiniSystem(n_groups=1)
        follower = sys_.processes[1]
        from repro.core.messages import NewEpoch, NewState

        m1 = make_multicast((9, 0), {0})
        m2 = make_multicast((9, 1), {0})
        epoch = Epoch(1, 2)
        follower._on_new_epoch(2, NewEpoch(epoch))
        follower._on_new_state(
            2, NewState(epoch, [(epoch, m1, 1), (epoch, m2, 2)], 2)
        )
        assert follower.pending == {m1.mid, m2.mid}
        assert follower.t_by_mid[m2.mid] == (epoch, 2)

    def test_promise_rejected_below_promised_epoch(self):
        sys_ = MiniSystem(n_groups=1)
        follower = sys_.processes[1]
        from repro.core.messages import NewEpoch

        follower._on_new_epoch(2, NewEpoch(Epoch(5, 2)))
        assert follower.e_prom == Epoch(5, 2)
        sent_before = sys_.network.messages_sent
        follower._on_new_epoch(0, NewEpoch(Epoch(1, 0)))  # stale
        assert follower.e_prom == Epoch(5, 2)

    def test_candidate_selects_longest_t_from_highest_epoch(self):
        sys_ = MiniSystem(n_groups=1, group_size=5)
        candidate = sys_.processes[1]
        from repro.core.messages import EpochPromise, NewEpoch

        candidate._start_epoch_change()
        epoch = candidate.e_prom
        e_old, e_new = Epoch(0, 0), Epoch(1, 4)
        m1, m2 = make_multicast((9, 0), {0}), make_multicast((9, 1), {0})
        long_old = [(e_old, m1, 1), (e_old, m2, 2)]
        short_new = [(e_new, m1, 3)]
        candidate._on_epoch_promise(2, EpochPromise(epoch, 2, 5, e_old, long_old))
        candidate._on_epoch_promise(3, EpochPromise(epoch, 3, 2, e_new, short_new))
        candidate._on_epoch_promise(4, EpochPromise(epoch, 4, 9, e_old, []))
        # Quorum (3 of 5) reached: new-state must carry the T of the
        # HIGHEST e_cur (short_new), not the longest overall, and the
        # max clock over all promises (9).
        assert epoch in candidate._new_state_sent
        sys_.run(until=10)
        assert candidate.t_list == short_new
        assert candidate.clock >= 9
