"""`repro.net` — the real-network backend.

Runs the *same* protocol processes that drive the simulator over
asyncio TCP sockets with real wall clocks:

* :mod:`repro.net.runtime` — the backend-agnostic seam
  (:class:`~repro.net.runtime.Runtime`, the ``SchedulerAPI`` /
  ``TransportAPI`` / ``LeaderOracle`` protocols) plus the sim adapter;
* :mod:`repro.net.codec` — length-prefixed JSON framing for the wire
  messages (lossless round trips, exhaustive registry);
* :mod:`repro.net.transport` — per-peer connection manager with
  reconnect + exponential backoff;
* :mod:`repro.net.election` — heartbeat-based Ω;
* :mod:`repro.net.host` — the asyncio adapter: scheduler/transport
  facades hosting unmodified ``PrimCastProcess`` objects, one node per
  OS process;
* :mod:`repro.net.cluster` — multi-process localhost cluster launcher;
* :mod:`repro.net.differential` — sim-vs-net differential harness.

Only the seam module is imported eagerly; the asyncio machinery loads
on demand so the simulation path never pays for it.
"""

from .runtime import (
    LeaderOracle,
    ProcessLike,
    Runtime,
    RuntimeProbe,
    SchedulerAPI,
    SimRuntime,
    TimerHandle,
    TransportAPI,
)

__all__ = [
    "LeaderOracle",
    "ProcessLike",
    "Runtime",
    "RuntimeProbe",
    "SchedulerAPI",
    "SimRuntime",
    "TimerHandle",
    "TransportAPI",
]
