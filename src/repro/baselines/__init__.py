"""Baseline atomic multicast protocols the paper evaluates against.

* :mod:`repro.baselines.fastcast` — FastCast (DSN'17), 4/8 steps.
* :mod:`repro.baselines.whitebox` — White-Box (DSN'19), 3/5 at leaders.
* :mod:`repro.baselines.classic` — consensus-based multicast of §4.3
  ([19]/[23]; 6/12 steps), the family PrimCast improves on.
* :mod:`repro.baselines.skeen` — classic Skeen's protocol (educational,
  not part of the paper's evaluation).
"""

from .base import GroupProtocolProcess
from .classic import CLASSIC_KINDS, ClassicProcess
from .fastcast import FASTCAST_KINDS, FastCastProcess
from .skeen import SkeenMulticast, SkeenProcess
from .whitebox import WHITEBOX_KINDS, WhiteBoxProcess

__all__ = [
    "GroupProtocolProcess",
    "ClassicProcess",
    "CLASSIC_KINDS",
    "FastCastProcess",
    "FASTCAST_KINDS",
    "WhiteBoxProcess",
    "WHITEBOX_KINDS",
    "SkeenProcess",
    "SkeenMulticast",
]
