"""Consensus substrate: single-decree Paxos + a replicated log."""

from .log import ReplicatedLog
from .paxos import (
    PAXOS_KINDS,
    Accept,
    Accepted,
    Ballot,
    PaxosNode,
    Prepare,
    Promise,
)

__all__ = [
    "PaxosNode",
    "ReplicatedLog",
    "Prepare",
    "Promise",
    "Accept",
    "Accepted",
    "Ballot",
    "PAXOS_KINDS",
]
