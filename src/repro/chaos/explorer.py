"""Seeded chaos campaigns: generate schedules, run them, aggregate.

A *case* is one (chaos scenario, seed) pair: the seed derives the fault
schedule (:func:`~repro.chaos.schedule.generate_schedule`), the client
workload and every RNG stream of the simulation substrate, so a case is
a pure function of its :class:`CaseSpec` — same spec, byte-identical
:class:`CaseResult`. A *campaign* runs N cases and aggregates their
violations into a :class:`CampaignReport` whose canonical JSON is
byte-identical across runs and across ``jobs`` settings.

Fan-out reuses the figure harness's
:class:`~repro.harness.parallel.SweepExecutor` workers: ``CaseSpec``
implements the same :class:`~repro.harness.parallel.WorkSpec` duck type
as ``PointSpec`` (picklable, ``run()``/``canonical()``), so campaigns
shard across cores with the exact merge-in-spec-order machinery the
sweep executor already pins down.

Safety checking is two-layered, violations captured as data:

* during the run, :class:`~repro.verify.InvariantMonitor` rides along on
  every PrimCast process; a structural violation aborts the case and is
  recorded as an ``"invariant"`` violation;
* after the horizon, :func:`~repro.verify.collect_violations` checks the
  §2.2 properties over the correct processes' delivery logs.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.messages import MessageId, Multicast
from ..harness.parallel import SweepExecutor, build_scenario
from ..harness.runner import build_system
from ..sim.failures import FailureInjector
from ..sim.rng import child_rng
from ..verify import (
    PropertyViolation,
    Violation,
    attach_monitors,
    check_truncation_safety,
    collect_violations,
)
from .nemesis import Nemesis
from .schedule import FaultSchedule, ScheduleShape, generate_schedule

#: Mutations the explorer can inject for shrinker self-validation.
#: ``"no-quorum-wait"`` flips the test-only
#: ``PrimCastProcess._chaos_no_quorum_wait`` switch: deliver on final-ts
#: decision without waiting for the quorum-clock guards (lines 28-30).
MUTATIONS = ("", "no-quorum-wait")


@dataclass(frozen=True)
class ChaosScenario:
    """A deployment + workload sized for fault exploration."""

    name: str
    #: Table 2 registry key (``repro.harness.parallel.SCENARIO_BUILDERS``)
    base: str
    n_groups: int
    group_size: int
    protocol: str = "primcast"
    horizon_ms: float = 3000.0
    n_messages: int = 40
    send_window_ms: float = 45.0
    omega_poll_ms: float = 10.0

    @property
    def hybrid_clock(self) -> bool:
        return self.protocol.endswith("-hc")

    def shape(self) -> ScheduleShape:
        return ScheduleShape(
            n_groups=self.n_groups,
            group_size=self.group_size,
            horizon_ms=self.horizon_ms,
            hybrid_clock=self.hybrid_clock,
        )


#: Named chaos scenarios the CLI accepts. ``fig3-reduced`` is the
#: CI smoke campaign's deployment: the Figure 3 WAN geometry (colocated
#: leaders) at a reduced 3×3 shape so 8 seeds finish in seconds.
CHAOS_SCENARIOS: Dict[str, ChaosScenario] = {
    "lan-small": ChaosScenario(
        name="lan-small", base="LAN", n_groups=2, group_size=3,
        horizon_ms=2000.0, omega_poll_ms=4.0,
    ),
    "fig3-reduced": ChaosScenario(
        name="fig3-reduced", base="WAN - colocated leaders",
        n_groups=3, group_size=3, horizon_ms=6000.0, omega_poll_ms=25.0,
    ),
    "fig4-reduced": ChaosScenario(
        name="fig4-reduced", base="WAN - distributed leaders",
        n_groups=2, group_size=3, horizon_ms=5000.0, omega_poll_ms=25.0,
    ),
    "fig3-reduced-hc": ChaosScenario(
        name="fig3-reduced-hc", base="WAN - colocated leaders",
        n_groups=3, group_size=3, protocol="primcast-hc",
        horizon_ms=6000.0, omega_poll_ms=25.0,
    ),
    # Long-horizon LAN campaign: enough traffic past the fault window
    # that the state-GC watermark advances and truncation actually
    # happens under crashes/partitions/epoch changes — the case-level
    # truncation-safety check is only interesting when it does.
    "lan-sustained": ChaosScenario(
        name="lan-sustained", base="LAN - sustained", n_groups=2,
        group_size=3, horizon_ms=20000.0, n_messages=400,
        send_window_ms=18000.0, omega_poll_ms=4.0,
    ),
}


@dataclass(frozen=True)
class CaseSpec:
    """One chaos case, fully described and picklable (a ``WorkSpec``).

    ``schedule_json`` is empty for generated schedules (derived from the
    seed) or a canonical :meth:`FaultSchedule.to_json` string for
    replay/shrink candidates.
    """

    scenario: str
    seed: int
    mutation: str = ""
    allow_over_budget: bool = False
    schedule_json: str = ""

    def canonical(self) -> Dict[str, Any]:
        return asdict(self)

    def resolve_schedule(self) -> FaultSchedule:
        if self.schedule_json:
            return FaultSchedule.from_json(self.schedule_json)
        scn = CHAOS_SCENARIOS[self.scenario]
        return generate_schedule(
            self.scenario,
            self.seed,
            scn.shape(),
            allow_over_budget=self.allow_over_budget,
        )

    def with_schedule(self, schedule: FaultSchedule) -> "CaseSpec":
        return CaseSpec(
            scenario=self.scenario,
            seed=self.seed,
            mutation=self.mutation,
            allow_over_budget=self.allow_over_budget,
            schedule_json=schedule.to_json(),
        )

    @staticmethod
    def result_from_dict(payload: Dict[str, Any]) -> "CaseResult":
        """Cache-decode hook (``ResultCache`` dispatches on the spec)."""
        return CaseResult.from_dict(payload)

    def run(self) -> "CaseResult":
        return run_case(self)


@dataclass
class CaseResult:
    """Outcome of one chaos case (JSON-safe via :meth:`to_dict`)."""

    spec: CaseSpec
    schedule: FaultSchedule
    violations: List[Violation]
    aborted: bool
    delivered: Dict[int, int]
    crashed: Tuple[int, ...]
    nemesis_applied: Dict[str, int]
    events: int

    @property
    def failed(self) -> bool:
        return bool(self.violations)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.canonical(),
            "schedule": self.schedule.canonical(),
            "violations": [v.to_dict() for v in self.violations],
            "aborted": self.aborted,
            "delivered": {str(pid): n for pid, n in sorted(self.delivered.items())},
            "crashed": list(self.crashed),
            "nemesis_applied": dict(sorted(self.nemesis_applied.items())),
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CaseResult":
        """Exact inverse of :meth:`to_dict`.

        The result-cache checkpoint/resume path depends on this being a
        lossless round trip: a resumed campaign rebuilds completed cases
        from cache entries and its report must stay byte-identical to an
        uninterrupted run (pinned by ``tests/chaos/test_explorer.py``).
        """
        spec_d = payload["spec"]
        return cls(
            spec=CaseSpec(
                scenario=str(spec_d["scenario"]),
                seed=int(spec_d["seed"]),
                mutation=str(spec_d.get("mutation", "")),
                allow_over_budget=bool(spec_d.get("allow_over_budget", False)),
                schedule_json=str(spec_d.get("schedule_json", "")),
            ),
            schedule=FaultSchedule.from_dict(payload["schedule"]),
            violations=[Violation.from_dict(v) for v in payload["violations"]],
            aborted=bool(payload["aborted"]),
            delivered={int(pid): int(n) for pid, n in payload["delivered"].items()},
            crashed=tuple(int(pid) for pid in payload["crashed"]),
            nemesis_applied={
                str(k): int(v) for k, v in payload["nemesis_applied"].items()
            },
            events=int(payload["events"]),
        )


def run_case(spec: CaseSpec) -> CaseResult:
    """Run one chaos case to its horizon and check every property."""
    if spec.mutation not in MUTATIONS:
        raise ValueError(f"unknown mutation {spec.mutation!r}; pick from {MUTATIONS}")
    scn = CHAOS_SCENARIOS[spec.scenario]
    schedule = spec.resolve_schedule()
    scenario = build_scenario(scn.base, scn.n_groups, scn.group_size)
    system = build_system(
        scn.protocol,
        scenario,
        seed=spec.seed,
        omega_poll_ms=scn.omega_poll_ms,
    )
    processes = system.processes
    config = system.config
    if spec.mutation == "no-quorum-wait":
        for proc in processes.values():
            proc._chaos_no_quorum_wait = True
    attach_monitors(processes)

    injector = FailureInjector(system.scheduler, processes)
    nemesis = Nemesis(
        schedule,
        scheduler=system.scheduler,
        network=system.network,
        config=config,
        processes=processes,
        injector=injector,
    )
    nemesis.install()

    logs: Dict[int, List[Tuple[MessageId, int, float]]] = {
        pid: [] for pid in config.all_pids
    }
    multicasts: Dict[MessageId, Multicast] = {}

    def on_deliver(proc: Any, multicast: Multicast, final_ts: int) -> None:
        logs[proc.pid].append((multicast.mid, final_ts, system.scheduler.now))
        multicasts.setdefault(multicast.mid, multicast)

    # Record which T entries each process truncated via state GC: the
    # "truncate" probe carries the dropped mids, and the post-hoc
    # truncation-safety property checks them against the delivery logs.
    truncated: Dict[int, List[MessageId]] = {pid: [] for pid in config.all_pids}

    def on_probe(proc: Any, event: str, data: Any) -> None:
        if event == "truncate":
            truncated[proc.pid].extend(data)

    for proc in processes.values():
        proc.add_deliver_hook(on_deliver)
        proc.add_probe_hook(on_probe)

    # Workload: bursts of multicasts from random senders inside the send
    # window, all derived from the case seed (independent stream from
    # the schedule's so shrinking events never perturbs the workload).
    wl_rng = child_rng(spec.seed, f"chaos-workload:{spec.scenario}")
    for i in range(scn.n_messages):
        sender = wl_rng.choice(config.all_pids)
        dest: FrozenSet[int] = frozenset(
            wl_rng.sample(range(scn.n_groups), wl_rng.randint(1, scn.n_groups))
        )
        when = wl_rng.uniform(0.0, scn.send_window_ms)
        system.scheduler.call_at(
            when, processes[sender].a_multicast, dest, f"m{i}"
        )

    aborted = False
    violations: List[Violation]
    try:
        system.scheduler.run(until=scn.horizon_ms)
    except PropertyViolation as exc:
        # An invariant monitor fired mid-run: the case is over, the
        # violation is the result. Post-hoc checks are skipped — the
        # run never quiesced, so they would not be sound.
        aborted = True
        violations = [Violation.from_exception(exc)]
    else:
        correct: Set[int] = {
            pid for pid, proc in processes.items() if not proc.crashed
        }
        correct_logs = {pid: logs[pid] for pid in correct}
        dest_pids_of = {
            mid: set(config.dest_pids(m.dest)) for mid, m in multicasts.items()
        }
        violations = collect_violations(
            correct_logs, set(multicasts), dest_pids_of, correct
        )
        try:
            # Truncations are checked against *all* logs (a process that
            # truncated and later crashed still delivered first), while
            # the cross-destination clause only binds correct processes.
            check_truncation_safety(truncated, logs, dest_pids_of, correct)
        except PropertyViolation as exc:
            violations.append(Violation.from_exception(exc))

    return CaseResult(
        spec=spec,
        schedule=schedule,
        violations=violations,
        aborted=aborted,
        delivered={pid: len(log) for pid, log in logs.items()},
        crashed=tuple(sorted(injector.crashed_pids)),
        nemesis_applied=dict(nemesis.applied),
        events=system.scheduler.events_processed,
    )


@dataclass
class CampaignReport:
    """Aggregated outcome of one campaign (stable JSON via to_json).

    ``skipped_seeds`` records cases cut by a ``max_cases`` budget: a
    truncated campaign must never read as complete, so the skips appear
    both as their own top-level list and as ``summary.skipped_cases``.
    """

    scenario: str
    seeds: List[int]
    mutation: str
    cases: List[CaseResult] = field(default_factory=list)
    skipped_seeds: List[int] = field(default_factory=list)

    @property
    def failing_cases(self) -> List[CaseResult]:
        return [case for case in self.cases if case.failed]

    def to_dict(self) -> Dict[str, Any]:
        failing = self.failing_cases
        return {
            "version": 2,
            "scenario": self.scenario,
            "mutation": self.mutation,
            "seeds": list(self.seeds),
            "skipped_seeds": list(self.skipped_seeds),
            "summary": {
                "cases": len(self.cases),
                "violating_cases": len(failing),
                "violations": sum(len(c.violations) for c in failing),
                "violating_seeds": [c.spec.seed for c in failing],
                "crashes_applied": sum(
                    c.nemesis_applied.get("crashes", 0) for c in self.cases
                ),
                "events": sum(c.events for c in self.cases),
                "skipped_cases": len(self.skipped_seeds),
            },
            "cases": [case.to_dict() for case in self.cases],
        }

    def to_json(self) -> str:
        import json

        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


#: ``run_campaign`` progress callback: (cases done, cases total,
#: violations so far). Fired after every completed case — cache hits in
#: seed order first, then simulated cases in completion order.
ProgressFn = Callable[[int, int, int], None]


def run_campaign(
    scenario: str,
    seeds: Sequence[int],
    mutation: str = "",
    allow_over_budget: bool = False,
    jobs: int = 1,
    executor: Optional[SweepExecutor] = None,
    cache: Optional[Any] = None,
    max_cases: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> CampaignReport:
    """Run one case per seed and aggregate the violations.

    Cases are dispatched through the persistent worker pool of a
    :class:`~repro.harness.parallel.SweepExecutor` (work-stealing for
    heterogeneous case lengths) and merged in seed order regardless of
    ``jobs``, so the report is byte-identical across parallelism
    settings. With a ``cache``, every completed case streams into the
    content-addressed result cache the moment it finishes: a killed
    campaign re-run with the same cache resumes with zero re-executions
    of completed cases, and the resumed report is byte-identical to an
    uninterrupted run.

    ``max_cases`` truncates the campaign; truncation is never silent —
    the cut seeds land in :attr:`CampaignReport.skipped_seeds`.
    ``progress`` (see :data:`ProgressFn`) fires after every completed
    case; it is keyed on case counts, not wall-clock, so the report
    stays deterministic.
    """
    if scenario not in CHAOS_SCENARIOS:
        raise ValueError(
            f"unknown chaos scenario {scenario!r}; pick from "
            f"{sorted(CHAOS_SCENARIOS)}"
        )
    run_seeds = list(seeds)
    skipped: List[int] = []
    if max_cases is not None and len(run_seeds) > max_cases:
        skipped = run_seeds[max_cases:]
        run_seeds = run_seeds[:max_cases]
    specs = [
        CaseSpec(
            scenario=scenario,
            seed=seed,
            mutation=mutation,
            allow_over_budget=allow_over_budget,
        )
        for seed in run_seeds
    ]
    owns_executor = executor is None
    if executor is None:
        executor = SweepExecutor(jobs=jobs, cache=cache)

    done = 0
    violations_so_far = 0

    def on_result(index: int, spec: Any, result: Any) -> None:
        nonlocal done, violations_so_far
        done += 1
        violations_so_far += len(result.violations)
        if progress is not None:
            progress(done, len(specs), violations_so_far)

    try:
        results: List[CaseResult] = list(executor.run(specs, on_result=on_result))
    finally:
        if owns_executor:
            executor.close()
    return CampaignReport(
        scenario=scenario,
        seeds=run_seeds,
        mutation=mutation,
        cases=results,
        skipped_seeds=skipped,
    )
