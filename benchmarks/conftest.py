"""Benchmark configuration.

``pytest benchmarks/ --benchmark-only`` regenerates every table and
figure of the paper's evaluation (§7) at reduced sweep sizes; set
``REPRO_FULL=1`` for the paper-scale sweeps recorded in EXPERIMENTS.md.
Each bench prints the regenerated rows/series and uses pytest-benchmark
to time one representative simulation run.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))


def full_mode() -> bool:
    """Whether to run paper-scale sweeps (REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL", "0") == "1"
