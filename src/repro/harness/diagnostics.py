"""Delivery-latency decomposition (convoy diagnostics).

The paper attributes high-load latency to the *convoy effect*: a message
whose final timestamp is already known still waits for earlier-
timestamped pending messages. :class:`ConvoyProbe` instruments a
PrimCast process to separate, per delivered message,

* **commit time** — a-multicast (well, first sight) → final timestamp
  known at this process, and
* **convoy gap** — final timestamp known → actually a-delivered.

The gap is exactly the §3.2 convoy contribution; the probes are used by
the convoy ablation bench and available for ad-hoc analysis.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.messages import MessageId, Start
from ..core.process import PrimCastProcess
from .metrics import summarize


class ConvoyProbe:
    """Instrument one process's final-ts computation and delivery."""

    def __init__(self, proc: PrimCastProcess):
        self.proc = proc
        self.final_known_at: Dict[MessageId, float] = {}
        self.first_seen_at: Dict[MessageId, float] = {}
        #: per delivered message: (mid, commit_ms, convoy_gap_ms)
        self.records: List[tuple] = []

        original_final = proc.final_ts

        def final_ts(mid: MessageId) -> Optional[int]:
            result = original_final(mid)
            if result is not None and mid not in self.final_known_at:
                self.final_known_at[mid] = proc.scheduler.now
            return result

        proc.final_ts = final_ts  # type: ignore[method-assign]

        original_start = proc._on_start

        def on_start(origin: int, start) -> None:
            self.first_seen_at.setdefault(start.mid, proc.scheduler.now)
            original_start(origin, start)

        proc._on_start = on_start  # type: ignore[method-assign]
        # The process dispatches r-deliveries through its handler table;
        # instance-level handler overrides must be mirrored there.
        proc._r_dispatch[Start] = on_start
        proc.add_deliver_hook(self._on_deliver)

    def _on_deliver(self, proc: PrimCastProcess, multicast, final_ts: int) -> None:
        now = proc.scheduler.now
        mid = multicast.mid
        known = self.final_known_at.get(mid, now)
        seen = self.first_seen_at.get(mid, known)
        self.records.append((mid, known - seen, now - known))

    def summary(self, since_ms: float = 0.0) -> Dict[str, Dict[str, float]]:
        """Latency decomposition stats over deliveries after ``since_ms``."""
        commits = []
        gaps = []
        for mid, commit, gap in self.records:
            if self.final_known_at.get(mid, 0.0) + gap >= since_ms:
                commits.append(commit)
                gaps.append(gap)
        return {"commit": summarize(commits), "convoy_gap": summarize(gaps)}


def attach_probes(processes) -> List[ConvoyProbe]:
    """Attach a probe to every PrimCast process in a collection."""
    probes = []
    for proc in (processes.values() if hasattr(processes, "values") else processes):
        if isinstance(proc, PrimCastProcess):
            probes.append(ConvoyProbe(proc))
    return probes


def merged_summary(probes: List[ConvoyProbe], since_ms: float = 0.0) -> Dict[str, Dict[str, float]]:
    """Pooled decomposition over a set of probes."""
    commits = []
    gaps = []
    for probe in probes:
        for mid, commit, gap in probe.records:
            if probe.final_known_at.get(mid, 0.0) + gap >= since_ms:
                commits.append(commit)
                gaps.append(gap)
    return {"commit": summarize(commits), "convoy_gap": summarize(gaps)}
