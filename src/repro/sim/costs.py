"""Per-message CPU cost model.

Throughput saturation in the paper is a function of how much work each
replica does per multicast: FastCast runs a fast *and* a slow path (more
consensus messages), White-Box funnels acks through primaries, and
PrimCast exchanges many — but tiny and mergeable — acknowledgements
(§7.1). We model this with per-message *receive* and *send* CPU costs,
charged to a process's single logical CPU (``busy_until``). A saturated
process queues work and its delivery latency explodes, exactly the shape
of the paper's throughput/latency curves.

Costs are keyed on the message's ``kind`` attribute (a short string every
protocol message carries). Payload-bearing kinds cost more than small
control messages; this encodes the paper's observation that PrimCast's
quadratic-but-tiny ack traffic is cheap.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class CostModel:
    """Maps protocol messages to CPU time (ms) on sender and receiver.

    Args:
        recv_costs: per-kind receive cost in ms.
        send_costs: per-kind send cost in ms.
        default_recv: receive cost for kinds not listed.
        default_send: send cost for kinds not listed.
    """

    __slots__ = ("recv_costs", "send_costs", "default_recv", "default_send")

    def __init__(
        self,
        recv_costs: Optional[Dict[str, float]] = None,
        send_costs: Optional[Dict[str, float]] = None,
        default_recv: float = 0.0,
        default_send: float = 0.0,
    ) -> None:
        self.recv_costs: Dict[str, float] = dict(recv_costs or {})
        self.send_costs: Dict[str, float] = dict(send_costs or {})
        self.default_recv = default_recv
        self.default_send = default_send

    def recv_cost(self, msg: Any) -> float:
        """CPU time the receiver spends handling ``msg``."""
        # Wire message classes expose a class-level ``kind``; the
        # exception path only triggers for kindless test payloads.
        try:
            kind = msg.kind
        except AttributeError:
            return self.default_recv
        return self.recv_costs.get(kind, self.default_recv)

    def send_cost(self, msg: Any) -> float:
        """CPU time the sender spends serializing/writing ``msg``."""
        try:
            kind = msg.kind
        except AttributeError:
            return self.default_send
        return self.send_costs.get(kind, self.default_send)


def zero_cost_model() -> CostModel:
    """Free CPU: used for pure latency-geometry experiments (Table 1)."""
    return CostModel()


#: CPU cost (ms) of handling one payload-bearing protocol message.
#: Calibrated so an 8-group x 3-replica LAN deployment saturates in the
#: tens of thousands of msg/s — the paper's absolute numbers depend on its
#: testbed CPUs, ours on this constant; only the ratios matter (DESIGN.md).
PAYLOAD_COST_MS = 0.040

#: CPU cost (ms) of handling one small control message (ack/bump/2b...).
#: An order of magnitude below payload cost: these messages are a few
#: dozen bytes and the Rust prototype merges consecutive ones (§7.1).
CONTROL_COST_MS = 0.008


def default_cost_model(scale: float = 1.0) -> CostModel:
    """The calibrated cost model used by the paper-reproduction benches.

    Kinds:
        * ``start`` carries the application payload → expensive.
        * PrimCast ``ack``/``bump`` are tiny and merged → cheap.
        * White-Box ``accept`` carries the payload proposal, its ``ack``
          and ``deliver`` are small.
        * FastCast ``soft``/``hard``/``2a`` carry proposals, ``2b`` is an
          acknowledgement.

    Args:
        scale: multiplies every cost. The WAN experiments use a smaller
            scale (faster CPUs relative to the load range) so that, as
            on the paper's testbed, WAN throughputs stay far below CPU
            capacity and the latency curves are shaped by the convoy
            effect rather than by CPU queueing (see DESIGN.md).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    payload = PAYLOAD_COST_MS * scale
    control = CONTROL_COST_MS * scale
    recv = {
        "start": payload,
        # PrimCast
        "ack": control,
        "bump": control,
        # White-Box
        "wb-accept": payload,
        "wb-ack": control,
        "wb-deliver": control,
        # FastCast
        "fc-soft": payload,
        "fc-hard": payload,
        "fc-2a": payload,
        "fc-2b": control,
        # client interaction
        "client-request": control,
        "client-reply": control,
        # a coalesced ack/bump batch (rmcast batching layer): one wire
        # message regardless of contents — the §7.1 merge amortization.
        "batch": control,
    }
    send = {kind: cost / 2.0 for kind, cost in recv.items()}
    return CostModel(recv, send, default_recv=control, default_send=control / 2.0)
