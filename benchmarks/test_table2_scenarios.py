"""Table 2 — deployment scenarios.

Prints the scenario table and verifies each deployment's latency
geometry (leader-to-leader and intra-group RTTs) matches the paper's
numbers by sampling the built latency models.
"""

import pytest

from repro.harness.report import format_table
from repro.workload.scenarios import all_scenarios, lan_scenario, wan_colocated_leaders, wan_distributed_leaders


def test_table2_rows(benchmark):
    scenarios = benchmark(all_scenarios)
    print("\n== Table 2 (deployment scenarios) ==")
    print(
        format_table(
            ["Scenario", "Cross-group RTT (leaders)", "Intra-group RTT", "Description"],
            [s.table2_row() for s in scenarios],
        )
    )
    assert [s.name for s in scenarios] == [
        "LAN",
        "WAN - colocated leaders",
        "WAN - distributed leaders",
    ]


def test_lan_geometry():
    s = lan_scenario()
    model = s.make_latency(s.make_config())
    assert 2 * model.mean(0, 23) == pytest.approx(0.09)


def test_colocated_geometry():
    s = wan_colocated_leaders()
    config = s.make_config()
    model = s.make_latency(config)
    leaders = [config.initial_leader(g) for g in range(8)]
    assert 2 * model.mean(leaders[0], leaders[7]) == pytest.approx(0.09)
    g0 = config.members(0)
    intra = sorted(
        round(2 * model.mean(a, b), 1) for i, a in enumerate(g0) for b in g0[i + 1 :]
    )
    assert intra == [60.0, 76.0, 130.0]


def test_distributed_geometry():
    s = wan_distributed_leaders()
    config = s.make_config()
    model = s.make_latency(config)
    assert 2 * model.mean(config.initial_leader(0), config.initial_leader(1)) == pytest.approx(90.0)
    g0 = config.members(0)
    assert 2 * model.mean(g0[0], g0[2]) == pytest.approx(30.0)
