"""Command-line entry point: ``python -m repro.analysis [paths]``.

Exit codes: 0 — clean (or warnings only), 1 — at least one
error-severity finding, 2 — usage error *or* an internal analysis error
(a rule crashed; the message names the offending file and rule so a CI
failure is diagnosable from the log alone). ``--json`` emits a
machine-readable report (consumed by the CI lint job's artifact upload);
``--sarif FILE`` additionally writes a SARIF 2.1.0 log for GitHub code
scanning; ``--cache-dir DIR`` enables the content-hash incremental
cache. The default output is one ``path:line:col: RULE severity:
message`` line per finding, the shape editors and CI annotations both
understand.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .base import RULES
from .cache import AnalysisCache, compute_fingerprint
from .config import DEFAULT_CONFIG, AnalysisConfig
from .engine import AnalysisError, analyze_paths, iter_python_files
from .sarif import sarif_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & protocol-contract static analysis for the "
        "PrimCast reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyse (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a JSON report instead of human-readable lines",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    parser.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="run only the given rule id (repeatable)",
    )
    parser.add_argument(
        "--no-default-allow",
        action="store_true",
        help="ignore the built-in allowlist (show reviewed exemptions too)",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="also write a SARIF 2.1.0 report to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="enable the content-hash incremental cache under DIR",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            rule = RULES[rule_id]
            print(f"{rule_id}  [{rule.default_severity}]  {rule.title}")
        return 0

    config: AnalysisConfig = DEFAULT_CONFIG
    if args.no_default_allow:
        config = AnalysisConfig(allow={})

    rules = None
    if args.rule:
        unknown = [r for r in args.rule if r not in RULES]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = [RULES[r] for r in args.rule]

    paths = [Path(p) for p in args.paths]
    active_ids = sorted(RULES) if rules is None else sorted(r.rule_id for r in rules)

    cache = None
    if args.cache_dir:
        fingerprint = compute_fingerprint(config, active_ids)
        cache = AnalysisCache(Path(args.cache_dir), fingerprint)

    try:
        files = iter_python_files(paths)
        findings = analyze_paths(paths, config, rules, cache=cache)
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    errors = [f for f in findings if f.severity == "error"]
    warnings = [f for f in findings if f.severity != "error"]

    if args.sarif:
        sarif_text = json.dumps(sarif_report(findings, RULES), indent=2)
        if args.sarif == "-":
            print(sarif_text)
        else:
            Path(args.sarif).write_text(sarif_text + "\n", encoding="utf-8")

    if args.json:
        report = {
            "version": 1,
            "files_analyzed": len(files),
            "rules": active_ids,
            "summary": {"errors": len(errors), "warnings": len(warnings)},
            "findings": [f.to_json() for f in findings],
        }
        if cache is not None:
            report["cache"] = cache.stats()
        print(json.dumps(report, indent=2, sort_keys=False))
    else:
        for finding in findings:
            print(finding.format())
        noun = "file" if len(files) == 1 else "files"
        cache_note = ""
        if cache is not None:
            stats = cache.stats()
            cache_note = f", cache {stats['hits']} hit(s) {stats['misses']} miss(es)"
        print(
            f"repro.analysis: {len(files)} {noun}, "
            f"{len(errors)} error(s), {len(warnings)} warning(s){cache_note}"
        )
    return 1 if errors else 0
