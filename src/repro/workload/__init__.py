"""Workloads: closed-loop clients and the paper's Table 2 scenarios."""

from .generator import Client, Sample, make_clients
from .scenarios import (
    DEFAULT_EPSILON_MS,
    Scenario,
    all_scenarios,
    lan_scenario,
    wan_colocated_leaders,
    wan_distributed_leaders,
)

__all__ = [
    "Client",
    "Sample",
    "make_clients",
    "Scenario",
    "all_scenarios",
    "lan_scenario",
    "wan_colocated_leaders",
    "wan_distributed_leaders",
    "DEFAULT_EPSILON_MS",
]
