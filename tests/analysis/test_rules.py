"""Per-rule fixtures: one known-good and one known-bad snippet per rule.

Every rule must *fire* on its bad fixture (proving the pass can catch
the hazard) and stay silent on the good fixture (proving it will not
drown real findings in noise). Snippets are analysed under fake module
names inside the determinism scope.
"""

import ast
import textwrap

import pytest

from repro.analysis import DEFAULT_CONFIG, RULES, AnalysisConfig, ModuleInfo
from repro.analysis.engine import analyze_module


def run_rule(rule_id, source, module="repro.core.fixture", config=DEFAULT_CONFIG):
    src = textwrap.dedent(source)
    mod = ModuleInfo(
        path=f"<{module}>", module=module, tree=ast.parse(src), source=src
    )
    return analyze_module(mod, config, [RULES[rule_id]])


def rules_fired(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# DET001 — ambient nondeterminism
# ----------------------------------------------------------------------

DET001_BAD = """
    import random
    import time
    import uuid

    def jitter():
        return random.random() + time.time()

    def stamp():
        return uuid.uuid4()
"""

DET001_GOOD = """
    import random

    from repro.sim.rng import child_rng

    def jitter(rng: random.Random) -> float:
        return rng.uniform(0.0, 1.0)

    def make(seed: int) -> random.Random:
        return random.Random(seed)
"""


def test_det001_fires_on_ambient_randomness_and_wall_clock():
    findings = run_rule("DET001", DET001_BAD)
    assert rules_fired(findings) == ["DET001"]
    messages = " ".join(f.message for f in findings)
    assert "random.random()" in messages
    assert "time.time()" in messages
    assert "uuid" in messages


def test_det001_allows_seeded_child_rngs():
    assert run_rule("DET001", DET001_GOOD) == []


def test_det001_out_of_scope_module_is_ignored():
    # The perf harness measures wall time by design; it is outside the
    # determinism scope.
    assert run_rule("DET001", DET001_BAD, module="repro.harness.perf") == []


# ----------------------------------------------------------------------
# DET002 — unsorted set iteration on emission paths
# ----------------------------------------------------------------------

DET002_BAD = """
    class Proc:
        def __init__(self):
            self.peers = set()

        def broadcast(self, msg, table):
            for pid in self.peers:           # set iteration, emits
                self.send(pid, msg)
            for key in table.keys():         # dict.keys() view, emits
                self.send(key, msg)
"""

DET002_GOOD = """
    class Proc:
        def __init__(self):
            self.peers = set()
            self.log = []

        def broadcast(self, msg):
            for pid in sorted(self.peers):   # explicit ordering fence
                self.send(pid, msg)

        def audit(self):
            total = 0
            for pid in self.peers:           # no emission in this scope
                total += pid
            self.log.append(total)
"""


def test_det002_fires_on_unsorted_set_iteration_where_emitting():
    findings = run_rule("DET002", DET002_BAD)
    assert len(findings) == 2
    assert rules_fired(findings) == ["DET002"]


def test_det002_allows_sorted_and_non_emission_scopes():
    assert run_rule("DET002", DET002_GOOD) == []


def test_det002_known_set_attrs_cover_cross_module_frozensets():
    # ``dest`` is set-typed by config even with no local inference.
    source = """
        def fan_out(self, multicast):
            for gid in multicast.dest:
                self.r_multicast(multicast, gid)
    """
    findings = run_rule("DET002", source)
    assert len(findings) == 1
    assert ".dest" in findings[0].message


# ----------------------------------------------------------------------
# DET003 — ordering by id()/hash()
# ----------------------------------------------------------------------

DET003_BAD = """
    def order(pending):
        return sorted(pending, key=id)

    def pick(pending):
        return min(pending, key=lambda m: hash(m))
"""

DET003_GOOD = """
    def order(pending):
        return sorted(pending, key=lambda m: m.mid)
"""


def test_det003_fires_on_identity_ordering():
    findings = run_rule("DET003", DET003_BAD)
    assert len(findings) == 2
    assert rules_fired(findings) == ["DET003"]


def test_det003_allows_stable_protocol_keys():
    assert run_rule("DET003", DET003_GOOD) == []


# ----------------------------------------------------------------------
# DET004 — float == on simulated timestamps
# ----------------------------------------------------------------------

DET004_BAD = """
    def expired(self, deadline):
        return self.scheduler.now == deadline

    def same_arrival(arrival, other):
        return arrival != other
"""

DET004_GOOD = """
    def expired(self, deadline):
        return self.scheduler.now >= deadline
"""


def test_det004_fires_on_float_timestamp_equality():
    findings = run_rule("DET004", DET004_BAD)
    assert len(findings) == 2
    assert rules_fired(findings) == ["DET004"]


def test_det004_allows_ordered_comparisons():
    assert run_rule("DET004", DET004_GOOD) == []


# ----------------------------------------------------------------------
# PROTO101 — class-level kind on wire messages
# ----------------------------------------------------------------------

PROTO101_BAD = """
    class Probe:
        __slots__ = ("ts",)

        def __init__(self, ts):
            self.ts = ts

    class Computed:
        __slots__ = ()
        kind = "pr" + "obe"
"""

PROTO101_GOOD = """
    class Probe:
        __slots__ = ("ts",)
        kind = "probe"

        def __init__(self, ts):
            self.ts = ts

    class _Internal:
        __slots__ = ("x",)

    class NotSlotted:
        pass
"""


def test_proto101_fires_on_missing_or_computed_kind():
    findings = run_rule("PROTO101", PROTO101_BAD, module="repro.core.messages")
    assert len(findings) == 2
    assert rules_fired(findings) == ["PROTO101"]


def test_proto101_allows_declared_kind_and_skips_private():
    assert run_rule("PROTO101", PROTO101_GOOD, module="repro.core.messages") == []


def test_proto101_default_allowlist_exempts_multicast():
    source = """
        class Multicast:
            __slots__ = ("mid", "dest", "payload")
    """
    assert run_rule("PROTO101", source, module="repro.core.messages") == []
    # Without the allowlist the same snippet is a violation.
    bare = AnalysisConfig(allow={})
    assert len(run_rule("PROTO101", source, "repro.core.messages", bare)) == 1


# ----------------------------------------------------------------------
# PROTO102 — dispatch tables bind existing methods in __init__
# ----------------------------------------------------------------------

PROTO102_BAD = """
    class Proc:
        def __init__(self):
            self._r_dispatch = {
                Ack: self._on_ack,
                Start: self._on_strat,   # typo: no such method
            }

        def _on_ack(self, origin, ack):
            pass

        def rebind(self):
            self._r_dispatch = {Ack: self._on_ack}   # not __init__
"""

PROTO102_GOOD = """
    class Proc:
        def __init__(self):
            self._r_dispatch = {
                Ack: self._on_ack,
                Start: self._on_start,
            }

        def _on_ack(self, origin, ack):
            pass

        def _on_start(self, origin, start):
            pass
"""


def test_proto102_fires_on_missing_handler_and_late_binding():
    findings = run_rule("PROTO102", PROTO102_BAD)
    assert rules_fired(findings) == ["PROTO102"]
    messages = " ".join(f.message for f in findings)
    assert "_on_strat" in messages
    assert "__init__" in messages
    assert len(findings) == 2


def test_proto102_allows_complete_tables():
    assert run_rule("PROTO102", PROTO102_GOOD) == []


# ----------------------------------------------------------------------
# PROTO103 — protocol-state conformance map
# ----------------------------------------------------------------------

PROTO103_BAD = """
    class Meddler:
        def poke(self, ts):
            self.clock = ts
            self.e_cur = self.e_prom

        def bump(self):
            self.clock += 1
"""

PROTO103_GOOD = """
    class Proc:
        def __init__(self):
            self.clock = 0
            self.e_cur = None
            self.e_prom = None
"""


def test_proto103_fires_outside_conformance_map():
    findings = run_rule("PROTO103", PROTO103_BAD, module="repro.core.fixture")
    assert len(findings) == 3
    assert rules_fired(findings) == ["PROTO103"]


def test_proto103_allows_mutations_in_conformant_module():
    # repro.core.process is the module Algorithms 1–3 map onto.
    assert run_rule("PROTO103", PROTO103_GOOD, module="repro.core.process") == []


def test_proto103_allowlist_covers_message_field_capture():
    source = """
        class EpochPromise:
            def __init__(self, clock, e_cur):
                self.clock = clock
                self.e_cur = e_cur
    """
    assert run_rule("PROTO103", source, module="repro.core.messages") == []
    bare = AnalysisConfig(allow={})
    assert len(run_rule("PROTO103", source, "repro.core.messages", bare)) == 2


# ----------------------------------------------------------------------
# registry sanity
# ----------------------------------------------------------------------


# ----------------------------------------------------------------------
# PERF001 — classes in compiled hot modules declare __slots__
# ----------------------------------------------------------------------

PERF001_BAD = """
    class Tracker:
        def __init__(self):
            self.count = 0
"""

PERF001_GOOD = """
    from typing import NamedTuple


    class Tracker:
        __slots__ = ("count",)

        def __init__(self):
            self.count = 0


    class Point(NamedTuple):
        x: int
        y: int


    class TrackerError(ValueError):
        pass
"""


def test_perf001_fires_on_unslotted_hot_class():
    findings = run_rule("PERF001", PERF001_BAD, module="repro.core.state")
    assert rules_fired(findings) == ["PERF001"]


def test_perf001_silent_on_slotted_namedtuple_and_exception():
    assert run_rule("PERF001", PERF001_GOOD, module="repro.core.state") == []


def test_perf001_out_of_scope_module_is_ignored():
    """Only the compiled hot modules are in scope — the harness, the
    baselines and the chaos layer may use plain classes freely."""
    assert run_rule("PERF001", PERF001_BAD, module="repro.harness.runner") == []


def test_perf001_allowlist_spares_the_dynamic_process_lineage():
    findings = run_rule("PERF001", PERF001_BAD, module="repro.sim.process")
    assert findings  # a new unslotted class in the module still fires
    lineage = PERF001_BAD.replace("class Tracker:", "class SimProcess:")
    assert run_rule("PERF001", lineage, module="repro.sim.process") == []


def test_perf001_scope_matches_compiled_module_list():
    """The lint scope and the mypyc compilation unit must stay in sync:
    a module added to COMPILED_MODULES without the slots contract (or
    vice versa) is a review error."""
    from repro._backend import COMPILED_MODULES

    assert tuple(DEFAULT_CONFIG.perf_slots_scope) == tuple(COMPILED_MODULES)


def test_every_registered_rule_has_a_firing_fixture():
    """Names in this test module must cover the whole registry, so a new
    rule cannot land without a known-bad fixture."""
    covered = {
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "PERF001",
        "PROTO101",
        "PROTO102",
        "PROTO103",
    }
    assert set(RULES) == covered


def test_severity_override_is_applied():
    config = AnalysisConfig(severity_overrides={"DET003": "warning"})
    findings = run_rule("DET003", DET003_BAD, config=config)
    assert findings and all(f.severity == "warning" for f in findings)
