"""Experiment runner: build a system, drive a workload, collect stats.

The runner is the glue between the substrates: it instantiates a
scenario (Table 2), one protocol process per replica, loosely
synchronized clocks for the HC variant, closed-loop clients, and runs the
simulation for a warmup + measurement window. Throughput counts each
client message once (at its issuing client); latency is measured at the
client, from submission to a-delivery at its replica — both exactly as
§7.2 defines.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..baselines.fastcast import FastCastProcess
from ..baselines.whitebox import WhiteBoxProcess
from ..core.config import GroupConfig
from ..core.gc import (
    DEFAULT_COMPACTION_INTERVAL_MS,
    CompactionDaemon,
    attach_compaction,
)
from ..core.process import PrimCastProcess
from ..election.omega import OmegaOracle, make_oracles
from ..sim.clock import make_clocks
from ..sim.costs import CostModel, default_cost_model
from ..sim.events import Scheduler
from ..sim.network import Network
from ..sim.rng import child_rng
from ..workload.generator import Client, make_clients
from ..workload.scenarios import Scenario
from .metrics import summarize

#: Names accepted by :func:`build_system` / :func:`run_load_point`.
PROTOCOLS = ("primcast", "primcast-hc", "whitebox", "fastcast")


@dataclass
class System:
    """A fully wired simulated deployment."""

    protocol: str
    scenario: Scenario
    scheduler: Scheduler
    network: Network
    config: GroupConfig
    processes: Dict[int, Any]
    oracles: Optional[Dict[int, OmegaOracle]] = None
    #: periodic state-GC driver (PrimCast protocols, interval > 0 only)
    compaction: Optional[CompactionDaemon] = None

    @property
    def replicas(self) -> List[Any]:
        return [self.processes[pid] for pid in self.config.all_pids]


def build_system(
    protocol: str,
    scenario: Scenario,
    seed: int = 1,
    cost_model: Optional[CostModel] = None,
    omega_poll_ms: Optional[float] = None,
    epsilon_ms: Optional[float] = None,
    batching_ms: float = 0.0,
    compaction_interval_ms: float = DEFAULT_COMPACTION_INTERVAL_MS,
) -> System:
    """Instantiate one protocol deployment on one scenario.

    Args:
        protocol: one of :data:`PROTOCOLS`.
        seed: root seed; all randomness derives from it.
        cost_model: CPU cost model (defaults to the calibrated one).
        omega_poll_ms: enable crash detection for PrimCast's Ω with this
            polling interval (None = static leaders, no failure handling
            needed for stable-leader experiments).
        epsilon_ms: clock skew bound override for the HC variant.
        batching_ms: opt-in ack/bump coalescing window per channel
            (models the prototype's §7.1 TCP batching); 0 = off, which
            is wire-identical to the seed behaviour.
        compaction_interval_ms: periodic state-GC sweep interval for the
            PrimCast protocols (default on). 0 disables compaction;
            delivery order and timestamps are bit-identical either way —
            only the scheduler's event count differs (one timer event
            per sweep). Like Ω polling, an armed daemon keeps the event
            heap non-empty, so drive such systems with
            ``scheduler.run(until=...)``.
    """
    if protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}; pick from {PROTOCOLS}")
    compaction: Optional[CompactionDaemon] = None
    config = scenario.make_config()
    scheduler = Scheduler()
    network = Network(
        scheduler, scenario.make_latency(config), child_rng(seed, "latency")
    )
    costs = cost_model if cost_model is not None else default_cost_model()

    processes: Dict[int, Any] = {}
    oracles: Optional[Dict[int, OmegaOracle]] = None
    if protocol in ("primcast", "primcast-hc"):
        hybrid = protocol == "primcast-hc"
        eps = epsilon_ms if epsilon_ms is not None else scenario.epsilon_ms
        clocks = make_clocks(
            scheduler, config.all_pids, eps, child_rng(seed, "clock-skew")
        )
        # Build processes first, then oracles (oracles observe processes).
        for pid in config.all_pids:
            processes[pid] = PrimCastProcess(
                pid,
                config,
                scheduler,
                network,
                costs,
                omega=None,
                physical_clock=clocks[pid],
                hybrid_clock=hybrid,
                batching_ms=batching_ms,
            )
        if omega_poll_ms is not None:
            oracles = make_oracles(config.groups, processes, scheduler, omega_poll_ms)
            for pid, proc in processes.items():
                proc.omega = oracles[config.group_of[pid]]
                proc.omega.subscribe(proc._on_omega_output)
        if compaction_interval_ms > 0.0:
            compaction = attach_compaction(
                scheduler, processes, compaction_interval_ms
            )
    elif protocol == "whitebox":
        for pid in config.all_pids:
            processes[pid] = WhiteBoxProcess(
                pid, config, scheduler, network, costs, batching_ms=batching_ms
            )
    else:  # fastcast
        for pid in config.all_pids:
            processes[pid] = FastCastProcess(
                pid, config, scheduler, network, costs, batching_ms=batching_ms
            )

    return System(
        protocol, scenario, scheduler, network, config, processes, oracles, compaction
    )


@dataclass
class RunResult:
    """Aggregated outcome of one load point."""

    protocol: str
    scenario: str
    n_dest_groups: int
    outstanding: int
    #: delivered client messages per second (each counted once)
    throughput: float
    #: latency stats in ms over all clients (mean/p50/p95/p99/count)
    latency: Dict[str, float]
    #: per-sample latencies (client pid, deliver time, latency ms)
    samples: List[Tuple[int, float, float]] = field(repr=False, default_factory=list)
    #: wire messages by kind over the whole run
    message_counts: Dict[str, int] = field(default_factory=dict)
    events: int = 0
    #: which substrate produced this row: "sim" (simulator) or "net"
    #: (asyncio localhost cluster, real wall clocks)
    backend: str = "sim"

    @property
    def throughput_kmsgs(self) -> float:
        """Throughput in thousands of msg/s (the paper's x axis)."""
        return self.throughput / 1000.0

    def latencies_for(self, pids: Set[int]) -> List[float]:
        """Latency samples restricted to clients at the given replicas
        (used to isolate White-Box leader deliveries in Fig 5)."""
        return [lat for pid, _, lat in self.samples if pid in pids]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict capturing every field exactly.

        The shared serialization for the result cache, ``export.py`` and
        ``perf.py``; floats survive a JSON round trip bit-exactly
        (``json`` emits ``repr``-precision), so
        ``RunResult.from_dict(r.to_dict()) == r``.
        """
        return {
            "protocol": self.protocol,
            "scenario": self.scenario,
            "n_dest_groups": self.n_dest_groups,
            "outstanding": self.outstanding,
            "throughput": self.throughput,
            "latency": dict(self.latency),
            "samples": [[pid, when, lat] for pid, when, lat in self.samples],
            "message_counts": dict(self.message_counts),
            "events": self.events,
            "backend": self.backend,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict` (JSON lists become sample tuples)."""
        return cls(
            protocol=data["protocol"],
            scenario=data["scenario"],
            n_dest_groups=data["n_dest_groups"],
            outstanding=data["outstanding"],
            throughput=data["throughput"],
            latency=dict(data["latency"]),
            samples=[(pid, when, lat) for pid, when, lat in data["samples"]],
            message_counts=dict(data["message_counts"]),
            events=data["events"],
            # Rows cached before the net backend existed carry no
            # backend key; they are sim rows by construction.
            backend=data.get("backend", "sim"),
        )


#: Streaming-stats ring sizes: per-client latency samples kept for the
#: percentile estimate, and per-process delivery_log entries kept for
#: debugging. Aggregate count/mean/throughput stay exact either way.
STREAM_SAMPLE_KEEP = 2048
STREAM_LOG_KEEP = 512


def run_load_point(
    protocol: str,
    scenario: Scenario,
    n_dest_groups: int,
    outstanding: int,
    seed: int = 1,
    warmup_ms: float = 500.0,
    measure_ms: float = 1000.0,
    cost_model: Optional[CostModel] = None,
    epsilon_ms: Optional[float] = None,
    keep_samples: bool = True,
    batching_ms: float = 0.0,
    compaction_interval_ms: float = DEFAULT_COMPACTION_INTERVAL_MS,
    streaming_stats: bool = False,
) -> RunResult:
    """Run one (protocol, scenario, destinations, load) point.

    Clients issue messages from t=0; samples delivered inside
    ``[warmup_ms, warmup_ms + measure_ms)`` are counted.

    ``batching_ms > 0`` enables the per-channel ack/bump coalescing layer
    (§7.1 batching); the default of 0 is wire-identical to no batching.

    ``streaming_stats`` bounds collection-side memory for long runs:
    clients keep a ring of recent samples plus exact running aggregates,
    and every replica's ``delivery_log`` becomes a bounded deque. The
    returned latency ``count``/``mean`` and the throughput are exact;
    p50/p95/p99 are estimated over the ring contents (the most recent
    ``STREAM_SAMPLE_KEEP`` samples per client) and ``samples`` is empty.
    The simulation schedule is identical to the non-streaming run.
    """
    system = build_system(
        protocol,
        scenario,
        seed=seed,
        cost_model=cost_model,
        epsilon_ms=epsilon_ms,
        batching_ms=batching_ms,
        compaction_interval_ms=compaction_interval_ms,
    )
    rng = child_rng(seed, "workload")
    clients = make_clients(
        system.replicas,
        n_dest_groups,
        system.config.n_groups,
        outstanding,
        rng,
        sample_limit=STREAM_SAMPLE_KEEP if streaming_stats else None,
        measure_from_ms=warmup_ms if streaming_stats else 0.0,
    )
    if streaming_stats:
        for proc in system.replicas:
            proc.delivery_log = deque(maxlen=STREAM_LOG_KEEP)
    for client in clients:
        client.start()
    end = warmup_ms + measure_ms
    system.scheduler.run(until=end)
    for client in clients:
        client.stop()

    samples: List[Tuple[int, float, float]] = []
    latencies: List[float] = []
    if streaming_stats:
        # Exact aggregates from the running counters; percentiles over
        # the ring window (documented approximation).
        total = 0
        lat_sum = 0.0
        for client in clients:
            total += client.stat_count
            lat_sum += client.stat_sum_ms
            for pid, when, lat in client.samples:
                if warmup_ms <= when < end:
                    latencies.append(lat)
        latency = summarize(latencies)
        latency["count"] = total
        latency["mean"] = lat_sum / total if total else 0.0
        throughput = total / (measure_ms / 1000.0)
    else:
        # Latencies are collected unconditionally (the summary needs
        # them); the per-sample (pid, when, lat) tuples only when the
        # caller asked — at high load a full sweep would otherwise hold
        # every sample of every point in memory just to throw them away.
        for client in clients:
            for pid, when, lat in client.samples:
                if warmup_ms <= when < end:
                    latencies.append(lat)
                    if keep_samples:
                        samples.append((pid, when, lat))
        throughput = len(latencies) / (measure_ms / 1000.0)
        latency = summarize(latencies)
    return RunResult(
        protocol=protocol,
        scenario=scenario.name,
        n_dest_groups=n_dest_groups,
        outstanding=outstanding,
        throughput=throughput,
        latency=latency,
        samples=samples,
        message_counts=dict(system.network.counts_by_kind),
        events=system.scheduler.events_processed,
    )
