"""Per-figure experiment definitions (§7.3–§7.5).

Each ``figureN`` function regenerates the data series of the paper's
figure N: the same protocols, deployment, destination counts and load
sweep, returning :class:`~repro.harness.runner.RunResult` rows the bench
targets print. Sizes default to a *reduced* sweep so the bench suite
finishes in minutes; ``full=True`` (or the ``REPRO_FULL=1`` environment
variable in the benches) runs the paper-scale sweep recorded in
EXPERIMENTS.md.

Every figure is a grid of independent deterministic load points, so all
of them route through :class:`~repro.harness.parallel.SweepExecutor`:
pass ``executor=SweepExecutor(jobs=N, cache=...)`` to fan the grid out
over N worker processes and/or memoize points in the content-addressed
result cache. The default executor (``jobs=1``, no cache) is exactly
the historical serial path — same seeds, same event schedules,
bit-identical rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..sim.costs import CostModel
from ..workload.scenarios import (
    Scenario,
    lan_scenario,
    wan_colocated_leaders,
    wan_distributed_leaders,
)
from .metrics import cdf_points
from .parallel import SweepExecutor, expand_sweep, scenario_matches_registry
from .runner import RunResult, run_load_point

#: The four curves of every figure.
FIGURE_PROTOCOLS = ("whitebox", "fastcast", "primcast", "primcast-hc")

# Load sweeps (outstanding messages per client).
REDUCED_LOADS = (1, 4, 16, 64)
FULL_LOADS = (1, 2, 4, 8, 16, 32, 64, 128)


def sweep(
    protocols: Sequence[str],
    scenario: Scenario,
    n_dest_groups: int,
    loads: Sequence[int],
    seed: int = 1,
    warmup_ms: float = 500.0,
    measure_ms: float = 1000.0,
    cost_model: Optional[CostModel] = None,
    keep_samples: bool = False,
    executor: Optional[SweepExecutor] = None,
) -> List[RunResult]:
    """Run a protocol × load grid on one scenario/destination count.

    Rows come back in grid order (protocol-major, load-minor) regardless
    of the executor's parallelism.

    Any :class:`Scenario` is accepted. A scenario that is not faithfully
    reconstructable from the Table 2 registry — a custom name, or a
    customized copy of a registry scenario — cannot cross a worker
    process boundary or key the result cache, so it runs inline on the
    historical serial path; combining such a scenario with ``jobs > 1``
    or a cache raises instead of silently simulating the wrong geometry.
    """
    if executor is None:
        executor = SweepExecutor()
    if not scenario_matches_registry(scenario):
        if executor.jobs != 1 or executor.cache is not None:
            raise ValueError(
                f"scenario {scenario.name!r} is not a Table 2 registry "
                f"scenario (or is a customized copy of one), so it cannot be "
                f"reconstructed in worker processes or content-addressed in "
                f"the result cache; run it with the default serial executor "
                f"(jobs=1, no cache)"
            )
        results = [
            run_load_point(
                protocol,
                scenario,
                n_dest_groups,
                outstanding,
                seed=seed,
                warmup_ms=warmup_ms,
                measure_ms=measure_ms,
                cost_model=cost_model,
                keep_samples=keep_samples,
            )
            for protocol in protocols
            for outstanding in loads
        ]
        executor.note_direct_runs(len(results))
        return results
    specs = expand_sweep(
        protocols,
        scenario,
        n_dest_groups,
        loads,
        seed=seed,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
        cost_model=cost_model,
        keep_samples=keep_samples,
    )
    return executor.run(specs)


def figure2(
    full: bool = False, seed: int = 1, executor: Optional[SweepExecutor] = None
) -> List[RunResult]:
    """Fig 2: LAN, all messages to 2 groups, throughput vs p95 latency."""
    loads = FULL_LOADS if full else REDUCED_LOADS
    return sweep(
        FIGURE_PROTOCOLS,
        lan_scenario(),
        n_dest_groups=2,
        loads=loads,
        seed=seed,
        warmup_ms=100.0 if not full else 200.0,
        measure_ms=200.0 if not full else 500.0,
        executor=executor,
    )


def figure3(
    full: bool = False,
    seed: int = 1,
    dest_counts: Sequence[int] = (1, 2, 4, 8),
    executor: Optional[SweepExecutor] = None,
) -> Dict[int, List[RunResult]]:
    """Fig 3a–d: WAN with colocated leaders, 1/2/4/8 destination groups."""
    loads = FULL_LOADS if full else REDUCED_LOADS
    scenario = wan_colocated_leaders()
    return {
        d: sweep(
            FIGURE_PROTOCOLS,
            scenario,
            n_dest_groups=d,
            loads=loads,
            seed=seed,
            warmup_ms=600.0 if not full else 1000.0,
            measure_ms=1000.0 if not full else 2000.0,
            executor=executor,
        )
        for d in dest_counts
    }


def figure4(
    full: bool = False,
    seed: int = 1,
    dest_counts: Sequence[int] = (2, 4),
    executor: Optional[SweepExecutor] = None,
) -> Dict[int, List[RunResult]]:
    """Fig 4a–b: WAN with distributed leaders (convoy territory)."""
    loads = FULL_LOADS if full else REDUCED_LOADS
    scenario = wan_distributed_leaders()
    return {
        d: sweep(
            FIGURE_PROTOCOLS,
            scenario,
            n_dest_groups=d,
            loads=loads,
            seed=seed,
            warmup_ms=800.0 if not full else 1500.0,
            measure_ms=1200.0 if not full else 2500.0,
            executor=executor,
        )
        for d in dest_counts
    }


def figure5(
    full: bool = False,
    seed: int = 1,
    loads: Tuple[int, int] = (2, 128),
    executor: Optional[SweepExecutor] = None,
) -> Dict[int, Dict[str, List[Tuple[float, float]]]]:
    """Fig 5a–b: latency CDFs at low and high load, 2 destination groups,
    WAN distributed leaders. The extra ``whitebox-leaders`` series
    restricts White-Box samples to clients at group primaries."""
    scenario = wan_distributed_leaders()
    config = scenario.make_config()
    leader_pids: Set[int] = {
        config.initial_leader(g) for g in range(config.n_groups)
    }
    if executor is None:
        executor = SweepExecutor()
    # One flat grid (load-major, protocol-minor — the historical nesting)
    # so the executor can run all CDF points concurrently.
    specs = [
        spec
        for outstanding in loads
        for spec in expand_sweep(
            FIGURE_PROTOCOLS,
            scenario,
            2,
            (outstanding,),
            seed=seed,
            warmup_ms=800.0 if not full else 1500.0,
            measure_ms=1200.0 if not full else 2500.0,
            keep_samples=True,
        )
    ]
    results = iter(executor.run(specs))
    out: Dict[int, Dict[str, List[Tuple[float, float]]]] = {}
    for outstanding in loads:
        curves: Dict[str, List[Tuple[float, float]]] = {}
        for protocol in FIGURE_PROTOCOLS:
            result = next(results)
            lats = [lat for _, _, lat in result.samples]
            curves[protocol] = cdf_points(lats)
            if protocol == "whitebox":
                curves["whitebox-leaders"] = cdf_points(
                    result.latencies_for(leader_pids)
                )
        out[outstanding] = curves
    return out
