"""Convenience cluster wiring for the KV store.

Bundles the simulation substrate, a protocol deployment and one
:class:`~repro.apps.kvstore.KvReplica` per process, with key-based
routing for client commands. Primarily a demonstration vehicle (examples
and tests); the pieces compose manually just as well.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.config import uniform_groups
from ..core.process import PrimCastProcess
from ..baselines.fastcast import FastCastProcess
from ..baselines.whitebox import WhiteBoxProcess
from ..sim.costs import CostModel
from ..sim.events import Scheduler
from ..sim.latency import ConstantLatency, LatencyModel
from ..sim.network import Network
from ..sim.rng import child_rng
from .kvstore import Command, KvReplica, partition_of

_PROTOCOLS = {
    "primcast": PrimCastProcess,
    "whitebox": WhiteBoxProcess,
    "fastcast": FastCastProcess,
}


class KvCluster:
    """A simulated KV deployment: partitions × replicas + routing."""

    def __init__(
        self,
        n_partitions: int = 3,
        replicas_per_partition: int = 3,
        protocol: str = "primcast",
        latency: Optional[LatencyModel] = None,
        cost_model: Optional[CostModel] = None,
        seed: int = 1,
    ):
        if protocol not in _PROTOCOLS:
            raise ValueError(f"unknown protocol {protocol!r}")
        self.n_partitions = n_partitions
        self.config = uniform_groups(n_partitions, replicas_per_partition)
        self.scheduler = Scheduler()
        self.network = Network(
            self.scheduler, latency or ConstantLatency(1.0), child_rng(seed, "kv")
        )
        cls = _PROTOCOLS[protocol]
        self.processes: Dict[int, Any] = {
            pid: cls(pid, self.config, self.scheduler, self.network, cost_model)
            for pid in self.config.all_pids
        }
        self.replicas: Dict[int, KvReplica] = {
            pid: KvReplica(proc, n_partitions)
            for pid, proc in self.processes.items()
        }

    def replica_for(self, command: Command, index: int = 0) -> KvReplica:
        """A replica serving one of the command's partitions."""
        target = min(command.partitions(self.n_partitions))
        pid = self.config.members(target)[index]
        return self.replicas[pid]

    def submit(self, command: Command, on_done=None) -> None:
        """Route ``command`` to an appropriate replica and submit it."""
        self.replica_for(command).submit(command, on_done)

    def run(self, until: float = 1000.0) -> None:
        """Advance the simulation."""
        self.scheduler.run(until=until)

    # -- verification helpers ---------------------------------------------

    def partition_states(self, partition: int) -> List[Dict[str, Any]]:
        """Every replica's state for one partition."""
        return [
            r.state for r in self.replicas.values() if r.partition == partition
        ]

    def assert_replicas_converged(self) -> None:
        """All replicas of each partition hold identical state."""
        for partition in range(self.n_partitions):
            states = self.partition_states(partition)
            first = states[0]
            for state in states[1:]:
                if state != first:
                    raise AssertionError(
                        f"partition {partition} replicas diverged: "
                        f"{state} != {first}"
                    )
