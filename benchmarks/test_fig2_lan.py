"""Figure 2 — LAN throughput vs 95th-percentile latency, 2 destinations.

Regenerates the four curves (White-Box, FastCast, PrimCast, PrimCast HC)
of Figure 2 and asserts the paper's qualitative claims:

* PrimCast has better latency than both baselines at every load level;
* FastCast saturates first (fast + slow path overhead);
* PrimCast's peak throughput exceeds White-Box's and FastCast's;
* hybrid clocks change little in a LAN (no cross-group latency, §7.3).

Absolute msg/s depends on the CPU cost calibration (see DESIGN.md); the
curve shapes and protocol ordering are the reproduced result.
"""

from conftest import full_mode

from repro.harness.experiments import figure2
from repro.harness.report import max_throughput_by_protocol, print_results
from repro.harness.runner import run_load_point
from repro.workload.scenarios import lan_scenario


def test_fig2_lan_throughput_latency(benchmark):
    results = figure2(full=full_mode())
    print_results("Figure 2: LAN, messages to 2 groups", results)
    benchmark.pedantic(
        run_load_point,
        args=("primcast", lan_scenario(), 2, 4),
        kwargs=dict(warmup_ms=50, measure_ms=100, keep_samples=False),
        rounds=1,
        iterations=1,
    )

    peak = max_throughput_by_protocol(results)
    # Paper: PrimCast sustains the highest throughput, FastCast the
    # lowest (it saturates earliest).
    assert peak["primcast"] > peak["whitebox"] > peak["fastcast"]
    # "up to 4x as high in some cases" — at 2 destinations we see >= 3x.
    assert peak["primcast"] >= 3.0 * peak["fastcast"]

    # At every common load level PrimCast's p95 is the lowest.
    by_key = {(r.protocol, r.outstanding): r for r in results}
    for (proto, out), r in by_key.items():
        if proto == "primcast":
            assert r.latency["p95"] <= by_key[("whitebox", out)].latency["p95"]
            assert r.latency["p95"] <= by_key[("fastcast", out)].latency["p95"]

    # Hybrid clocks: no significant effect in a LAN (low load points).
    low = min(r.outstanding for r in results)
    plain = by_key[("primcast", low)].latency["p95"]
    hc = by_key[("primcast-hc", low)].latency["p95"]
    assert abs(plain - hc) < 0.5 * plain
