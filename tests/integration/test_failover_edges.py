"""Leader failover at every protocol step boundary.

The nemesis probe hooks let a schedule crash the timestamping group's
leader *at* a protocol-relevant moment — the instant it starts, appends
its first timestamp proposal, observes the first ack quorum, delivers,
or begins an epoch change — instead of at an arbitrary wall-clock time.
For each boundary we assert the failover edge is clean: messages
submitted before the crash and messages submitted well after it are all
delivered by every correct destination, and the full §2.2 property
suite holds over the correct processes' logs.
"""

import pytest

from repro.chaos.nemesis import Nemesis
from repro.chaos.schedule import FaultEvent, FaultSchedule, Trigger
from repro.core import PrimCastProcess, uniform_groups
from repro.election import make_oracles
from repro.sim import (
    ConstantLatency,
    FailureInjector,
    Network,
    Scheduler,
    child_rng,
)
from repro.verify import attach_monitors
from repro.verify.properties import check_all

#: Step boundaries where the timestamping group's leader gets killed.
BOUNDARIES = ("start", "propose", "ack_quorum", "deliver")


def run_failover(seed, events, group_size=3, horizon=3000.0):
    """Run a 2-group deployment under the given fault events.

    Returns (correct pids, logs, multicasts, nemesis) after asserting
    the property suite over the correct processes.
    """
    config = uniform_groups(2, group_size)
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(seed, "failover"))
    procs = {
        pid: PrimCastProcess(pid, config, sched, net) for pid in config.all_pids
    }
    attach_monitors(procs)
    oracles = make_oracles(config.groups, procs, sched, poll_interval_ms=4.0)
    for pid, proc in procs.items():
        proc.omega = oracles[config.group_of[pid]]
        proc.omega.subscribe(proc._on_omega_output)
    injector = FailureInjector(sched, procs)
    nemesis = Nemesis(
        FaultSchedule("failover", seed, tuple(events)),
        scheduler=sched,
        network=net,
        config=config,
        processes=procs,
        injector=injector,
    )
    nemesis.install()

    logs = {pid: [] for pid in procs}
    multicasts = {}
    for proc in procs.values():
        proc.add_deliver_hook(
            lambda p, m, ts: (
                logs[p.pid].append((m.mid, ts, sched.now)),
                multicasts.setdefault(m.mid, m),
            )
        )

    # Senders that are never crash targets: a group-0 follower and a
    # group-1 member. Every message is timestamped by group 0, so the
    # leader crash sits on each message's critical path.
    dest = frozenset({0, 1})
    senders = (config.members(0)[-1], config.members(1)[0])
    for i in range(6):
        sched.call_at(
            1.0 + i * 2.0, procs[senders[i % 2]].a_multicast, dest, f"early{i}"
        )
    for i in range(6):
        sched.call_at(
            800.0 + i * 2.0, procs[senders[i % 2]].a_multicast, dest, f"late{i}"
        )
    sched.run(until=horizon)

    correct = {pid for pid, proc in procs.items() if not proc.crashed}
    correct_logs = {pid: logs[pid] for pid in correct}
    dest_pids_of = {
        mid: set(config.dest_pids(m.dest)) for mid, m in multicasts.items()
    }
    check_all(correct_logs, set(multicasts), dest_pids_of, correct)
    return correct, logs, multicasts, nemesis


def assert_all_delivered(correct, logs, multicasts, prefix, expected):
    """Every correct process delivered all `prefix*` messages."""
    mids = {m.mid for m in multicasts.values() if str(m.payload).startswith(prefix)}
    assert len(mids) == expected, f"{prefix}* messages lost: {len(mids)}/{expected}"
    for pid in correct:
        seen = {mid for mid, _, _ in logs[pid]}
        assert mids <= seen, f"pid {pid} missing {prefix}* deliveries"


class TestLeaderCrashAtStepBoundaries:
    @pytest.mark.parametrize("boundary", BOUNDARIES)
    def test_delivery_resumes_after_leader_crash(self, boundary):
        events = [
            FaultEvent(
                kind="crash",
                trigger=Trigger(kind="on", event=boundary, nth=1, pid=0),
                target="leader:0",
            )
        ]
        correct, logs, multicasts, nemesis = run_failover(1, events)
        assert nemesis.applied["crashes"] == 1
        assert 0 not in correct, "the group-0 leader must actually crash"
        assert_all_delivered(correct, logs, multicasts, "early", 6)
        assert_all_delivered(correct, logs, multicasts, "late", 6)

    @pytest.mark.parametrize("boundary", ("propose", "ack_quorum"))
    def test_deferred_crash_at_boundary(self, boundary):
        # offset > 0: the leader survives the boundary itself and dies
        # shortly after, with its step's messages already in flight.
        events = [
            FaultEvent(
                kind="crash",
                trigger=Trigger(
                    kind="on", event=boundary, nth=1, pid=0, offset_ms=0.5
                ),
                target="leader:0",
            )
        ]
        correct, logs, multicasts, nemesis = run_failover(2, events)
        assert nemesis.applied["crashes"] == 1
        assert_all_delivered(correct, logs, multicasts, "early", 6)
        assert_all_delivered(correct, logs, multicasts, "late", 6)


class TestLeaderCrashDuringEpochChange:
    def test_new_leader_crash_at_epoch_change_boundary(self):
        # Five-member group 0 (budget 2): the initial leader dies at
        # t=5ms, then whoever drives the resulting epoch change dies at
        # its start — two chained failovers on the timestamping group.
        events = [
            FaultEvent(
                kind="crash",
                trigger=Trigger(kind="at", time_ms=5.0),
                target="leader:0",
            ),
            FaultEvent(
                kind="crash",
                trigger=Trigger(kind="on", event="epoch_change", nth=1),
                target="leader:0",
            ),
        ]
        correct, logs, multicasts, nemesis = run_failover(
            3, events, group_size=5, horizon=4000.0
        )
        assert nemesis.applied["crashes"] == 2
        crashed = set(range(10)) - correct
        assert len(crashed) == 2
        assert crashed <= set(range(5)), "both crashes hit group 0"
        assert_all_delivered(correct, logs, multicasts, "early", 6)
        assert_all_delivered(correct, logs, multicasts, "late", 6)
