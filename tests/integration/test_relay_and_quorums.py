"""End-to-end tests for relay-mode rmcast and explicit quorum systems."""

import pytest

from repro.core import GroupConfig, PrimCastProcess
from repro.sim import ConstantLatency, Network, Scheduler, child_rng
from repro.verify import check_acyclic_order, check_timestamp_order


def build(config, relay=False, quorum_sets=None, delta=1.0):
    sched = Scheduler()
    net = Network(sched, ConstantLatency(delta), child_rng(6, "rq"))
    procs = {
        pid: PrimCastProcess(pid, config, sched, net, relay=relay)
        for pid in config.all_pids
    }
    logs = {pid: [] for pid in procs}
    for pid, p in procs.items():
        p.add_deliver_hook(
            lambda proc, m, ts: logs[proc.pid].append((m.mid, ts, sched.now))
        )
    return sched, net, procs, logs


class TestRelayMode:
    def test_relay_mode_basic_delivery(self):
        config = GroupConfig([[0, 1, 2], [3, 4, 5]])
        sched, net, procs, logs = build(config, relay=True)
        m = procs[4].a_multicast({0, 1})
        sched.run(until=100)
        for pid in range(6):
            assert [x[0] for x in logs[pid]] == [m.mid]

    def test_relay_costs_more_messages(self):
        config = GroupConfig([[0, 1, 2], [3, 4, 5]])
        results = {}
        for relay in (False, True):
            sched, net, procs, logs = build(config, relay=relay)
            procs[4].a_multicast({0, 1})
            sched.run(until=100)
            results[relay] = net.messages_sent
        assert results[True] > results[False]

    def test_relay_ordering_preserved(self):
        config = GroupConfig([[0, 1, 2], [3, 4, 5]])
        sched, net, procs, logs = build(config, relay=True)
        for i in range(15):
            sched.call_at(i * 0.7, procs[i % 6].a_multicast, {0, 1}, None)
        sched.run(until=300)
        check_acyclic_order(logs)
        check_timestamp_order(logs)
        orders = {tuple(m for m, _, _ in logs[pid]) for pid in logs}
        assert len(orders) == 1


class TestExplicitQuorums:
    def _grid_config(self):
        """A 2x2 grid quorum system for a group of 4: quorums are one
        row plus one column (here simplified: any row+column union)."""
        rows = [frozenset({0, 1}), frozenset({2, 3})]
        cols = [frozenset({0, 2}), frozenset({1, 3})]
        quorums = [r | c for r in rows for c in cols]
        return GroupConfig(
            [[0, 1, 2, 3], [4, 5, 6]], quorum_sets={0: quorums}
        )

    def test_grid_quorums_validate(self):
        config = self._grid_config()
        assert config.has_quorum(0, {0, 1, 2})  # row0 + col0
        assert not config.has_quorum(0, {0, 3})  # diagonal: no quorum

    def test_primcast_runs_on_grid_quorums(self):
        config = self._grid_config()
        sched, net, procs, logs = build(config)
        mids = []
        for i in range(10):
            sched.call_at(i * 0.9, lambda i=i: mids.append(
                procs[(i * 3) % 7].a_multicast({0, 1}).mid
            ))
        sched.run(until=300)
        # Everyone delivers all messages, in one common total order
        # (not necessarily the issue order: concurrent messages are
        # ordered by final timestamp).
        orders = {tuple(m for m, _, _ in logs[pid]) for pid in range(7)}
        assert len(orders) == 1
        assert set(orders.pop()) == set(mids)
        check_acyclic_order(logs)

    def test_quorum_clock_respects_grid(self):
        config = self._grid_config()
        # min-clocks: row {0,1} high, row {2,3} low.
        clocks = {0: 10, 1: 10, 2: 0, 3: 0}
        # Every quorum contains a member of row 1 with clock 0.
        assert config.quorum_clock_value(0, clocks) == 0
        clocks = {0: 10, 1: 10, 2: 7, 3: 0}
        # quorum row0+col0 = {0,1,2}: min 7.
        assert config.quorum_clock_value(0, clocks) == 7

    def test_weighted_majority_group(self):
        """Asymmetric quorum system: pid 0 in every quorum (a 'primary
        site'). Delivery still works and needs pid 0."""
        quorums = [frozenset({0, 1}), frozenset({0, 2})]
        config = GroupConfig([[0, 1, 2]], quorum_sets={0: quorums})
        sched, net, procs, logs = build(config)
        m = procs[1].a_multicast({0})
        sched.run(until=50)
        assert all(logs[pid] for pid in (0, 1, 2))
        # Crash pid 0 before a second message: no quorum can ack it.
        procs[0].crash()
        procs[1].a_multicast({0})
        sched.run(until=200)
        assert len(logs[1]) == 1  # the second message cannot be delivered
