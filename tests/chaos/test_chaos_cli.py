"""CLI tests: exit codes, JSON shapes, replay round trip."""

import json

from repro.chaos.cli import main

SCN = "lan-small"


class TestRun:
    def test_clean_campaign_exits_zero(self, capsys):
        code = main(["run", "--scenario", SCN, "--seeds", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "violations=0" in out

    def test_json_report_shape(self, capsys):
        code = main(["run", "--scenario", SCN, "--seeds", "2", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["version"] == 2
        assert report["scenario"] == SCN
        assert report["summary"]["cases"] == 2
        assert report["summary"]["skipped_cases"] == 0
        assert report["skipped_seeds"] == []
        assert len(report["cases"]) == 2

    def test_stats_and_progress_go_to_stderr_only(self, capsys):
        code = main(
            ["run", "--scenario", SCN, "--seeds", "2", "--json",
             "--progress-every", "1"]
        )
        captured = capsys.readouterr()
        assert code == 0
        # stdout is pure report JSON (the campaign-smoke cmp gate);
        # progress and the stats line live on stderr.
        json.loads(captured.out)
        assert "chaos progress: 2/2 cases" in captured.err
        assert "chaos campaign: cases=2 cached=0 simulated=2" in captured.err

    def test_max_cases_reports_skips(self, capsys):
        code = main(
            ["run", "--scenario", SCN, "--seeds", "4", "--max-cases", "2",
             "--json"]
        )
        captured = capsys.readouterr()
        report = json.loads(captured.out)
        assert code == 0
        assert report["summary"]["cases"] == 2
        assert report["skipped_seeds"] == [2, 3]
        assert "skipped=2" in captured.err

    def test_cache_dir_resume_runs_nothing(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = ["run", "--scenario", SCN, "--seeds", "2", "--json",
                "--cache-dir", str(cache)]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "simulated=2" in first.err
        assert main(args) == 0
        second = capsys.readouterr()
        # Warm resume: every case from cache, byte-identical report.
        assert "cached=2 simulated=0" in second.err
        assert second.out == first.out

    def test_report_identical_with_and_without_pool(self, tmp_path):
        out1 = tmp_path / "serial.json"
        out2 = tmp_path / "pooled.json"
        assert main(["run", "--scenario", SCN, "--seeds", "2",
                     "--out", str(out1)]) == 0
        assert main(["run", "--scenario", SCN, "--seeds", "2", "--jobs", "2",
                     "--out", str(out2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()

    def test_out_file_matches_stdout_json(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        main(["run", "--scenario", SCN, "--seeds", "2", "--json", "--out", str(out)])
        stdout = capsys.readouterr().out
        assert out.read_text(encoding="utf-8") == stdout

    def test_mutation_campaign_exits_one(self, capsys):
        code = main(
            ["run", "--scenario", SCN, "--seeds", "3", "--mutation", "no-quorum-wait"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "violations=0" not in out


class TestShrinkAndReplay:
    def _violating_seed(self):
        from repro.chaos.explorer import CaseSpec, run_case

        for seed in range(6):
            spec = CaseSpec(scenario=SCN, seed=seed, mutation="no-quorum-wait")
            if run_case(spec).violations:
                return seed
        raise AssertionError("mutation not detected within 6 seeds")

    def test_shrink_then_replay_round_trip(self, tmp_path, capsys):
        seed = self._violating_seed()
        repro_file = tmp_path / "repro.json"
        code = main(
            [
                "shrink",
                "--scenario", SCN,
                "--seed", str(seed),
                "--mutation", "no-quorum-wait",
                "--max-runs", "120",
                "--out", str(repro_file),
            ]
        )
        assert code == 0
        assert repro_file.exists()
        capsys.readouterr()

        code = main(["replay", str(repro_file), "--json"])
        replay = json.loads(capsys.readouterr().out)
        assert code == 0
        assert replay["reproduced"] is True
        assert replay["violations"] == replay["expect"]

    def test_shrink_clean_case_exits_one(self, capsys):
        code = main(["shrink", "--scenario", SCN, "--seed", "0"])
        assert code == 1
        assert "nothing to shrink" in capsys.readouterr().out

    def test_replay_missing_file_exits_two(self, tmp_path, capsys):
        code = main(["replay", str(tmp_path / "nope.json")])
        assert code == 2

    def test_replay_bad_version_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"version": 99}), encoding="utf-8")
        assert main(["replay", str(bad)]) == 2


class TestUsage:
    def test_unknown_command_exits_two(self, capsys):
        assert main(["explode"]) == 2

    def test_unknown_scenario_exits_two(self, capsys):
        assert main(["run", "--scenario", "atlantis"]) == 2

    def test_help_exits_zero(self, capsys):
        assert main(["--help"]) == 0
