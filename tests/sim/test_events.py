"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.sim.events import Scheduler


def test_initial_state():
    sched = Scheduler()
    assert sched.now == 0.0
    assert sched.events_processed == 0
    assert sched.pending() == 0


def test_events_run_in_time_order():
    sched = Scheduler()
    fired = []
    sched.call_at(5.0, fired.append, "b")
    sched.call_at(1.0, fired.append, "a")
    sched.call_at(9.0, fired.append, "c")
    sched.run()
    assert fired == ["a", "b", "c"]
    assert sched.now == 9.0


def test_ties_break_by_insertion_order():
    sched = Scheduler()
    fired = []
    for name in "abcde":
        sched.call_at(3.0, fired.append, name)
    sched.run()
    assert fired == list("abcde")


def test_call_after_is_relative():
    sched = Scheduler()
    fired = []
    sched.call_at(10.0, lambda: sched.call_after(5.0, lambda: fired.append(sched.now)))
    sched.run()
    assert fired == [15.0]


def test_run_until_stops_before_later_events():
    sched = Scheduler()
    fired = []
    sched.call_at(1.0, fired.append, 1)
    sched.call_at(100.0, fired.append, 100)
    sched.run(until=50.0)
    assert fired == [1]
    assert sched.now == 50.0
    # The later event is still queued and fires on the next run.
    sched.run()
    assert fired == [1, 100]


def test_run_until_advances_now_even_without_events():
    sched = Scheduler()
    sched.run(until=42.0)
    assert sched.now == 42.0


def test_cancel_prevents_firing():
    sched = Scheduler()
    fired = []
    handle = sched.call_at(1.0, fired.append, "x")
    handle.cancel()
    sched.call_at(2.0, fired.append, "y")
    sched.run()
    assert fired == ["y"]


def test_pending_counts_only_armed_events():
    sched = Scheduler()
    h1 = sched.call_at(1.0, lambda: None)
    sched.call_at(2.0, lambda: None)
    h1.cancel()
    assert sched.pending() == 1


def test_cannot_schedule_in_the_past():
    sched = Scheduler()
    sched.call_at(10.0, lambda: None)
    sched.run()
    with pytest.raises(ValueError):
        sched.call_at(5.0, lambda: None)


def test_negative_delay_rejected():
    sched = Scheduler()
    with pytest.raises(ValueError):
        sched.call_after(-1.0, lambda: None)


def test_max_events_limits_execution():
    sched = Scheduler()
    fired = []
    for i in range(10):
        sched.call_at(float(i), fired.append, i)
    sched.run(max_events=3)
    assert fired == [0, 1, 2]


def test_stop_from_within_event():
    sched = Scheduler()
    fired = []
    sched.call_at(1.0, fired.append, 1)
    sched.call_at(2.0, sched.stop)
    sched.call_at(3.0, fired.append, 3)
    sched.run()
    assert fired == [1]
    sched.run()
    assert fired == [1, 3]


def test_events_scheduled_during_run_are_processed():
    sched = Scheduler()
    fired = []

    def chain(depth):
        fired.append(depth)
        if depth < 5:
            sched.call_after(1.0, chain, depth + 1)

    sched.call_at(0.0, chain, 0)
    sched.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sched.now == 5.0


def test_events_processed_counter():
    sched = Scheduler()
    for i in range(4):
        sched.call_at(float(i), lambda: None)
    sched.run()
    assert sched.events_processed == 4


def test_cancelled_events_do_not_leak():
    """Regression: arming and cancelling many timers must not grow the
    heap without bound (the scheduler compacts cancelled entries once
    they dominate)."""
    sched = Scheduler()
    for i in range(10_000):
        handle = sched.call_at(1000.0 + i, lambda: None)
        handle.cancel()
    # Far fewer than 10k entries may remain; the compaction threshold
    # keeps the heap within a small constant factor of the live count.
    assert len(sched._heap) < 1000
    assert sched.pending() == 0
    sched.run()
    assert sched.events_processed == 0


def test_cancelled_burst_keeps_live_timers():
    """Compaction during a cancel burst must not disturb live events."""
    sched = Scheduler()
    fired = []
    live = [sched.call_at(float(i), fired.append, i) for i in range(10)]
    for i in range(5000):
        sched.call_at(500.0 + i, fired.append, -1).cancel()
    assert sched.pending() == 10
    sched.run()
    assert fired == list(range(10))
    assert all(not h.cancelled for h in live)


def test_cancel_is_idempotent():
    sched = Scheduler()
    handle = sched.call_at(1.0, lambda: None)
    handle.cancel()
    handle.cancel()  # double cancel must not corrupt the counter
    assert sched.pending() == 0
    sched.run()
    assert sched.events_processed == 0


def test_run_pauses_gc_and_restores_prior_state():
    """Scheduler.run disables the generational GC for the duration of
    the loop and restores whatever state it found — including when the
    caller had already disabled it."""
    import gc

    sched = Scheduler()
    observed = []
    sched.call_at(1.0, lambda: observed.append(gc.isenabled()))
    assert gc.isenabled()
    sched.run()
    assert observed == [False]
    assert gc.isenabled()

    sched2 = Scheduler()
    observed2 = []
    sched2.call_at(1.0, lambda: observed2.append(gc.isenabled()))
    gc.disable()
    try:
        sched2.run()
        assert observed2 == [False]
        assert not gc.isenabled()  # caller's disable is preserved
    finally:
        gc.enable()


def test_run_under_gc_pressure_is_identical():
    """A run executed with the collector disabled and cyclic garbage
    accumulating must produce exactly the same results as a clean run:
    the schedule is a pure function of the inputs, never of collector
    timing (DESIGN.md §9 — the gc pause around the loop is a pure
    optimisation)."""
    import gc

    from repro.harness.runner import run_load_point
    from repro.workload.scenarios import wan_colocated_leaders

    def run_once():
        return run_load_point(
            "primcast",
            wan_colocated_leaders(),
            2,
            4,
            seed=1,
            warmup_ms=100.0,
            measure_ms=150.0,
            keep_samples=True,
        )

    baseline = run_once()

    gc.disable()
    cycles = []
    try:
        # Cyclic garbage the disabled collector cannot reclaim; with the
        # collector running this allocation pattern would trigger many
        # generation-0 passes mid-run.
        for i in range(10_000):
            node = {"i": i}
            node["self"] = node
            cycles.append(node)
        pressured = run_once()
    finally:
        cycles.clear()
        gc.enable()
        gc.collect()

    assert pressured.samples == baseline.samples
    assert pressured.message_counts == baseline.message_counts
    assert pressured.events == baseline.events
    assert pressured.throughput == baseline.throughput
    assert pressured.latency == baseline.latency
