"""Scale tests: bigger groups, more groups, paper-sized deployments."""

import pytest

from helpers import MiniSystem, random_workload
from repro.verify import check_all


def test_three_step_delivery_with_groups_of_five():
    """The 3-step bound is independent of the group size (quorums of 3)."""
    sys_ = MiniSystem(n_groups=2, group_size=5)
    sys_.multicast(6, {0, 1})  # follower of group 1
    sys_.run()
    for pid in range(10):
        assert sys_.deliveries[pid][0][2] == pytest.approx(3.0, abs=1e-6)


def test_three_step_delivery_with_groups_of_seven():
    sys_ = MiniSystem(n_groups=2, group_size=7)
    sys_.multicast(8, {0, 1})
    sys_.run()
    for pid in range(14):
        assert sys_.deliveries[pid][0][2] == pytest.approx(3.0, abs=1e-6)


def test_paper_scale_deployment_8x3():
    """8 groups x 3 replicas (the evaluation's size), all-group message."""
    sys_ = MiniSystem(n_groups=8, group_size=3)
    sys_.multicast(1, set(range(8)))
    sys_.run()
    for pid in range(24):
        assert sys_.deliveries[pid][0][2] == pytest.approx(3.0, abs=1e-6)


def test_properties_at_paper_scale():
    sys_ = MiniSystem(n_groups=8, group_size=3)
    random_workload(sys_, 100, seed=77, max_dest_groups=4)
    sys_.run_to_quiescence()
    check_all(
        sys_.logs,
        set(sys_.multicasts),
        sys_.dest_pids_of(),
        sys_.correct_pids(),
        prefix=False,  # quadratic; covered at smaller scales
    )


def test_single_process_groups_degenerate_to_skeen_like():
    """Groups of one: quorum = the process itself; 3 steps still hold
    (start -> ack -> ack exchange)."""
    sys_ = MiniSystem(n_groups=3, group_size=1)
    sys_.multicast(1, {0, 1, 2})
    sys_.run()
    for pid in (0, 1, 2):
        log = sys_.deliveries[pid]
        assert len(log) == 1
        assert log[0][2] <= 3.0 + 1e-6


def test_mixed_group_sizes():
    from repro.core import GroupConfig, PrimCastProcess
    from repro.sim import ConstantLatency, Network, Scheduler, child_rng

    config = GroupConfig([[0, 1, 2, 3, 4], [5, 6, 7], [8]])
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(2, "mixed"))
    procs = {pid: PrimCastProcess(pid, config, sched, net) for pid in config.all_pids}
    logs = {pid: [] for pid in procs}
    for pid, p in procs.items():
        p.add_deliver_hook(lambda proc, m, ts: logs[proc.pid].append(m.mid))
    m = procs[6].a_multicast({0, 1, 2})
    sched.run(until=50)
    for pid in config.all_pids:
        assert logs[pid] == [m.mid]
