"""Perf-trajectory dashboard tests (repro.harness.report --history)."""

import json

import pytest

from repro.harness.report import history_markdown, main


def rows():
    return [
        {
            "timestamp": "2026-07-01T00:00:00Z",
            "backend": "pure-python",
            "wall_s": 8.0,
            "events_per_sec": 100000.0,
            "speedup_vs_seed": 1.25,
            "note": "baseline",
        },
        {
            "timestamp": "2026-07-15T00:00:00Z",
            "backend": "pure-python",
            "wall_s": 4.0,
            "events_per_sec": 200000.0,
            "speedup_vs_seed": 2.5,
            "note": "",
        },
        {
            "timestamp": "2026-08-01T00:00:00Z",
            "backend": "pure-python",
            "wall_s": 5.0,
            "events_per_sec": 160000.0,
            "speedup_vs_seed": 2.0,
            "note": "regression",
        },
    ]


def test_history_markdown_renders_per_row_deltas():
    table = history_markdown(rows())
    lines = table.splitlines()
    assert lines[0].startswith("| When (UTC) |")
    assert "Δ events/s" in lines[0]
    # first row has no predecessor; then +100%, then -20%
    assert "| — |" in lines[2]
    assert "+100.0%" in lines[3]
    assert "-20.0%" in lines[4]
    assert "2.50x" in lines[3]
    assert "| regression |" in lines[4]


def test_history_markdown_empty_is_just_the_header():
    assert len(history_markdown([]).splitlines()) == 2


def test_cli_renders_history_log(tmp_path, capsys):
    log = tmp_path / "hist.jsonl"
    log.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in rows())
    )
    assert main(["--history", "--path", str(log)]) == 0
    out = capsys.readouterr().out
    assert "+100.0%" in out
    assert "baseline" in out


def test_cli_missing_log_exits_one(tmp_path, capsys):
    assert main(["--history", "--path", str(tmp_path / "none.jsonl")]) == 1
    assert "no history rows" in capsys.readouterr().out


def test_cli_requires_history_flag(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_repo_history_log_renders():
    """The real BENCH_history.jsonl must always render (EXPERIMENTS.md
    embeds exactly this table)."""
    from repro.harness.perf import history_table, read_history

    real = read_history()
    assert real, "BENCH_history.jsonl missing or empty at the repo root"
    table = history_table(real)
    assert table.splitlines()[0].startswith("| When (UTC) |")
    assert len(table.splitlines()) == len(real) + 2
