"""Tests for latency/throughput statistics."""

import pytest

from repro.harness.metrics import cdf_points, percentile, summarize


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = list(range(1, 101))
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 100

    def test_p95_linear_interpolation(self):
        data = list(range(1, 101))
        assert percentile(data, 95) == pytest.approx(95.05)

    def test_single_value(self):
        assert percentile([7.0], 95) == 7.0

    def test_unsorted_input_ok(self):
        assert percentile([9, 1, 5], 100) == 9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bad_q_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_matches_numpy_linear_method(self):
        numpy = pytest.importorskip("numpy")
        data = [0.3, 1.7, 2.2, 9.1, 4.4, 5.0, 6.8]
        for q in (10, 25, 50, 75, 90, 95, 99):
            assert percentile(data, q) == pytest.approx(
                float(numpy.percentile(data, q))
            )


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["count"] == 3
        assert s["mean"] == pytest.approx(2.0)
        assert s["p50"] == 2.0

    def test_empty(self):
        s = summarize([])
        assert s["count"] == 0
        assert s["p95"] == 0.0


class TestCdf:
    def test_small_input_all_points(self):
        pts = cdf_points([3.0, 1.0, 2.0])
        assert pts == [(1.0, pytest.approx(1 / 3)), (2.0, pytest.approx(2 / 3)), (3.0, 1.0)]

    def test_monotone(self):
        data = [float(i % 17) for i in range(1000)]
        pts = cdf_points(data, n_points=50)
        xs = [x for x, _ in pts]
        ys = [y for _, y in pts]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_downsampled_length(self):
        pts = cdf_points(list(range(1000)), n_points=100)
        assert len(pts) == 100

    def test_empty(self):
        assert cdf_points([]) == []
