"""Tests for result export (CSV/JSON)."""

import json

import pytest

from repro.harness.export import (
    CSV_FIELDS,
    read_csv,
    result_row,
    write_cdf_csv,
    write_csv,
    write_json,
)
from repro.harness.runner import RunResult


@pytest.fixture
def results():
    return [
        RunResult(
            "primcast", "LAN", 2, 4, 12345.6,
            {"count": 10, "mean": 1.25, "p50": 1.0, "p95": 2.0, "p99": 3.0},
            events=999,
        ),
        RunResult(
            "fastcast", "LAN", 2, 4, 2345.0,
            {"count": 7, "mean": 4.5, "p50": 4.0, "p95": 6.0, "p99": 9.0},
        ),
    ]


def test_result_row_fields(results):
    row = result_row(results[0])
    assert set(row) == set(CSV_FIELDS)
    assert row["throughput"] == 12345.6
    assert row["samples"] == 10
    assert row["events"] == 999


def test_csv_round_trip(tmp_path, results):
    path = tmp_path / "out.csv"
    write_csv(str(path), results)
    rows = read_csv(str(path))
    assert len(rows) == 2
    assert rows[0]["protocol"] == "primcast"
    assert float(rows[0]["p95_ms"]) == 2.0
    assert rows[1]["protocol"] == "fastcast"


def test_json_export(tmp_path, results):
    path = tmp_path / "out.json"
    write_json(str(path), results)
    data = json.loads(path.read_text())
    assert len(data) == 2
    assert data[0]["scenario"] == "LAN"
    assert data[1]["throughput"] == 2345.0


def test_cdf_csv(tmp_path):
    path = tmp_path / "cdf.csv"
    write_cdf_csv(
        str(path),
        {"primcast": [(100.0, 0.5), (110.0, 1.0)], "whitebox": [(120.0, 1.0)]},
    )
    rows = read_csv(str(path))
    assert len(rows) == 3
    assert rows[0]["series"] == "primcast"
    assert float(rows[2]["latency_ms"]) == 120.0
