"""Latency/throughput statistics for experiment runs."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation.

    Matches numpy's default ("linear") method; implemented locally so the
    core library stays dependency-free.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    # a + (b - a) * f rather than a*(1-f) + b*f: the latter can exceed
    # max(a, b) by one ulp when a == b (caught by hypothesis).
    return ordered[low] + (ordered[high] - ordered[low]) * frac


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean and the percentiles the paper reports (p50/p95/p99)."""
    if not values:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    return {
        "count": len(values),
        "mean": sum(values) / len(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "p99": percentile(values, 99),
    }


def cdf_points(values: Sequence[float], n_points: int = 100) -> List[Tuple[float, float]]:
    """(latency, cumulative fraction) pairs for plotting a CDF (Fig 5)."""
    if not values:
        return []
    ordered = sorted(values)
    n = len(ordered)
    if n <= n_points:
        return [(v, (i + 1) / n) for i, v in enumerate(ordered)]
    points = []
    for i in range(n_points):
        idx = min(n - 1, int(round((i + 1) / n_points * n)) - 1)
        points.append((ordered[idx], (idx + 1) / n))
    return points
