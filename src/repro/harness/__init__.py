"""Evaluation harness: runners, metrics, analytic model, experiments."""

from .analytic import (
    COMPLEXITY_FORMULAS,
    LATENCY_PROFILES,
    LatencyProfile,
    exact_message_count,
    hybrid_clock_failure_free_ms,
    message_complexity,
    table1_rows,
)
from .cache import ResultCache, code_fingerprint, spec_key
from .diagnostics import ConvoyProbe, attach_probes, merged_summary
from .experiments import FIGURE_PROTOCOLS, figure2, figure3, figure4, figure5, sweep
from .export import result_row, write_cdf_csv, write_csv, write_json
from .metrics import cdf_points, percentile, summarize
from .parallel import (
    PointSpec,
    SweepExecutor,
    expand_sweep,
    point_spec,
    scenario_matches_registry,
)
from .report import (
    THROUGHPUT_HEADERS,
    format_table,
    max_throughput_by_protocol,
    print_results,
    throughput_latency_rows,
)
from .runner import PROTOCOLS, RunResult, System, build_system, run_load_point
from .steps import build_bare_system, measure_collision_free, measure_primcast_convoy

__all__ = [
    "PROTOCOLS",
    "System",
    "RunResult",
    "build_system",
    "run_load_point",
    "sweep",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "FIGURE_PROTOCOLS",
    "percentile",
    "summarize",
    "cdf_points",
    "LatencyProfile",
    "LATENCY_PROFILES",
    "COMPLEXITY_FORMULAS",
    "message_complexity",
    "exact_message_count",
    "hybrid_clock_failure_free_ms",
    "table1_rows",
    "measure_collision_free",
    "measure_primcast_convoy",
    "build_bare_system",
    "format_table",
    "print_results",
    "throughput_latency_rows",
    "THROUGHPUT_HEADERS",
    "max_throughput_by_protocol",
    "ConvoyProbe",
    "attach_probes",
    "merged_summary",
    "write_csv",
    "write_json",
    "write_cdf_csv",
    "result_row",
    "PointSpec",
    "SweepExecutor",
    "expand_sweep",
    "point_spec",
    "scenario_matches_registry",
    "ResultCache",
    "code_fingerprint",
    "spec_key",
]
