"""``python -m repro.analysis`` — run the lint pass."""

import sys

from .cli import main

sys.exit(main())
