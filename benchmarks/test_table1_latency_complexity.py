"""Table 1 — protocol latency (steps) and message complexity.

Regenerates both halves of Table 1:

* the analytic step counts (collision-free / failure-free, from the C/D
  decomposition of §3.2) next to *measured* step counts from
  single-message runs on an exact-Δ network;
* the symbolic message-complexity formulas next to measured wire counts
  for a-multicasts to k groups of n = 3.

Also measures the failure-free (worst-case convoy) bound for PrimCast
and PrimCast HC via the crafted scenario of
:func:`repro.harness.steps.measure_primcast_convoy` — the §6 claim
``min(5Δ, 4Δ + 2ε)``.
"""

from repro.harness.analytic import (
    COMPLEXITY_FORMULAS,
    LATENCY_PROFILES,
    message_complexity,
)
from repro.harness.report import format_table
from repro.harness.steps import measure_collision_free, measure_primcast_convoy

PROTOCOLS = ("fastcast", "whitebox", "primcast")


def test_table1_latency_rows(benchmark):
    results = {p: measure_collision_free(p, 2, n_groups=8) for p in PROTOCOLS}
    benchmark(measure_collision_free, "primcast", 2, 8)

    convoy_plain = measure_primcast_convoy(hybrid=False, delta_ms=10.0)
    convoy_hc = measure_primcast_convoy(hybrid=True, delta_ms=10.0, epsilon_ms=1.0)

    rows = []
    for proto in PROTOCOLS:
        profile = LATENCY_PROFILES[proto]
        r = results[proto]
        measured = f"{r['max_steps']:.1f}"
        if proto == "whitebox":
            measured += f" ({r['max_leader_steps']:.1f} at leaders)"
        if proto == "primcast":
            ff_measured = f"{convoy_plain['measured_steps']:.2f}"
        else:
            ff_measured = "-"
        rows.append(
            [
                proto,
                profile.collision_free,
                measured,
                profile.failure_free,
                ff_measured,
            ]
        )
    rows.append(
        [
            "primcast-hc (eps=0.1d)",
            3,
            "3.0",
            f"{convoy_hc['analytic_steps']:.1f}",
            f"{convoy_hc['measured_steps']:.2f}",
        ]
    )
    print("\n== Table 1 (latency, communication steps; k=2 groups of n=3) ==")
    print(
        format_table(
            [
                "protocol",
                "collision-free (paper)",
                "collision-free (measured)",
                "failure-free (paper)",
                "worst-convoy (measured)",
            ],
            rows,
        )
    )

    # Shape assertions: the headline latency claims of the paper.
    assert results["primcast"]["max_steps"] == 3.0
    assert results["whitebox"]["max_leader_steps"] == 3.0
    assert results["whitebox"]["max_steps"] == 4.0
    assert results["fastcast"]["max_steps"] == 4.0
    assert 4.5 < convoy_plain["measured_steps"] <= 5.0
    assert convoy_hc["measured_steps"] < convoy_plain["measured_steps"]


def test_table1_message_complexity(benchmark):
    n = 3
    rows = []
    for proto in PROTOCOLS:
        for k in (1, 2, 4, 8):
            r = measure_collision_free(proto, k, n_groups=8)
            formula_total = message_complexity(proto, k, n)["total"]
            rows.append(
                [
                    proto,
                    k,
                    COMPLEXITY_FORMULAS[proto],
                    formula_total,
                    r["messages"],
                ]
            )
            # The paper's formula approximates followers as n (not n-1)
            # and counts bumps as optional, so measured <= formula but
            # at least the implementation's mandatory message count.
            from repro.harness.analytic import exact_message_count

            exact = exact_message_count(proto, k, n)
            mandatory = exact["total"] - exact.get("bump(max)", 0)
            assert mandatory <= r["messages"] <= formula_total
    benchmark(measure_collision_free, "primcast", 8, 8)
    print("\n== Table 1 (message complexity for a-multicast to k groups of n=3) ==")
    print(
        format_table(
            ["protocol", "k", "formula", "formula total", "measured"], rows
        )
    )
