"""Tests for the shared baseline endpoint surface."""

import pytest

from repro.baselines.base import GroupProtocolProcess
from repro.core import uniform_groups
from repro.core.messages import Multicast
from repro.sim import ConstantLatency, Network, Scheduler, child_rng


class Dummy(GroupProtocolProcess):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.submitted = []

    def a_multicast_m(self, multicast):
        self.submitted.append(multicast)

    def on_r_deliver(self, origin, payload):
        pass


def build():
    config = uniform_groups(2, 3)
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(1, "b"))
    return config, sched, net


def test_pid_must_belong_to_a_group():
    config, sched, net = build()
    with pytest.raises(ValueError, match="not a member"):
        Dummy(99, config, sched, net)


def test_mids_are_sequential_per_process():
    config, sched, net = build()
    proc = Dummy(0, config, sched, net)
    m1 = proc.a_multicast({0})
    m2 = proc.a_multicast({0, 1})
    assert m1.mid == (0, 0)
    assert m2.mid == (0, 1)


def test_record_delivery_fires_hooks_and_logs():
    config, sched, net = build()
    proc = Dummy(0, config, sched, net)
    seen = []
    proc.add_deliver_hook(lambda p, m, ts: seen.append((m.mid, ts)))
    m = Multicast((9, 9), frozenset({0}))
    proc._record_delivery(m, 42)
    assert seen == [((9, 9), 42)]
    assert proc.delivered == {(9, 9)}
    assert proc.delivery_log[0][:2] == ((9, 9), 42)


def test_gid_matches_config():
    config, sched, net = build()
    assert Dummy(4, config, sched, net).gid == 1
