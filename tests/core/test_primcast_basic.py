"""PrimCast behaviour tests on small deterministic networks."""

import pytest

from helpers import MiniSystem, random_workload
from repro.core.process import FOLLOWER, PRIMARY
from repro.verify import check_all


def test_local_message_delivered_by_own_group_only():
    sys_ = MiniSystem(n_groups=3)
    m = sys_.multicast(0, {0})
    sys_.run()
    for pid in (0, 1, 2):
        assert [x[0] for x in sys_.deliveries[pid]] == [m.mid]
    for pid in range(3, 9):
        assert sys_.deliveries[pid] == []


def test_global_message_delivered_everywhere_in_dest():
    sys_ = MiniSystem(n_groups=3)
    m = sys_.multicast(0, {0, 2})
    sys_.run()
    for pid in (0, 1, 2, 6, 7, 8):
        assert [x[0] for x in sys_.deliveries[pid]] == [m.mid]
    for pid in (3, 4, 5):
        assert sys_.deliveries[pid] == []


def test_three_step_delivery_at_every_destination():
    """The headline claim: 3 communication steps at *every* destination
    (sender one step away from all destinations)."""
    sys_ = MiniSystem(n_groups=2)
    sys_.multicast(4, {0, 1})  # p4 is a follower of group 1
    sys_.run()
    for pid in range(6):
        assert sys_.deliveries[pid][0][2] == pytest.approx(3.0, abs=1e-6)


def test_sender_outside_destinations_can_multicast():
    sys_ = MiniSystem(n_groups=3)
    m = sys_.multicast(8, {0})  # group 2 process sends to group 0
    sys_.run()
    assert [x[0] for x in sys_.deliveries[0]] == [m.mid]
    assert sys_.deliveries[8] == []


def test_final_timestamp_is_max_of_local_timestamps():
    sys_ = MiniSystem(n_groups=2)
    # Raise group 1's clock with local traffic.
    for _ in range(4):
        sys_.multicast(3, {1})
    sys_.run(until=100)
    m = sys_.multicast(0, {0, 1})
    sys_.run(until=200)
    final = [ts for mid, ts, _ in sys_.deliveries[0] if mid == m.mid][0]
    # group 1's clock was at 4 -> its proposal is 5, group 0's is 1.
    assert final == 5
    proc = sys_.processes[0]
    assert proc.local_ts(m.mid, 0) == 1
    assert proc.local_ts(m.mid, 1) == 5


def test_same_final_timestamp_at_all_destinations():
    sys_ = MiniSystem(n_groups=3)
    random_workload(sys_, 40, seed=3)
    sys_.run_to_quiescence()
    finals = {}
    for pid, log in sys_.deliveries.items():
        for mid, ts, _ in log:
            assert finals.setdefault(mid, ts) == ts


def test_deliveries_in_final_timestamp_order():
    sys_ = MiniSystem(n_groups=3)
    random_workload(sys_, 60, seed=5)
    sys_.run_to_quiescence()
    for pid, log in sys_.deliveries.items():
        keys = [(ts, mid) for mid, ts, _ in log]
        assert keys == sorted(keys)


def test_atomic_multicast_properties_random_run():
    sys_ = MiniSystem(n_groups=3)
    random_workload(sys_, 80, seed=11)
    sys_.run_to_quiescence()
    check_all(
        sys_.logs,
        set(sys_.multicasts),
        sys_.dest_pids_of(),
        sys_.correct_pids(),
    )


def test_ties_broken_by_message_id():
    """Two messages with equal final timestamps in disjoint groups that
    later meet at a common group must order by id everywhere."""
    sys_ = MiniSystem(n_groups=2)
    a = sys_.multicast(1, {0, 1})
    b = sys_.multicast(4, {0, 1})
    sys_.run_to_quiescence()
    orders = set()
    for pid in range(6):
        mids = [mid for mid, _, _ in sys_.deliveries[pid]]
        assert set(mids) == {a.mid, b.mid}
        orders.add(tuple(mids))
    assert len(orders) == 1


def test_initial_roles():
    sys_ = MiniSystem(n_groups=2)
    assert sys_.processes[0].role == PRIMARY
    assert sys_.processes[3].role == PRIMARY
    for pid in (1, 2, 4, 5):
        assert sys_.processes[pid].role == FOLLOWER


def test_clock_advances_past_delivered_finals():
    sys_ = MiniSystem(n_groups=2)
    sys_.multicast(0, {0, 1})
    sys_.run_to_quiescence()
    for pid in range(6):
        proc = sys_.processes[pid]
        for mid, ts, _ in sys_.deliveries[pid]:
            assert proc.clock >= ts


def test_duplicate_destinations_collapse():
    sys_ = MiniSystem(n_groups=2)
    m = sys_.multicast(0, {0, 0, 1})
    assert m.dest == {0, 1}


def test_unknown_destination_group_rejected():
    sys_ = MiniSystem(n_groups=2)
    with pytest.raises(ValueError):
        sys_.multicast(0, {0, 7})


def test_throughput_pipeline_no_message_lost():
    sys_ = MiniSystem(n_groups=4)
    sent = random_workload(sys_, 150, seed=23, spread_ms=30)
    sys_.run_to_quiescence()
    assert len(sent) == 150
    delivered_mids = set()
    for log in sys_.deliveries.values():
        delivered_mids.update(mid for mid, _, _ in log)
    assert delivered_mids == {m.mid for m in sent}
