"""Differential harness: the sim and net backends must agree.

The same :class:`~repro.core.process.PrimCastProcess` code runs over
two substrates — the deterministic simulator and real asyncio sockets.
The workload (:mod:`repro.net.workload`) is shaped so the protocol
*determines* the observable outcome regardless of timing: final
timestamps strictly increase in submission order, so every group
delivers exactly the submission-order subsequence addressed to it.
Agreement is therefore an exact check, not a statistical one:

* per pid, the **delivered set** must be identical across backends
  (killed nodes excepted — theirs must be a prefix of their group's
  order), and
* per group, every member's **delivery order** must be identical, and
  identical across backends.

A violation means one backend reordered or dropped an a-delivery the
other performed — a safety bug in the transport port, not noise.

The **open-loop** driver (``driver_mode="open"``) gives up the exact
check on purpose: K concurrent clients make the interleaving
timing-dependent, so no sim run defines *the* reference order. What
must still hold are the protocol's safety properties themselves —
integrity, uniform agreement, acyclic order, timestamp order, prefix
order — which :mod:`repro.verify` already checks over per-node
delivery logs. :func:`verify_cluster_logs` reconstructs the ground
truth (which mids exist, who they were addressed to) from the
``submit-*.jsonl`` logs every node writes, merges the per-node
``delivery-*.jsonl`` logs, and runs the statistical checks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..core.config import GroupConfig
from ..core.process import PrimCastProcess
from ..sim.costs import CostModel
from ..sim.events import Scheduler
from ..sim.latency import ConstantLatency
from ..sim.network import Network
from ..sim.rng import child_rng
from ..verify.properties import Violation, collect_violations
from .cluster import ClusterResult, read_delivery_log_full, read_submit_log
from .host import Topology

MessageId = Tuple[int, int]
DeliveryMap = Dict[int, List[Tuple[MessageId, int]]]


def run_sim_reference(topology: Topology) -> DeliveryMap:
    """Run the topology's workload on the simulator; pid -> deliveries.

    Failure-free (the kill, if any, happens only on the net side; the
    sim reference defines the full no-failure outcome that survivors
    must still produce). No oracle is attached, so the event heap
    drains when the protocol quiesces and the run terminates on its
    own.
    """
    config = GroupConfig([list(g) for g in topology.groups])
    scheduler = Scheduler()
    network = Network(
        scheduler, ConstantLatency(1.0), child_rng(topology.seed, "latency")
    )
    procs = {
        pid: PrimCastProcess(pid, config, scheduler, network, CostModel())
        for pid in config.all_pids
    }
    workload = topology.workload()
    driver = procs[topology.driver_pid]
    state = {"next": 0}

    def submit_next() -> None:
        i = state["next"]
        if i >= len(workload):
            return
        state["next"] += 1
        driver.a_multicast(workload[i], payload={"i": i})

    def on_driver_deliver(proc: PrimCastProcess, multicast: object, final: int) -> None:
        mid = multicast.mid  # type: ignore[attr-defined]
        if mid[0] == topology.driver_pid and mid[1] + 1 == state["next"]:
            proc.post_job(submit_next)

    driver.add_deliver_hook(on_driver_deliver)
    scheduler.call_after(0.0, submit_next)
    scheduler.run(until=10_000_000.0)
    return {
        pid: [(mid, final) for mid, final, _t in proc.delivery_log]
        for pid, proc in procs.items()
    }


def compare_deliveries(
    reference: DeliveryMap,
    observed: DeliveryMap,
    config: GroupConfig,
    killed: Optional[int] = None,
) -> List[str]:
    """Mismatch descriptions (empty = the backends agree).

    ``observed`` rows for a killed pid are held only to the prefix
    property; every other pid must match the reference exactly.
    """
    problems: List[str] = []
    for pid, ref_rows in sorted(reference.items()):
        obs_rows = observed.get(pid)
        if obs_rows is None:
            problems.append(f"pid {pid}: no observed deliveries")
            continue
        ref_order = [mid for mid, _f in ref_rows]
        obs_order = [mid for mid, _f in obs_rows]
        if pid == killed:
            if obs_order != ref_order[: len(obs_order)]:
                problems.append(
                    f"pid {pid} (killed): delivered order is not a prefix "
                    f"of the reference ({obs_order!r} vs {ref_order!r})"
                )
            continue
        if set(obs_order) != set(ref_order):
            missing = sorted(set(ref_order) - set(obs_order))
            extra = sorted(set(obs_order) - set(ref_order))
            problems.append(
                f"pid {pid}: delivered set differs "
                f"(missing {missing!r}, extra {extra!r})"
            )
            continue
        if obs_order != ref_order:
            problems.append(
                f"pid {pid}: delivery order differs "
                f"({obs_order!r} vs {ref_order!r})"
            )
    # Cross-member agreement inside each backend: every member of a
    # group must see the group's messages in one order.
    for name, rows_by_pid in (("reference", reference), ("observed", observed)):
        for gid in range(config.n_groups):
            orders = {}
            for pid in config.members(gid):
                if pid == killed and name == "observed":
                    continue
                rows = rows_by_pid.get(pid)
                if rows is not None:
                    orders[pid] = [mid for mid, _f in rows]
            if len(set(map(tuple, orders.values()))) > 1:
                problems.append(
                    f"{name}: group {gid} members disagree on order: {orders!r}"
                )
    return problems


def diff_cluster_result(result: ClusterResult) -> List[str]:
    """Differential check for a finished cluster run (either runner)."""
    reference = run_sim_reference(result.topology)
    observed: DeliveryMap = {
        pid: outcome.delivered for pid, outcome in result.outcomes.items()
    }
    killed = next(
        (pid for pid, o in result.outcomes.items() if o.killed), None
    )
    config = result.topology.make_config()
    return compare_deliveries(reference, observed, config, killed=killed)


# ----------------------------------------------------------------------
# statistical verification (open-loop driver)
# ----------------------------------------------------------------------


def verify_cluster_logs(result: ClusterResult) -> List[Violation]:
    """Run the statistical safety checks over a cluster's on-disk logs.

    Ground truth comes from the run itself, not the seed: the merged
    ``submit-*.jsonl`` logs say which mids were a-multicast and to
    which groups. Delivery logs are read back *with* local delivery
    times — the (mid, final, t) triple shape ``repro.verify``'s
    checkers consume. Killed nodes stay in the logs (their prefix is
    checked) but drop out of ``correct_pids``, exactly the paper's
    uniform-agreement obligation.
    """
    rundir = result.rundir
    if rundir is None:
        raise ValueError("cluster result has no rundir to verify from")
    config = result.topology.make_config()
    pids = sorted(config.group_of)

    multicast_mids: Set[Tuple[int, int]] = set()
    dest_pids_of: Dict[Tuple[int, int], Set[int]] = {}
    for pid in pids:
        for mid, dests, _t in read_submit_log(rundir / f"submit-{pid}.jsonl"):
            multicast_mids.add(mid)
            dest_pids_of[mid] = set(config.dest_pids(dests))

    logs = {
        pid: read_delivery_log_full(rundir / f"delivery-{pid}.jsonl")
        for pid in pids
    }
    killed = {pid for pid, o in result.outcomes.items() if o.killed}
    correct_pids = {pid for pid in pids if pid not in killed}
    return collect_violations(
        logs, multicast_mids, dest_pids_of, correct_pids, prefix=True
    )
