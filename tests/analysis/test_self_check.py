"""The shipped source tree must analyse clean.

This is the wiring of the lint pass into the tier-1 suite: any commit
that introduces a determinism or protocol-contract hazard in
``src/repro`` fails here, with the same findings ``python -m
repro.analysis`` would print.
"""

from pathlib import Path

from repro.analysis import DEFAULT_CONFIG, RULES, analyze_paths

SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_source_tree_exists():
    assert (SRC_REPRO / "core" / "process.py").is_file()


def test_shipped_tree_is_clean():
    findings = analyze_paths([SRC_REPRO], DEFAULT_CONFIG)
    assert findings == [], "\n".join(f.format() for f in findings)


def test_all_rules_were_in_play():
    """The clean result must come from running every registered rule,
    not from an accidentally empty registry."""
    assert len(RULES) >= 7


def test_known_violations_exist_without_the_reviewed_allowlist():
    """The built-in allowlist is load-bearing: without it, the reviewed
    exemptions (Envelope's per-payload kind, EpochPromise's field
    capture) surface as findings. This pins that the exemptions are
    still real code, so stale allowlist entries get noticed."""
    from repro.analysis import AnalysisConfig

    findings = analyze_paths([SRC_REPRO], AnalysisConfig(allow={}))
    contexts = {f.context for f in findings}
    assert "repro.rmcast.fifo::Envelope" in contexts
    assert "repro.core.messages::EpochPromise.__init__" in contexts
    # And nothing else: every finding is a reviewed exemption.
    for finding in findings:
        assert DEFAULT_CONFIG.is_allowed(finding.rule, finding.context), (
            finding.format()
        )
