"""Genuineness tests: only senders and destinations take steps (§2.2)."""

import pytest

from helpers import MiniSystem, random_workload
from repro.verify import GenuinenessTracer, PropertyViolation


def run_with_tracer(protocol, n_groups=4, n_messages=40, seed=3):
    sys_ = MiniSystem(protocol=protocol, n_groups=n_groups)
    tracer = GenuinenessTracer(sys_.config)
    sys_.network.add_trace_hook(tracer)
    random_workload(sys_, n_messages, seed=seed, max_dest_groups=2)
    sys_.run_to_quiescence()
    dest_pids = sys_.dest_pids_of()
    origins = {mid: mid[0] for mid in sys_.multicasts}
    return sys_, tracer, dest_pids, origins


@pytest.mark.parametrize("protocol", ["primcast", "whitebox", "fastcast"])
def test_protocol_is_genuine(protocol):
    sys_, tracer, dest_pids, origins = run_with_tracer(protocol)
    tracer.check(dest_pids, origins)


def test_local_messages_never_leave_their_group():
    sys_ = MiniSystem(protocol="primcast", n_groups=4)
    tracer = GenuinenessTracer(sys_.config)
    sys_.network.add_trace_hook(tracer)
    sys_.multicast(0, {0})
    sys_.run_to_quiescence()
    group0 = set(sys_.config.members(0))
    for pairs in tracer.endpoints.values():
        for src, dst in pairs:
            assert src in group0 and dst in group0


def test_tracer_flags_non_genuine_traffic():
    sys_ = MiniSystem(n_groups=3)
    tracer = GenuinenessTracer(sys_.config)

    class Fake:
        kind = "ack"
        mid = (0, 0)

    tracer(0, 8, Fake(), 1.0)  # p8 (group 2) is neither dest nor origin
    with pytest.raises(PropertyViolation, match="non-genuine"):
        tracer.check({(0, 0): {0, 1, 2}}, {(0, 0): 0})


def test_tracer_flags_cross_group_housekeeping():
    sys_ = MiniSystem(n_groups=2)
    tracer = GenuinenessTracer(sys_.config)

    class Anon:
        kind = "bump"

    tracer(0, 4, Anon(), 1.0)  # bump crossing groups would be a bug
    with pytest.raises(PropertyViolation, match="cross-group"):
        tracer.check({}, {})


def test_bumps_stay_inside_groups_in_real_runs():
    sys_, tracer, dest_pids, origins = run_with_tracer("primcast", n_messages=30)
    group_of = sys_.config.group_of
    bumps = [(s, d) for s, d, k in tracer.anonymous if k == "bump"]
    assert bumps, "expected some bump traffic"
    for src, dst in bumps:
        assert group_of[src] == group_of[dst]
