"""Build script; opts into the mypyc-compiled hot core.

The default build (``pip install -e .``) is pure python. Setting
``REPRO_MYPYC=1`` compiles the modules listed in
``repro._backend.COMPILED_MODULES`` — the simulation substrate and the
protocol core — with mypyc. The compiled build is optional and purely a
performance feature: the pure-python source is the golden reference, and
``REPRO_COMPILED=0`` at runtime forces it even when extensions are
installed (see ``repro/_backend.py`` and DESIGN.md §9).

A requested compile fails loudly (rather than silently producing a pure
build) when the mypy toolchain is missing, so CI can never "pass" the
compiled job without actually compiling.
"""

import os
import sys

from setuptools import setup


def _mypyc_ext_modules():
    if os.environ.get("REPRO_MYPYC", "0") != "1":
        return {}
    try:
        from mypyc.build import mypycify
    except ImportError as exc:
        raise RuntimeError(
            "REPRO_MYPYC=1 requires the mypy toolchain (pip install mypy); "
            "unset REPRO_MYPYC for a pure-python install"
        ) from exc
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
    from repro._backend import COMPILED_MODULES

    paths = [
        os.path.join("src", name.replace(".", os.sep) + ".py")
        for name in COMPILED_MODULES
    ]
    missing = [p for p in paths if not os.path.isfile(p)]
    if missing:
        raise RuntimeError(f"compiled-module sources not found: {missing}")
    return {"ext_modules": mypycify(paths)}


setup(**_mypyc_ext_modules())
