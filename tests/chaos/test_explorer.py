"""Campaign runner tests: determinism, parallel equality, mutations,
checkpoint/resume through the persistent-pool runtime."""

import pytest

from repro.chaos.explorer import (
    CHAOS_SCENARIOS,
    CaseResult,
    CaseSpec,
    run_campaign,
    run_case,
)
from repro.harness.cache import ResultCache
from repro.harness.parallel import SweepExecutor

SCN = "lan-small"
SEEDS = [0, 1, 2]


class TestRunCase:
    def test_deterministic_result(self):
        a = run_case(CaseSpec(scenario=SCN, seed=1))
        b = run_case(CaseSpec(scenario=SCN, seed=1))
        assert a.to_dict() == b.to_dict()

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError):
            run_case(CaseSpec(scenario=SCN, seed=1, mutation="chaos-monkey"))

    def test_pinned_schedule_overrides_generation(self):
        spec = CaseSpec(scenario=SCN, seed=1)
        schedule = spec.resolve_schedule().replace_events([])
        pinned = spec.with_schedule(schedule)
        result = run_case(pinned)
        assert result.schedule.events == ()
        assert result.crashed == ()

    def test_workload_independent_of_schedule(self):
        # Shrinking events away must not change the client workload:
        # delivered counts may differ (crashes), but the multicast set
        # a correct run produces is the full workload either way.
        spec = CaseSpec(scenario=SCN, seed=3)
        bare = run_case(spec.with_schedule(spec.resolve_schedule().replace_events([])))
        scn = CHAOS_SCENARIOS[SCN]
        assert sum(bare.delivered.values()) > 0
        assert bare.events > 0
        assert max(bare.delivered.values()) <= scn.n_messages


class TestRunCampaign:
    def test_report_byte_identical_across_runs(self):
        a = run_campaign(SCN, SEEDS)
        b = run_campaign(SCN, SEEDS)
        assert a.to_json() == b.to_json()

    def test_report_identical_across_jobs(self):
        serial = run_campaign(SCN, SEEDS, jobs=1)
        for jobs in (2, 4):
            parallel = run_campaign(SCN, SEEDS, jobs=jobs)
            assert serial.to_json() == parallel.to_json()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_campaign("atlantis", SEEDS)

    def test_case_result_dict_round_trip(self):
        result = run_case(CaseSpec(scenario=SCN, seed=1))
        import json

        back = CaseResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert back.to_dict() == result.to_dict()
        assert back.spec == result.spec
        assert back.delivered == result.delivered  # int keys restored

    def test_cached_campaign_resumes_without_reexecution(self, tmp_path):
        serial = run_campaign(SCN, SEEDS)
        with SweepExecutor(jobs=2, cache=ResultCache(tmp_path / "c")) as cold:
            first = run_campaign(SCN, SEEDS, executor=cold)
            assert cold.total_stats["ran"] == len(SEEDS)
        with SweepExecutor(jobs=2, cache=ResultCache(tmp_path / "c")) as warm:
            resumed = run_campaign(SCN, SEEDS, executor=warm)
            assert warm.total_stats == {
                "points": len(SEEDS),
                "hits": len(SEEDS),
                "ran": 0,
            }
        assert first.to_json() == serial.to_json()
        assert resumed.to_json() == serial.to_json()

    def test_killed_campaign_resumes_byte_identical(self, tmp_path):
        """Kill after the first completed case; the resumed campaign
        re-executes only the remainder and reports byte-identically."""
        want = run_campaign(SCN, SEEDS).to_json()

        class Killed(Exception):
            pass

        def killer(done, total, violations):
            if done >= 1:
                raise Killed()

        with SweepExecutor(jobs=2, cache=ResultCache(tmp_path / "c")) as victim:
            with pytest.raises(Killed):
                run_campaign(SCN, SEEDS, executor=victim, progress=killer)

        with SweepExecutor(jobs=2, cache=ResultCache(tmp_path / "c")) as resumed:
            report = run_campaign(SCN, SEEDS, executor=resumed)
            stats = dict(resumed.total_stats)
        assert stats["hits"] >= 1
        assert stats["ran"] == len(SEEDS) - stats["hits"]
        assert report.to_json() == want

    def test_max_cases_budget_is_never_silent(self):
        report = run_campaign(SCN, [0, 1, 2, 3, 4], max_cases=2)
        assert [c.spec.seed for c in report.cases] == [0, 1]
        assert report.skipped_seeds == [2, 3, 4]
        data = report.to_dict()
        assert data["version"] == 2
        assert data["skipped_seeds"] == [2, 3, 4]
        assert data["summary"]["skipped_cases"] == 3
        assert data["summary"]["cases"] == 2

    def test_progress_callback_counts_cases_and_violations(self):
        calls = []
        run_campaign(
            SCN,
            SEEDS,
            mutation="no-quorum-wait",
            progress=lambda done, total, v: calls.append((done, total, v)),
        )
        assert [c[0] for c in calls] == [1, 2, 3]
        assert all(c[1] == len(SEEDS) for c in calls)
        # violations accumulate monotonically and end above zero (the
        # mutation campaign is the known-violating workload)
        vio = [c[2] for c in calls]
        assert vio == sorted(vio) and vio[-1] > 0

    def test_clean_campaign_has_no_violations(self):
        report = run_campaign(SCN, SEEDS)
        assert report.failing_cases == []
        summary = report.to_dict()["summary"]
        assert summary["cases"] == len(SEEDS)
        assert summary["violations"] == 0
        assert summary["violating_seeds"] == []

    def test_mutation_campaign_detects_the_bug(self):
        report = run_campaign(SCN, SEEDS, mutation="no-quorum-wait")
        assert report.failing_cases
        props = {
            v.prop for case in report.failing_cases for v in case.violations
        }
        assert props & {"acyclic-order", "timestamp-order", "prefix-order"}
