"""Wire codec tests: lossless round trips and registry exhaustiveness.

The round-trip property uses seeded random message generators and
compares :func:`canonical_message_bytes` before and after a decode —
equal canonical bytes is content equality for the slotted wire classes.
The registry test fails the moment someone adds a wire-message class
without registering a codec for it.
"""

from __future__ import annotations

import inspect
import random

import pytest

import repro.core.messages as messages_mod
from repro.core.epoch import Epoch
from repro.core.messages import (
    Ack,
    AcceptEpoch,
    Bump,
    EpochPromise,
    Multicast,
    NewEpoch,
    NewState,
    Start,
)
from repro.net.codec import (
    CODECS,
    CodecError,
    FrameDecoder,
    canonical_message_bytes,
    decode_message,
    decode_value,
    encode_frame,
    encode_message,
    encode_value,
)
from repro.rmcast.fifo import Batch, Envelope

# ----------------------------------------------------------------------
# generators (seeded, minimal shrink-friendly shapes)
# ----------------------------------------------------------------------


def rand_epoch(rng: random.Random) -> Epoch:
    return Epoch(rng.randrange(0, 5), rng.randrange(0, 9))


def rand_payload(rng: random.Random, depth: int = 0):
    choices = ["int", "str", "none", "bool", "float"]
    if depth < 2:
        choices += ["list", "tuple", "dict", "fset"]
    kind = rng.choice(choices)
    if kind == "int":
        return rng.randrange(-1000, 1000)
    if kind == "str":
        return "".join(rng.choice("abcxyz{}\"'\\") for _ in range(rng.randrange(0, 6)))
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "float":
        return rng.choice([0.0, -1.5, 3.25, 1e9])
    if kind == "list":
        return [rand_payload(rng, depth + 1) for _ in range(rng.randrange(0, 3))]
    if kind == "tuple":
        return tuple(rand_payload(rng, depth + 1) for _ in range(rng.randrange(0, 3)))
    if kind == "dict":
        return {
            f"k{i}": rand_payload(rng, depth + 1) for i in range(rng.randrange(0, 3))
        }
    return frozenset(rng.sample(range(10), rng.randrange(0, 3)))


def rand_multicast(rng: random.Random) -> Multicast:
    mid = (rng.randrange(0, 9), rng.randrange(0, 100))
    dest = frozenset(rng.sample(range(4), rng.randrange(1, 4)))
    return Multicast(mid, dest, rand_payload(rng))


def rand_dp(rng: random.Random):
    if rng.random() < 0.5:
        return None
    return (rand_epoch(rng), rng.randrange(0, 50))


def rand_t_seq(rng: random.Random):
    return [
        (rand_epoch(rng), rand_multicast(rng), rng.randrange(0, 100))
        for _ in range(rng.randrange(0, 3))
    ]


MESSAGE_GENERATORS = {
    Start: lambda rng: Start(rand_multicast(rng)),
    Ack: lambda rng: Ack(
        rand_multicast(rng),
        rng.randrange(0, 4),
        rand_epoch(rng),
        rng.randrange(0, 100),
        rng.randrange(0, 9),
        rand_dp(rng),
    ),
    Bump: lambda rng: Bump(
        rand_epoch(rng), rng.randrange(0, 100), rng.randrange(0, 9), rand_dp(rng)
    ),
    NewEpoch: lambda rng: NewEpoch(rand_epoch(rng)),
    EpochPromise: lambda rng: EpochPromise(
        rand_epoch(rng),
        rng.randrange(0, 9),
        rng.randrange(0, 100),
        rand_epoch(rng),
        rand_t_seq(rng),
        rng.randrange(0, 20),
    ),
    NewState: lambda rng: NewState(
        rand_epoch(rng), rand_t_seq(rng), rng.randrange(0, 100), rng.randrange(0, 20)
    ),
    AcceptEpoch: lambda rng: AcceptEpoch(rand_epoch(rng), rng.randrange(0, 9)),
    Envelope: lambda rng: Envelope(
        rng.randrange(0, 9),
        rng.randrange(0, 1000),
        MESSAGE_GENERATORS[Ack](rng) if rng.random() < 0.7 else rand_payload(rng),
        tuple(sorted(rng.sample(range(9), rng.randrange(1, 4)))),
        rng.random() < 0.3,
    ),
    Batch: lambda rng: Batch(
        tuple(
            MESSAGE_GENERATORS[Envelope](rng) for _ in range(rng.randrange(1, 4))
        )
    ),
}


# ----------------------------------------------------------------------
# registry exhaustiveness
# ----------------------------------------------------------------------


def wire_message_classes():
    """Every class that can appear as a frame payload: the protocol
    messages of repro.core.messages (class-level ``kind``) plus the
    rmcast wire wrappers."""
    found = []
    for _name, obj in inspect.getmembers(messages_mod, inspect.isclass):
        if obj.__module__ == messages_mod.__name__ and "kind" in vars(obj):
            found.append(obj)
    return found + [Envelope, Batch]


def test_every_wire_message_has_a_codec():
    missing = [cls for cls in wire_message_classes() if cls not in CODECS]
    assert not missing, (
        f"wire message classes without a codec entry: "
        f"{[c.__name__ for c in missing]} — register them in "
        f"repro.net.codec.CODECS (and add a generator in this test)"
    )


def test_every_wire_message_has_a_generator():
    missing = [cls for cls in wire_message_classes() if cls not in MESSAGE_GENERATORS]
    assert not missing, (
        f"wire message classes without a round-trip generator: "
        f"{[c.__name__ for c in missing]}"
    )


def test_codec_tags_are_unique():
    tags = [tag for tag, _, _ in CODECS.values()]
    assert len(tags) == len(set(tags))


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------


@pytest.mark.parametrize("cls", sorted(MESSAGE_GENERATORS, key=lambda c: c.__name__))
def test_message_roundtrip_property(cls):
    rng = random.Random(f"codec-{cls.__name__}")
    for _ in range(50):
        msg = MESSAGE_GENERATORS[cls](rng)
        encoded = encode_message(msg)
        decoded = decode_message(encoded)
        assert type(decoded) is cls
        assert canonical_message_bytes(decoded) == canonical_message_bytes(msg)


def test_value_roundtrip_property():
    rng = random.Random("codec-values")
    for _ in range(200):
        value = rand_payload(rng)
        assert decode_value(encode_value(value)) == value


def test_epoch_is_not_flattened_to_a_tuple():
    # Epoch is a NamedTuple; the codec must keep its identity, not
    # degrade it to a plain tuple (a real bug this test pins).
    e = Epoch(3, 7)
    decoded = decode_value(encode_value(e))
    assert isinstance(decoded, Epoch)
    assert decoded.leader == 7


def test_unregistered_message_raises():
    class Rogue:
        kind = "rogue"

    with pytest.raises(CodecError):
        encode_message(Rogue())


def test_plain_dict_payload_cannot_collide_with_tags():
    sneaky = {"__": "ep", "n": 1, "l": 2}
    decoded = decode_value(encode_value(sneaky))
    assert decoded == sneaky
    assert not isinstance(decoded, Epoch)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------


def test_frame_decoder_arbitrary_chunking():
    rng = random.Random("framing")
    frames = [
        encode_message(MESSAGE_GENERATORS[Ack](rng)) for _ in range(20)
    ]
    stream = b"".join(encode_frame(f) for f in frames)
    for trial in range(10):
        decoder = FrameDecoder()
        out = []
        i = 0
        while i < len(stream):
            n = rng.randrange(1, 7)
            out.extend(decoder.feed(stream[i : i + n]))
            i += n
        assert len(out) == len(frames)
        assert out == frames


def test_frame_decoder_rejects_oversized_length():
    decoder = FrameDecoder()
    with pytest.raises(CodecError):
        decoder.feed(b"\xff\xff\xff\xff")
