"""Failure injection.

The model (§2.1) allows crash failures only: a faulty process stops
taking steps and never recovers. Quorum assumptions require that at least
one quorum per group contains no faulty process; the helpers here keep
injected failures within that budget unless explicitly overridden.

Bookkeeping is deterministic: :attr:`FailureInjector.crashed_pids` lists
pids in the order their crashes *executed* (scheduler order, which is a
pure function of the run seed), and :meth:`FailureInjector.targeted_pids`
reports the union of executed and armed crashes in sorted order. The
budget guard :meth:`FailureInjector.crash_within_budget` counts both
against :func:`max_failures` so a schedule cannot overshoot a group's
quorum budget by arming several future crashes at once.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Set, Tuple

from .events import Scheduler
from .process import SimProcess


class FailureInjector:
    """Schedules crashes against a set of processes.

    Args:
        scheduler: shared event scheduler.
        processes: pid → process map (e.g. ``network.processes``).
    """

    def __init__(self, scheduler: Scheduler, processes: Dict[int, SimProcess]) -> None:
        self.scheduler = scheduler
        self.processes = processes
        #: pids whose crash has *executed*, in execution order. With a
        #: deterministic schedule this list is identical across runs.
        self.crashed_pids: List[int] = []
        #: pids with a crash armed via this injector (fired or not).
        self._targeted: Set[int] = set()

    def crash_at(self, pid: int, time_ms: float) -> None:
        """Crash ``pid`` at absolute simulated time ``time_ms``."""
        if pid not in self.processes:
            raise KeyError(f"unknown pid {pid}")
        self._targeted.add(pid)
        self.scheduler.call_at(time_ms, self._crash_now, pid)

    def crash_now(self, pid: int) -> None:
        """Crash ``pid`` immediately (inside the current event).

        Used by nemesis hooks that kill a process at a protocol step
        boundary: the process stops before the handler's outgoing
        messages depart.
        """
        if pid not in self.processes:
            raise KeyError(f"unknown pid {pid}")
        self._targeted.add(pid)
        self._crash_now(pid)

    def _crash_now(self, pid: int) -> None:
        proc = self.processes[pid]
        if not proc.crashed:
            proc.crash()
            self.crashed_pids.append(pid)

    def targeted_pids(self) -> Tuple[int, ...]:
        """Union of executed and armed crash targets, sorted."""
        return tuple(sorted(self._targeted))

    # ------------------------------------------------------------------
    # budget-guarded injection
    # ------------------------------------------------------------------

    def within_budget(self, pid: int, group: Sequence[int]) -> bool:
        """Would crashing ``pid`` keep ``group`` inside its quorum budget?

        ``group`` is the full membership of the group ``pid`` belongs to.
        A pid already targeted is always within budget (re-arming it adds
        no new failure).
        """
        if pid in self._targeted:
            return True
        budget = max_failures(len(group))
        used = sum(1 for member in group if member in self._targeted)
        return used < budget

    def crash_within_budget(
        self, pid: int, time_ms: float, group: Sequence[int]
    ) -> bool:
        """Arm a crash of ``pid`` at ``time_ms`` unless it would exceed
        the group's :func:`max_failures` budget.

        Returns True when the crash was armed (or ``pid`` was already a
        target), False when it was refused to preserve a correct quorum.
        """
        if not self.within_budget(pid, group):
            return False
        self.crash_at(pid, time_ms)
        return True

    def crash_random(
        self,
        candidates: Sequence[int],
        time_ms: float,
        rng: random.Random,
    ) -> int:
        """Crash one process chosen uniformly from ``candidates``."""
        pid = rng.choice(list(candidates))
        self.crash_at(pid, time_ms)
        return pid


def max_failures(group_size: int) -> int:
    """Crash budget for a majority-quorum group of ``group_size``.

    With quorums of size ``floor(n/2) + 1``, up to ``ceil(n/2) - 1``
    processes may fail while one all-correct quorum remains.
    """
    if group_size < 1:
        raise ValueError("group size must be positive")
    return (group_size - 1) // 2
