"""In-source markers the analysis recognises.

:func:`pure` is an identity decorator: it changes nothing at runtime,
but EFF301 treats any function carrying it as declared pure and fails
the lint if the function's transitive write effect is non-empty. Code
under :mod:`repro.core` keeps using the config-side ``declared_pure``
patterns instead of importing this module — the compiled-core import
closure is pinned (see ``repro.harness.cache.FINGERPRINT_PACKAGES``)
and must not grow a dependency on the analysis package.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable[..., object])


def pure(fn: F) -> F:
    """Declare ``fn`` effect-free; enforced statically by EFF301."""
    return fn
