"""Unit tests for fault schedules: generation, canonical JSON, budgets."""

import json

import pytest

from repro.chaos.schedule import (
    FaultEvent,
    FaultSchedule,
    ScheduleShape,
    Trigger,
    generate_schedule,
)
from repro.sim.failures import max_failures

SHAPE = ScheduleShape(n_groups=3, group_size=3, horizon_ms=5000.0)


def crash_group(event, shape):
    kind, _, arg = event.target.partition(":")
    if kind == "leader":
        return int(arg)
    return int(arg) // shape.group_size


class TestTrigger:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Trigger(kind="whenever")

    def test_on_requires_probe_event(self):
        with pytest.raises(ValueError):
            Trigger(kind="on", event="never-a-probe")

    def test_on_requires_positive_nth(self):
        with pytest.raises(ValueError):
            Trigger(kind="on", event="ack_quorum", nth=0)


class TestFaultEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="meteor", trigger=Trigger(kind="at", time_ms=1.0))

    def test_crash_needs_wellformed_target(self):
        with pytest.raises(ValueError):
            FaultEvent(
                kind="crash", trigger=Trigger(kind="at", time_ms=1.0), target="3"
            )

    def test_delay_rejects_hook_trigger(self):
        with pytest.raises(ValueError):
            FaultEvent(
                kind="delay",
                trigger=Trigger(kind="on", event="propose"),
                extra_ms=5.0,
                duration_ms=10.0,
            )

    def test_round_trips_through_dict(self):
        event = FaultEvent(
            kind="crash",
            trigger=Trigger(kind="on", event="ack_quorum", nth=3, offset_ms=0.1),
            target="leader:1",
        )
        assert FaultEvent.from_dict(event.canonical()) == event


class TestFaultSchedule:
    def test_json_round_trip_lossless(self):
        schedule = generate_schedule("fig3-reduced", 5, SHAPE)
        assert FaultSchedule.from_json(schedule.to_json()) == schedule

    def test_json_is_canonical(self):
        schedule = generate_schedule("fig3-reduced", 5, SHAPE)
        text = schedule.to_json()
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )

    def test_save_load(self, tmp_path):
        schedule = generate_schedule("fig3-reduced", 2, SHAPE)
        path = tmp_path / "sched.json"
        schedule.save(path)
        assert FaultSchedule.load(path) == schedule

    def test_replace_events(self):
        schedule = generate_schedule("fig3-reduced", 5, SHAPE)
        trimmed = schedule.replace_events([])
        assert trimmed.events == ()
        assert (trimmed.scenario, trimmed.seed) == (
            schedule.scenario,
            schedule.seed,
        )


class TestGenerateSchedule:
    def test_deterministic_per_seed(self):
        a = generate_schedule("fig3-reduced", 7, SHAPE)
        b = generate_schedule("fig3-reduced", 7, SHAPE)
        assert a.to_json() == b.to_json()

    def test_varies_with_seed_and_scenario(self):
        texts = {
            generate_schedule("fig3-reduced", seed, SHAPE).to_json()
            for seed in range(20)
        }
        assert len(texts) > 1
        assert (
            generate_schedule("other", 7, SHAPE).to_json()
            != generate_schedule("fig3-reduced", 7, SHAPE).to_json()
        )

    @pytest.mark.parametrize("seed", range(25))
    def test_crashes_respect_group_budget(self, seed):
        schedule = generate_schedule("fig3-reduced", seed, SHAPE)
        per_group = {}
        for event in schedule.events:
            if event.kind != "crash":
                continue
            assert not event.over_budget
            gid = crash_group(event, SHAPE)
            per_group[gid] = per_group.get(gid, 0) + 1
        for gid, count in per_group.items():
            assert count <= max_failures(SHAPE.group_size)

    @pytest.mark.parametrize("seed", range(25))
    def test_over_budget_only_when_allowed(self, seed):
        schedule = generate_schedule(
            "fig3-reduced", seed, SHAPE, allow_over_budget=True
        )
        extras = [e for e in schedule.events if e.kind == "crash" and e.over_budget]
        assert len(extras) <= 1
        budgeted = [
            e for e in schedule.events if e.kind == "crash" and not e.over_budget
        ]
        per_group = {}
        for event in budgeted:
            gid = crash_group(event, SHAPE)
            per_group[gid] = per_group.get(gid, 0) + 1
        for count in per_group.values():
            assert count <= max_failures(SHAPE.group_size)

    @pytest.mark.parametrize("seed", range(25))
    def test_delays_bounded_inside_horizon(self, seed):
        schedule = generate_schedule("fig3-reduced", seed, SHAPE)
        for event in schedule.events:
            if event.kind != "delay":
                continue
            end = event.trigger.time_ms + event.duration_ms
            # The window plus the worst extra must leave room to quiesce.
            assert end + event.extra_ms < SHAPE.horizon_ms * 0.5

    def test_no_skews_without_hybrid_clock(self):
        for seed in range(25):
            schedule = generate_schedule("fig3-reduced", seed, SHAPE)
            assert all(e.kind != "skew" for e in schedule.events)

    def test_skews_appear_under_hybrid_clock(self):
        shape = ScheduleShape(
            n_groups=3, group_size=3, horizon_ms=5000.0, hybrid_clock=True
        )
        kinds = set()
        for seed in range(25):
            kinds |= {e.kind for e in generate_schedule("hc", seed, shape).events}
        assert "skew" in kinds
