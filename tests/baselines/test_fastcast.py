"""Tests for the FastCast baseline (§4.1)."""

import pytest

from helpers import MiniSystem, random_workload
from repro.verify import check_all


def build(**kw):
    return MiniSystem(protocol="fastcast", **kw)


def test_four_step_delivery_everywhere():
    sys_ = build(n_groups=2)
    sys_.multicast(4, {0, 1})
    sys_.run()
    for pid in range(6):
        assert sys_.deliveries[pid][0][2] == pytest.approx(4.0, abs=1e-6)


def test_message_complexity_matches_table1():
    sys_ = build(n_groups=3)
    sys_.multicast(1, {0, 1})  # k=2, n=3
    sys_.run_to_quiescence()
    counts = sys_.network.counts_by_kind
    k, n = 2, 3
    assert counts["start"] == k * n
    assert counts["fc-soft"] == k * k * n
    assert counts["fc-hard"] == k * k * n
    assert counts["fc-2a"] == 2 * k * n
    assert counts["fc-2b"] == 2 * k * n * n
    total = sum(counts.values())
    assert total == k * (2 * k * n + 3 * n + 2 * n * n)


def test_fast_path_taken_under_stable_leaders():
    """With stable leaders soft == hard, so no ROUND_FINAL consensus."""
    sys_ = build(n_groups=2)
    for _ in range(5):
        sys_.multicast(1, {0, 1})
    sys_.run_to_quiescence()
    for proc in sys_.processes.values():
        assert not proc._slow_proposed


def test_slow_path_resolves_optimistic_mismatch():
    """Force a mismatch: a stale soft with a lower timestamp makes the
    optimistic round decide a value below the final; the leader must run
    the third consensus round and deliver with the true final."""
    sys_ = build(n_groups=2)
    from repro.baselines.fastcast import FcSoft, FcHard
    from repro.core.messages import Multicast

    m = Multicast((99, 0), frozenset({0, 1}))
    leader0 = sys_.processes[0]
    # Inject: soft from group 1 with ts 1, but hard (decided) ts 4.
    leader0._on_start(m)  # proposes locally with ts 1, soft+2a out
    leader0._on_soft(FcSoft(m, 1, 1))
    leader0._on_hard(FcHard(m, 1, 4))
    sys_.run_to_quiescence()
    # The other group never participates (we injected), so delivery
    # cannot complete; but the slow path must have been proposed once
    # the optimistic decision (max(1,1)=1) mismatched final (4).
    assert (m.mid in leader0._slow_proposed) or leader0._decided.get(
        (m.mid, 2)
    ) is None


def test_ordering_properties_random_run():
    sys_ = build(n_groups=3)
    random_workload(sys_, 70, seed=31)
    sys_.run_to_quiescence()
    check_all(
        sys_.logs, set(sys_.multicasts), sys_.dest_pids_of(), sys_.correct_pids()
    )


def test_final_timestamps_consistent():
    sys_ = build(n_groups=4)
    random_workload(sys_, 50, seed=41)
    sys_.run_to_quiescence()
    finals = {}
    for log in sys_.deliveries.values():
        for mid, ts, _ in log:
            assert finals.setdefault(mid, ts) == ts


def test_consensus_quorum_required():
    """A group missing its quorum cannot decide local timestamps, so
    nothing destined to it is delivered anywhere."""
    sys_ = build(n_groups=2, group_size=5)
    for pid in (6, 7, 8):
        sys_.processes[pid].crash()
    sys_.multicast(0, {0, 1})
    sys_.run(until=200)
    for pid in range(10):
        assert sys_.deliveries[pid] == []


def test_local_messages_unaffected_by_other_groups():
    sys_ = build(n_groups=3)
    m = sys_.multicast(0, {0})
    sys_.run()
    assert [x[0] for x in sys_.deliveries[1]] == [m.mid]
    assert sys_.deliveries[3] == []
