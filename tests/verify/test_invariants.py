"""Tests for the runtime invariant monitor."""

import pytest

from helpers import MiniSystem, random_workload
from repro.core.epoch import Epoch
from repro.verify import PropertyViolation, attach_monitors
from repro.verify.invariants import InvariantMonitor
from repro.sim.latency import JitteredLatency


def test_monitors_pass_on_clean_runs():
    sys_ = MiniSystem(n_groups=3, latency=JitteredLatency(1.0, 0.2))
    monitors = attach_monitors(sys_.processes)
    assert len(monitors) == 9
    random_workload(sys_, 50, seed=2)
    sys_.run_to_quiescence()
    assert all(m.checks_run > 0 for m in monitors)


def test_monitors_pass_during_failover():
    from repro.core import PrimCastProcess, uniform_groups
    from repro.election import make_oracles
    from repro.sim import ConstantLatency, FailureInjector, Network, Scheduler, child_rng

    config = uniform_groups(2, 3)
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(1, "inv"))
    procs = {pid: PrimCastProcess(pid, config, sched, net) for pid in config.all_pids}
    monitors = attach_monitors(procs)
    oracles = make_oracles(config.groups, procs, sched, 5.0)
    for pid, p in procs.items():
        p.omega = oracles[config.group_of[pid]]
        p.omega.subscribe(p._on_omega_output)
    injector = FailureInjector(sched, procs)
    for i in range(20):
        sched.call_at(i * 1.0, procs[4].a_multicast, {0, 1}, None)
    injector.crash_at(0, 3.0)
    sched.run(until=300)
    # No PropertyViolation raised and the survivors kept making checks.
    assert all(m.checks_run > 0 for m in monitors if m.proc.pid != 0)


def test_clock_regression_detected():
    sys_ = MiniSystem(n_groups=2)
    monitor = InvariantMonitor(sys_.processes[0])
    sys_.multicast(0, {0})
    sys_.run(until=10)
    sys_.processes[0].clock = -1
    with pytest.raises(PropertyViolation, match="backwards"):
        monitor.check()


def test_epoch_regression_detected():
    sys_ = MiniSystem(n_groups=2)
    monitor = InvariantMonitor(sys_.processes[1])
    sys_.processes[1].e_prom = Epoch(3, 1)
    monitor.check()
    sys_.processes[1].e_prom = Epoch(0, 0)
    sys_.processes[1].e_cur = Epoch(0, 0)
    with pytest.raises(PropertyViolation, match="backwards"):
        monitor.check()


def test_role_inconsistency_detected():
    sys_ = MiniSystem(n_groups=2)
    monitor = InvariantMonitor(sys_.processes[1])
    sys_.processes[1].role = "primary"  # but epoch owned by pid 0
    with pytest.raises(PropertyViolation, match="primary"):
        monitor.check()


def test_pending_not_in_t_detected():
    sys_ = MiniSystem(n_groups=2)
    monitor = InvariantMonitor(sys_.processes[0])
    sys_.processes[0].pending.add(("ghost", 0))
    with pytest.raises(PropertyViolation, match="not in T"):
        monitor.check()


def test_bad_delivery_final_detected():
    sys_ = MiniSystem(n_groups=2)
    proc = sys_.processes[0]
    monitor = InvariantMonitor(proc)
    from repro.core.messages import Multicast

    with pytest.raises(PropertyViolation, match="above own clock"):
        proc._deliver_probe = None
        monitor._on_deliver(proc, Multicast((9, 9), frozenset({0})), proc.clock + 10)


# ----------------------------------------------------------------------
# wrapper composition (monitor + spec recorder, idempotent re-wrap)
# ----------------------------------------------------------------------


def _drive(sys_):
    sys_.multicast(0, {0, 1})
    sys_.multicast(3, {0, 1})
    sys_.run_to_quiescence()


def test_monitor_wrap_is_idempotent():
    """A second monitor on the same process joins the installed wrapper
    instead of stacking another layer."""
    sys_ = MiniSystem(n_groups=2)
    proc = sys_.processes[0]
    m1 = InvariantMonitor(proc)
    wrapper_after_first = proc.on_r_deliver
    m2 = InvariantMonitor(proc)
    assert proc.on_r_deliver is wrapper_after_first  # no second layer
    assert proc._invariant_monitors == [m1, m2]
    _drive(sys_)
    assert m1.checks_run > 0
    assert m2.checks_run > 0


def test_monitor_then_spec_recorder_composes():
    from repro.core.spec import attach_spec_recorder

    sys_ = MiniSystem(n_groups=2)
    proc = sys_.processes[0]
    monitor = InvariantMonitor(proc)
    recorder = attach_spec_recorder(proc)
    _drive(sys_)
    assert monitor.checks_run > 0
    assert recorder.acks  # the recorder saw protocol traffic


def test_spec_recorder_then_monitor_composes():
    from repro.core.spec import attach_spec_recorder

    sys_ = MiniSystem(n_groups=2)
    proc = sys_.processes[0]
    recorder = attach_spec_recorder(proc)
    monitor = InvariantMonitor(proc)
    _drive(sys_)
    assert monitor.checks_run > 0
    assert recorder.acks


def test_second_monitor_after_recorder_still_joins_existing_wrapper():
    """Recorder stacked on top of a monitor must not hide the monitor
    from the idempotency guard."""
    from repro.core.spec import attach_spec_recorder

    sys_ = MiniSystem(n_groups=2)
    proc = sys_.processes[0]
    m1 = InvariantMonitor(proc)
    attach_spec_recorder(proc)
    m2 = InvariantMonitor(proc)
    assert proc._invariant_monitors == [m1, m2]
    _drive(sys_)
    # Each event runs each monitor's check exactly once.
    assert m1.checks_run == m2.checks_run > 0
