"""Configuration for the static-analysis pass.

:data:`DEFAULT_CONFIG` encodes this repository's determinism policy and
the protocol conformance map mirroring Algorithms 1–3 of the paper:

* **Determinism scope** — the modules that execute on the simulated
  event path. Everything there must draw randomness through
  :mod:`repro.sim.rng` and read time through ``Scheduler.now``; the
  DET0xx rules enforce it.
* **State conformance** — which modules may mutate the Algorithm 1
  protocol variables ``clock`` / ``e_cur`` / ``e_prom``. The paper's
  correctness argument assigns each mutation to a specific pseudocode
  line, all of which live in :mod:`repro.core.process`; the baselines own
  their *own* per-protocol clocks (§4), so their modules are allowed for
  ``clock`` only.
* **Allowlist** — reviewed exemptions, matched with :mod:`fnmatch`
  patterns against ``module::qualname`` strings. Every entry must carry a
  justification comment; an unexplained entry is a review smell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Mapping, Tuple

#: Modules that run on the simulated event path (determinism scope).
#: ``repro.harness.parallel`` / ``repro.harness.cache`` are not on the
#: event path themselves but feed seeds and memoized results into it, so
#: they are held to the same bar: worker seeds must arrive explicitly in
#: the PointSpec (derived via repro.sim.rng in the runner), never from
#: ambient randomness or the wall clock.
DET_SCOPE: Tuple[str, ...] = (
    "repro.sim",
    "repro.core",
    "repro.baselines",
    "repro.rmcast",
    "repro.election",
    "repro.consensus",
    "repro.harness.parallel",
    "repro.harness.cache",
    "repro.chaos",
)

#: Calls that emit messages or schedule events. A function whose body
#: contains one of these is an *emission context*: iteration order inside
#: it can leak into the event schedule, so DET002 applies there.
EMISSION_CALLS: Tuple[str, ...] = (
    "r_multicast",
    "multicast",
    "a_multicast",
    "a_multicast_m",
    "send",
    "send_many",
    "transmit",
    "schedule",
    "call_at",
    "call_after",
    "post_job",
    "_send_ack",
    "_propose",
)

#: Attribute names treated as set-typed everywhere in scope, on top of
#: per-module inference. ``dest`` is ``Multicast.dest`` (a frozenset of
#: group ids) and crosses module boundaries constantly.
KNOWN_SET_ATTRS: Tuple[str, ...] = (
    "dest",
    "pending",
    "delivered",
    "my_acks",
)

#: Attribute / bare names that hold simulated wall-clock floats; DET004
#: forbids ``==`` / ``!=`` on them.
FLOAT_TIME_ATTRS: Tuple[str, ...] = ("now", "busy_until")
FLOAT_TIME_NAMES: Tuple[str, ...] = ("arrival", "depart_time", "deadline")

#: Modules whose classes are wire messages (PROTO101).
WIRE_MESSAGE_MODULES: Tuple[str, ...] = (
    "repro.core.messages",
    "repro.rmcast.fifo",
    "repro.baselines.classic",
    "repro.baselines.fastcast",
    "repro.baselines.skeen",
    "repro.baselines.whitebox",
    "repro.consensus.paxos",
)

#: Instance attributes holding r-deliver dispatch tables (PROTO102).
DISPATCH_ATTRS: Tuple[str, ...] = ("_r_dispatch",)

#: Modules whose classes must declare ``__slots__`` (PERF001): exactly
#: the optionally-compiled hot core. Kept as a literal copy of
#: :data:`repro._backend.COMPILED_MODULES` rather than an import so the
#: analysis config stays import-light; the self-check test asserts the
#: two stay in sync.
PERF_SLOTS_SCOPE: Tuple[str, ...] = (
    "repro.sim.events",
    "repro.sim.clock",
    "repro.sim.costs",
    "repro.sim.latency",
    "repro.sim.network",
    "repro.sim.process",
    "repro.core.epoch",
    "repro.core.config",
    "repro.core.messages",
    "repro.core.state",
    "repro.core.gc",
    "repro.core.process",
)

#: Conformance map for PROTO103: protocol-state attribute -> modules
#: allowed to mutate it. Mirrors Algorithms 1–3: every ``clock`` /
#: ``e_cur`` / ``e_prom`` mutation of the pseudocode is a line of
#: Algorithm 1, 2 or 3, all implemented in ``repro.core.process``. The
#: baselines (§4) maintain their own protocol clocks and are allowed for
#: ``clock`` in their own modules only.
STATE_CONFORMANCE: Mapping[str, Tuple[str, ...]] = {
    "clock": (
        "repro.core.process",
        "repro.baselines.classic",
        "repro.baselines.fastcast",
        "repro.baselines.skeen",
        "repro.baselines.whitebox",
    ),
    "e_cur": ("repro.core.process",),
    "e_prom": ("repro.core.process",),
}

#: Reviewed exemptions (fnmatch patterns against ``module::qualname``).
DEFAULT_ALLOW: Mapping[str, Tuple[str, ...]] = {
    # Multicast is the *application* message carried inside wire
    # messages, not a wire message itself; Envelope computes its kind
    # per-payload at construction (fifo.py) — both are exempt from the
    # class-level-kind contract by design.
    "PROTO101": (
        "repro.core.messages::Multicast",
        "repro.rmcast.fifo::Envelope",
        "repro.baselines.skeen::SkeenMulticast",
    ),
    # EpochPromise stores the *sender's* clock and E_cur as message
    # fields (Algorithm 3, line 64); that is payload capture, not a
    # mutation of the protocol variables.
    "PROTO103": ("repro.core.messages::EpochPromise.__init__",),
    # The process lineage must stay dynamic (no __slots__): SimProcess
    # subclasses (protocols, test doubles) add instance attributes
    # freely, and the spec recorder / invariant monitor wrap
    # PrimCastProcess.on_r_deliver as an *instance* attribute — both
    # require a per-instance dict. Under mypyc they compile with
    # allow_interpreted_subclasses / native_class=False accordingly
    # (see repro/_backend.py).
    "PERF001": (
        "repro.sim.process::SimProcess",
        "repro.core.process::PrimCastProcess",
    ),
}


@dataclass(frozen=True)
class AnalysisConfig:
    """Tunable knobs of one analysis run (immutable)."""

    #: rule id -> fnmatch patterns over ``module::qualname`` (or bare
    #: ``module``) that suppress findings of that rule.
    allow: Mapping[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOW)
    )
    #: rule id -> severity, overriding the rule's default.
    severity_overrides: Mapping[str, str] = field(default_factory=dict)
    #: rule id -> replacement scope (module prefixes).
    scope_override: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)

    det_scope: Tuple[str, ...] = DET_SCOPE
    emission_calls: Tuple[str, ...] = EMISSION_CALLS
    known_set_attrs: Tuple[str, ...] = KNOWN_SET_ATTRS
    float_time_attrs: Tuple[str, ...] = FLOAT_TIME_ATTRS
    float_time_names: Tuple[str, ...] = FLOAT_TIME_NAMES
    wire_message_modules: Tuple[str, ...] = WIRE_MESSAGE_MODULES
    dispatch_attrs: Tuple[str, ...] = DISPATCH_ATTRS
    perf_slots_scope: Tuple[str, ...] = PERF_SLOTS_SCOPE
    state_conformance: Mapping[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(STATE_CONFORMANCE)
    )

    def is_allowed(self, rule_id: str, context: str) -> bool:
        """True when ``context`` (``module::qualname``) is allowlisted."""
        patterns = self.allow.get(rule_id, ())
        module = context.split("::", 1)[0]
        return any(
            fnmatchcase(context, pat) or fnmatchcase(module, pat)
            for pat in patterns
        )

    def severity_for(self, rule_id: str, default: str) -> str:
        return self.severity_overrides.get(rule_id, default)


#: The repository's standing policy.
DEFAULT_CONFIG = AnalysisConfig()
