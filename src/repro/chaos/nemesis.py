"""Nemesis: applies a :class:`~repro.chaos.schedule.FaultSchedule` to a
built system.

The nemesis owns the three injection paths:

* **crashes** go through :class:`~repro.sim.failures.FailureInjector`,
  guarded by the group's quorum budget unless the event says
  ``over_budget``. Targets are resolved *at fire time*: ``"leader:G"``
  kills whichever process of group G currently acts as primary, so a
  schedule can chain "crash the leader, then crash the new leader".
  Hook-triggered crashes ride the protocol probe hooks installed on
  every :class:`~repro.core.process.PrimCastProcess`
  (:data:`~repro.core.process.PROBE_EVENTS`), firing at protocol step
  boundaries — first ack quorum, epoch change start — rather than only
  at wall-clock times.
* **delay spikes** install a transmit interceptor (see
  :meth:`~repro.sim.network.Network.add_transmit_interceptor`): while a
  rule's window is open, matching ``(src, dst)`` departures are shifted
  by ``extra_ms``. Per-channel FIFO order is preserved by the network's
  arrival clamp, exactly as a congested TCP link would behave.
* **clock skew** perturbs a process's
  :class:`~repro.sim.clock.PhysicalClock` offset (observable only under
  the hybrid-clock variant).

Everything the nemesis does is a pure function of the schedule and the
simulation state, so a replayed schedule re-produces the exact fault
sequence.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..core.config import GroupConfig
from ..core.process import PRIMARY, PrimCastProcess
from ..sim.events import Scheduler
from ..sim.failures import FailureInjector
from ..sim.network import Network
from .schedule import FaultEvent, FaultSchedule


class _HookState:
    """Mutable per-event counter for hook-triggered crashes."""

    __slots__ = ("count", "fired")

    def __init__(self) -> None:
        self.count = 0
        self.fired = False


class Nemesis:
    """Arms one schedule against one built system.

    Args:
        schedule: the fault schedule to apply.
        scheduler / network / config: the system's substrate.
        processes: pid → process map (``system.processes``).
        injector: optional shared :class:`FailureInjector`; a fresh one
            is created when omitted.

    After :meth:`install`, :attr:`applied` counts what actually
    happened: crashes fired, crashes refused by the budget guard,
    crashes whose target could not be resolved, delay rules armed and
    skews applied — all deterministic, so they belong in case reports.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        scheduler: Scheduler,
        network: Network,
        config: GroupConfig,
        processes: Dict[int, Any],
        injector: Optional[FailureInjector] = None,
    ) -> None:
        self.schedule = schedule
        self.scheduler = scheduler
        self.network = network
        self.config = config
        self.processes = processes
        self.injector = injector if injector is not None else FailureInjector(
            scheduler, processes
        )
        self.applied: Dict[str, int] = {
            "crashes": 0,
            "budget_refused": 0,
            "unresolved": 0,
            "delays": 0,
            "skews": 0,
        }
        # (start, end, src, dst, extra) delay rules, in schedule order.
        self._delay_rules: List[Tuple[float, float, int, int, float]] = []
        # probe event name -> [(FaultEvent, _HookState), ...]
        self._hooked: Dict[str, List[Tuple[FaultEvent, _HookState]]] = {}
        self._installed = False

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Arm every event of the schedule. Idempotent per instance."""
        if self._installed:
            return
        self._installed = True
        for event in self.schedule.events:
            if event.kind == "crash":
                self._arm_crash(event)
            elif event.kind == "delay":
                self._arm_delay(event)
            else:
                self._arm_skew(event)
        if self._delay_rules:
            # Intercept the transmit path only when a delay rule exists;
            # the interceptor costs one window scan per message while
            # installed.
            self.network.add_transmit_interceptor(self._delay_interceptor)
        if self._hooked:
            for proc in self.processes.values():
                if isinstance(proc, PrimCastProcess):
                    proc.add_probe_hook(self._on_probe)

    def _arm_crash(self, event: FaultEvent) -> None:
        trigger = event.trigger
        if trigger.kind == "at":
            self.scheduler.call_at(trigger.time_ms, self._fire_crash, event)
        else:
            self._hooked.setdefault(trigger.event, []).append(
                (event, _HookState())
            )

    def _arm_delay(self, event: FaultEvent) -> None:
        start = event.trigger.time_ms
        self._delay_rules.append(
            (start, start + event.duration_ms, event.src, event.dst, event.extra_ms)
        )
        self.applied["delays"] += 1

    def _arm_skew(self, event: FaultEvent) -> None:
        self.scheduler.call_at(event.trigger.time_ms, self._fire_skew, event)

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------

    def _resolve_target(self, target: str) -> Optional[int]:
        """Resolve a crash target to a live pid, or None."""
        kind, _, arg = target.partition(":")
        if kind == "pid":
            pid = int(arg)
            proc = self.processes.get(pid)
            if proc is None or proc.crashed:
                return None
            return pid
        # leader:G — prefer the live member acting as primary; fall back
        # to the epoch owner a live member believes in, then to the
        # lowest live pid (the oracle's next choice).
        gid = int(arg)
        members = self.config.members(gid)
        live = [p for p in members if not self.processes[p].crashed]
        if not live:
            return None
        for pid in live:
            proc = self.processes[pid]
            if isinstance(proc, PrimCastProcess) and proc.role == PRIMARY:
                return pid
        for pid in live:
            proc = self.processes[pid]
            if isinstance(proc, PrimCastProcess):
                believed = proc.e_cur.leader
                if believed in live:
                    return believed
        return live[0]

    def _fire_crash(self, event: FaultEvent) -> None:
        pid = self._resolve_target(event.target)
        if pid is None:
            self.applied["unresolved"] += 1
            return
        group = self.config.members(self.config.group_of[pid])
        if not event.over_budget and not self.injector.within_budget(pid, group):
            self.applied["budget_refused"] += 1
            return
        self.injector.crash_now(pid)
        self.applied["crashes"] += 1

    def _fire_skew(self, event: FaultEvent) -> None:
        proc = self.processes.get(event.pid)
        clock = getattr(proc, "physical_clock", None)
        if clock is not None:
            clock.offset_us += event.skew_us
            self.applied["skews"] += 1

    def _on_probe(self, proc: PrimCastProcess, event_name: str, data: Any) -> None:
        hooks = self._hooked.get(event_name)
        if hooks is None:
            return
        for event, state in hooks:
            if state.fired:
                continue
            trigger = event.trigger
            if trigger.pid is not None and proc.pid != trigger.pid:
                continue
            state.count += 1
            if state.count < trigger.nth:
                continue
            state.fired = True
            if trigger.offset_ms <= 0.0:
                # Inline: the process dies inside the handler that hit
                # the step boundary; its pending sends never depart.
                self._fire_crash(event)
            else:
                self.scheduler.call_after(
                    trigger.offset_ms, self._fire_crash, event
                )

    # ------------------------------------------------------------------
    # transmit interception
    # ------------------------------------------------------------------

    def _delay_interceptor(
        self, src: int, dst: int, msg: Any, depart_time: float
    ) -> float:
        extra = 0.0
        for start, end, rule_src, rule_dst, extra_ms in self._delay_rules:
            if (
                start <= depart_time < end
                and (rule_src < 0 or rule_src == src)
                and (rule_dst < 0 or rule_dst == dst)
            ):
                extra += extra_ms
        return depart_time + extra
