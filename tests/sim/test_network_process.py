"""Unit tests for the network and the CPU-queue process model."""

import pytest

from repro.sim.costs import CostModel
from repro.sim.events import Scheduler
from repro.sim.latency import ConstantLatency, JitteredLatency
from repro.sim.network import Network
from repro.sim.process import SimProcess
from repro.sim.rng import child_rng


class Msg:
    __slots__ = ("kind", "tag")

    def __init__(self, kind="msg", tag=None):
        self.kind = kind
        self.tag = tag


class Recorder(SimProcess):
    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.received = []

    def on_message(self, src, msg):
        self.received.append((src, msg, self.scheduler.now))


class Echoer(Recorder):
    """Replies to every message."""

    def on_message(self, src, msg):
        super().on_message(src, msg)
        if src != self.pid:
            self.send(src, Msg("reply"))


def build(latency=None, cost=None, n=3):
    sched = Scheduler()
    net = Network(sched, latency or ConstantLatency(1.0), child_rng(1, "t"))
    procs = [Recorder(i, sched, net, cost) for i in range(n)]
    return sched, net, procs


class TestNetworkBasics:
    def test_message_delivered_after_latency(self):
        sched, net, procs = build(ConstantLatency(2.5))
        procs[0].send(1, Msg())
        sched.run()
        assert len(procs[1].received) == 1
        assert procs[1].received[0][2] == 2.5

    def test_self_send_is_immediate(self):
        sched, net, procs = build()
        procs[0].send(0, Msg())
        sched.run()
        assert procs[0].received[0][2] == 0.0

    def test_duplicate_pid_rejected(self):
        sched, net, procs = build()
        with pytest.raises(ValueError):
            Recorder(0, sched, net)

    def test_unknown_destination_raises(self):
        sched, net, procs = build()
        with pytest.raises(KeyError):
            # sent outside a handler -> transmitted synchronously
            procs[0].send(99, Msg())

    def test_counts_by_kind(self):
        sched, net, procs = build()
        procs[0].send(1, Msg("a"))
        procs[0].send(1, Msg("a"))
        procs[0].send(2, Msg("b"))
        sched.run()
        assert net.counts_by_kind["a"] == 2
        assert net.counts_by_kind["b"] == 1
        assert net.messages_sent == 3

    def test_trace_hook_sees_every_send(self):
        sched, net, procs = build()
        seen = []
        net.add_trace_hook(lambda s, d, m, t: seen.append((s, d, m.kind)))
        procs[0].send(1, Msg("x"))
        procs[1].send(2, Msg("y"))
        sched.run()
        assert (0, 1, "x") in seen and (1, 2, "y") in seen


class TestFifoOrdering:
    def test_jittered_channel_preserves_fifo(self):
        # Huge jitter would reorder; the FIFO clamp must prevent it.
        sched, net, procs = build(JitteredLatency(5.0, 0.9))
        for i in range(50):
            procs[0].send(1, Msg("m", i))
        sched.run()
        tags = [m.tag for _, m, _ in procs[1].received]
        assert tags == list(range(50))

    def test_fifo_is_per_pair_not_global(self):
        sched, net, procs = build(ConstantLatency(1.0))
        procs[0].send(2, Msg("m", "from0"))
        procs[1].send(2, Msg("m", "from1"))
        sched.run()
        assert len(procs[2].received) == 2


class TestCrashAndPartition:
    def test_crashed_process_receives_nothing(self):
        sched, net, procs = build()
        procs[1].crash()
        procs[0].send(1, Msg())
        sched.run()
        assert procs[1].received == []

    def test_crashed_process_sends_nothing(self):
        sched, net, procs = build()
        procs[0].crash()
        procs[0].send(1, Msg())
        sched.run()
        assert procs[1].received == []

    def test_partition_blocks_both_directions(self):
        sched, net, procs = build()
        net.partition([0], [1])
        procs[0].send(1, Msg())
        procs[1].send(0, Msg())
        procs[0].send(2, Msg())
        sched.run()
        assert procs[1].received == []
        assert procs[0].received == []
        assert len(procs[2].received) == 1

    def test_heal_restores_traffic(self):
        sched, net, procs = build()
        net.partition([0], [1])
        net.heal()
        procs[0].send(1, Msg())
        sched.run()
        assert len(procs[1].received) == 1

    def test_fifo_preserved_across_block_unblock(self):
        """Messages parked during a partition must be released in send
        order and never overtake messages sent after the heal — the
        per-channel FIFO contract spans the block/unblock cycle."""
        sched, net, procs = build(JitteredLatency(5.0, 0.9))
        for i in range(10):
            procs[0].send(1, Msg("m", i))
        net.block_pair(0, 1)
        for i in range(10, 20):
            procs[0].send(1, Msg("m", i))  # parked
        sched.run(until=50.0)
        assert [m.tag for _, m, _ in procs[1].received] == list(range(10))
        net.unblock_pair(0, 1)  # releases the parked train
        for i in range(20, 30):
            procs[0].send(1, Msg("m", i))
        sched.run()
        tags = [m.tag for _, m, _ in procs[1].received]
        assert tags == list(range(30))

    def test_overlapping_partitions_keep_pair_blocked(self):
        """A pair caught in two overlapping partitions must stay blocked
        until *both* are lifted. With a plain blocked-pairs set, healing
        the first partition would release the pair's parked messages
        while the second partition still stands — breaking FIFO for
        traffic parked behind it. Refcounted blocks keep the park."""
        sched, net, procs = build(JitteredLatency(5.0, 0.9))
        net.partition([0], [1])  # first partition blocks (0, 1)
        net.partition([0], [1, 2])  # overlapping: blocks (0, 1) again
        for i in range(10):
            procs[0].send(1, Msg("m", i))  # parked under two blocks
        net.unblock_pair(0, 1)  # lift the first partition's block only
        sched.run(until=50.0)
        assert procs[1].received == []  # second block still stands
        net.unblock_pair(0, 1)  # lift the second -> parked train flows
        for i in range(10, 20):
            procs[0].send(1, Msg("m", i))
        sched.run()
        tags = [m.tag for _, m, _ in procs[1].received]
        assert tags == list(range(20))

    def test_heal_clears_all_block_refcounts(self):
        sched, net, procs = build()
        net.partition([0], [1])
        net.partition([0], [1])  # double-blocked
        net.heal()  # heal drops every refcount at once
        procs[0].send(1, Msg())
        sched.run()
        assert len(procs[1].received) == 1


class TestCpuQueue:
    def test_recv_cost_delays_subsequent_service(self):
        cost = CostModel(recv_costs={"msg": 10.0})
        sched, net, procs = build(ConstantLatency(1.0), cost)
        procs[0].send(1, Msg())
        procs[0].send(1, Msg())
        sched.run()
        times = [t for _, _, t in procs[1].received]
        # First served on arrival (1.0); second waits for the 10ms of CPU.
        assert times[0] == pytest.approx(1.0)
        assert times[1] == pytest.approx(11.0)

    def test_send_cost_delays_departure(self):
        cost = CostModel(recv_costs={"msg": 2.0}, send_costs={"reply": 3.0})
        sched = Scheduler()
        net = Network(sched, ConstantLatency(1.0), child_rng(1, "t"))
        echo = Echoer(0, sched, net, cost)
        rec = Recorder(1, sched, net, cost)
        rec.send(0, Msg())
        sched.run()
        # msg arrives at 1.0, handler runs, costs 2 (recv) + 3 (send),
        # reply departs at 6.0, arrives at 7.0; receiver spends recv cost
        # for the reply kind too (default 0 here -> handled at arrival).
        assert rec.received[0][2] == pytest.approx(7.0)

    def test_queue_builds_under_overload(self):
        cost = CostModel(recv_costs={"msg": 5.0})
        sched, net, procs = build(ConstantLatency(1.0), cost)
        for _ in range(10):
            procs[0].send(1, Msg())
        sched.run()
        times = [t for _, _, t in procs[1].received]
        assert times[-1] == pytest.approx(1.0 + 9 * 5.0)

    def test_post_job_runs_on_cpu(self):
        sched, net, procs = build()
        ran = []
        procs[0].post_job(lambda: ran.append(sched.now), delay=4.0)
        sched.run()
        assert ran == [4.0]

    def test_post_job_after_crash_is_dropped(self):
        sched, net, procs = build()
        ran = []
        procs[0].post_job(lambda: ran.append(1), delay=4.0)
        procs[0].crash()
        sched.run()
        assert ran == []

    def test_send_outside_handler_charges_cost(self):
        cost = CostModel(send_costs={"msg": 2.0})
        sched, net, procs = build(ConstantLatency(1.0), cost)
        procs[0].send(1, Msg())  # departs at 2.0, arrives 3.0
        sched.run()
        assert procs[1].received[0][2] == pytest.approx(3.0)
