"""Tests for the command-line experiment runner."""

import pytest

from repro.harness.cli import build_parser, main


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "primcast" in out
    assert "worst-case convoy" in out


def test_table2_command(capsys):
    assert main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "WAN - distributed leaders" in out


def test_point_command(capsys):
    assert (
        main(
            [
                "point",
                "--protocol", "primcast",
                "--scenario", "lan",
                "--dests", "2",
                "--outstanding", "1",
                "--warmup", "20",
                "--measure", "40",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "primcast" in out
    assert "LAN" in out


def test_point_rejects_unknown_protocol():
    with pytest.raises(SystemExit):
        main(["point", "--protocol", "zab", "--scenario", "lan"])


def test_parser_has_all_commands():
    parser = build_parser()
    subactions = next(
        a for a in parser._actions if hasattr(a, "choices") and a.choices
    )
    assert set(subactions.choices) == {
        "table1", "table2", "figure2", "figure3", "figure4", "figure5", "point",
    }


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])
