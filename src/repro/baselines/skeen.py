"""Skeen's protocol (§3.1) — the classic, non-fault-tolerant ancestor.

Destinations are individual processes rather than replica groups; the
protocol tolerates no failures but exhibits the timestamping scheme every
genuine atomic multicast in this repo descends from:

1. Each process keeps a logical clock.
2. ``m`` is sent to every process in ``m.dest``.
3. A destination increments its clock, assigns a local timestamp, and
   sends it to the other destinations; ``m`` becomes pending.
4. The final timestamp is the max of all local timestamps; processes
   update their clock to it.
5. ``m`` is delivered once no pending message can have a smaller final
   timestamp (ties broken by message id).

This module is used by the unit tests and the quickstart example as the
simplest correct implementation of timestamp-based ordering; the paper's
evaluation does not include it (it is not fault tolerant).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core.messages import MessageId
from ..rmcast.fifo import RMcastProcess
from ..sim.costs import CostModel
from ..sim.events import Scheduler
from ..sim.network import Network


class SkeenMulticast:
    """An application message addressed to a set of *processes*."""

    __slots__ = ("mid", "dest", "payload")

    def __init__(self, mid: MessageId, dest: FrozenSet[int], payload: Any = None):
        if not dest:
            raise ValueError("need at least one destination process")
        self.mid = mid
        self.dest = frozenset(dest)
        self.payload = payload


class SkeenStart:
    __slots__ = ("multicast",)
    kind = "start"

    def __init__(self, multicast: SkeenMulticast):
        self.multicast = multicast

    @property
    def mid(self) -> MessageId:
        return self.multicast.mid


class SkeenTimestamp:
    __slots__ = ("multicast", "ts", "sender")
    kind = "skeen-ts"

    def __init__(self, multicast: SkeenMulticast, ts: int, sender: int):
        self.multicast = multicast
        self.ts = ts
        self.sender = sender

    @property
    def mid(self) -> MessageId:
        return self.multicast.mid


DeliverHook = Callable[["SkeenProcess", SkeenMulticast, int], None]


class SkeenProcess(RMcastProcess):
    """One destination process running Skeen's protocol."""

    def __init__(
        self,
        pid: int,
        scheduler: Scheduler,
        network: Network,
        cost_model: Optional[CostModel] = None,
    ):
        super().__init__(pid, scheduler, network, cost_model)
        self.clock = 0
        self.delivered: Set[MessageId] = set()
        self.delivery_log: List[Tuple[MessageId, int, float]] = []
        self.deliver_hooks: List[DeliverHook] = []
        # mid -> {sender: ts} collected local timestamps
        self._ts_seen: Dict[MessageId, Dict[int, int]] = {}
        self._pending: Dict[MessageId, SkeenMulticast] = {}
        self._final: Dict[MessageId, int] = {}
        self._next_seq = 0

    def add_deliver_hook(self, hook: DeliverHook) -> None:
        self.deliver_hooks.append(hook)

    def a_multicast(self, dest: Iterable[int], payload: Any = None) -> SkeenMulticast:
        """Multicast ``payload`` to the destination *processes*."""
        mid = (self.pid, self._next_seq)
        self._next_seq += 1
        multicast = SkeenMulticast(mid, frozenset(dest), payload)
        self.r_multicast(SkeenStart(multicast), sorted(multicast.dest))
        return multicast

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def on_r_deliver(self, origin: int, payload: Any) -> None:
        if isinstance(payload, SkeenStart):
            self._on_start(payload.multicast)
        elif isinstance(payload, SkeenTimestamp):
            self._on_ts(payload)
        else:
            raise TypeError(f"unexpected payload {payload!r}")

    def _on_start(self, multicast: SkeenMulticast) -> None:
        if multicast.mid in self._pending or multicast.mid in self.delivered:
            return
        self.clock += 1
        self._pending[multicast.mid] = multicast
        # Record our own proposal immediately so the delivery bound below
        # never underestimates this message (self-delivery of the
        # timestamp message would arrive one CPU slot later).
        self._ts_seen.setdefault(multicast.mid, {})[self.pid] = self.clock
        self.r_multicast(
            SkeenTimestamp(multicast, self.clock, self.pid), sorted(multicast.dest)
        )

    def _on_ts(self, msg: SkeenTimestamp) -> None:
        mid = msg.mid
        seen = self._ts_seen.setdefault(mid, {})
        seen[msg.sender] = msg.ts
        multicast = msg.multicast
        if mid not in self._pending and mid not in self.delivered:
            # Timestamps can arrive before the start on another channel.
            self._pending[mid] = multicast
        if len(seen) == len(multicast.dest) and mid not in self._final:
            final = max(seen.values())
            self._final[mid] = final
            if final > self.clock:
                self.clock = final
        self._try_deliver()

    # ------------------------------------------------------------------
    # delivery
    # ------------------------------------------------------------------

    def _min_possible(self, mid: MessageId) -> int:
        """Lower bound on the final timestamp of a pending message: the
        largest local timestamp seen for it so far (at least our own)."""
        seen = self._ts_seen.get(mid)
        return max(seen.values()) if seen else 0

    def _try_deliver(self) -> None:
        while self._pending:
            best: Optional[MessageId] = None
            best_final = 0
            for mid in self._pending:
                final = self._final.get(mid)
                if final is None:
                    continue
                if best is None or (final, mid) < (best_final, best):
                    best, best_final = mid, final
            if best is None:
                return
            if best_final > self.clock:
                return
            # No other pending message may end up with a smaller final
            # timestamp: its final is at least the largest local
            # timestamp seen for it so far.
            for other in self._pending:
                if other == best:
                    continue
                if (best_final, best) >= (self._min_possible(other), other):
                    return
            self._deliver(best, best_final)

    def _deliver(self, mid: MessageId, final: int) -> None:
        multicast = self._pending.pop(mid)
        self.delivered.add(mid)
        self.delivery_log.append((mid, final, self.scheduler.now))
        for hook in self.deliver_hooks:
            hook(self, multicast, final)
