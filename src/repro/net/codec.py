"""Wire codec: length-prefixed framing with a binary fast path.

The simulator passes message *objects* between processes; the net
backend must serialize them. Frames on a connection are::

    [4-byte big-endian length][body]

The body comes in two self-describing formats, distinguished by its
first byte:

* **canonical JSON** — the body starts with ``{`` (canonical dicts:
  sorted keys, no whitespace). This is the debugging/golden format: a
  message's encoding is a deterministic function of its content, so the
  round-trip tests compare canonical bytes instead of needing
  ``__eq__`` on the slotted wire classes.
* **binary** — the body starts with :data:`FRAME_BINARY` (``0x00``,
  which canonical JSON can never produce), followed by a version byte
  and a struct-packed payload. Same information, ~2-4x fewer bytes and
  no JSON string building on the hot path. Every registered message
  class has a binary encoder/decoder in :data:`BINARY_CODECS`; the
  registry-exhaustiveness test fails when one is missing.

Both formats round-trip through the same message registry, so a stream
may mix them freely (the :class:`FrameDecoder` dispatches per frame) and
``encode → decode → encode`` is bit-stable in either format.

Layers:

* **values** — :func:`encode_value` / :func:`decode_value` losslessly
  round-trip the payload vocabulary: JSON scalars, lists, and tagged
  forms for tuples, sets, frozensets, dicts (any encodable keys),
  :class:`~repro.core.epoch.Epoch`,
  :class:`~repro.core.messages.Multicast` and nested registered
  messages. Tagged forms are dicts with a ``"__"`` discriminator, so a
  *plain* dict is always encoded in tagged form too — nothing an
  application payload contains can collide with the tag namespace.
* **messages** — :data:`CODECS` maps each wire-message class to a
  ``(tag, encode, decode)`` triple. Every class in
  :mod:`repro.core.messages` (class-level ``kind``) plus the rmcast
  frames (``Envelope`` / ``Batch``) must have an entry; the registry
  test in ``tests/net/test_codec.py`` fails when a new message type is
  added without one.

The codec is intentionally JSON, not pickle: frames are inspectable on
the wire, and decoding never executes arbitrary constructors — only the
fixed registry (a frame from an untrusted peer can at worst build
protocol messages).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, Dict, List, Tuple, Type

from ..core.epoch import Epoch
from ..core.messages import (
    Ack,
    AcceptEpoch,
    Bump,
    EpochPromise,
    Multicast,
    NewEpoch,
    NewState,
    Start,
)
from ..rmcast.fifo import Batch, Envelope

#: Length-prefix format: unsigned 32-bit big-endian frame length.
LEN_STRUCT = struct.Struct("!I")

#: Hard ceiling on a single frame (a corrupt length prefix must not ask
#: the reader to buffer gigabytes).
MAX_FRAME_BYTES = 16 * 1024 * 1024


class CodecError(ValueError):
    """A value or frame that cannot be encoded/decoded losslessly."""


# ----------------------------------------------------------------------
# value layer
# ----------------------------------------------------------------------


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def encode_value(value: Any) -> Any:
    """Encode an arbitrary payload value into JSON-safe form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    cls = value.__class__
    # Class-specific forms come before the generic tuple branch: Epoch
    # is a NamedTuple and must not fall through to plain-tuple encoding.
    if cls is Epoch:
        return {"__": "ep", "n": value.number, "l": value.leader}
    if cls is Multicast:
        return {
            "__": "mc",
            "mid": encode_value(value.mid),
            "dest": sorted(value.dest),
            "p": encode_value(value.payload),
        }
    if isinstance(value, tuple):
        return {"__": "t", "v": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        items = sorted((encode_value(v) for v in value), key=_canonical)
        return {"__": "fs", "v": items}
    if isinstance(value, set):
        items = sorted((encode_value(v) for v in value), key=_canonical)
        return {"__": "s", "v": items}
    if isinstance(value, dict):
        pairs = sorted(
            ([encode_value(k), encode_value(v)] for k, v in value.items()),
            key=lambda kv: _canonical(kv[0]),
        )
        return {"__": "d", "v": pairs}
    if cls in CODECS:
        return {"__": "pm", "v": encode_message(value)}
    raise CodecError(f"cannot encode {type(value).__name__}: {value!r}")


def decode_value(data: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [decode_value(v) for v in data]
    if isinstance(data, dict):
        tag = data.get("__")
        if tag == "t":
            return tuple(decode_value(v) for v in data["v"])
        if tag == "ep":
            return Epoch(data["n"], data["l"])
        if tag == "mc":
            mid = decode_value(data["mid"])
            return Multicast(
                (mid[0], mid[1]), frozenset(data["dest"]), decode_value(data["p"])
            )
        if tag == "fs":
            return frozenset(decode_value(v) for v in data["v"])
        if tag == "s":
            return {decode_value(v) for v in data["v"]}
        if tag == "d":
            return {decode_value(k): decode_value(v) for k, v in data["v"]}
        if tag == "pm":
            return decode_message(data["v"])
        raise CodecError(f"unknown value tag {tag!r}")
    raise CodecError(f"cannot decode {type(data).__name__}: {data!r}")


# ----------------------------------------------------------------------
# message layer
# ----------------------------------------------------------------------


def _enc_start(m: Start) -> Dict[str, Any]:
    return {"mc": encode_value(m.multicast)}


def _dec_start(d: Dict[str, Any]) -> Start:
    return Start(decode_value(d["mc"]))


def _enc_ack(m: Ack) -> Dict[str, Any]:
    return {
        "mc": encode_value(m.multicast),
        "g": m.group,
        "e": encode_value(m.epoch),
        "ts": m.ts,
        "s": m.sender,
        "dp": encode_value(m.dp),
    }


def _dec_ack(d: Dict[str, Any]) -> Ack:
    return Ack(
        decode_value(d["mc"]),
        d["g"],
        decode_value(d["e"]),
        d["ts"],
        d["s"],
        decode_value(d["dp"]),
    )


def _enc_bump(m: Bump) -> Dict[str, Any]:
    return {
        "e": encode_value(m.epoch),
        "ts": m.ts,
        "s": m.sender,
        "dp": encode_value(m.dp),
    }


def _dec_bump(d: Dict[str, Any]) -> Bump:
    return Bump(decode_value(d["e"]), d["ts"], d["s"], decode_value(d["dp"]))


def _enc_new_epoch(m: NewEpoch) -> Dict[str, Any]:
    return {"e": encode_value(m.epoch)}


def _dec_new_epoch(d: Dict[str, Any]) -> NewEpoch:
    return NewEpoch(decode_value(d["e"]))


def _enc_promise(m: EpochPromise) -> Dict[str, Any]:
    return {
        "e": encode_value(m.epoch),
        "s": m.sender,
        "c": m.clock,
        "ec": encode_value(m.e_cur),
        "t": encode_value(m.t_seq),
        "tb": m.t_base,
    }


def _dec_promise(d: Dict[str, Any]) -> EpochPromise:
    return EpochPromise(
        decode_value(d["e"]),
        d["s"],
        d["c"],
        decode_value(d["ec"]),
        decode_value(d["t"]),
        d["tb"],
    )


def _enc_new_state(m: NewState) -> Dict[str, Any]:
    return {
        "e": encode_value(m.epoch),
        "t": encode_value(m.t_seq),
        "ts": m.ts,
        "tb": m.t_base,
    }


def _dec_new_state(d: Dict[str, Any]) -> NewState:
    return NewState(
        decode_value(d["e"]), decode_value(d["t"]), d["ts"], d["tb"]
    )


def _enc_accept(m: AcceptEpoch) -> Dict[str, Any]:
    return {"e": encode_value(m.epoch), "s": m.sender}


def _dec_accept(d: Dict[str, Any]) -> AcceptEpoch:
    return AcceptEpoch(decode_value(d["e"]), d["s"])


def _enc_envelope(m: Envelope) -> Dict[str, Any]:
    return {
        "o": m.origin,
        "q": m.seq,
        "p": encode_value(m.payload),
        "d": list(m.dests),
        "r": m.relayed,
    }


def _dec_envelope(d: Dict[str, Any]) -> Envelope:
    return Envelope(
        d["o"], d["q"], decode_value(d["p"]), tuple(d["d"]), d["r"]
    )


def _enc_batch(m: Batch) -> Dict[str, Any]:
    return {"envs": [_enc_envelope(env) for env in m.envelopes]}


def _dec_batch(d: Dict[str, Any]) -> Batch:
    return Batch(tuple(_dec_envelope(env) for env in d["envs"]))


#: class -> (wire tag, encode, decode). The wire tag is the codec's own
#: namespace (``Envelope.kind`` is the *payload's* kind by design, so
#: the class-level ``kind`` strings cannot serve as tags here).
CODECS: Dict[Type[Any], Tuple[str, Callable[[Any], Dict[str, Any]], Callable[[Dict[str, Any]], Any]]] = {
    Start: ("start", _enc_start, _dec_start),
    Ack: ("ack", _enc_ack, _dec_ack),
    Bump: ("bump", _enc_bump, _dec_bump),
    NewEpoch: ("new-epoch", _enc_new_epoch, _dec_new_epoch),
    EpochPromise: ("promise", _enc_promise, _dec_promise),
    NewState: ("new-state", _enc_new_state, _dec_new_state),
    AcceptEpoch: ("accept-epoch", _enc_accept, _dec_accept),
    Envelope: ("envelope", _enc_envelope, _dec_envelope),
    Batch: ("batch", _enc_batch, _dec_batch),
}

_DECODERS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    tag: dec for tag, _, dec in CODECS.values()
}


def encode_message(msg: Any) -> Dict[str, Any]:
    """Encode a registered wire message into a tagged JSON-safe dict."""
    entry = CODECS.get(msg.__class__)
    if entry is None:
        raise CodecError(
            f"no codec registered for message class "
            f"{msg.__class__.__module__}.{msg.__class__.__name__}"
        )
    tag, enc, _ = entry
    body = enc(msg)
    body["k"] = tag
    return body


def decode_message(data: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_message`."""
    tag = data.get("k")
    dec = _DECODERS.get(tag) if isinstance(tag, str) else None
    if dec is None:
        raise CodecError(f"no codec registered for wire tag {tag!r}")
    return dec(data)


def canonical_message_bytes(msg: Any) -> bytes:
    """Canonical encoding of one message — equal bytes iff equal content
    (the round-trip tests' equality witness for slotted classes)."""
    return _canonical(encode_message(msg)).encode("utf-8")


# ----------------------------------------------------------------------
# binary layer
# ----------------------------------------------------------------------

#: First body byte of a binary frame. Canonical JSON bodies always start
#: with ``{`` (0x7B), so 0x00 is unambiguous.
FRAME_BINARY = 0x00

#: Binary wire-format version, bumped on any layout change. A decoder
#: seeing an unknown version raises instead of guessing.
BINARY_VERSION = 1

_U32 = struct.Struct("!I")
_F64 = struct.Struct("!d")

# Value tags (one byte each).
_V_NONE = 0
_V_TRUE = 1
_V_FALSE = 2
_V_INT = 3  # compact int (see _put_cint)
_V_FLOAT = 5  # !d
_V_STR = 6  # compact length + UTF-8
_V_LIST = 7  # compact count + values
_V_TUPLE = 8
_V_SET = 9
_V_FSET = 10
_V_DICT = 11  # compact count + key/value pairs (canonically sorted)
_V_EPOCH = 12  # compact number + compact leader
_V_MC = 13  # mid (2 compact ints) + compact ndest + compact dests (sorted) + payload
_V_MSG = 14  # nested registered message (tag byte + body)


def _put_cint(out: bytearray, n: int) -> None:
    """Compact signed int: a width byte (1/2/4/8) then that many
    big-endian two's-complement bytes; width 0 escapes to a compact
    length + arbitrary-size bytes. Protocol ints (pids, epochs, clock
    ticks) almost always fit one or two bytes, which is where the wire
    savings over JSON come from."""
    if 0 <= n <= 127:
        # The overwhelmingly common case (pids, small counts, group
        # ids): append the byte directly, skipping to_bytes entirely.
        out.append(1)
        out.append(n)
    elif -128 <= n < 0:
        out.append(1)
        out.append(n + 256)
    elif -32768 <= n <= 32767:
        out.append(2)
        out += n.to_bytes(2, "big", signed=True)
    elif -(2**31) <= n < 2**31:
        out.append(4)
        out += n.to_bytes(4, "big", signed=True)
    elif -(2**63) <= n < 2**63:
        out.append(8)
        out += n.to_bytes(8, "big", signed=True)
    else:
        raw = n.to_bytes((n.bit_length() + 8) // 8, "big", signed=True)
        out.append(0)
        _put_cint(out, len(raw))
        out += raw


def _get_cint(buf: bytes, off: int) -> Tuple[int, int]:
    width = buf[off]
    if width == 1:
        # Mirror of the one-byte fast path in _put_cint.
        b = buf[off + 1]
        return (b - 256 if b >= 128 else b), off + 2
    off += 1
    if width == 0:
        width, off = _get_cint(buf, off)
    return int.from_bytes(buf[off : off + width], "big", signed=True), off + width


def _put_str(out: bytearray, s: str) -> None:
    raw = s.encode("utf-8")
    out.append(_V_STR)
    _put_cint(out, len(raw))
    out += raw


#: Memoized canonical sort keys for container elements. Protocol
#: payloads reuse a handful of short string keys ("c", "i", ...) and
#: small ints, so the canonical-JSON key computation — a json.dumps
#: per element, hot on the ack path — is short-circuited for ints
#: (json.dumps(int) is str(int)) and cached for strs. Only strs enter
#: the cache: a value-keyed dict would alias True/1/1.0 (equal, same
#: hash, different canonical forms). Bounded so adversarial payloads
#: cannot grow it without limit.
_SORT_KEY_CACHE: Dict[str, str] = {}
_SORT_KEY_CACHE_MAX = 4096


def _container_sort_key(v: Any) -> str:
    if type(v) is int:
        return str(v)
    if type(v) is str:
        cached = _SORT_KEY_CACHE.get(v)
        if cached is None:
            cached = _canonical(encode_value(v))
            if len(_SORT_KEY_CACHE) < _SORT_KEY_CACHE_MAX:
                _SORT_KEY_CACHE[v] = cached
        return cached
    return _canonical(encode_value(v))


def _pair_sort_key(kv: Tuple[Any, Any]) -> str:
    return _container_sort_key(kv[0])


def encode_value_binary(value: Any, out: bytearray) -> None:
    """Append the binary encoding of ``value`` to ``out``.

    Covers exactly the vocabulary of :func:`encode_value`; unordered
    containers are sorted by the canonical JSON of their (encoded)
    elements, so the binary encoding is the same deterministic function
    of content as the JSON one (encode → decode → encode is
    bit-stable).
    """
    if value is None:
        out.append(_V_NONE)
        return
    cls = value.__class__
    if cls is bool:
        out.append(_V_TRUE if value else _V_FALSE)
        return
    if cls is int:
        out.append(_V_INT)
        _put_cint(out, value)
        return
    if cls is str:
        _put_str(out, value)
        return
    if cls is float:
        out.append(_V_FLOAT)
        out += _F64.pack(value)
        return
    if cls is list:
        out.append(_V_LIST)
        _put_cint(out, len(value))
        for v in value:
            encode_value_binary(v, out)
        return
    if cls is Epoch:
        out.append(_V_EPOCH)
        _put_cint(out, value.number)
        _put_cint(out, value.leader)
        return
    if cls is Multicast:
        out.append(_V_MC)
        _put_cint(out, value.mid[0])
        _put_cint(out, value.mid[1])
        dest = sorted(value.dest)
        _put_cint(out, len(dest))
        for gid in dest:
            _put_cint(out, gid)
        encode_value_binary(value.payload, out)
        return
    if isinstance(value, tuple):
        out.append(_V_TUPLE)
        _put_cint(out, len(value))
        for v in value:
            encode_value_binary(v, out)
        return
    if isinstance(value, (set, frozenset)):
        out.append(_V_FSET if isinstance(value, frozenset) else _V_SET)
        items = sorted(value, key=_container_sort_key)
        _put_cint(out, len(items))
        for v in items:
            encode_value_binary(v, out)
        return
    if isinstance(value, dict):
        out.append(_V_DICT)
        pairs = sorted(value.items(), key=_pair_sort_key)
        _put_cint(out, len(pairs))
        for k, v in pairs:
            encode_value_binary(k, out)
            encode_value_binary(v, out)
        return
    if cls in BINARY_CODECS:
        out.append(_V_MSG)
        _encode_message_binary_into(value, out)
        return
    raise CodecError(f"cannot binary-encode {type(value).__name__}: {value!r}")


def decode_value_binary(buf: bytes, off: int) -> Tuple[Any, int]:
    """Inverse of :func:`encode_value_binary`; returns (value, new off)."""
    tag = buf[off]
    off += 1
    if tag == _V_NONE:
        return None, off
    if tag == _V_TRUE:
        return True, off
    if tag == _V_FALSE:
        return False, off
    if tag == _V_INT:
        return _get_cint(buf, off)
    if tag == _V_FLOAT:
        return _F64.unpack_from(buf, off)[0], off + 8
    if tag == _V_STR:
        n, off = _get_cint(buf, off)
        return bytes(buf[off : off + n]).decode("utf-8"), off + n
    if tag in (_V_LIST, _V_TUPLE, _V_SET, _V_FSET):
        n, off = _get_cint(buf, off)
        items = []
        for _ in range(n):
            v, off = decode_value_binary(buf, off)
            items.append(v)
        if tag == _V_LIST:
            return items, off
        if tag == _V_TUPLE:
            return tuple(items), off
        if tag == _V_SET:
            return set(items), off
        return frozenset(items), off
    if tag == _V_DICT:
        n, off = _get_cint(buf, off)
        d = {}
        for _ in range(n):
            k, off = decode_value_binary(buf, off)
            v, off = decode_value_binary(buf, off)
            d[k] = v
        return d, off
    if tag == _V_EPOCH:
        number, off = _get_cint(buf, off)
        leader, off = _get_cint(buf, off)
        return Epoch(number, leader), off
    if tag == _V_MC:
        origin, off = _get_cint(buf, off)
        seq, off = _get_cint(buf, off)
        n, off = _get_cint(buf, off)
        dest = []
        for _ in range(n):
            gid, off = _get_cint(buf, off)
            dest.append(gid)
        payload, off = decode_value_binary(buf, off)
        return Multicast((origin, seq), frozenset(dest), payload), off
    if tag == _V_MSG:
        return _decode_message_binary_from(buf, off)
    raise CodecError(f"unknown binary value tag {tag}")


def _put_epoch(out: bytearray, epoch: Epoch) -> None:
    _put_cint(out, epoch.number)
    _put_cint(out, epoch.leader)


def _get_epoch(buf: bytes, off: int) -> Tuple[Epoch, int]:
    number, off = _get_cint(buf, off)
    leader, off = _get_cint(buf, off)
    return Epoch(number, leader), off


def _put_dp(out: bytearray, dp: Any) -> None:
    if dp is None:
        out.append(0)
    else:
        out.append(1)
        _put_epoch(out, dp[0])
        _put_cint(out, dp[1])


def _get_dp(buf: bytes, off: int) -> Tuple[Any, int]:
    if buf[off] == 0:
        return None, off + 1
    epoch, off = _get_epoch(buf, off + 1)
    n, off = _get_cint(buf, off)
    return (epoch, n), off


def _put_t_seq(out: bytearray, t_seq: Any) -> None:
    _put_cint(out, len(t_seq))
    for epoch, multicast, ts in t_seq:
        _put_epoch(out, epoch)
        encode_value_binary(multicast, out)
        _put_cint(out, ts)


def _get_t_seq(buf: bytes, off: int) -> Tuple[List[Any], int]:
    n, off = _get_cint(buf, off)
    rows = []
    for _ in range(n):
        epoch, off = _get_epoch(buf, off)
        multicast, off = decode_value_binary(buf, off)
        ts, off = _get_cint(buf, off)
        rows.append((epoch, multicast, ts))
    return rows, off


def _benc_start(m: Start, out: bytearray) -> None:
    encode_value_binary(m.multicast, out)


def _bdec_start(buf: bytes, off: int) -> Tuple[Start, int]:
    mc, off = decode_value_binary(buf, off)
    return Start(mc), off


def _benc_ack(m: Ack, out: bytearray) -> None:
    encode_value_binary(m.multicast, out)
    _put_epoch(out, m.epoch)
    _put_cint(out, m.group)
    _put_cint(out, m.ts)
    _put_cint(out, m.sender)
    _put_dp(out, m.dp)


def _bdec_ack(buf: bytes, off: int) -> Tuple[Ack, int]:
    mc, off = decode_value_binary(buf, off)
    epoch, off = _get_epoch(buf, off)
    group, off = _get_cint(buf, off)
    ts, off = _get_cint(buf, off)
    sender, off = _get_cint(buf, off)
    dp, off = _get_dp(buf, off)
    return Ack(mc, group, epoch, ts, sender, dp), off


def _benc_bump(m: Bump, out: bytearray) -> None:
    _put_epoch(out, m.epoch)
    _put_cint(out, m.ts)
    _put_cint(out, m.sender)
    _put_dp(out, m.dp)


def _bdec_bump(buf: bytes, off: int) -> Tuple[Bump, int]:
    epoch, off = _get_epoch(buf, off)
    ts, off = _get_cint(buf, off)
    sender, off = _get_cint(buf, off)
    dp, off = _get_dp(buf, off)
    return Bump(epoch, ts, sender, dp), off


def _benc_new_epoch(m: NewEpoch, out: bytearray) -> None:
    _put_epoch(out, m.epoch)


def _bdec_new_epoch(buf: bytes, off: int) -> Tuple[NewEpoch, int]:
    epoch, off = _get_epoch(buf, off)
    return NewEpoch(epoch), off


def _benc_promise(m: EpochPromise, out: bytearray) -> None:
    _put_epoch(out, m.epoch)
    _put_cint(out, m.sender)
    _put_cint(out, m.clock)
    _put_epoch(out, m.e_cur)
    _put_t_seq(out, m.t_seq)
    _put_cint(out, m.t_base)


def _bdec_promise(buf: bytes, off: int) -> Tuple[EpochPromise, int]:
    epoch, off = _get_epoch(buf, off)
    sender, off = _get_cint(buf, off)
    clock, off = _get_cint(buf, off)
    e_cur, off = _get_epoch(buf, off)
    t_seq, off = _get_t_seq(buf, off)
    t_base, off = _get_cint(buf, off)
    return EpochPromise(epoch, sender, clock, e_cur, t_seq, t_base), off


def _benc_new_state(m: NewState, out: bytearray) -> None:
    _put_epoch(out, m.epoch)
    _put_t_seq(out, m.t_seq)
    _put_cint(out, m.ts)
    _put_cint(out, m.t_base)


def _bdec_new_state(buf: bytes, off: int) -> Tuple[NewState, int]:
    epoch, off = _get_epoch(buf, off)
    t_seq, off = _get_t_seq(buf, off)
    ts, off = _get_cint(buf, off)
    t_base, off = _get_cint(buf, off)
    return NewState(epoch, t_seq, ts, t_base), off


def _benc_accept(m: AcceptEpoch, out: bytearray) -> None:
    _put_epoch(out, m.epoch)
    _put_cint(out, m.sender)


def _bdec_accept(buf: bytes, off: int) -> Tuple[AcceptEpoch, int]:
    epoch, off = _get_epoch(buf, off)
    sender, off = _get_cint(buf, off)
    return AcceptEpoch(epoch, sender), off


def _benc_envelope(m: Envelope, out: bytearray) -> None:
    _put_cint(out, m.origin)
    _put_cint(out, m.seq)
    _put_cint(out, len(m.dests))
    for dst in m.dests:
        _put_cint(out, dst)
    out.append(1 if m.relayed else 0)
    encode_value_binary(m.payload, out)


def _bdec_envelope(buf: bytes, off: int) -> Tuple[Envelope, int]:
    origin, off = _get_cint(buf, off)
    seq, off = _get_cint(buf, off)
    n, off = _get_cint(buf, off)
    dests = []
    for _ in range(n):
        dst, off = _get_cint(buf, off)
        dests.append(dst)
    relayed = buf[off] != 0
    off += 1
    payload, off = decode_value_binary(buf, off)
    return Envelope(origin, seq, payload, tuple(dests), relayed), off


def _benc_batch(m: Batch, out: bytearray) -> None:
    _put_cint(out, len(m.envelopes))
    for env in m.envelopes:
        _benc_envelope(env, out)


def _bdec_batch(buf: bytes, off: int) -> Tuple[Batch, int]:
    n, off = _get_cint(buf, off)
    envs = []
    for _ in range(n):
        env, off = _bdec_envelope(buf, off)
        envs.append(env)
    return Batch(tuple(envs)), off


#: class -> (one-byte wire tag, binary encode, binary decode). Exactly
#: the classes of :data:`CODECS` — the registry test pins the two key
#: sets equal, so a new wire message cannot ship with only one format.
BINARY_CODECS: Dict[
    Type[Any],
    Tuple[int, Callable[[Any, bytearray], None], Callable[[bytes, int], Tuple[Any, int]]],
] = {
    Start: (1, _benc_start, _bdec_start),
    Ack: (2, _benc_ack, _bdec_ack),
    Bump: (3, _benc_bump, _bdec_bump),
    NewEpoch: (4, _benc_new_epoch, _bdec_new_epoch),
    EpochPromise: (5, _benc_promise, _bdec_promise),
    NewState: (6, _benc_new_state, _bdec_new_state),
    AcceptEpoch: (7, _benc_accept, _bdec_accept),
    Envelope: (8, _benc_envelope, _bdec_envelope),
    Batch: (9, _benc_batch, _bdec_batch),
}

_BINARY_DECODERS: Dict[int, Callable[[bytes, int], Tuple[Any, int]]] = {
    tag: dec for tag, _, dec in BINARY_CODECS.values()
}


def _encode_message_binary_into(msg: Any, out: bytearray) -> None:
    entry = BINARY_CODECS.get(msg.__class__)
    if entry is None:
        raise CodecError(
            f"no binary codec registered for message class "
            f"{msg.__class__.__module__}.{msg.__class__.__name__}"
        )
    out.append(entry[0])
    entry[1](msg, out)


def _decode_message_binary_from(buf: bytes, off: int) -> Tuple[Any, int]:
    dec = _BINARY_DECODERS.get(buf[off])
    if dec is None:
        raise CodecError(f"no binary codec registered for wire tag {buf[off]}")
    return dec(buf, off + 1)


def encode_message_binary(msg: Any) -> bytes:
    """Binary encoding of one registered wire message (tag + body)."""
    out = bytearray()
    _encode_message_binary_into(msg, out)
    return bytes(out)


def decode_message_binary(data: bytes) -> Any:
    """Inverse of :func:`encode_message_binary`."""
    msg, off = _decode_message_binary_from(data, 0)
    if off != len(data):
        raise CodecError(
            f"trailing garbage after binary message ({len(data) - off} bytes)"
        )
    return msg


# ----------------------------------------------------------------------
# frame layer
# ----------------------------------------------------------------------


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """One frame: canonical JSON body behind a 4-byte length prefix."""
    body = _canonical(obj).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    return LEN_STRUCT.pack(len(body)) + body


# Binary frame kinds (byte after the version byte). Hello frames are
# always JSON — peer identification must work before the receiver knows
# anything about the dialer's codec setting.
_BF_HB = 2
_BF_MSG = 3  # u32 src pid + binary message

_BINARY_HEADER = bytes((FRAME_BINARY, BINARY_VERSION))


def encode_msg_frame(src: int, msg: Any, binary: bool = False) -> bytes:
    """One protocol-message frame in the requested body format.

    The JSON form is exactly the PR-9 frame ``{"t": "m", "src": ...,
    "m": encode_message(msg)}``; the binary form packs the same
    information as ``0x00 | version | MSG | u32 src | message``.
    """
    if not binary:
        return encode_frame({"t": "m", "src": src, "m": encode_message(msg)})
    out = bytearray(LEN_STRUCT.size)
    out += _BINARY_HEADER
    out.append(_BF_MSG)
    out += _U32.pack(src)
    _encode_message_binary_into(msg, out)
    length = len(out) - LEN_STRUCT.size
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {length} bytes exceeds MAX_FRAME_BYTES")
    LEN_STRUCT.pack_into(out, 0, length)
    return bytes(out)


def encode_hb_frame(pid: int, binary: bool = False) -> bytes:
    """One heartbeat frame (``{"t": "hb", "pid": ...}`` equivalent)."""
    if not binary:
        return encode_frame({"t": "hb", "pid": pid})
    body = _BINARY_HEADER + bytes((_BF_HB,)) + _U32.pack(pid)
    return LEN_STRUCT.pack(len(body)) + body


def _decode_binary_body(body: bytes) -> Dict[str, Any]:
    """Parse a binary frame body into the same dict shape JSON frames
    produce, with the already-decoded message under ``"msg"`` (so the
    host skips the tagged-dict decode entirely)."""
    if len(body) < 3:
        raise CodecError(f"binary frame body too short ({len(body)} bytes)")
    if body[1] != BINARY_VERSION:
        raise CodecError(f"unsupported binary frame version {body[1]}")
    kind = body[2]
    if kind == _BF_MSG:
        (src,) = _U32.unpack_from(body, 3)
        msg, off = _decode_message_binary_from(body, 7)
        if off != len(body):
            raise CodecError(
                f"trailing garbage after binary frame ({len(body) - off} bytes)"
            )
        return {"t": "m", "src": src, "msg": msg}
    if kind == _BF_HB:
        (pid,) = _U32.unpack_from(body, 3)
        return {"t": "hb", "pid": pid}
    raise CodecError(f"unknown binary frame kind {kind}")


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    ``feed`` accepts any chunking (TCP does not respect frame
    boundaries) and returns the complete frames it finished. Each frame
    body is dispatched on its first byte — :data:`FRAME_BINARY` or
    canonical JSON — so a single connection may mix formats freely.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        self._buf.extend(data)
        frames: List[Dict[str, Any]] = []
        buf = self._buf
        while True:
            if len(buf) < LEN_STRUCT.size:
                break
            (length,) = LEN_STRUCT.unpack_from(buf)
            if length > MAX_FRAME_BYTES:
                raise CodecError(f"frame length {length} exceeds MAX_FRAME_BYTES")
            end = LEN_STRUCT.size + length
            if len(buf) < end:
                break
            body = bytes(buf[LEN_STRUCT.size:end])
            del buf[:end]
            if body and body[0] == FRAME_BINARY:
                frames.append(_decode_binary_body(body))
                continue
            obj = json.loads(body.decode("utf-8"))
            if not isinstance(obj, dict):
                raise CodecError(f"frame body is not an object: {obj!r}")
            frames.append(obj)
        return frames
