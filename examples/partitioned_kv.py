#!/usr/bin/env python3
"""A partitioned, replicated key-value store on top of atomic multicast.

This is the application the paper's introduction motivates: state is
sharded across replica groups (one group per partition), single-
partition operations are *local* multicasts ordered only within their
partition, and cross-partition transactions are *global* multicasts that
atomic multicast orders consistently at every involved partition — no
ad-hoc timestamping or two-phase commit required.

The demo runs a little bank: accounts are sharded by key across 3
partitions (x 3 replicas), clients issue deposits (local) and transfers
(cross-partition), and at the end we check that

* all replicas of a partition hold identical state (replication), and
* the total balance across partitions matches deposits (transfers
  neither create nor destroy money — atomicity across partitions).

Run:
    python examples/partitioned_kv.py
"""

from __future__ import annotations

import random
from typing import Dict

from repro.core import Multicast, PrimCastProcess, uniform_groups
from repro.sim import JitteredLatency, Network, Scheduler, child_rng

N_PARTITIONS = 3
REPLICAS_PER_PARTITION = 3
N_ACCOUNTS = 30
N_OPS = 120


def partition_of(account: int) -> int:
    """Shard accounts across partitions by key."""
    return account % N_PARTITIONS


class KvReplica:
    """Applies delivered operations to its partition's state."""

    def __init__(self, process: PrimCastProcess):
        self.process = process
        self.partition = process.gid
        self.balances: Dict[int, int] = {}
        self.applied = 0
        process.add_deliver_hook(self._apply)

    def _apply(self, proc: PrimCastProcess, m: Multicast, final_ts: int) -> None:
        op = m.payload
        self.applied += 1
        if op["type"] == "deposit":
            account = op["account"]
            if partition_of(account) == self.partition:
                self.balances[account] = self.balances.get(account, 0) + op["amount"]
        elif op["type"] == "transfer":
            src, dst, amount = op["src"], op["dst"], op["amount"]
            # Each partition applies its side of the transfer; atomic
            # multicast guarantees both sides see it in a consistent
            # order relative to every other operation.
            if partition_of(src) == self.partition:
                self.balances[src] = self.balances.get(src, 0) - amount
            if partition_of(dst) == self.partition:
                self.balances[dst] = self.balances.get(dst, 0) + amount


def main() -> None:
    config = uniform_groups(N_PARTITIONS, REPLICAS_PER_PARTITION)
    scheduler = Scheduler()
    network = Network(scheduler, JitteredLatency(1.0, 0.05), child_rng(7, "net"))
    processes = {
        pid: PrimCastProcess(pid, config, scheduler, network)
        for pid in config.all_pids
    }
    replicas = [KvReplica(p) for p in processes.values()]

    rng = random.Random(1234)
    total_deposited = 0
    n_transfers = 0
    for i in range(N_OPS):
        when = i * 0.4
        if rng.random() < 0.5:
            account = rng.randrange(N_ACCOUNTS)
            amount = rng.randint(1, 100)
            total_deposited += amount
            op = {"type": "deposit", "account": account, "amount": amount}
            dest = frozenset({partition_of(account)})
        else:
            src, dst = rng.sample(range(N_ACCOUNTS), 2)
            op = {"type": "transfer", "src": src, "dst": dst,
                  "amount": rng.randint(1, 20)}
            dest = frozenset({partition_of(src), partition_of(dst)})
            if len(dest) > 1:
                n_transfers += 1
        submitter = processes[config.members(min(dest))[0]]
        scheduler.call_at(when, submitter.a_multicast, dest, op)

    scheduler.run(until=5000.0)

    # Replication: all replicas of a partition hold identical state.
    for gid in range(N_PARTITIONS):
        states = [
            r.balances for r in replicas if r.partition == gid
        ]
        assert all(s == states[0] for s in states), f"partition {gid} diverged"

    # Atomicity: money is conserved across partitions.
    total = sum(
        sum(r.balances.values())
        for r in replicas
        if r.process.pid == config.members(r.partition)[0]
    )
    print(f"partitions: {N_PARTITIONS} x {REPLICAS_PER_PARTITION} replicas")
    print(f"operations applied per replica: "
          f"{sorted(set(r.applied for r in replicas))}")
    print(f"cross-partition transfers: {n_transfers}")
    print(f"total deposited: {total_deposited}, total held: {total}")
    assert total == total_deposited, "transfers must conserve money"
    print("OK: replicas converged and cross-partition atomicity held")


if __name__ == "__main__":
    main()
