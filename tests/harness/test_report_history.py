"""Perf-trajectory dashboard tests (repro.harness.report --history)."""

import json

import pytest

from repro.harness.report import history_markdown, main


def rows():
    return [
        {
            "timestamp": "2026-07-01T00:00:00Z",
            "backend": "pure-python",
            "wall_s": 8.0,
            "events_per_sec": 100000.0,
            "speedup_vs_seed": 1.25,
            "note": "baseline",
        },
        {
            "timestamp": "2026-07-15T00:00:00Z",
            "backend": "pure-python",
            "wall_s": 4.0,
            "events_per_sec": 200000.0,
            "speedup_vs_seed": 2.5,
            "note": "",
        },
        {
            "timestamp": "2026-08-01T00:00:00Z",
            "backend": "pure-python",
            "wall_s": 5.0,
            "events_per_sec": 160000.0,
            "speedup_vs_seed": 2.0,
            "note": "regression",
        },
    ]


def test_history_markdown_renders_per_row_deltas():
    table = history_markdown(rows())
    lines = table.splitlines()
    assert lines[0].startswith("| When (UTC) |")
    assert "Δ events/s" in lines[0]
    # first row has no predecessor; then +100%, then -20%
    assert "| — |" in lines[2]
    assert "+100.0%" in lines[3]
    assert "-20.0%" in lines[4]
    assert "2.50x" in lines[3]
    assert "| regression |" in lines[4]


def test_history_markdown_empty_is_just_the_header():
    assert len(history_markdown([]).splitlines()) == 2


def net_rows():
    return [
        {
            "timestamp": "2026-08-08T00:00:00Z",
            "point": "net-g2x3-m64-w8",
            "backend": "net",
            "msgs_per_sec": 1000.0,
            "p50_ms": 30.0,
            "p99_ms": 50.0,
            "speedup_vs_seq": 3.1,
            "codec_bytes_ratio": 3.9,
            "note": "overhaul",
        },
        {
            "timestamp": "2026-08-09T00:00:00Z",
            "point": "net-g2x3-m64-w8",
            "backend": "net",
            "msgs_per_sec": 1500.0,
            "p50_ms": 25.0,
            "p99_ms": 40.0,
            "speedup_vs_seq": 4.0,
            "codec_bytes_ratio": 4.0,
            "note": "",
        },
    ]


def test_history_markdown_splits_net_rows_into_their_own_section():
    # Sim events/sec and net msgs/sec are not comparable: net-tagged
    # rows must render as a separate trajectory section with their own
    # delta chain, leaving the sim table untouched.
    table = history_markdown(rows() + net_rows())
    assert "Net backend" in table
    sim_part, net_part = table.split("Net backend")
    assert "+100.0%" in sim_part  # sim deltas unchanged by net rows
    assert "msgs/s" in net_part
    assert "3.10x" in net_part
    assert "+50.0%" in net_part  # net delta vs previous *net* row only
    assert "overhaul" in net_part
    # A pure-net log renders only the net section.
    net_only = history_markdown(net_rows())
    assert "events/s" not in net_only
    assert net_only.startswith("**Net backend")


def test_cli_renders_history_log(tmp_path, capsys):
    log = tmp_path / "hist.jsonl"
    log.write_text(
        "".join(json.dumps(r, sort_keys=True) + "\n" for r in rows())
    )
    assert main(["--history", "--path", str(log)]) == 0
    out = capsys.readouterr().out
    assert "+100.0%" in out
    assert "baseline" in out


def test_cli_missing_log_exits_one(tmp_path, capsys):
    assert main(["--history", "--path", str(tmp_path / "none.jsonl")]) == 1
    assert "no history rows" in capsys.readouterr().out


def test_cli_requires_history_flag(capsys):
    with pytest.raises(SystemExit):
        main([])


def test_repo_history_log_renders():
    """The real BENCH_history.jsonl must always render (EXPERIMENTS.md
    embeds exactly this table)."""
    from repro.harness.perf import history_table, read_history

    real = read_history()
    assert real, "BENCH_history.jsonl missing or empty at the repo root"
    table = history_table(real)
    assert table.splitlines()[0].startswith("| When (UTC) |")
    # Every row renders: one table line per sim row and per net row
    # (plus a header pair per section and the net section title).
    sim = [r for r in real if r.get("backend") != "net"]
    net = [r for r in real if r.get("backend") == "net"]
    if not net:
        expected = len(sim) + 2
    else:
        expected = 2 + (len(net) + 2)  # section title + blank + net table
        if sim:
            expected += (len(sim) + 2) + 1  # sim table + joining blank
    assert len(table.splitlines()) == expected
