"""Performance-contract rules (PERF0xx).

Structural constraints the optionally-compiled hot core
(:data:`repro._backend.COMPILED_MODULES`, DESIGN.md §9) relies on:

* **PERF001** — every class defined in a hot module declares
  ``__slots__``. Slotted classes are the restructuring that makes the
  hot path allocation-light under CPython *and* compilable by mypyc
  (native classes have a fixed layout); an unslotted class silently
  re-introduces a per-instance dict and, worse, an attribute namespace
  that interpreted monkey-patching can grow — which a compiled build
  would then break at runtime instead of at review time.

  Exemptions (``NamedTuple`` / ``Enum`` bodies manage their own layout;
  classes that *must* stay dynamic, like the ``SimProcess`` lineage
  whose subclasses add attributes freely, are allowlisted in
  :mod:`repro.analysis.config` with a justification).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Set

from .base import Finding, ModuleInfo, Rule, register

if TYPE_CHECKING:  # pragma: no cover
    from .config import AnalysisConfig

#: Base-class names whose metaclass owns the instance layout; requiring
#: ``__slots__`` on top would be wrong (NamedTuple forbids non-default
#: slots) or pointless (Enum members are class attributes).
_LAYOUT_MANAGING_BASES = frozenset(
    {"NamedTuple", "Enum", "IntEnum", "Flag", "IntFlag", "TypedDict", "Protocol"}
)


def _is_exception_class(names: Set[str]) -> bool:
    """Exception subclasses are exempt: they are never hot (raised once,
    on a safety violation) and BaseException's args machinery does not
    benefit from slots."""
    return any(n.endswith(("Error", "Exception")) for n in names)


def _base_names(cls: ast.ClassDef) -> Set[str]:
    """Terminal names of a class's bases (``typing.NamedTuple`` → ``NamedTuple``)."""
    names: Set[str] = set()
    for base in cls.bases:
        node = base
        # Unwrap subscripts like Generic[T] / Protocol[T].
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Name):
            names.add(node.id)
    return names


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == "__slots__"
                and stmt.value is not None
            ):
                return True
    return False


def _classes(tree: ast.Module) -> Iterator[ast.ClassDef]:
    """Top-level and nested class definitions, in source order."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


@register
class HotClassesDeclareSlots(Rule):
    rule_id = "PERF001"
    title = "classes in compiled hot modules declare __slots__"

    def applies_to(self, module: str, config: "AnalysisConfig") -> bool:
        scope = config.scope_override.get(self.rule_id, config.perf_slots_scope)
        return module in scope

    def check(self, mod: ModuleInfo, config: "AnalysisConfig") -> Iterator[Finding]:
        findings: List[Finding] = []
        for cls in _classes(mod.tree):
            if _declares_slots(cls):
                continue
            bases = _base_names(cls)
            if bases & _LAYOUT_MANAGING_BASES or _is_exception_class(bases):
                continue
            findings.append(
                self.finding(
                    mod,
                    cls,
                    f"class {cls.name} in hot module {mod.module} has no "
                    f"__slots__ — unslotted classes cost a dict per instance "
                    f"on the hot path and cannot compile to a fixed-layout "
                    f"native class (allowlist it with a justification if it "
                    f"must stay dynamic)",
                    cls.name,
                )
            )
        return iter(findings)
