"""Wire codec: length-prefixed JSON framing for the protocol messages.

The simulator passes message *objects* between processes; the net
backend must serialize them. Frames on a connection are::

    [4-byte big-endian length][UTF-8 JSON body]

JSON bodies are canonical (sorted keys, no whitespace) so a message's
encoding is a deterministic function of its content — the round-trip
tests compare canonical bytes instead of needing ``__eq__`` on the
slotted wire classes.

Two layers:

* **values** — :func:`encode_value` / :func:`decode_value` losslessly
  round-trip the payload vocabulary: JSON scalars, lists, and tagged
  forms for tuples, sets, frozensets, dicts (any encodable keys),
  :class:`~repro.core.epoch.Epoch`,
  :class:`~repro.core.messages.Multicast` and nested registered
  messages. Tagged forms are dicts with a ``"__"`` discriminator, so a
  *plain* dict is always encoded in tagged form too — nothing an
  application payload contains can collide with the tag namespace.
* **messages** — :data:`CODECS` maps each wire-message class to a
  ``(tag, encode, decode)`` triple. Every class in
  :mod:`repro.core.messages` (class-level ``kind``) plus the rmcast
  frames (``Envelope`` / ``Batch``) must have an entry; the registry
  test in ``tests/net/test_codec.py`` fails when a new message type is
  added without one.

The codec is intentionally JSON, not pickle: frames are inspectable on
the wire, and decoding never executes arbitrary constructors — only the
fixed registry (a frame from an untrusted peer can at worst build
protocol messages).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Callable, Dict, List, Tuple, Type

from ..core.epoch import Epoch
from ..core.messages import (
    Ack,
    AcceptEpoch,
    Bump,
    EpochPromise,
    Multicast,
    NewEpoch,
    NewState,
    Start,
)
from ..rmcast.fifo import Batch, Envelope

#: Length-prefix format: unsigned 32-bit big-endian frame length.
LEN_STRUCT = struct.Struct("!I")

#: Hard ceiling on a single frame (a corrupt length prefix must not ask
#: the reader to buffer gigabytes).
MAX_FRAME_BYTES = 16 * 1024 * 1024


class CodecError(ValueError):
    """A value or frame that cannot be encoded/decoded losslessly."""


# ----------------------------------------------------------------------
# value layer
# ----------------------------------------------------------------------


def _canonical(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def encode_value(value: Any) -> Any:
    """Encode an arbitrary payload value into JSON-safe form."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, list):
        return [encode_value(v) for v in value]
    cls = value.__class__
    # Class-specific forms come before the generic tuple branch: Epoch
    # is a NamedTuple and must not fall through to plain-tuple encoding.
    if cls is Epoch:
        return {"__": "ep", "n": value.number, "l": value.leader}
    if cls is Multicast:
        return {
            "__": "mc",
            "mid": encode_value(value.mid),
            "dest": sorted(value.dest),
            "p": encode_value(value.payload),
        }
    if isinstance(value, tuple):
        return {"__": "t", "v": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        items = sorted((encode_value(v) for v in value), key=_canonical)
        return {"__": "fs", "v": items}
    if isinstance(value, set):
        items = sorted((encode_value(v) for v in value), key=_canonical)
        return {"__": "s", "v": items}
    if isinstance(value, dict):
        pairs = sorted(
            ([encode_value(k), encode_value(v)] for k, v in value.items()),
            key=lambda kv: _canonical(kv[0]),
        )
        return {"__": "d", "v": pairs}
    if cls in CODECS:
        return {"__": "pm", "v": encode_message(value)}
    raise CodecError(f"cannot encode {type(value).__name__}: {value!r}")


def decode_value(data: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if data is None or isinstance(data, (bool, int, float, str)):
        return data
    if isinstance(data, list):
        return [decode_value(v) for v in data]
    if isinstance(data, dict):
        tag = data.get("__")
        if tag == "t":
            return tuple(decode_value(v) for v in data["v"])
        if tag == "ep":
            return Epoch(data["n"], data["l"])
        if tag == "mc":
            mid = decode_value(data["mid"])
            return Multicast(
                (mid[0], mid[1]), frozenset(data["dest"]), decode_value(data["p"])
            )
        if tag == "fs":
            return frozenset(decode_value(v) for v in data["v"])
        if tag == "s":
            return {decode_value(v) for v in data["v"]}
        if tag == "d":
            return {decode_value(k): decode_value(v) for k, v in data["v"]}
        if tag == "pm":
            return decode_message(data["v"])
        raise CodecError(f"unknown value tag {tag!r}")
    raise CodecError(f"cannot decode {type(data).__name__}: {data!r}")


# ----------------------------------------------------------------------
# message layer
# ----------------------------------------------------------------------


def _enc_start(m: Start) -> Dict[str, Any]:
    return {"mc": encode_value(m.multicast)}


def _dec_start(d: Dict[str, Any]) -> Start:
    return Start(decode_value(d["mc"]))


def _enc_ack(m: Ack) -> Dict[str, Any]:
    return {
        "mc": encode_value(m.multicast),
        "g": m.group,
        "e": encode_value(m.epoch),
        "ts": m.ts,
        "s": m.sender,
        "dp": encode_value(m.dp),
    }


def _dec_ack(d: Dict[str, Any]) -> Ack:
    return Ack(
        decode_value(d["mc"]),
        d["g"],
        decode_value(d["e"]),
        d["ts"],
        d["s"],
        decode_value(d["dp"]),
    )


def _enc_bump(m: Bump) -> Dict[str, Any]:
    return {
        "e": encode_value(m.epoch),
        "ts": m.ts,
        "s": m.sender,
        "dp": encode_value(m.dp),
    }


def _dec_bump(d: Dict[str, Any]) -> Bump:
    return Bump(decode_value(d["e"]), d["ts"], d["s"], decode_value(d["dp"]))


def _enc_new_epoch(m: NewEpoch) -> Dict[str, Any]:
    return {"e": encode_value(m.epoch)}


def _dec_new_epoch(d: Dict[str, Any]) -> NewEpoch:
    return NewEpoch(decode_value(d["e"]))


def _enc_promise(m: EpochPromise) -> Dict[str, Any]:
    return {
        "e": encode_value(m.epoch),
        "s": m.sender,
        "c": m.clock,
        "ec": encode_value(m.e_cur),
        "t": encode_value(m.t_seq),
        "tb": m.t_base,
    }


def _dec_promise(d: Dict[str, Any]) -> EpochPromise:
    return EpochPromise(
        decode_value(d["e"]),
        d["s"],
        d["c"],
        decode_value(d["ec"]),
        decode_value(d["t"]),
        d["tb"],
    )


def _enc_new_state(m: NewState) -> Dict[str, Any]:
    return {
        "e": encode_value(m.epoch),
        "t": encode_value(m.t_seq),
        "ts": m.ts,
        "tb": m.t_base,
    }


def _dec_new_state(d: Dict[str, Any]) -> NewState:
    return NewState(
        decode_value(d["e"]), decode_value(d["t"]), d["ts"], d["tb"]
    )


def _enc_accept(m: AcceptEpoch) -> Dict[str, Any]:
    return {"e": encode_value(m.epoch), "s": m.sender}


def _dec_accept(d: Dict[str, Any]) -> AcceptEpoch:
    return AcceptEpoch(decode_value(d["e"]), d["s"])


def _enc_envelope(m: Envelope) -> Dict[str, Any]:
    return {
        "o": m.origin,
        "q": m.seq,
        "p": encode_value(m.payload),
        "d": list(m.dests),
        "r": m.relayed,
    }


def _dec_envelope(d: Dict[str, Any]) -> Envelope:
    return Envelope(
        d["o"], d["q"], decode_value(d["p"]), tuple(d["d"]), d["r"]
    )


def _enc_batch(m: Batch) -> Dict[str, Any]:
    return {"envs": [_enc_envelope(env) for env in m.envelopes]}


def _dec_batch(d: Dict[str, Any]) -> Batch:
    return Batch(tuple(_dec_envelope(env) for env in d["envs"]))


#: class -> (wire tag, encode, decode). The wire tag is the codec's own
#: namespace (``Envelope.kind`` is the *payload's* kind by design, so
#: the class-level ``kind`` strings cannot serve as tags here).
CODECS: Dict[Type[Any], Tuple[str, Callable[[Any], Dict[str, Any]], Callable[[Dict[str, Any]], Any]]] = {
    Start: ("start", _enc_start, _dec_start),
    Ack: ("ack", _enc_ack, _dec_ack),
    Bump: ("bump", _enc_bump, _dec_bump),
    NewEpoch: ("new-epoch", _enc_new_epoch, _dec_new_epoch),
    EpochPromise: ("promise", _enc_promise, _dec_promise),
    NewState: ("new-state", _enc_new_state, _dec_new_state),
    AcceptEpoch: ("accept-epoch", _enc_accept, _dec_accept),
    Envelope: ("envelope", _enc_envelope, _dec_envelope),
    Batch: ("batch", _enc_batch, _dec_batch),
}

_DECODERS: Dict[str, Callable[[Dict[str, Any]], Any]] = {
    tag: dec for tag, _, dec in CODECS.values()
}


def encode_message(msg: Any) -> Dict[str, Any]:
    """Encode a registered wire message into a tagged JSON-safe dict."""
    entry = CODECS.get(msg.__class__)
    if entry is None:
        raise CodecError(
            f"no codec registered for message class "
            f"{msg.__class__.__module__}.{msg.__class__.__name__}"
        )
    tag, enc, _ = entry
    body = enc(msg)
    body["k"] = tag
    return body


def decode_message(data: Dict[str, Any]) -> Any:
    """Inverse of :func:`encode_message`."""
    tag = data.get("k")
    dec = _DECODERS.get(tag) if isinstance(tag, str) else None
    if dec is None:
        raise CodecError(f"no codec registered for wire tag {tag!r}")
    return dec(data)


def canonical_message_bytes(msg: Any) -> bytes:
    """Canonical encoding of one message — equal bytes iff equal content
    (the round-trip tests' equality witness for slotted classes)."""
    return _canonical(encode_message(msg)).encode("utf-8")


# ----------------------------------------------------------------------
# frame layer
# ----------------------------------------------------------------------


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """One frame: canonical JSON body behind a 4-byte length prefix."""
    body = _canonical(obj).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    return LEN_STRUCT.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame reassembly over an arbitrary byte stream.

    ``feed`` accepts any chunking (TCP does not respect frame
    boundaries) and returns the complete frames it finished.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        self._buf.extend(data)
        frames: List[Dict[str, Any]] = []
        buf = self._buf
        while True:
            if len(buf) < LEN_STRUCT.size:
                break
            (length,) = LEN_STRUCT.unpack_from(buf)
            if length > MAX_FRAME_BYTES:
                raise CodecError(f"frame length {length} exceeds MAX_FRAME_BYTES")
            end = LEN_STRUCT.size + length
            if len(buf) < end:
                break
            body = bytes(buf[LEN_STRUCT.size:end])
            del buf[:end]
            obj = json.loads(body.decode("utf-8"))
            if not isinstance(obj, dict):
                raise CodecError(f"frame body is not an object: {obj!r}")
            frames.append(obj)
        return frames
