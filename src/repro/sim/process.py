"""Simulated processes with a single-server CPU queue.

Each process owns one logical CPU. Incoming messages and posted jobs wait
in a FIFO inbox; the CPU serves them one at a time. Serving a job costs
``recv_cost(msg) + sum(send_cost(m) for m sent by the handler)`` of CPU
time (see :mod:`repro.sim.costs`), and the messages the handler produced
leave the process when that work completes. Under overload the inbox
grows and end-to-end latency rises — this is what produces the hockey-
stick throughput/latency curves of the paper's evaluation (§7.3–7.5).

Protocol implementations subclass :class:`SimProcess` and override
:meth:`on_message`.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import TYPE_CHECKING, Any, Callable, Deque, List, Optional, Tuple

from .._backend import mypyc_attr
from .costs import CostModel

if TYPE_CHECKING:
    from ..net.runtime import SchedulerAPI, TransportAPI


@mypyc_attr(allow_interpreted_subclasses=True)
class SimProcess:
    """Base class for all simulated processes (replicas and clients).

    The substrate is consumed through the structural seam of
    :mod:`repro.net.runtime`: any ``SchedulerAPI`` / ``TransportAPI``
    pair works — the simulator's :class:`~repro.sim.events.Scheduler` /
    :class:`~repro.sim.network.Network` or the asyncio facades of
    :mod:`repro.net.host`. The hot paths below push directly into
    ``scheduler._heap`` / ``scheduler._seq``; that fast path is part of
    the seam contract (see ``SchedulerAPI``).

    Args:
        pid: globally unique process id.
        scheduler: shared event scheduler (``SchedulerAPI``).
        network: shared transport (``TransportAPI``; the process
            registers itself).
        cost_model: CPU cost model; ``None`` means zero-cost CPU.
    """

    def __init__(
        self,
        pid: int,
        scheduler: "SchedulerAPI",
        network: "TransportAPI",
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.pid = pid
        self.scheduler = scheduler
        self.network = network
        self.cost_model = cost_model or CostModel()
        self.crashed = False
        self.busy_until = 0.0
        self._inbox: Deque[Tuple[Any, ...]] = deque()
        self._serving = False
        self._outgoing: List[Tuple[int, Any]] = []
        self._in_handler = False
        # Pre-bound hot callbacks: the network and the event loop fetch
        # these without creating a fresh bound-method object per event
        # (they are scheduled a million times per load sweep). Stored
        # under *distinct* names — shadowing the methods themselves in
        # the instance dict would forbid ``__slots__`` and break a
        # compiled (mypyc) build. Most-derived overrides are picked up
        # because binding happens through ``self``.
        self._enqueue_cb: Callable[[int, Any], None] = self.enqueue_message
        self._serve_cb: Callable[[], None] = self._serve
        self._transmit_cb = network.transmit
        # The cost model's dicts, cached flat: ``_serve`` charges a recv
        # cost for every message and a send cost for every departure, so
        # the two attribute hops through ``self.cost_model`` are paid
        # once here instead of per event. The dicts are aliased live —
        # mutating ``cost_model.recv_costs[...]`` still takes effect —
        # only *rebinding* ``proc.cost_model`` after construction would
        # go stale (nothing in the repo does; the attribute is
        # constructor-only by convention).
        cm = self.cost_model
        self._recv_costs = cm.recv_costs
        self._send_costs = cm.send_costs
        self._default_recv = cm.default_recv
        self._default_send = cm.default_send
        network.register(self)

    # ------------------------------------------------------------------
    # API for subclasses
    # ------------------------------------------------------------------

    def on_message(self, src: int, msg: Any) -> None:
        """Handle a delivered message. Override in subclasses."""
        raise NotImplementedError

    def send(self, dst: int, msg: Any) -> None:
        """Queue ``msg`` for ``dst``; departs when the current job's CPU
        work completes (or immediately if called outside a handler)."""
        if self.crashed:
            return
        if self._in_handler:
            self._outgoing.append((dst, msg))
        else:
            # Sent from outside the CPU loop (e.g. test drivers): charge
            # the send cost and transmit right away.
            cost = self.cost_model.send_cost(msg)
            depart = max(self.scheduler.now, self.busy_until) + cost
            self.busy_until = depart
            self.network.transmit(self.pid, dst, msg, depart)

    def send_many(self, dsts: List[int], msg: Any) -> None:
        """Send the same message to several destinations."""
        for dst in dsts:
            self.send(dst, msg)

    def post_job(self, fn: Callable[[], None], delay: float = 0.0) -> None:
        """Run ``fn`` on this process's CPU after ``delay`` ms.

        Used for timers and client actions; the job is queued like a
        message and charged any send costs it incurs.
        """
        self.scheduler.call_after(delay, self._enqueue_job, fn)

    def crash(self) -> None:
        """Crash the process: it stops sending and receiving forever."""
        self.crashed = True
        self._inbox.clear()

    # ------------------------------------------------------------------
    # CPU queue machinery
    # ------------------------------------------------------------------
    #
    # Inbox entries are ``(src, msg)`` for messages and ``(None, fn)``
    # for posted jobs; the hot functions below bind attributes to locals
    # and use the scheduler's allocation-free fast path, since one of
    # them runs for every event of every load sweep.

    def enqueue_message(self, src: int, msg: Any) -> None:
        """Called by the network when a message arrives."""
        if self.crashed:
            return
        self._inbox.append((src, msg))
        if not self._serving:
            self._serving = True
            sched = self.scheduler
            start = self.busy_until
            if start < sched.now:
                start = sched.now
            # start >= now, so the scheduler's past-check is elided.
            heappush(sched._heap, (start, sched._seq, self._serve_cb, ()))
            sched._seq += 1

    def _enqueue_job(self, fn: Callable[[], None]) -> None:
        if self.crashed:
            return
        self._inbox.append((None, fn))
        self._maybe_start_service()

    def _maybe_start_service(self) -> None:
        if self._serving or not self._inbox:
            return
        self._serving = True
        start = max(self.scheduler.now, self.busy_until)
        self.scheduler.schedule(start, self._serve_cb)

    def _serve(self) -> None:
        if self.crashed or not self._inbox:
            self._serving = False
            return
        src, payload = self._inbox.popleft()
        # One list reused across serves (an allocation per event adds
        # up); it still holds the previous handler's sends, so clear it.
        outgoing = self._outgoing
        if outgoing:
            outgoing.clear()
        self._in_handler = True
        try:
            if src is not None:
                # Inlined cost_model.recv_cost (no CostModel subclasses
                # exist; costs are keyed on the message kind by contract).
                try:
                    cost = self._recv_costs.get(payload.kind, self._default_recv)
                except AttributeError:
                    cost = self._default_recv
                self.on_message(src, payload)
            else:
                cost = 0.0
                payload()
        finally:
            self._in_handler = False
        if outgoing:
            send_costs = self._send_costs
            default_send = self._default_send
            for _, out_msg in outgoing:
                try:
                    cost += send_costs.get(out_msg.kind, default_send)
                except AttributeError:
                    cost += default_send
        sched = self.scheduler
        completion = sched.now + cost
        self.busy_until = completion
        if not self.crashed:
            if outgoing:
                transmit = self._transmit_cb
                pid = self.pid
                for dst, out_msg in outgoing:
                    transmit(pid, dst, out_msg, completion)
            if self._inbox:
                # completion = now + cost >= now: past-check elided.
                heappush(sched._heap, (completion, sched._seq, self._serve_cb, ()))
                sched._seq += 1
            else:
                self._serving = False
        else:
            self._serving = False
            if self._inbox:
                self._maybe_start_service()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "crashed" if self.crashed else "up"
        return f"<{type(self).__name__} pid={self.pid} {state}>"
