"""Wall-clock performance harness for the simulation substrate.

The paper-reproduction benches are bounded by how fast the simulator
executes events, so the substrate's own speed is tracked as a first-class
metric. This module measures wall-clock seconds and simulated events/sec
for standard load points, optionally captures a cProfile, quantifies the
wire-message savings of the opt-in §7.1 ack/bump batching layer, and
records everything in ``BENCH_perf.json`` so regressions (or wins) are
visible across PRs — see the "Perf trajectory" section of EXPERIMENTS.md.

Conventions:

* Wall times are **best-of-N** (default 3): the minimum is the least
  noisy estimator of the achievable time on a busy machine.
* The seed baseline (:data:`SEED_BASELINE`) was measured on the same
  smoke point before the substrate optimisation work; speedups reported
  by :func:`speedup_vs_seed` are relative to it.
"""

from __future__ import annotations

import cProfile
import io
import json
import multiprocessing
import os
import pstats
import time
import tracemalloc
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..core.gc import DEFAULT_COMPACTION_INTERVAL_MS
from ..sim.rng import child_rng
from ..workload.generator import make_clients
from ..workload.scenarios import (
    Scenario,
    lan_fleet,
    lan_sustained,
    wan_colocated_leaders,
)
from .cache import ResultCache
from .parallel import SweepExecutor, expand_sweep
from .pool import WorkerPool, default_mp_context, run_spec
from .runner import (
    STREAM_LOG_KEEP,
    STREAM_SAMPLE_KEEP,
    RunResult,
    build_system,
    run_load_point,
)

#: Default location of the perf record, at the repository root.
BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_perf.json"

#: Seed-revision baseline for the standard smoke point (Fig 3 scenario,
#: 2 destination groups, 32 outstanding, 700 ms simulated): best-of-2
#: wall seconds and the (deterministic) event count of that run.
SEED_BASELINE = {
    "point": "fig3-wan-colocated-d2-o32",
    "wall_s": 10.139,
    "events": 660110,
}

#: The ``substrate`` record as it stood immediately before the
#: compiled-core restructuring PR (slotted hot classes, per-pair channel
#: cache, bitmask ack trackers, monomorphic scheduler loop): best-of-3
#: wall seconds on the same smoke point. The ``compiled_core`` bench
#: gates the restructuring's *own* win against this, separately from the
#: cumulative :data:`SEED_BASELINE` speedup.
PRE_RESTRUCTURE_BASELINE = {
    "point": "fig3-wan-colocated-d2-o32",
    "wall_s": 4.543,
    "events": 660110,
}


@dataclass
class PerfPoint:
    """Wall-clock measurement of one simulated load point."""

    point: str
    protocol: str
    scenario: str
    n_dest_groups: int
    outstanding: int
    batching_ms: float
    #: best-of-``repeats`` wall-clock seconds
    wall_s: float
    #: every measured repeat, in order
    walls_s: list = field(default_factory=list)
    #: simulated events executed in one run
    events: int = 0
    #: simulated events per wall-clock second (best run)
    events_per_sec: float = 0.0
    #: delivered msg/s inside the measurement window (simulated)
    throughput: float = 0.0
    #: total wire messages over the run
    wire_messages: int = 0
    message_counts: Dict[str, int] = field(default_factory=dict)
    #: substrate the measured rows came from ("sim" or "net")
    backend: str = "sim"


def measure_load_point(
    protocol: str = "primcast",
    scenario: Optional[Scenario] = None,
    n_dest_groups: int = 2,
    outstanding: int = 32,
    seed: int = 1,
    warmup_ms: float = 300.0,
    measure_ms: float = 400.0,
    batching_ms: float = 0.0,
    repeats: int = 3,
    point: Optional[str] = None,
    profile: bool = False,
    compaction_interval_ms: float = DEFAULT_COMPACTION_INTERVAL_MS,
) -> PerfPoint:
    """Run one load point ``repeats`` times and report best-of wall time.

    With ``profile=True`` the last repeat runs under cProfile and the top
    functions (by internal time) are printed — note cProfile inflates
    wall time roughly 2-3x, so profiled runs are excluded from timing.

    ``compaction_interval_ms=0`` disables the state-GC daemon, making
    the event schedule exactly the seed revision's (the daemon only adds
    its own timer events) — the seed-baseline comparison passes 0 so
    ``events == SEED_BASELINE['events']`` stays exact.
    """
    if scenario is None:
        scenario = wan_colocated_leaders()
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    kwargs: Dict[str, Any] = dict(
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
        seed=seed,
        keep_samples=False,
        batching_ms=batching_ms,
        compaction_interval_ms=compaction_interval_ms,
    )
    walls = []
    result: Optional[RunResult] = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = run_load_point(protocol, scenario, n_dest_groups, outstanding, **kwargs)
        walls.append(time.perf_counter() - t0)
    assert result is not None
    if profile:
        profiler = cProfile.Profile()
        profiler.enable()
        run_load_point(protocol, scenario, n_dest_groups, outstanding, **kwargs)
        profiler.disable()
        out = io.StringIO()
        pstats.Stats(profiler, stream=out).sort_stats("tottime").print_stats(20)
        print(out.getvalue())
    best = min(walls)
    name = point or (
        f"{scenario.name}-{protocol}-d{n_dest_groups}-o{outstanding}"
        + (f"-b{batching_ms:g}" if batching_ms else "")
    )
    data = result.to_dict()
    return PerfPoint(
        point=name,
        protocol=protocol,
        scenario=scenario.name,
        n_dest_groups=n_dest_groups,
        outstanding=outstanding,
        batching_ms=batching_ms,
        wall_s=best,
        walls_s=[round(w, 4) for w in walls],
        events=data["events"],
        events_per_sec=data["events"] / best if best > 0 else 0.0,
        throughput=data["throughput"],
        wire_messages=sum(data["message_counts"].values()),
        message_counts=data["message_counts"],
        backend=data["backend"],
    )


def speedup_vs_seed(perf: PerfPoint) -> float:
    """Wall-clock speedup of ``perf`` relative to :data:`SEED_BASELINE`
    (only meaningful for the standard smoke point)."""
    return SEED_BASELINE["wall_s"] / perf.wall_s


def batching_delta(
    protocol: str = "primcast",
    scenario: Optional[Scenario] = None,
    n_dest_groups: int = 2,
    outstanding: int = 8,
    batching_ms: float = 2.0,
    seed: int = 1,
    warmup_ms: float = 300.0,
    measure_ms: float = 400.0,
) -> Dict[str, Any]:
    """Wire-message comparison of one load point with batching off vs on.

    Returns a dict with both :class:`PerfPoint` measurements and the
    relative wire-message reduction — the simulated counterpart of the
    §7.1 TCP message-merging experiment.
    """
    if scenario is None:
        scenario = wan_colocated_leaders()
    common = dict(
        protocol=protocol,
        scenario=scenario,
        n_dest_groups=n_dest_groups,
        outstanding=outstanding,
        seed=seed,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
        repeats=1,
    )
    off = measure_load_point(batching_ms=0.0, **common)
    on = measure_load_point(batching_ms=batching_ms, **common)
    reduction = 1.0 - on.wire_messages / off.wire_messages if off.wire_messages else 0.0
    return {
        "off": asdict(off),
        "on": asdict(on),
        "batching_ms": batching_ms,
        "wire_reduction": reduction,
    }


def measure_sweep_scaling(
    jobs: int = 0,
    protocols: tuple = ("whitebox", "fastcast", "primcast", "primcast-hc"),
    scenario: Optional[Scenario] = None,
    n_dest_groups: int = 2,
    loads: tuple = (1, 4, 16, 64),
    seed: int = 1,
    warmup_ms: float = 600.0,
    measure_ms: float = 1000.0,
    cache_dir: Optional[Path] = None,
) -> Dict[str, Any]:
    """Fig-3-shaped sweep: serial vs parallel vs warm-cache wall clock.

    The defaults reproduce ``figure3(full=False)`` at 2 destination
    groups (16 points). Three passes through the same
    :class:`SweepExecutor` machinery:

    1. **serial + cold cache** (``jobs=1``): the historical one-core
       path, which also populates a fresh content-addressed cache;
    2. **parallel** (``jobs`` workers, cache off): pure fan-out timing;
    3. **warm cache** (``jobs=1``): every point must come back as a hit
       — ``warm_hits == points`` certifies zero simulation ran.

    Both the parallel and the warm pass are checked field-for-field
    against the serial results (``identical``/``warm_identical``) — the
    executor contract is bit-identical output, not "close enough".
    """
    import shutil
    import tempfile

    if scenario is None:
        scenario = wan_colocated_leaders()
    if jobs < 1:
        jobs = os.cpu_count() or 2
    specs = expand_sweep(
        protocols,
        scenario,
        n_dest_groups,
        loads,
        seed=seed,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
    )
    own_tmp = cache_dir is None
    cache_root = Path(tempfile.mkdtemp(prefix="repro-cache-")) if own_tmp else Path(cache_dir)
    try:
        cache = ResultCache(cache_root)
        with SweepExecutor(jobs=1, cache=cache) as serial:
            t0 = time.perf_counter()
            serial_results = serial.run(specs)
            serial_s = time.perf_counter() - t0

        with SweepExecutor(jobs=jobs) as parallel:
            t0 = time.perf_counter()
            parallel_results = parallel.run(specs)
            parallel_s = time.perf_counter() - t0
            pool_stats = parallel.pool_stats()

        with SweepExecutor(jobs=1, cache=ResultCache(cache_root)) as warm:
            t0 = time.perf_counter()
            warm_results = warm.run(specs)
            warm_s = time.perf_counter() - t0
            warm_stats = dict(warm.last_stats)
    finally:
        if own_tmp:
            shutil.rmtree(cache_root, ignore_errors=True)

    return {
        "point": f"{scenario.name}-d{n_dest_groups}-sweep{len(specs)}",
        "points": len(specs),
        "loads": list(loads),
        "protocols": list(protocols),
        "warmup_ms": warmup_ms,
        "measure_ms": measure_ms,
        "jobs": jobs,
        # Without the machine context the speedup number is meaningless:
        # a 1.0x "speedup" on a 1-core container is expected, not a bug.
        "cpu_count": os.cpu_count(),
        "pool": pool_stats,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "parallel_speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else 0.0,
        "warm_cache_s": round(warm_s, 4),
        "cache_speedup": round(serial_s / warm_s, 1) if warm_s > 0 else 0.0,
        "warm_hits": warm_stats["hits"],
        "warm_ran": warm_stats["ran"],
        "identical": parallel_results == serial_results,
        "warm_identical": warm_results == serial_results,
        "total_events": sum(r.events for r in serial_results),
    }


# ----------------------------------------------------------------------
# campaign pool: amortized fan-out, checkpoint/resume, fleet scale
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _ProbeSpec:
    """A do-nothing ``WorkSpec``: its run() is free, so timing a batch of
    probes through a pool measures pure orchestration overhead (worker
    spawn + import + queue dispatch), not simulation."""

    index: int

    def canonical(self) -> Dict[str, Any]:
        return {"probe": self.index}

    def run(self) -> int:
        return self.index


def measure_campaign_pool(
    jobs: int = 2,
    batches: int = 20,
    cases_per_batch: int = 10,
) -> Dict[str, Any]:
    """Non-simulation overhead: fresh pool per sweep vs one persistent pool.

    A campaign is ``batches`` sweeps of ``cases_per_batch`` cases each
    (default 20×10 = 200 cases — the acceptance floor). Every case is a
    :class:`_ProbeSpec` whose ``run()`` is free, so wall-clock is pure
    orchestration cost:

    * **fresh** — the pre-PR-8 path: a new ``multiprocessing.Pool`` per
      batch (spawn + import paid ``batches`` times);
    * **persistent** — one :class:`WorkerPool` serving every batch
      (spawn + import paid once, then queue dispatch only).

    ``overhead_reduction = fresh_s / persistent_s`` is the headline; the
    acceptance bar is >= 3x at the same job count.
    """
    specs_by_batch: List[List[_ProbeSpec]] = [
        [_ProbeSpec(b * cases_per_batch + i) for i in range(cases_per_batch)]
        for b in range(batches)
    ]
    total_cases = batches * cases_per_batch
    ctx = multiprocessing.get_context(default_mp_context())

    t0 = time.perf_counter()
    for batch in specs_by_batch:
        with ctx.Pool(processes=jobs) as fresh_pool:
            fresh_pool.map(run_spec, batch, chunksize=1)
    fresh_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    with WorkerPool(jobs=jobs) as pool:
        for batch in specs_by_batch:
            pool.run(batch)
        pool_stats = pool.stats()
    persistent_s = time.perf_counter() - t0

    return {
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "mp_context": default_mp_context(),
        "batches": batches,
        "cases_per_batch": cases_per_batch,
        "cases": total_cases,
        "fresh_pool_s": round(fresh_s, 4),
        "persistent_pool_s": round(persistent_s, 4),
        "fresh_per_case_ms": round(fresh_s / total_cases * 1000.0, 3),
        "persistent_per_case_ms": round(persistent_s / total_cases * 1000.0, 3),
        "overhead_reduction": (
            round(fresh_s / persistent_s, 2) if persistent_s > 0 else 0.0
        ),
        "pool": pool_stats,
    }


def measure_chaos_campaign(
    scenario: str = "lan-small",
    seeds: int = 1000,
    jobs: int = 2,
) -> Dict[str, Any]:
    """Thousand-seed chaos campaign through the persistent pool.

    One cold pass (every case simulated, streamed into a fresh
    content-addressed cache as it completes) and one resume pass over
    the same cache, which must re-execute **zero** cases and reproduce
    the byte-identical report — the checkpoint/resume acceptance check
    at campaign scale.
    """
    import shutil
    import tempfile

    from ..chaos.explorer import run_campaign

    seed_list = list(range(seeds))
    cache_root = Path(tempfile.mkdtemp(prefix="repro-campaign-"))
    try:
        with SweepExecutor(jobs=jobs, cache=ResultCache(cache_root)) as cold:
            t0 = time.perf_counter()
            report = run_campaign(scenario, seed_list, executor=cold)
            cold_s = time.perf_counter() - t0
            cold_stats = dict(cold.total_stats)
            pool_stats = cold.pool_stats()

        with SweepExecutor(jobs=jobs, cache=ResultCache(cache_root)) as resume:
            t0 = time.perf_counter()
            resumed = run_campaign(scenario, seed_list, executor=resume)
            resume_s = time.perf_counter() - t0
            resume_stats = dict(resume.total_stats)
    finally:
        shutil.rmtree(cache_root, ignore_errors=True)

    summary = report.to_dict()["summary"]
    return {
        "scenario": scenario,
        "seeds": seeds,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "cold_s": round(cold_s, 4),
        "cold_cases_per_sec": round(seeds / cold_s, 1) if cold_s > 0 else 0.0,
        "cold_simulated": cold_stats["ran"],
        "resume_s": round(resume_s, 4),
        "resume_simulated": resume_stats["ran"],
        "resume_hits": resume_stats["hits"],
        "resume_identical": resumed.to_json() == report.to_json(),
        "violations": summary["violations"],
        "events": summary["events"],
        "pool": pool_stats,
    }


def measure_fleet_scale(jobs: int = 2) -> Dict[str, Any]:
    """Paper-scale-and-beyond points through one shared pool.

    Two deployments the pre-PR-8 harness never exercised:

    * the full Figure-3 destination fan-out — 8 groups × 3 replicas
      (24 processes) at d=8, every message crossing every group;
    * the 20-group LAN fleet (60 processes), the scale-out target.

    Both run serially and through a ``jobs``-worker pool; the rows must
    be field-for-field identical (the determinism contract at scale).
    """
    fig3_specs = expand_sweep(
        ("primcast",),
        wan_colocated_leaders(8, 3),
        8,
        (8,),
        warmup_ms=50.0,
        measure_ms=100.0,
    )
    fleet_specs = expand_sweep(
        ("primcast",),
        lan_fleet(20, 3),
        2,
        (1, 2),
        warmup_ms=2.0,
        measure_ms=5.0,
    )
    specs = fig3_specs + fleet_specs

    with SweepExecutor(jobs=1) as serial:
        t0 = time.perf_counter()
        serial_results = serial.run(specs)
        serial_s = time.perf_counter() - t0

    with SweepExecutor(jobs=jobs) as pooled:
        t0 = time.perf_counter()
        pooled_results = pooled.run(specs)
        pooled_s = time.perf_counter() - t0
        pool_stats = pooled.pool_stats()

    return {
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "points": [
            {
                "point": f"{s.scenario}-d{s.n_dest_groups}-o{s.outstanding}",
                "n_groups": s.n_groups,
                "processes": s.n_groups * s.group_size,
                "events": r.events,
            }
            for s, r in zip(specs, serial_results)
        ],
        "max_processes": max(s.n_groups * s.group_size for s in specs),
        "serial_s": round(serial_s, 4),
        "pooled_s": round(pooled_s, 4),
        "identical": pooled_results == serial_results,
        "total_events": sum(r.events for r in serial_results),
        "pool": pool_stats,
    }


def _steady_state_run(
    compaction_interval_ms: float,
    scenario: Scenario,
    n_dest_groups: int,
    outstanding: int,
    seed: int,
    warmup_ms: float,
    measure_ms: float,
    n_segments: int,
) -> Dict[str, Any]:
    """One instrumented sustained run: tracemalloc peak past warmup plus
    per-segment events/sec (streaming stats keep the harness side O(1))."""
    system = build_system(
        "primcast",
        scenario,
        seed=seed,
        compaction_interval_ms=compaction_interval_ms,
    )
    clients = make_clients(
        system.replicas,
        n_dest_groups,
        system.config.n_groups,
        outstanding,
        child_rng(seed, "workload"),
        sample_limit=STREAM_SAMPLE_KEEP,
        measure_from_ms=warmup_ms,
    )
    for proc in system.replicas:
        proc.delivery_log = deque(maxlen=STREAM_LOG_KEEP)
    for client in clients:
        client.start()
    scheduler = system.scheduler
    tracemalloc.start()
    try:
        scheduler.run(until=warmup_ms)
        # Warmup allocations (imports, system build, ramp-up) are shared
        # noise; the steady-state claim is about growth *past* warmup.
        tracemalloc.reset_peak()
        segment_ms = measure_ms / n_segments
        segments = []
        prev_events = scheduler.events_processed
        t0 = time.perf_counter()
        for i in range(1, n_segments + 1):
            s0 = time.perf_counter()
            scheduler.run(until=warmup_ms + i * segment_ms)
            wall = time.perf_counter() - s0
            events = scheduler.events_processed - prev_events
            prev_events = scheduler.events_processed
            segments.append(
                {
                    "events": events,
                    "wall_s": round(wall, 4),
                    "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
                }
            )
        total_wall = time.perf_counter() - t0
        current_bytes, peak_bytes = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    for client in clients:
        client.stop()
    delivered = sum(client.stat_count for client in clients)
    events = sum(s["events"] for s in segments)
    daemon = system.compaction
    first, last = segments[0]["events_per_sec"], segments[-1]["events_per_sec"]
    return {
        "compaction_interval_ms": compaction_interval_ms,
        "peak_bytes": peak_bytes,
        "current_bytes": current_bytes,
        "delivered": delivered,
        "throughput": delivered / (measure_ms / 1000.0),
        "events": events,
        "wall_s": round(total_wall, 4),
        "events_per_sec": round(events / total_wall, 1) if total_wall > 0 else 0.0,
        "segments": segments,
        #: last-segment events/sec over first-segment — a run whose state
        #: keeps growing shows a sub-1 drift as dict/set ops slow down
        "events_per_sec_drift": round(last / first, 4) if first > 0 else 0.0,
        "compaction_runs": daemon.runs if daemon is not None else 0,
        "compaction_freed": daemon.freed if daemon is not None else 0,
    }


def measure_steady_state(
    scenario: Optional[Scenario] = None,
    n_dest_groups: int = 2,
    outstanding: int = 4,
    seed: int = 1,
    warmup_ms: float = 500.0,
    measure_ms: float = 6500.0,
    n_segments: int = 8,
    compaction_interval_ms: float = DEFAULT_COMPACTION_INTERVAL_MS,
) -> Dict[str, Any]:
    """Bounded-memory steady-state bench: state GC on vs off.

    Runs the same sustained load point (defaults: the ``lan_sustained``
    scenario for ~10x a fig-3 smoke point's simulated time) twice — once
    with the compaction daemon at its default interval, once disabled —
    and reports peak tracemalloc bytes past warmup, exact delivered
    throughput, and per-segment events/sec for both. The headline
    numbers:

    * ``peak_ratio`` — GC-on peak over GC-off peak. The tentpole
      acceptance bar is < 0.5: with truncation the per-process protocol
      state is O(in-flight), without it O(messages ever sent).
    * ``throughput_ratio`` — GC-on over GC-off delivered msg/s; must not
      degrade (the sweep only discards state the protocol cannot read).

    Both runs use streaming stats, so the measurement harness itself
    stays O(1) and the peaks reflect protocol state, not sample lists.
    """
    if scenario is None:
        scenario = lan_sustained()
    common = dict(
        scenario=scenario,
        n_dest_groups=n_dest_groups,
        outstanding=outstanding,
        seed=seed,
        warmup_ms=warmup_ms,
        measure_ms=measure_ms,
        n_segments=n_segments,
    )
    gc_on = _steady_state_run(compaction_interval_ms, **common)
    gc_off = _steady_state_run(0.0, **common)
    peak_ratio = (
        gc_on["peak_bytes"] / gc_off["peak_bytes"] if gc_off["peak_bytes"] else 0.0
    )
    throughput_ratio = (
        gc_on["throughput"] / gc_off["throughput"] if gc_off["throughput"] else 0.0
    )
    return {
        "point": f"{scenario.name}-primcast-d{n_dest_groups}-o{outstanding}",
        "scenario": scenario.name,
        "n_groups": scenario.n_groups,
        "group_size": scenario.group_size,
        "warmup_ms": warmup_ms,
        "measure_ms": measure_ms,
        "gc_on": gc_on,
        "gc_off": gc_off,
        "peak_ratio": round(peak_ratio, 4),
        "throughput_ratio": round(throughput_ratio, 4),
    }


# ----------------------------------------------------------------------
# net backend: wire-path throughput (real sockets, in-process cluster)
# ----------------------------------------------------------------------


def _percentile(values: List[float], q: float) -> float:
    """Nearest-rank percentile of an unsorted sample (0 when empty)."""
    if not values:
        return 0.0
    vals = sorted(values)
    idx = min(len(vals) - 1, max(0, int(round(q * (len(vals) - 1)))))
    return vals[idx]


def _run_net_point(spec: Any, label: str) -> Dict[str, Any]:
    """One in-process cluster run, aggregated into a bench row.

    The throughput span is the largest *per-node* first-submit to
    last-delivery window: each node's clock is its own monotonic epoch
    (NetScheduler counts ms since runtime start), so cross-node
    min/max subtraction would mix epochs. Per-node spans stay on one
    clock and the max is the conservative (lowest-throughput) choice.
    Every point — sequential or open — also runs the statistical
    safety checks over the on-disk logs; a bench row with violations
    is a broken measurement, not a slow one.
    """
    import asyncio
    import shutil
    import tempfile

    from ..net.cluster import make_topology, run_cluster_inprocess
    from ..net.differential import verify_cluster_logs

    rundir = Path(tempfile.mkdtemp(prefix="repro-netbench-"))
    try:
        t0 = time.perf_counter()
        result = asyncio.run(run_cluster_inprocess(make_topology(spec), rundir))
        wall_s = time.perf_counter() - t0
        violations = len(verify_cluster_logs(result))
    finally:
        shutil.rmtree(rundir, ignore_errors=True)

    summaries = [o.summary for o in result.outcomes.values() if o.summary]
    submitted = sum(s.get("submitted", 0) for s in summaries)
    span_ms = 0.0
    for s in summaries:
        first, last = s.get("first_submit_ms"), s.get("last_deliver_ms")
        if first is not None and last is not None:
            span_ms = max(span_ms, last - first)
    latencies: List[float] = []
    for s in summaries:
        latencies.extend(s.get("latencies_ms", []))
    frames = sum(s["transport"].get("frames_sent", 0) for s in summaries)
    byts = sum(s["transport"].get("bytes_sent", 0) for s in summaries)
    writes = sum(s["transport"].get("writes", 0) for s in summaries)
    return {
        "label": label,
        "driver_mode": spec.driver_mode,
        "codec": spec.codec,
        "coalesce": spec.coalesce,
        "batching_ms": spec.batching_ms,
        "clients": spec.clients if spec.driver_mode == "open" else 1,
        "window": spec.window if spec.driver_mode == "open" else 1,
        "ok": result.ok,
        "violations": violations,
        "submitted": submitted,
        "span_ms": round(span_ms, 1),
        "msgs_per_sec": (
            round(submitted / (span_ms / 1000.0), 1) if span_ms > 0 else 0.0
        ),
        "p50_ms": round(_percentile(latencies, 0.50), 3),
        "p99_ms": round(_percentile(latencies, 0.99), 3),
        "frames_sent": frames,
        "bytes_sent": byts,
        "writes": writes,
        "bytes_per_frame": round(byts / frames, 1) if frames else 0.0,
        "coalesce_ratio": round(frames / writes, 2) if writes else 0.0,
        "wall_s": round(wall_s, 3),
    }


def measure_net_throughput(
    n_groups: int = 2,
    group_size: int = 3,
    n_messages: int = 64,
    seed: int = 1,
    client_counts: tuple = (2, 4, 8),
    window: int = 8,
    batching_ms: float = 5.0,
    repeats: int = 2,
    run_timeout_s: float = 60.0,
) -> Dict[str, Any]:
    """Wire-path throughput: PR-9 sequential/JSON config vs the overhaul.

    All points run the same topology as in-process clusters over real
    localhost sockets:

    * **baseline** — the sequential driver (one outstanding message,
      gated on its own delivery), canonical-JSON codec, one socket
      write per frame, no batching: exactly the PR-9 wire path;
    * **open-binary-cK** — the overhaul at each client count in
      ``client_counts``: open-loop driver, binary codec, write
      coalescing, and the §7.1 ack/bump batching layer at
      ``batching_ms`` (closed loop: every window full from the start,
      the saturation point);
    * **open-json** — the largest client count with the JSON codec and
      everything else identical, so the bytes/frame comparison is
      measured at identical load.

    Each point runs ``repeats`` times keeping the best msgs/sec row —
    real sockets on a shared machine are noisy, and best-of mirrors the
    wall-clock convention of the sim benches. Headline numbers:
    ``speedup_vs_seq`` (best open-binary msgs/sec over the baseline;
    acceptance bar >= 3x) and ``codec_bytes_ratio`` (JSON bytes/frame
    over binary bytes/frame at the same load; acceptance bar >= 1.5x).
    """
    from ..net.cluster import ClusterSpec

    def best_of(spec: Any, label: str) -> Dict[str, Any]:
        rows = [_run_net_point(spec, label) for _ in range(max(1, repeats))]
        return max(rows, key=lambda r: r["msgs_per_sec"])

    common = dict(
        n_groups=n_groups,
        group_size=group_size,
        n_messages=n_messages,
        seed=seed,
        run_timeout_s=run_timeout_s,
    )
    points = [
        best_of(
            ClusterSpec(codec="json", coalesce=False, **common),
            "seq-json-nocoalesce",
        )
    ]
    for clients in client_counts:
        points.append(
            best_of(
                ClusterSpec(
                    driver_mode="open",
                    clients=clients,
                    window=window,
                    codec="binary",
                    coalesce=True,
                    batching_ms=batching_ms,
                    **common,
                ),
                f"open-binary-c{clients}",
            )
        )
    top = max(client_counts)
    points.append(
        best_of(
            ClusterSpec(
                driver_mode="open",
                clients=top,
                window=window,
                codec="json",
                coalesce=True,
                batching_ms=batching_ms,
                **common,
            ),
            f"open-json-c{top}",
        )
    )

    baseline = points[0]
    open_binary = [p for p in points if p["codec"] == "binary"]
    open_json = points[-1]
    best = max(open_binary, key=lambda p: p["msgs_per_sec"])
    speedup = (
        best["msgs_per_sec"] / baseline["msgs_per_sec"]
        if baseline["msgs_per_sec"]
        else 0.0
    )
    bytes_ratio = (
        open_json["bytes_per_frame"] / best["bytes_per_frame"]
        if best["bytes_per_frame"]
        else 0.0
    )
    return {
        "point": f"net-g{n_groups}x{group_size}-m{n_messages}-w{window}",
        "n_groups": n_groups,
        "group_size": group_size,
        "n_messages": n_messages,
        "window": window,
        "batching_ms": batching_ms,
        "repeats": repeats,
        "client_counts": list(client_counts),
        "cpu_count": os.cpu_count(),
        "points": points,
        "all_ok": all(p["ok"] and p["violations"] == 0 for p in points),
        "baseline_msgs_per_sec": baseline["msgs_per_sec"],
        "best_open_msgs_per_sec": best["msgs_per_sec"],
        "best_open_label": best["label"],
        "speedup_vs_seq": round(speedup, 2),
        "bytes_per_frame_json": open_json["bytes_per_frame"],
        "bytes_per_frame_binary": best["bytes_per_frame"],
        "codec_bytes_ratio": round(bytes_ratio, 2),
    }


def net_history_row(net: Dict[str, Any], note: str = "") -> Dict[str, Any]:
    """History-log row for one :func:`measure_net_throughput` result.

    Tagged ``backend: "net"`` so the trajectory dashboard renders these
    rows as their own section — wire-path msgs/sec is not comparable to
    the simulator's events/sec column.
    """
    from datetime import datetime, timezone

    best = max(
        (p for p in net["points"] if p["codec"] == "binary"),
        key=lambda p: p["msgs_per_sec"],
    )
    return {
        "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "point": net["point"],
        "backend": "net",
        "msgs_per_sec": best["msgs_per_sec"],
        "p50_ms": best["p50_ms"],
        "p99_ms": best["p99_ms"],
        "speedup_vs_seq": net["speedup_vs_seq"],
        "codec_bytes_ratio": net["codec_bytes_ratio"],
        "note": note,
    }


def update_bench(key: str, payload: Any, path: Optional[Path] = None) -> Path:
    """Merge ``payload`` under ``key`` into ``BENCH_perf.json``.

    Existing keys other than ``key`` are preserved, so the substrate and
    batching benches can update their sections independently.
    """
    target = Path(path) if path is not None else BENCH_PATH
    record: Dict[str, Any] = {}
    if target.exists():
        try:
            record = json.loads(target.read_text())
        except (ValueError, OSError):
            record = {}
    record[key] = payload
    record["seed_baseline"] = SEED_BASELINE
    target.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return target


# ----------------------------------------------------------------------
# perf history: timestamped measurements across revisions
# ----------------------------------------------------------------------

#: Append-only measurement log at the repository root, one JSON object
#: per line. BENCH_perf.json holds the *current* numbers per section;
#: the history holds every ``--append-history`` run ever taken, so the
#: trajectory table in EXPERIMENTS.md regenerates from raw data.
BENCH_HISTORY_PATH = Path(__file__).resolve().parents[3] / "BENCH_history.jsonl"

EXPERIMENTS_PATH = Path(__file__).resolve().parents[3] / "EXPERIMENTS.md"

#: Markers delimiting the auto-generated history table in EXPERIMENTS.md.
HISTORY_BEGIN = "<!-- BENCH_HISTORY:BEGIN (generated by repro.harness.perf --append-history; do not edit by hand) -->"
HISTORY_END = "<!-- BENCH_HISTORY:END -->"


def measure_history_row(repeats: int = 3, note: str = "") -> Dict[str, Any]:
    """Measure the standard smoke point for the history log.

    Compaction is off so the event count pins the seed schedule
    (660,110 events) and wall times stay comparable across every row.
    """
    from .._backend import backend_info

    from datetime import datetime, timezone

    perf = measure_load_point(repeats=repeats, compaction_interval_ms=0.0)
    return {
        "timestamp": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "point": perf.point,
        "wall_s": round(perf.wall_s, 4),
        "walls_s": perf.walls_s,
        "events": perf.events,
        "events_per_sec": round(perf.events_per_sec, 1),
        "speedup_vs_seed": round(speedup_vs_seed(perf), 4),
        "backend": backend_info()["backend"],
        "note": note,
    }


def append_history(row: Dict[str, Any], path: Optional[Path] = None) -> Path:
    """Append one measurement row to ``BENCH_history.jsonl``."""
    target = Path(path) if path is not None else BENCH_HISTORY_PATH
    with target.open("a") as fh:
        fh.write(json.dumps(row, sort_keys=True) + "\n")
    return target


def read_history(path: Optional[Path] = None) -> list:
    """All history rows, oldest first (empty when no log exists)."""
    target = Path(path) if path is not None else BENCH_HISTORY_PATH
    if not target.exists():
        return []
    rows = []
    for line in target.read_text().splitlines():
        line = line.strip()
        if line:
            rows.append(json.loads(line))
    return rows


def history_table(rows: list) -> str:
    """Markdown trajectory table over the history rows (the dashboard
    renderer lives in :func:`repro.harness.report.history_markdown`)."""
    from .report import history_markdown

    return history_markdown(rows)


def update_experiments_history(
    rows: list, path: Optional[Path] = None
) -> Path:
    """Rewrite the marker-delimited history table in EXPERIMENTS.md.

    The table lives between :data:`HISTORY_BEGIN` and
    :data:`HISTORY_END`; everything outside the markers is untouched.
    Raises when the markers are missing — the surrounding prose is
    hand-written and this function must never guess where to put the
    table.
    """
    target = Path(path) if path is not None else EXPERIMENTS_PATH
    text = target.read_text()
    begin = text.index(HISTORY_BEGIN)
    end = text.index(HISTORY_END)
    if end < begin:
        raise ValueError("BENCH_HISTORY markers are out of order")
    new = (
        text[: begin + len(HISTORY_BEGIN)]
        + "\n"
        + history_table(rows)
        + "\n"
        + text[end:]
    )
    target.write_text(new)
    return target


def main(argv: Optional[list] = None) -> int:
    """CLI: measure the smoke point; optionally log it to the history.

    ``python -m repro.harness.perf`` prints one measurement.
    ``--append-history`` additionally appends a timestamped row to
    ``BENCH_history.jsonl`` and regenerates the trajectory table in
    EXPERIMENTS.md from the full log.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.perf",
        description="wall-clock perf of the simulation substrate on the "
        "standard smoke point (see BENCH_perf.json / EXPERIMENTS.md)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of-N repeats (default 3)"
    )
    parser.add_argument(
        "--note", default="", help="free-text label recorded with the row"
    )
    parser.add_argument(
        "--append-history",
        action="store_true",
        help="append the row to BENCH_history.jsonl and regenerate the "
        "EXPERIMENTS.md trajectory table",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the row as JSON"
    )
    parser.add_argument(
        "--net",
        action="store_true",
        help="measure the net backend's wire-path throughput instead "
        "(open-loop driver + binary codec + coalescing vs the "
        "sequential/JSON baseline) and record it under the "
        "net_throughput key of BENCH_perf.json",
    )
    parser.add_argument(
        "--net-messages",
        type=int,
        default=64,
        help="messages per net-throughput point (default 64)",
    )
    args = parser.parse_args(argv)

    if args.net:
        net = measure_net_throughput(n_messages=args.net_messages)
        update_bench("net_throughput", net)
        if args.json:
            print(json.dumps(net, indent=2, sort_keys=True))
        else:
            for p in net["points"]:
                print(
                    f"{p['label']}: {p['msgs_per_sec']:,.0f} msg/s "
                    f"p50={p['p50_ms']:.1f}ms p99={p['p99_ms']:.1f}ms "
                    f"{p['bytes_per_frame']:.0f} B/frame "
                    f"coalesce={p['coalesce_ratio']:.2f} "
                    f"violations={p['violations']}"
                )
            print(
                f"{net['point']}: {net['speedup_vs_seq']:.2f}x vs sequential, "
                f"binary {net['codec_bytes_ratio']:.2f}x smaller frames "
                f"({'OK' if net['all_ok'] else 'FAILED'})"
            )
        if args.append_history:
            path = append_history(net_history_row(net, note=args.note))
            update_experiments_history(read_history())
            print(f"appended to {path.name}; EXPERIMENTS.md table regenerated")
        return 0 if net["all_ok"] else 1

    row = measure_history_row(repeats=args.repeats, note=args.note)
    if args.json:
        print(json.dumps(row, indent=2, sort_keys=True))
    else:
        print(
            f"{row['point']}: {row['wall_s']:.3f}s best-of-{args.repeats} "
            f"({row['events']} events, {row['events_per_sec']:,.0f} ev/s, "
            f"{row['speedup_vs_seed']:.2f}x vs seed, {row['backend']})"
        )
    if args.append_history:
        path = append_history(row)
        update_experiments_history(read_history())
        print(f"appended to {path.name}; EXPERIMENTS.md table regenerated")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    import sys

    sys.exit(main())
