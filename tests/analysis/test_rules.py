"""Per-rule fixtures: one known-good and one known-bad snippet per rule.

Every rule must *fire* on its bad fixture (proving the pass can catch
the hazard) and stay silent on the good fixture (proving it will not
drown real findings in noise). Snippets are analysed under fake module
names inside the determinism scope.
"""

import ast
import textwrap

import pytest

from repro.analysis import DEFAULT_CONFIG, RULES, AnalysisConfig, ModuleInfo
from repro.analysis.engine import analyze_module


def run_rule(rule_id, source, module="repro.core.fixture", config=DEFAULT_CONFIG):
    src = textwrap.dedent(source)
    mod = ModuleInfo(
        path=f"<{module}>", module=module, tree=ast.parse(src), source=src
    )
    return analyze_module(mod, config, [RULES[rule_id]])


def rules_fired(findings):
    return sorted({f.rule for f in findings})


# ----------------------------------------------------------------------
# DET001 — ambient nondeterminism
# ----------------------------------------------------------------------

DET001_BAD = """
    import random
    import time
    import uuid

    def jitter():
        return random.random() + time.time()

    def stamp():
        return uuid.uuid4()
"""

DET001_GOOD = """
    import random

    from repro.sim.rng import child_rng

    def jitter(rng: random.Random) -> float:
        return rng.uniform(0.0, 1.0)

    def make(seed: int) -> random.Random:
        return random.Random(seed)
"""


def test_det001_fires_on_ambient_randomness_and_wall_clock():
    findings = run_rule("DET001", DET001_BAD)
    assert rules_fired(findings) == ["DET001"]
    messages = " ".join(f.message for f in findings)
    assert "random.random()" in messages
    assert "time.time()" in messages
    assert "uuid" in messages


def test_det001_allows_seeded_child_rngs():
    assert run_rule("DET001", DET001_GOOD) == []


def test_det001_out_of_scope_module_is_ignored():
    # The perf harness measures wall time by design; it is outside the
    # determinism scope.
    assert run_rule("DET001", DET001_BAD, module="repro.harness.perf") == []


# ----------------------------------------------------------------------
# DET002 — unsorted set iteration on emission paths
# ----------------------------------------------------------------------

DET002_BAD = """
    class Proc:
        def __init__(self):
            self.peers = set()

        def broadcast(self, msg, table):
            for pid in self.peers:           # set iteration, emits
                self.send(pid, msg)
            for key in table.keys():         # dict.keys() view, emits
                self.send(key, msg)
"""

DET002_GOOD = """
    class Proc:
        def __init__(self):
            self.peers = set()
            self.log = []

        def broadcast(self, msg):
            for pid in sorted(self.peers):   # explicit ordering fence
                self.send(pid, msg)

        def audit(self):
            total = 0
            for pid in self.peers:           # no emission in this scope
                total += pid
            self.log.append(total)
"""


def test_det002_fires_on_unsorted_set_iteration_where_emitting():
    findings = run_rule("DET002", DET002_BAD)
    assert len(findings) == 2
    assert rules_fired(findings) == ["DET002"]


def test_det002_allows_sorted_and_non_emission_scopes():
    assert run_rule("DET002", DET002_GOOD) == []


def test_det002_known_set_attrs_cover_cross_module_frozensets():
    # ``dest`` is set-typed by config even with no local inference.
    source = """
        def fan_out(self, multicast):
            for gid in multicast.dest:
                self.r_multicast(multicast, gid)
    """
    findings = run_rule("DET002", source)
    assert len(findings) == 1
    assert ".dest" in findings[0].message


def test_det002_sorted_provenance_through_locals_is_clean():
    """Flow sensitivity, good direction: a local proven sorted no
    longer needs an allowlist entry (or a sorted() at the loop)."""
    source = """
        class Proc:
            def broadcast(self, msg):
                order = sorted(self.pending)
                targets = list(order)
                for pid in targets:
                    self.send(pid, msg)
    """
    assert run_rule("DET002", source) == []


def test_det002_unsorted_provenance_through_locals_fires():
    """Flow sensitivity, bad direction: raw set contents flowing
    through a local are caught even though the local itself is never
    annotated as a set."""
    source = """
        class Proc:
            def broadcast(self, msg):
                targets = self.pending
                for pid in targets:
                    self.send(pid, msg)
    """
    findings = run_rule("DET002", source)
    assert len(findings) == 1
    assert "local 'targets'" in findings[0].message


def test_det002_ordered_on_one_path_only_degrades_at_the_merge():
    """Provenance is a dataflow fact: sorted on one branch but raw on
    the other must still fire at the merged loop."""
    source = """
        class Proc:
            def broadcast(self, msg, fast):
                if fast:
                    targets = self.pending
                else:
                    targets = sorted(self.pending)
                for pid in targets:
                    self.send(pid, msg)
    """
    findings = run_rule("DET002", source)
    assert len(findings) == 1


# ----------------------------------------------------------------------
# DET003 — ordering by id()/hash()
# ----------------------------------------------------------------------

DET003_BAD = """
    def order(pending):
        return sorted(pending, key=id)

    def pick(pending):
        return min(pending, key=lambda m: hash(m))
"""

DET003_GOOD = """
    def order(pending):
        return sorted(pending, key=lambda m: m.mid)
"""


def test_det003_fires_on_identity_ordering():
    findings = run_rule("DET003", DET003_BAD)
    assert len(findings) == 2
    assert rules_fired(findings) == ["DET003"]


def test_det003_allows_stable_protocol_keys():
    assert run_rule("DET003", DET003_GOOD) == []


# ----------------------------------------------------------------------
# DET004 — float == on simulated timestamps
# ----------------------------------------------------------------------

DET004_BAD = """
    def expired(self, deadline):
        return self.scheduler.now == deadline

    def same_arrival(arrival, other):
        return arrival != other
"""

DET004_GOOD = """
    def expired(self, deadline):
        return self.scheduler.now >= deadline
"""


def test_det004_fires_on_float_timestamp_equality():
    findings = run_rule("DET004", DET004_BAD)
    assert len(findings) == 2
    assert rules_fired(findings) == ["DET004"]


def test_det004_allows_ordered_comparisons():
    assert run_rule("DET004", DET004_GOOD) == []


# ----------------------------------------------------------------------
# PROTO101 — class-level kind on wire messages
# ----------------------------------------------------------------------

PROTO101_BAD = """
    class Probe:
        __slots__ = ("ts",)

        def __init__(self, ts):
            self.ts = ts

    class Computed:
        __slots__ = ()
        kind = "pr" + "obe"
"""

PROTO101_GOOD = """
    class Probe:
        __slots__ = ("ts",)
        kind = "probe"

        def __init__(self, ts):
            self.ts = ts

    class _Internal:
        __slots__ = ("x",)

    class NotSlotted:
        pass
"""


def test_proto101_fires_on_missing_or_computed_kind():
    findings = run_rule("PROTO101", PROTO101_BAD, module="repro.core.messages")
    assert len(findings) == 2
    assert rules_fired(findings) == ["PROTO101"]


def test_proto101_allows_declared_kind_and_skips_private():
    assert run_rule("PROTO101", PROTO101_GOOD, module="repro.core.messages") == []


def test_proto101_default_allowlist_exempts_multicast():
    source = """
        class Multicast:
            __slots__ = ("mid", "dest", "payload")
    """
    assert run_rule("PROTO101", source, module="repro.core.messages") == []
    # Without the allowlist the same snippet is a violation.
    bare = AnalysisConfig(allow={})
    assert len(run_rule("PROTO101", source, "repro.core.messages", bare)) == 1


# ----------------------------------------------------------------------
# PROTO102 — dispatch tables bind existing methods in __init__
# ----------------------------------------------------------------------

PROTO102_BAD = """
    class Proc:
        def __init__(self):
            self._r_dispatch = {
                Ack: self._on_ack,
                Start: self._on_strat,   # typo: no such method
            }

        def _on_ack(self, origin, ack):
            pass

        def rebind(self):
            self._r_dispatch = {Ack: self._on_ack}   # not __init__
"""

PROTO102_GOOD = """
    class Proc:
        def __init__(self):
            self._r_dispatch = {
                Ack: self._on_ack,
                Start: self._on_start,
            }

        def _on_ack(self, origin, ack):
            pass

        def _on_start(self, origin, start):
            pass
"""


def test_proto102_fires_on_missing_handler_and_late_binding():
    findings = run_rule("PROTO102", PROTO102_BAD)
    assert rules_fired(findings) == ["PROTO102"]
    messages = " ".join(f.message for f in findings)
    assert "_on_strat" in messages
    assert "__init__" in messages
    assert len(findings) == 2


def test_proto102_allows_complete_tables():
    assert run_rule("PROTO102", PROTO102_GOOD) == []


# ----------------------------------------------------------------------
# PROTO103 — protocol-state conformance map
# ----------------------------------------------------------------------

PROTO103_BAD = """
    class Meddler:
        def poke(self, ts):
            self.clock = ts
            self.e_cur = self.e_prom

        def bump(self):
            self.clock += 1
"""

PROTO103_GOOD = """
    class Proc:
        def __init__(self):
            self.clock = 0
            self.e_cur = None
            self.e_prom = None
"""


def test_proto103_fires_outside_conformance_map():
    findings = run_rule("PROTO103", PROTO103_BAD, module="repro.core.fixture")
    assert len(findings) == 3
    assert rules_fired(findings) == ["PROTO103"]


def test_proto103_allows_mutations_in_conformant_module():
    # repro.core.process is the module Algorithms 1–3 map onto.
    assert run_rule("PROTO103", PROTO103_GOOD, module="repro.core.process") == []


def test_proto103_exempts_wire_message_field_capture():
    """A wire-message class (class-level string ``kind`` in a wire
    module) capturing the sender's clock/E_cur as message fields is
    payload capture, not protocol mutation — proven by the rule itself,
    with no allowlist entry (the old EpochPromise entry is gone)."""
    source = """
        class EpochPromise:
            __slots__ = ("clock", "e_cur")
            kind = "epoch-promise"

            def __init__(self, clock, e_cur):
                self.clock = clock
                self.e_cur = e_cur
    """
    bare = AnalysisConfig(allow={})
    assert run_rule("PROTO103", source, "repro.core.messages", bare) == []
    assert "PROTO103" not in DEFAULT_CONFIG.allow


def test_proto103_wire_exemption_needs_kind_and_init():
    # No class-level kind -> not a wire message -> still a violation …
    kindless = """
        class EpochPromise:
            def __init__(self, clock, e_cur):
                self.clock = clock
                self.e_cur = e_cur
    """
    assert len(run_rule("PROTO103", kindless, module="repro.core.messages")) == 2
    # … and writes outside __init__ fire even on a real wire message.
    mutator = """
        class EpochPromise:
            kind = "epoch-promise"

            def __init__(self, clock):
                self.clock = clock

            def rewrite(self, clock):
                self.clock = clock
    """
    findings = run_rule("PROTO103", mutator, module="repro.core.messages")
    assert len(findings) == 1
    assert findings[0].context.endswith("EpochPromise.rewrite")


# ----------------------------------------------------------------------
# RACE201 — shared state mutated outside scheduler/handler context
# ----------------------------------------------------------------------

RACE201_BAD = """
    class Proc:
        def on_r_deliver(self, origin, payload):
            self._apply(payload)

        def _apply(self, payload):
            self.pending.add(payload.mid)

        def reset_epoch(self):
            self.e_cur = None
            self.pending.clear()
"""

RACE201_GOOD = """
    class Proc:
        def on_r_deliver(self, origin, payload):
            self.pending.add(payload.mid)

        def _drain(self):
            self.pending.clear()

        def stats(self):
            return len(self.pending)

    class DeliveryQueue:
        def add_pending(self, mid):
            self.pending.add(mid)
"""


def test_race201_fires_on_public_nonhandler_mutation():
    findings = run_rule("RACE201", RACE201_BAD)
    assert len(findings) == 1
    assert rules_fired(findings) == ["RACE201"]
    assert "reset_epoch" in findings[0].message
    assert "e_cur" in findings[0].message and "pending" in findings[0].message


def test_race201_allows_handlers_private_helpers_and_plain_containers():
    # Handlers and private helpers are scheduler context; DeliveryQueue
    # defines no handlers, so it is a helper container, not a process.
    assert run_rule("RACE201", RACE201_GOOD) == []


def test_race201_scheduler_context_api_is_reviewed_exempt():
    source = """
        class Proc:
            def on_message(self, src, msg):
                pass

            def a_multicast(self, dest, payload):
                self.clock += 1
    """
    assert run_rule("RACE201", source) == []


# ----------------------------------------------------------------------
# RACE202 — protocol variable mutated after a send on the same path
# ----------------------------------------------------------------------

RACE202_BAD = """
    class Proc:
        def on_timer(self):
            self.send(self.peer, Ack(self.clock))
            self.clock += 1
"""

RACE202_TRANSITIVE_BAD = """
    class Proc:
        def on_ack(self, origin, ack):
            self.r_multicast(Bump(self.clock), self.group)
            self._advance()

        def _advance(self):
            self.clock += 1
"""

RACE202_GOOD = """
    class Proc:
        def on_timer(self):
            self.clock += 1
            self.send(self.peer, Ack(self.clock))

        def on_branchy(self, flag):
            if flag:
                self.send(self.peer, Ack(self.clock))
            else:
                self.clock += 1
"""


def test_race202_fires_on_write_after_send():
    findings = run_rule("RACE202", RACE202_BAD)
    assert len(findings) == 1
    assert "'clock'" in findings[0].message


def test_race202_sees_transitive_writes_through_self_calls():
    findings = run_rule("RACE202", RACE202_TRANSITIVE_BAD)
    assert len(findings) == 1
    assert findings[0].context.endswith("Proc.on_ack")


def test_race202_allows_mutate_then_send_and_disjoint_paths():
    # Writing first is the contract; a send and a write on *different*
    # branches never share a path, so neither may fire.
    assert run_rule("RACE202", RACE202_GOOD) == []


# ----------------------------------------------------------------------
# RACE203 — stale epoch read across a suspension point
# ----------------------------------------------------------------------

RACE203_BAD = """
    class Proc:
        async def run_epoch(self):
            epoch = self.e_cur
            await self.transport.flush()
            self.begin(epoch)
"""

RACE203_GOOD = """
    class Proc:
        async def fresh_after_await(self):
            epoch = self.e_cur
            self.prepare(epoch)
            await self.transport.flush()
            self.begin(self.e_cur)

        async def revalidated(self):
            epoch = self.e_cur
            await self.transport.flush()
            if epoch != self.e_cur:
                return
            self.begin(epoch)
"""


def test_race203_fires_on_stale_epoch_use_after_await():
    findings = run_rule("RACE203", RACE203_BAD)
    assert len(findings) == 1
    assert "'epoch'" in findings[0].message


def test_race203_allows_pre_await_use_and_revalidation():
    # Use before the await is fine; comparing the cached copy against a
    # fresh read is the sanctioned re-validation idiom. The line after a
    # passed re-validation check is accepted (the guard dominates it).
    assert run_rule("RACE203", RACE203_GOOD) == []


# ----------------------------------------------------------------------
# EFF301 — declared-pure functions must be write-free
# ----------------------------------------------------------------------

EFF301_BAD = """
    from repro.analysis.markers import pure

    class Proc:
        @pure
        def quorum_clock(self):
            self._cache = self._compute()
            return self._cache
"""

EFF301_TRANSITIVE_BAD = """
    from repro.analysis.markers import pure

    class Proc:
        @pure
        def min_ts(self, mid):
            return self._refresh(mid)

        def _refresh(self, mid):
            self.t_by_mid[mid] = 0
            return 0
"""

EFF301_GOOD = """
    from repro.analysis.markers import pure

    class Proc:
        @pure
        def local_ts(self, mid):
            entry = self.t_by_mid.get(mid)
            return None if entry is None else entry[1]
"""


def test_eff301_fires_on_declared_pure_with_writes():
    findings = run_rule("EFF301", EFF301_BAD)
    assert len(findings) == 1
    assert "_cache" in findings[0].message


def test_eff301_sees_transitive_writes():
    findings = run_rule("EFF301", EFF301_TRANSITIVE_BAD)
    assert len(findings) == 1
    assert findings[0].context.endswith("Proc.min_ts")


def test_eff301_allows_read_only_pure_functions():
    assert run_rule("EFF301", EFF301_GOOD) == []


def test_eff301_config_declared_pure_is_enforced():
    # The repo's own declared-pure set is checked without decorators.
    source = """
        class SpecRecorder:
            def local_ts(self, config, mid, group):
                self.acks.append(mid)
                return None
    """
    findings = run_rule("EFF301", source, module="repro.core.spec")
    assert len(findings) == 1


# ----------------------------------------------------------------------
# EFF302 — observers are read-only on foreign protocol state
# ----------------------------------------------------------------------

EFF302_BAD = """
    class Monitor:
        def check(self, proc):
            proc.clock += 1
            self.proc.pending.add("mid")
"""

EFF302_GOOD = """
    class Monitor:
        def __init__(self, proc):
            self.proc = proc
            self.acks = []

        def check(self):
            self.acks.append(self.proc.clock)
            self.proc.on_r_deliver = self._wrap(self.proc.on_r_deliver)
"""


def test_eff302_fires_on_observer_writing_protocol_state():
    findings = run_rule("EFF302", EFF302_BAD, module="repro.verify.fixture")
    assert len(findings) == 2
    assert rules_fired(findings) == ["EFF302"]


def test_eff302_allows_own_bookkeeping_and_hook_wrapping():
    assert run_rule("EFF302", EFF302_GOOD, module="repro.verify.fixture") == []


def test_eff302_out_of_scope_module_is_ignored():
    assert run_rule("EFF302", EFF302_BAD, module="repro.core.fixture") == []


# ----------------------------------------------------------------------
# PERF001 — classes in compiled hot modules declare __slots__
# ----------------------------------------------------------------------

PERF001_BAD = """
    class Tracker:
        def __init__(self):
            self.count = 0
"""

PERF001_GOOD = """
    from typing import NamedTuple


    class Tracker:
        __slots__ = ("count",)

        def __init__(self):
            self.count = 0


    class Point(NamedTuple):
        x: int
        y: int


    class TrackerError(ValueError):
        pass
"""


def test_perf001_fires_on_unslotted_hot_class():
    findings = run_rule("PERF001", PERF001_BAD, module="repro.core.state")
    assert rules_fired(findings) == ["PERF001"]


def test_perf001_silent_on_slotted_namedtuple_and_exception():
    assert run_rule("PERF001", PERF001_GOOD, module="repro.core.state") == []


def test_perf001_out_of_scope_module_is_ignored():
    """Only the compiled hot modules are in scope — the harness, the
    baselines and the chaos layer may use plain classes freely."""
    assert run_rule("PERF001", PERF001_BAD, module="repro.harness.runner") == []


def test_perf001_allowlist_spares_the_dynamic_process_lineage():
    findings = run_rule("PERF001", PERF001_BAD, module="repro.sim.process")
    assert findings  # a new unslotted class in the module still fires
    lineage = PERF001_BAD.replace("class Tracker:", "class SimProcess:")
    assert run_rule("PERF001", lineage, module="repro.sim.process") == []


def test_perf001_scope_matches_compiled_module_list():
    """The lint scope and the mypyc compilation unit must stay in sync:
    a module added to COMPILED_MODULES without the slots contract (or
    vice versa) is a review error."""
    from repro._backend import COMPILED_MODULES

    assert tuple(DEFAULT_CONFIG.perf_slots_scope) == tuple(COMPILED_MODULES)


def test_every_registered_rule_has_a_firing_fixture():
    """Names in this test module must cover the whole registry, so a new
    rule cannot land without a known-bad fixture."""
    covered = {
        "DET001",
        "DET002",
        "DET003",
        "DET004",
        "EFF301",
        "EFF302",
        "PERF001",
        "PROTO101",
        "PROTO102",
        "PROTO103",
        "RACE201",
        "RACE202",
        "RACE203",
    }
    assert set(RULES) == covered


def test_severity_override_is_applied():
    config = AnalysisConfig(severity_overrides={"DET003": "warning"})
    findings = run_rule("DET003", DET003_BAD, config=config)
    assert findings and all(f.severity == "warning" for f in findings)
