"""Campaign runner tests: determinism, parallel equality, mutations."""

import pytest

from repro.chaos.explorer import (
    CHAOS_SCENARIOS,
    CaseSpec,
    run_campaign,
    run_case,
)

SCN = "lan-small"
SEEDS = [0, 1, 2]


class TestRunCase:
    def test_deterministic_result(self):
        a = run_case(CaseSpec(scenario=SCN, seed=1))
        b = run_case(CaseSpec(scenario=SCN, seed=1))
        assert a.to_dict() == b.to_dict()

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError):
            run_case(CaseSpec(scenario=SCN, seed=1, mutation="chaos-monkey"))

    def test_pinned_schedule_overrides_generation(self):
        spec = CaseSpec(scenario=SCN, seed=1)
        schedule = spec.resolve_schedule().replace_events([])
        pinned = spec.with_schedule(schedule)
        result = run_case(pinned)
        assert result.schedule.events == ()
        assert result.crashed == ()

    def test_workload_independent_of_schedule(self):
        # Shrinking events away must not change the client workload:
        # delivered counts may differ (crashes), but the multicast set
        # a correct run produces is the full workload either way.
        spec = CaseSpec(scenario=SCN, seed=3)
        bare = run_case(spec.with_schedule(spec.resolve_schedule().replace_events([])))
        scn = CHAOS_SCENARIOS[SCN]
        assert sum(bare.delivered.values()) > 0
        assert bare.events > 0
        assert max(bare.delivered.values()) <= scn.n_messages


class TestRunCampaign:
    def test_report_byte_identical_across_runs(self):
        a = run_campaign(SCN, SEEDS)
        b = run_campaign(SCN, SEEDS)
        assert a.to_json() == b.to_json()

    def test_report_identical_across_jobs(self):
        serial = run_campaign(SCN, SEEDS, jobs=1)
        parallel = run_campaign(SCN, SEEDS, jobs=2)
        assert serial.to_json() == parallel.to_json()

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_campaign("atlantis", SEEDS)

    def test_clean_campaign_has_no_violations(self):
        report = run_campaign(SCN, SEEDS)
        assert report.failing_cases == []
        summary = report.to_dict()["summary"]
        assert summary["cases"] == len(SEEDS)
        assert summary["violations"] == 0
        assert summary["violating_seeds"] == []

    def test_mutation_campaign_detects_the_bug(self):
        report = run_campaign(SCN, SEEDS, mutation="no-quorum-wait")
        assert report.failing_cases
        props = {
            v.prop for case in report.failing_cases for v in case.violations
        }
        assert props & {"acyclic-order", "timestamp-order", "prefix-order"}
