"""Command-line runner for the paper's experiments.

Usage::

    python -m repro.harness.cli table1
    python -m repro.harness.cli table2
    python -m repro.harness.cli figure2 [--full] [--seed N]
    python -m repro.harness.cli figure3 [--dests 1,2,4,8] [--jobs 8]
    python -m repro.harness.cli figure4
    python -m repro.harness.cli figure5
    python -m repro.harness.cli point --protocol primcast \\
        --scenario wan-distributed --dests 2 --outstanding 16

Prints the same rows/series the benches under ``benchmarks/`` assert
against; handy for ad-hoc exploration without pytest.

Figure sweeps accept ``--jobs N`` (fan the grid out over N worker
processes — rows are bit-identical at any job count), ``--cache-dir``
and ``--no-cache``: by default the CLI memoizes every load point in a
content-addressed cache under ``.repro-cache/``, keyed on the point spec
and a fingerprint of the simulator sources, so rerunning a figure after
an unrelated edit is instant and any source change re-simulates.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..workload.scenarios import (
    lan_scenario,
    wan_colocated_leaders,
    wan_distributed_leaders,
)
from .analytic import COMPLEXITY_FORMULAS, LATENCY_PROFILES, message_complexity, table1_rows
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .export import write_csv
from .experiments import figure2, figure3, figure4, figure5
from .metrics import percentile
from .parallel import SweepExecutor
from .report import format_table, print_results
from .runner import PROTOCOLS, run_load_point
from .steps import measure_collision_free, measure_primcast_convoy

SCENARIOS = {
    "lan": lan_scenario,
    "wan-colocated": wan_colocated_leaders,
    "wan-distributed": wan_distributed_leaders,
}


def cmd_table1(args: argparse.Namespace) -> None:
    print("== Table 1 (analytic) ==")
    print(
        format_table(
            ["Protocol", "Collision-free", "Failure-free", "Message complexity"],
            table1_rows(),
        )
    )
    print("\n== Table 1 (measured, k=2 groups of n=3) ==")
    rows = []
    for proto in ("fastcast", "whitebox", "primcast"):
        r = measure_collision_free(proto, 2, n_groups=8)
        rows.append(
            [proto, f"{r['max_steps']:.1f}", f"{r['max_leader_steps']:.1f}", r["messages"]]
        )
    print(format_table(["protocol", "steps (all)", "steps (leaders)", "messages"], rows))
    plain = measure_primcast_convoy(hybrid=False)
    hc = measure_primcast_convoy(hybrid=True, epsilon_ms=1.0)
    print(
        f"\nworst-case convoy: primcast {plain['measured_steps']:.2f} steps "
        f"(bound 5), primcast-hc {hc['measured_steps']:.2f} steps "
        f"(bound {hc['analytic_steps']:.2f})"
    )


def cmd_table2(args: argparse.Namespace) -> None:
    from ..workload.scenarios import all_scenarios

    print(
        format_table(
            ["Scenario", "Cross-group RTT", "Intra-group RTT", "Description"],
            [s.table2_row() for s in all_scenarios()],
        )
    )


def _maybe_export(args: argparse.Namespace, results) -> None:
    if getattr(args, "csv", None):
        write_csv(args.csv, results)
        print(f"\nwrote {args.csv}")


def _executor(args: argparse.Namespace) -> SweepExecutor:
    """Build the sweep executor from the --jobs/--no-cache/--cache-dir
    flags. The CLI caches by default (an interactive rerun of the same
    figure should be instant); the library default stays cache-off."""
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    return SweepExecutor(jobs=args.jobs, cache=cache)


def _report_executor(executor: SweepExecutor) -> None:
    # total_stats, not last_stats: figure3/figure4 run one sweep per
    # --dests entry through the same executor, and the report must
    # cover the whole command, not just the final sweep.
    stats = executor.total_stats
    if stats["points"]:
        pool = executor.pool_stats()
        extra = ""
        if pool.get("spawned"):
            # One persistent pool served every sweep of the command: the
            # worker count stays at --jobs while batches count the
            # sweeps that reused them (the amortization evidence).
            per_worker = ",".join(
                f"{w}:{n}" for w, n in pool["per_worker"].items()
            )
            extra = (
                f" [pool: {pool['spawned']} workers over "
                f"{pool['batches']} batches, cases {per_worker}]"
            )
        print(
            f"\n[{stats['points']} points: {stats['hits']} cached, "
            f"{stats['ran']} simulated, jobs={executor.jobs}]" + extra
        )


def cmd_figure2(args: argparse.Namespace) -> None:
    with _executor(args) as executor:
        results = figure2(full=args.full, seed=args.seed, executor=executor)
        print_results("Figure 2: LAN, 2 destinations", results)
        _report_executor(executor)
    _maybe_export(args, results)


def cmd_figure3(args: argparse.Namespace) -> None:
    dests = [int(d) for d in args.dests.split(",")] if args.dests else (1, 2, 4, 8)
    all_results = []
    with _executor(args) as executor:
        for d, results in figure3(
            full=args.full, seed=args.seed, dest_counts=dests, executor=executor
        ).items():
            print_results(f"Figure 3: WAN colocated leaders, {d} destination(s)", results)
            all_results.extend(results)
        _report_executor(executor)
    _maybe_export(args, all_results)


def cmd_figure4(args: argparse.Namespace) -> None:
    dests = [int(d) for d in args.dests.split(",")] if args.dests else (2, 4)
    all_results = []
    with _executor(args) as executor:
        for d, results in figure4(
            full=args.full, seed=args.seed, dest_counts=dests, executor=executor
        ).items():
            print_results(f"Figure 4: WAN distributed leaders, {d} destinations", results)
            all_results.extend(results)
        _report_executor(executor)
    _maybe_export(args, all_results)


def cmd_figure5(args: argparse.Namespace) -> None:
    with _executor(args) as executor:
        curves_by_load = figure5(full=args.full, seed=args.seed, executor=executor)
    for load, curves in curves_by_load.items():
        print(f"\n== Figure 5: CDF summaries, {load} outstanding ==")
        rows = []
        for name, curve in sorted(curves.items()):
            lats = [lat for lat, _ in curve]
            rows.append(
                [
                    name,
                    f"{percentile(lats, 50):.1f}",
                    f"{percentile(lats, 90):.1f}",
                    f"{percentile(lats, 99):.1f}",
                ]
            )
        print(format_table(["series", "p50", "p90", "p99"], rows))


def cmd_point(args: argparse.Namespace) -> None:
    if args.backend == "net":
        # Deferred import: the asyncio cluster machinery only loads when
        # a net point is actually requested.
        from ..net.point import run_net_point

        result = run_net_point(
            args.protocol,
            n_dest_groups=args.dests,
            n_messages=args.messages,
            seed=args.seed,
        )
        print_results(
            f"{args.protocol} on localhost cluster ({args.backend} backend), "
            f"{args.dests} dest(s), {args.messages} messages",
            [result],
        )
        return
    scenario = SCENARIOS[args.scenario]()
    result = run_load_point(
        args.protocol,
        scenario,
        args.dests,
        args.outstanding,
        seed=args.seed,
        warmup_ms=args.warmup,
        measure_ms=args.measure,
        keep_samples=False,
    )
    print_results(
        f"{args.protocol} on {scenario.name}, {args.dests} dest(s), "
        f"{args.outstanding} outstanding",
        [result],
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.harness.cli",
        description="Regenerate the PrimCast paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--full", action="store_true", help="paper-scale sweep")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--csv", help="also write the rows to this CSV file")
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="worker processes for the sweep (1 = serial; results are "
            "bit-identical at any job count)",
        )
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the content-addressed result cache",
        )
        p.add_argument(
            "--cache-dir",
            default=DEFAULT_CACHE_DIR,
            help=f"result cache location (default: {DEFAULT_CACHE_DIR})",
        )

    sub.add_parser("table1").set_defaults(fn=cmd_table1)
    sub.add_parser("table2").set_defaults(fn=cmd_table2)
    p2 = sub.add_parser("figure2")
    common(p2)
    p2.set_defaults(fn=cmd_figure2)
    for name, fn in (("figure3", cmd_figure3), ("figure4", cmd_figure4)):
        p = sub.add_parser(name)
        common(p)
        p.add_argument("--dests", help="comma-separated destination counts")
        p.set_defaults(fn=fn)
    p5 = sub.add_parser("figure5")
    common(p5)
    p5.set_defaults(fn=cmd_figure5)

    pp = sub.add_parser("point", help="run one load point")
    pp.add_argument("--protocol", choices=PROTOCOLS, required=True)
    pp.add_argument("--scenario", choices=sorted(SCENARIOS), required=True)
    pp.add_argument("--dests", type=int, default=2)
    pp.add_argument("--outstanding", type=int, default=4)
    pp.add_argument("--warmup", type=float, default=500.0)
    pp.add_argument("--measure", type=float, default=1000.0)
    pp.add_argument("--seed", type=int, default=1)
    pp.add_argument(
        "--backend",
        choices=("sim", "net"),
        default="sim",
        help="substrate: the simulator (default) or a real localhost "
        "cluster over asyncio TCP (primcast only; sequential workload)",
    )
    pp.add_argument(
        "--messages",
        type=int,
        default=32,
        help="workload size for --backend net (ignored for sim)",
    )
    pp.set_defaults(fn=cmd_point)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    args.fn(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
