"""Incremental trackers behind PrimCast's predicates (Algorithm 1).

The paper defines ``local-ts``, ``min-clock`` and ``quorum-clock`` as
scans over the tuple set ``M``. Scanning M on every event would be
quadratic, so the process keeps these trackers incrementally up to date;
:mod:`repro.core.spec` holds the literal scan-based definitions and the
test suite checks the two agree on random traces.
"""

from __future__ import annotations

import sys
from typing import Dict, List, Optional, Tuple

from .config import GroupConfig

#: True when ``int.bit_count`` exists (3.10+); the tracker then counts
#: quorum bits with the C method instead of the ``bin().count`` fallback.
_HAS_BIT_COUNT = sys.version_info >= (3, 10)
from .epoch import Epoch
from .messages import MessageId


class SafetyViolationError(AssertionError):
    """Raised when tracked state contradicts a protocol invariant —
    e.g. two different timestamps acknowledged for one message in one
    epoch. Never raised in a correct run; exists to fail loudly in tests
    and fault-injection experiments."""


class AckTracker:
    """Tracks ack quorums for one (message, destination group) pair.

    ``local-ts(m, h)`` (Algorithm 1, line 9) is decided once acks for
    ``m`` from a quorum of ``h``, all from the same epoch, are in M.

    Ack senders are tracked as a bitmask over the group's member
    positions (:meth:`GroupConfig.member_bit`) rather than a per-epoch
    set: with one tracker per (message, group) and every member acking
    every message, set allocation and hashing dominated ``_on_ack``. In
    the overwhelmingly common case — all acks from one epoch — a tracker
    is three scalar fields; further epochs (epoch changes mid-message)
    spill into a lazily created dict. Non-member senders contribute bit
    0: they can never form a quorum but their timestamp is still
    recorded for conflict detection, exactly as the set form did.
    """

    __slots__ = ("epoch0", "ts0", "mask0", "overflow", "decided_epoch", "decided_ts")

    def __init__(self) -> None:
        # First epoch seen (None = no acks yet), its ts and sender mask.
        self.epoch0: Optional[Epoch] = None
        self.ts0 = 0
        self.mask0 = 0
        # Rare additional epochs: epoch -> [ts, mask].
        self.overflow: Optional[Dict[Epoch, List[int]]] = None
        self.decided_epoch: Optional[Epoch] = None
        self.decided_ts: Optional[int] = None

    def add_ack(
        self,
        config: GroupConfig,
        group: int,
        epoch: Epoch,
        ts: int,
        sender: int,
        mid: MessageId,
    ) -> bool:
        """Record an ack; returns True if this decided the local ts."""
        if self.decided_ts is not None:
            # The local ts is already fixed; the common late acks (every
            # group member acks every message) only need the conflict
            # check against epochs already recorded — sender upkeep
            # cannot change the decision.
            if epoch == self.epoch0:
                if self.ts0 != ts:
                    raise SafetyViolationError(
                        f"conflicting ack timestamps for m={mid} in group {group} "
                        f"epoch {epoch}: {self.ts0} vs {ts}"
                    )
            elif self.overflow is not None:
                entry = self.overflow.get(epoch)
                if entry is not None and entry[0] != ts:
                    raise SafetyViolationError(
                        f"conflicting ack timestamps for m={mid} in group {group} "
                        f"epoch {epoch}: {entry[0]} vs {ts}"
                    )
            return False
        # Inlined config.member_bit / has_quorum_mask: this method runs
        # once per ack of every run, so the intermediate call frames are
        # worth the reach into GroupConfig's precomputed tables.
        bit = config._member_bits[group].get(sender, 0)
        if self.epoch0 is None:
            self.epoch0 = epoch
            self.ts0 = ts
            mask = self.mask0 = bit
        elif epoch == self.epoch0:
            if self.ts0 != ts:
                raise SafetyViolationError(
                    f"conflicting ack timestamps for m={mid} in group {group} "
                    f"epoch {epoch}: {self.ts0} vs {ts}"
                )
            mask = self.mask0 = self.mask0 | bit
        else:
            overflow = self.overflow
            if overflow is None:
                overflow = self.overflow = {}
            entry = overflow.get(epoch)
            if entry is None:
                overflow[epoch] = [ts, bit]
                mask = bit
            else:
                if entry[0] != ts:
                    raise SafetyViolationError(
                        f"conflicting ack timestamps for m={mid} in group {group} "
                        f"epoch {epoch}: {entry[0]} vs {ts}"
                    )
                entry[1] |= bit
                mask = entry[1]
        quorums = config._quorum_masks.get(group)
        if quorums is None:
            if _HAS_BIT_COUNT:
                decided = mask.bit_count() >= config._majority_sizes[group]
            else:  # pragma: no cover - exercised only on 3.9
                decided = bin(mask).count("1") >= config._majority_sizes[group]
        else:
            decided = False
            for qm in quorums:
                if qm & mask == qm:
                    decided = True
                    break
        if decided:
            self.decided_epoch = epoch
            self.decided_ts = ts
            return True
        return False

    @property
    def local_ts(self) -> Optional[int]:
        """The decided local timestamp, or None (⊥)."""
        return self.decided_ts


class ClockTracker:
    """min-clock(q) values for the members of one group (line 15).

    ``min-clock(q)`` is the highest clock value seen from ``q`` in acks
    (own group) or bumps with epoch ≤ E_cur. Tuples from higher epochs
    are buffered and folded in when E_cur advances — the spec's M keeps
    everything and re-filters per E_cur; buffering is the incremental
    equivalent.
    """

    __slots__ = ("values", "deferred")

    def __init__(self, members: List[int]) -> None:
        self.values: Dict[int, int] = {pid: 0 for pid in members}
        # tuples (epoch, ts, sender) with epoch > E_cur at receipt time
        self.deferred: List[Tuple[Epoch, int, int]] = []

    def observe(self, e_cur: Epoch, epoch: Epoch, ts: int, sender: int) -> bool:
        """Record a clock observation; returns True if min-clock grew."""
        if epoch > e_cur:
            self.deferred.append((epoch, ts, sender))
            return False
        values = self.values
        if ts > values.get(sender, 0):
            values[sender] = ts
            return True
        return False

    def advance_epoch(self, e_cur: Epoch) -> bool:
        """Fold in deferred tuples now that E_cur advanced to ``e_cur``;
        returns True if any min-clock grew."""
        if not self.deferred:
            return False
        still_deferred: List[Tuple[Epoch, int, int]] = []
        changed = False
        for epoch, ts, sender in self.deferred:
            if epoch > e_cur:
                still_deferred.append((epoch, ts, sender))
            elif ts > self.values.get(sender, 0):
                self.values[sender] = ts
                changed = True
        self.deferred = still_deferred
        return changed

    def min_clock(self, pid: int) -> int:
        """min-clock(pid)."""
        return self.values.get(pid, 0)
