"""Tests for the convoy latency-decomposition probes."""

import pytest

from helpers import MiniSystem, random_workload
from repro.harness.diagnostics import ConvoyProbe, attach_probes, merged_summary


def test_probe_records_every_delivery():
    sys_ = MiniSystem(n_groups=2)
    probe = ConvoyProbe(sys_.processes[0])
    for _ in range(5):
        sys_.multicast(1, {0, 1})
    sys_.run_to_quiescence()
    assert len(probe.records) == 5


def test_collision_free_has_no_convoy_gap():
    sys_ = MiniSystem(n_groups=2)
    probe = ConvoyProbe(sys_.processes[0])
    sys_.multicast(4, {0, 1})
    sys_.run_to_quiescence()
    (_, commit, gap), = probe.records
    assert gap == pytest.approx(0.0, abs=1e-6)
    assert commit > 0


def test_crafted_convoy_shows_in_gap():
    """A blocked message's wait shows up as convoy gap, not commit."""
    sys_ = MiniSystem(n_groups=2)
    probe = ConvoyProbe(sys_.processes[1])
    # Raise group 1's clock so m's final comes from the remote group.
    for _ in range(3):
        sys_.multicast(3, {1})
    sys_.run(until=50)
    m = sys_.multicast(5, {0, 1})
    # A conflicting global message from group 0's primary inside the
    # convoy window.
    sys_.scheduler.call_at(
        sys_.scheduler.now + 1.5, sys_.processes[0].a_multicast, {0, 1}, None
    )
    sys_.run_to_quiescence()
    gaps = {mid: gap for mid, _, gap in probe.records}
    assert gaps[m.mid] > 0.5  # m waited for the blocker's commit


def test_attach_and_merge():
    sys_ = MiniSystem(n_groups=3)
    probes = attach_probes(sys_.processes)
    assert len(probes) == 9
    random_workload(sys_, 30, seed=4)
    sys_.run_to_quiescence()
    pooled = merged_summary(probes)
    assert pooled["commit"]["count"] > 0
    assert pooled["convoy_gap"]["count"] == pooled["commit"]["count"]
    assert pooled["commit"]["mean"] > 0


def test_since_filter():
    sys_ = MiniSystem(n_groups=2)
    probe = ConvoyProbe(sys_.processes[0])
    sys_.multicast(1, {0})
    sys_.run_to_quiescence()
    assert probe.summary(since_ms=0.0)["commit"]["count"] == 1
    assert probe.summary(since_ms=1e9)["commit"]["count"] == 0
