"""Watermark-based state GC: truncation safety across epoch changes,
O(suffix) epoch-change payloads, and the bounded-memory steady state."""

from typing import Dict

from helpers import MiniSystem, random_workload
from repro.core import PrimCastProcess, uniform_groups
from repro.core.gc import attach_compaction
from repro.election.omega import make_oracles
from repro.sim import ConstantLatency, FailureInjector, Network, Scheduler, child_rng
from repro.verify import check_all


class GcFailoverSystem:
    """PrimCast deployment with live Ω, crash injection and optional
    periodic state GC (mirrors ``tests/core/test_epoch_change.py``)."""

    def __init__(
        self,
        n_groups=2,
        group_size=3,
        poll_ms=5.0,
        seed=1,
        compaction_interval_ms=0.0,
    ):
        self.config = uniform_groups(n_groups, group_size)
        self.scheduler = Scheduler()
        self.network = Network(
            self.scheduler, ConstantLatency(1.0), child_rng(seed, "net")
        )
        self.processes: Dict[int, PrimCastProcess] = {}
        for pid in self.config.all_pids:
            self.processes[pid] = PrimCastProcess(
                pid, self.config, self.scheduler, self.network
            )
        self.oracles = make_oracles(
            self.config.groups, self.processes, self.scheduler, poll_ms
        )
        for pid, proc in self.processes.items():
            proc.omega = self.oracles[self.config.group_of[pid]]
            proc.omega.subscribe(proc._on_omega_output)
        self.injector = FailureInjector(self.scheduler, self.processes)
        self.compaction = None
        if compaction_interval_ms > 0.0:
            self.compaction = attach_compaction(
                self.scheduler, self.processes, compaction_interval_ms
            )
        self.deliveries = {pid: [] for pid in self.config.all_pids}
        for proc in self.processes.values():
            proc.add_deliver_hook(
                lambda p, m, ts: self.deliveries[p.pid].append(
                    (m.mid, ts, self.scheduler.now)
                )
            )


def _epoch_change_heavy_run(compaction_interval_ms):
    """Traffic spanning a primary crash; returns (deliveries, system)."""
    sys_ = GcFailoverSystem(
        n_groups=2, compaction_interval_ms=compaction_interval_ms
    )
    for i, (sender, when) in enumerate(
        [(4, 0.0), (1, 2.0), (5, 4.0), (2, 6.0)]
        + [(1 + (i % 2) * 3, 10.0 + 4.0 * i) for i in range(25)]
    ):
        sys_.scheduler.call_at(
            when, sys_.processes[sender].a_multicast, frozenset({0, 1}), f"m{i}"
        )
    sys_.injector.crash_at(0, 30.0)
    sys_.scheduler.run(until=600.0)
    return sys_.deliveries, sys_


def test_gc_on_off_delivery_logs_bit_identical_across_epoch_change():
    """The tentpole legality bar: with the compaction daemon running
    through a primary crash and re-proposal, every process's delivery log
    (mids, final timestamps, delivery times) is bit-identical to the
    GC-off run — truncation never changes what the protocol does."""
    plain, _ = _epoch_change_heavy_run(0.0)
    compacted, sys_ = _epoch_change_heavy_run(5.0)
    assert plain == compacted
    # The comparison is only meaningful if GC actually truncated state:
    # group 1 saw no epoch change, so its members' reports stay fresh
    # and their T prefixes shrink.
    assert any(
        sys_.processes[pid]._t_base > 0 for pid in sys_.config.members(1)
    )
    assert sys_.compaction.freed > 0


def test_watermark_freezes_for_group_with_stale_member_report():
    """After group 0's epoch change, the crashed member's report is
    forever stale, so the survivors' watermark pins at the installed
    base — conservative, never unsafe."""
    _, sys_ = _epoch_change_heavy_run(5.0)
    for pid in (1, 2):
        proc = sys_.processes[pid]
        assert proc._stable_watermark() == proc._t_base


def test_epoch_promise_carries_only_live_suffix():
    """A promise sent after sustained delivered traffic reports
    ``t_base > 0`` and a t_seq of only the untruncated tail — the
    primary change is O(undelivered), not O(messages ever ordered)."""
    sys_ = GcFailoverSystem(
        n_groups=1, group_size=3, compaction_interval_ms=5.0
    )
    n = 40
    for i in range(n):
        sys_.scheduler.call_at(
            2.0 * i, sys_.processes[1].a_multicast, frozenset({0}), f"m{i}"
        )
    promises = []

    def trace(src, dst, msg, depart):
        payload = getattr(msg, "payload", None)
        if payload is not None and getattr(payload, "kind", None) == "promise":
            promises.append(payload)

    sys_.network.add_trace_hook(trace)
    sys_.injector.crash_at(0, 120.0)
    sys_.scheduler.run(until=300.0)
    assert promises, "no epoch promise observed after the crash"
    for promise in promises:
        assert promise.t_base > 0
        assert promise.t_base + len(promise.t_seq) == n
        assert len(promise.t_seq) < n // 2
    # The epoch change completed and the system still works end-to-end.
    m = sys_.processes[2].a_multicast(frozenset({0}), "after")
    sys_.scheduler.run(until=400.0)
    for pid in (1, 2):
        assert m.mid in [mid for mid, _, _ in sys_.deliveries[pid]]


def test_steady_state_t_list_stays_bounded():
    """Structural memory bound: after a sustained workload plus a report
    refresh round, each process's live T suffix is a small fraction of
    what it delivered (the delivered dedupe set keeps every mid)."""
    sys_ = MiniSystem(n_groups=2, seed=4)
    daemon = attach_compaction(sys_.scheduler, sys_.processes, 5.0)
    random_workload(sys_, 80, seed=12, spread_ms=400.0)
    sys_.run(until=1000.0)
    # Refresh round: acks of these messages carry the workload's
    # deliveries in their dp reports, unlocking truncation of it.
    for _ in range(3):
        sys_.multicast(1, {0, 1})
    sys_.run(until=2000.0)
    assert daemon.freed > 0
    for proc in sys_.processes.values():
        delivered = len(proc.delivered)
        assert delivered > 20
        assert proc._t_base > 0
        assert len(proc.t_list) <= 10, (
            f"pid {proc.pid}: t_list {len(proc.t_list)} after "
            f"{delivered} deliveries"
        )
    check_all(
        sys_.logs, set(sys_.multicasts), sys_.dest_pids_of(), sys_.correct_pids()
    )
