"""Seeded workloads shared by the sim and net backends.

The differential harness needs both backends to run the *same* message
sequence: destination sets are a pure function of ``(n_groups,
n_messages, seed, extra_group_p)``, derived through the repo's seeded
RNG tree so the net backend cannot drift from the sim reference.

The shape is chosen so the per-group delivery order is *determined* by
the protocol, independent of wall-clock timing (DESIGN.md §12):

* the driver's group (group 0) is in every destination set, and
* the driver submits sequentially with one outstanding message, gated
  on its own delivery.

Message ``i+1`` is only proposed after the driver delivered message
``i``, so ``final(i+1) >= ts_{group 0}(i+1) > final(i)`` — final
timestamps strictly increase in submission order, even across epoch
changes. Each group therefore delivers exactly the submission-order
subsequence addressed to it, on every backend, every run.
"""

from __future__ import annotations

from typing import FrozenSet, List

from ..sim.rng import child_rng


def make_workload(
    n_groups: int,
    n_messages: int,
    seed: int,
    extra_group_p: float = 0.5,
) -> List[FrozenSet[int]]:
    """Destination set for each message, driver's group always included."""
    if n_groups < 1:
        raise ValueError("need at least one group")
    rng = child_rng(seed, "net-workload")
    dests: List[FrozenSet[int]] = []
    for _ in range(n_messages):
        d = {0}
        for g in range(1, n_groups):
            if rng.random() < extra_group_p:
                d.add(g)
        dests.append(frozenset(d))
    return dests


def expected_count(workload: List[FrozenSet[int]], gid: int) -> int:
    """How many workload messages a member of ``gid`` must deliver."""
    return sum(1 for dests in workload if gid in dests)
