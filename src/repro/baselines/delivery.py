"""Shared timestamp-order delivery queue for the baselines.

Both White-Box (at primaries) and FastCast deliver committed messages in
``(final_ts, mid)`` order, holding a message back while any other pending
message could still end up with a smaller final timestamp. This helper
implements that check with two heaps:

* a *commit heap* of ``(final_ts, mid)`` for committed messages;
* a *lazy bound heap* over pending messages keyed by a lower bound of
  their eventual final timestamp. Bounds are monotone (proposals only
  accumulate), so a stale key is still a valid lower bound and the top
  is refreshed on demand — the same scheme PrimCast's delivery uses.

This keeps per-event work near O(log P) instead of O(P²) scans under
load.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Set, Tuple

from ..core.messages import MessageId


class DeliveryQueue:
    """Timestamp-ordered delivery with a monotone blocker bound.

    Args:
        min_bound: callable returning the current lower bound on a
            pending message's final timestamp; must be monotone
            non-decreasing over time.
    """

    def __init__(self, min_bound: Callable[[MessageId], int]):
        self.min_bound = min_bound
        self.pending: Set[MessageId] = set()
        self._commit_heap: List[Tuple[int, MessageId]] = []
        self._bound_heap: List[Tuple[int, MessageId]] = []
        self._committed: Set[MessageId] = set()

    def add_pending(self, mid: MessageId) -> None:
        """Register a message that may still get a (small) final ts."""
        if mid not in self.pending:
            self.pending.add(mid)
            heapq.heappush(self._bound_heap, (0, mid))

    def commit(self, mid: MessageId, final_ts: int) -> None:
        """Mark ``mid`` ready for delivery with its final timestamp."""
        if mid not in self._committed:
            self._committed.add(mid)
            heapq.heappush(self._commit_heap, (final_ts, mid))

    def is_committed(self, mid: MessageId) -> bool:
        return mid in self._committed

    def _min_bound_excluding(self, exclude: MessageId) -> Optional[Tuple[int, MessageId]]:
        heap = self._bound_heap
        set_aside: List[Tuple[int, MessageId]] = []
        result: Optional[Tuple[int, MessageId]] = None
        while heap:
            bound, mid = heap[0]
            if mid not in self.pending:
                heapq.heappop(heap)
                continue
            if mid == exclude:
                set_aside.append(heapq.heappop(heap))
                continue
            current = self.min_bound(mid)
            if current > bound:
                heapq.heapreplace(heap, (current, mid))
                continue
            result = (bound, mid)
            break
        for entry in set_aside:
            heapq.heappush(heap, entry)
        return result

    def pop_deliverable(self, clock: int) -> Optional[Tuple[MessageId, int]]:
        """Return the next deliverable ``(mid, final_ts)`` or None.

        Deliverable: the smallest committed ``(final, mid)`` such that
        ``final <= clock`` and ``(final, mid)`` is strictly below every
        other pending message's bound.
        """
        heap = self._commit_heap
        while heap:
            final, mid = heap[0]
            if mid not in self.pending:
                heapq.heappop(heap)
                continue
            if final > clock:
                return None
            other = self._min_bound_excluding(mid)
            if other is not None and (final, mid) >= other:
                return None
            heapq.heappop(heap)
            self.pending.discard(mid)
            return mid, final
        return None
