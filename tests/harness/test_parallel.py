"""Tests for the parallel sweep executor (repro.harness.parallel).

The executor's contract is *bit-identical output*: a sweep fanned out
over worker processes must produce the same RunResult rows, in the same
order, as the serial loop of run_load_point calls it replaced. These
tests pin that field-for-field on a small Fig-3-style point (WAN
colocated leaders — the figure 3 scenario — at reduced scale so the
pool round trip stays fast).
"""

from dataclasses import replace

import pytest

from repro.harness.experiments import sweep
from repro.harness.parallel import (
    PointSpec,
    SweepExecutor,
    build_scenario,
    cost_model_from_spec,
    cost_model_spec,
    expand_sweep,
    point_spec,
    scenario_matches_registry,
)
from repro.harness.runner import RunResult, run_load_point
from repro.sim.costs import default_cost_model, zero_cost_model
from repro.workload.scenarios import lan_scenario, wan_colocated_leaders

PROTOCOLS = ("primcast", "whitebox")
LOADS = (1, 2)


def small_fig3_scenario():
    """Figure 3's geometry (WAN, colocated leaders) at reduced scale."""
    return wan_colocated_leaders(n_groups=2, group_size=3)


def serial_reference(scenario, keep_samples=False):
    """The historical serial path: a plain loop of run_load_point."""
    return [
        run_load_point(
            protocol,
            scenario,
            2,
            outstanding,
            seed=1,
            warmup_ms=40.0,
            measure_ms=80.0,
            keep_samples=keep_samples,
        )
        for protocol in PROTOCOLS
        for outstanding in LOADS
    ]


def specs_for(scenario, keep_samples=False):
    return expand_sweep(
        PROTOCOLS,
        scenario,
        2,
        LOADS,
        seed=1,
        warmup_ms=40.0,
        measure_ms=80.0,
        keep_samples=keep_samples,
    )


def assert_field_for_field(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.protocol == w.protocol
        assert g.scenario == w.scenario
        assert g.n_dest_groups == w.n_dest_groups
        assert g.outstanding == w.outstanding
        assert g.throughput == w.throughput
        assert g.latency == w.latency
        assert g.samples == w.samples
        assert g.message_counts == w.message_counts
        assert g.events == w.events


def test_parallel_jobs2_equals_serial_field_for_field():
    scenario = small_fig3_scenario()
    want = serial_reference(scenario)
    got = SweepExecutor(jobs=2).run(specs_for(scenario))
    assert_field_for_field(got, want)


def test_parallel_keeps_spec_order_with_more_jobs_than_points():
    scenario = small_fig3_scenario()
    specs = specs_for(scenario)
    results = SweepExecutor(jobs=8).run(specs)
    assert [(r.protocol, r.outstanding) for r in results] == [
        (s.protocol, s.outstanding) for s in specs
    ]


def test_parallel_preserves_samples():
    scenario = small_fig3_scenario()
    want = serial_reference(scenario, keep_samples=True)
    got = SweepExecutor(jobs=2).run(specs_for(scenario, keep_samples=True))
    assert_field_for_field(got, want)
    assert got[0].samples, "keep_samples must survive the pool round trip"


def test_sweep_routes_through_executor_identically():
    """sweep(executor=jobs2) == sweep() == the seed-era serial loop."""
    scenario = lan_scenario(n_groups=2, group_size=3)
    kwargs = dict(
        n_dest_groups=2,
        loads=(1, 2),
        warmup_ms=20,
        measure_ms=40,
        cost_model=zero_cost_model(),
    )
    default = sweep(PROTOCOLS, scenario, **kwargs)
    parallel = sweep(PROTOCOLS, scenario, executor=SweepExecutor(jobs=2), **kwargs)
    assert_field_for_field(parallel, default)


def test_expand_sweep_matches_serial_grid_order():
    specs = expand_sweep(PROTOCOLS, small_fig3_scenario(), 2, LOADS, seed=7)
    assert [(s.protocol, s.outstanding) for s in specs] == [
        ("primcast", 1),
        ("primcast", 2),
        ("whitebox", 1),
        ("whitebox", 2),
    ]
    assert all(s.seed == 7 for s in specs)


def test_point_spec_round_trips_scenario_and_epsilon():
    scenario = small_fig3_scenario()
    spec = point_spec("primcast-hc", scenario, 2, 4, epsilon_ms=None)
    assert spec.scenario == scenario.name
    assert spec.n_groups == 2 and spec.group_size == 3
    # scenario epsilon is captured explicitly so worker reconstruction
    # cannot drift from a caller-customized skew bound
    assert spec.epsilon_ms == scenario.epsilon_ms
    rebuilt = build_scenario(spec.scenario, spec.n_groups, spec.group_size)
    assert rebuilt.name == scenario.name
    assert rebuilt.n_groups == scenario.n_groups


def test_point_spec_rejects_unknown_scenario():
    scenario = lan_scenario(2, 3)
    custom = type(scenario)(
        name="bespoke",
        description="",
        n_groups=2,
        group_size=3,
        cross_group_rtt_ms=1.0,
        intra_group_rtt_ms="1ms",
        _latency_builder=scenario._latency_builder,
    )
    with pytest.raises(ValueError, match="unknown scenario"):
        point_spec("primcast", custom, 2, 1)
    with pytest.raises(ValueError, match="unknown scenario"):
        build_scenario("bespoke", 2, 3)


def test_point_spec_rejects_customized_registry_scenario():
    # same registry name, different geometry: workers would silently
    # rebuild the registry default, so the spec layer must refuse
    custom = replace(lan_scenario(2, 3), cross_group_rtt_ms=5.0)
    with pytest.raises(ValueError, match="does not match"):
        point_spec("primcast", custom, 2, 1)


def test_scenario_matches_registry_detects_customization():
    assert scenario_matches_registry(lan_scenario())
    assert scenario_matches_registry(wan_colocated_leaders(2, 3))
    assert not scenario_matches_registry(replace(lan_scenario(), name="bespoke"))
    assert not scenario_matches_registry(
        replace(lan_scenario(), cross_group_rtt_ms=5.0)
    )
    # a customized epsilon still round-trips (captured in the spec)
    assert scenario_matches_registry(replace(lan_scenario(), epsilon_ms=9.0))


def test_sweep_runs_custom_scenario_inline_on_default_path():
    """sweep() keeps accepting arbitrary Scenario objects serially."""
    custom = replace(lan_scenario(2, 3), name="bespoke-lan")
    want = [
        run_load_point(
            protocol, custom, 2, outstanding,
            seed=1, warmup_ms=20.0, measure_ms=40.0, keep_samples=False,
        )
        for protocol in PROTOCOLS
        for outstanding in LOADS
    ]
    executor = SweepExecutor()
    got = sweep(
        PROTOCOLS, custom, n_dest_groups=2, loads=LOADS,
        warmup_ms=20.0, measure_ms=40.0, executor=executor,
    )
    assert_field_for_field(got, want)
    # inline points still show up in the executor's accounting
    assert executor.last_stats == {"points": 4, "hits": 0, "ran": 4}


def test_sweep_rejects_custom_scenario_with_parallel_or_cache(tmp_path):
    from repro.harness.cache import ResultCache

    custom = replace(lan_scenario(2, 3), cross_group_rtt_ms=5.0)
    with pytest.raises(ValueError, match="serial"):
        sweep(
            PROTOCOLS, custom, n_dest_groups=2, loads=(1,),
            executor=SweepExecutor(jobs=2),
        )
    with pytest.raises(ValueError, match="serial"):
        sweep(
            PROTOCOLS, custom, n_dest_groups=2, loads=(1,),
            executor=SweepExecutor(jobs=1, cache=ResultCache(tmp_path / "c")),
        )


def test_executor_total_stats_accumulate_across_runs():
    scenario = small_fig3_scenario()
    specs = specs_for(scenario)
    executor = SweepExecutor()
    executor.run(specs[:1])
    executor.run(specs[1:3])
    assert executor.last_stats == {"points": 2, "hits": 0, "ran": 2}
    assert executor.total_stats == {"points": 3, "hits": 0, "ran": 3}


def test_cost_model_spec_round_trip():
    for model in (None, zero_cost_model(), default_cost_model(scale=2.0)):
        spec = cost_model_spec(model)
        back = cost_model_from_spec(spec)
        if model is None:
            assert back is None
        else:
            assert back.recv_costs == model.recv_costs
            assert back.send_costs == model.send_costs
            assert back.default_recv == model.default_recv
            assert back.default_send == model.default_send


def test_custom_cost_model_survives_worker_round_trip():
    scenario = lan_scenario(2, 3)
    model = default_cost_model(scale=3.0)
    serial = [
        run_load_point(
            "primcast", scenario, 2, 2, seed=1, warmup_ms=20.0, measure_ms=40.0,
            cost_model=model, keep_samples=False,
        )
    ]
    specs = expand_sweep(
        ("primcast",), scenario, 2, (2,), seed=1, warmup_ms=20.0, measure_ms=40.0,
        cost_model=model,
    )
    got = SweepExecutor(jobs=2).run(specs)
    assert_field_for_field(got, serial)


def test_executor_rejects_bad_jobs():
    with pytest.raises(ValueError):
        SweepExecutor(jobs=0)


def test_run_result_dict_round_trip():
    result = run_load_point(
        "primcast", lan_scenario(2, 3), 2, 1,
        seed=1, warmup_ms=20.0, measure_ms=40.0, keep_samples=True,
    )
    back = RunResult.from_dict(result.to_dict())
    assert back == result
    # and through actual JSON text, as the cache stores it
    import json

    back2 = RunResult.from_dict(json.loads(json.dumps(result.to_dict())))
    assert back2 == result


def test_spec_canonical_is_json_safe_and_stable():
    import json

    spec = point_spec(
        "primcast", small_fig3_scenario(), 2, 4, cost_model=zero_cost_model()
    )
    text = json.dumps(spec.canonical(), sort_keys=True)
    again = json.dumps(
        point_spec(
            "primcast", small_fig3_scenario(), 2, 4, cost_model=zero_cost_model()
        ).canonical(),
        sort_keys=True,
    )
    assert text == again
    assert PointSpec(**json.loads(text)) == spec
