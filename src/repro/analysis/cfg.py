"""Intra-procedural control-flow graphs over ``ast`` function bodies.

The flow-sensitive rules (RACE2xx, the ordered-provenance form of
DET002) need *paths*, not just syntax: "a mutation after a send on the
same path" or "a value proven sorted on every path reaching this loop"
are statements about control flow. This module builds a conventional
basic-block CFG for one function:

* **Block entries** are statements *or* the expression parts of control
  headers (an ``if``/``while`` test, ``with`` items, a ``match``
  subject). ``for`` loops contribute the ``ast.For`` node itself as the
  loop-header entry so transfer functions can model the target binding
  and rules can inspect the iterable with the header's entry state.
* **Edges** cover branches, loop back-edges, ``break`` / ``continue``,
  ``return`` / ``raise`` (to the exit block) and a conservative
  exception model for ``try``: inside a ``try`` body every statement
  gets its own block with an edge to every handler, so a handler's
  entry state joins the states after *each* statement that may raise.
  ``finally`` bodies are approximated as straight-line code after the
  body/handler merge — precise enough for the may-analyses built here,
  all of which only ever *widen* along extra edges.
* Nested ``def`` / ``async def`` / ``lambda`` / ``class`` bodies are
  opaque single entries: each nested function gets its own CFG when the
  caller asks for one. Their control flow never leaks into the
  enclosing graph.

Determinism: block ids are allocated in syntactic order and
:meth:`CFG.rpo` resolves ties by id, so every analysis over a CFG
iterates in a platform-independent order — the analysis pass holds
itself to the determinism policy it enforces.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

#: What a basic block holds: plain statements, header expressions, or
#: (for loop headers) the ``ast.For`` / ``ast.AsyncFor`` node itself.
CFGEntry = Union[ast.stmt, ast.expr]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass
class Block:
    """One basic block: a straight-line run of CFG entries."""

    block_id: int
    entries: List[CFGEntry] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)


class CFG:
    """The control-flow graph of one function body."""

    def __init__(self) -> None:
        self.blocks: Dict[int, Block] = {}
        self._next_id = 0
        self.entry = self.new_block().block_id
        self.exit = self.new_block().block_id

    def new_block(self) -> Block:
        block = Block(self._next_id)
        self._next_id += 1
        self.blocks[block.block_id] = block
        return block

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def rpo(self) -> List[int]:
        """Reverse post-order from the entry block (deterministic).

        Blocks unreachable from the entry (e.g. code after ``return``)
        are appended afterwards in id order so analyses still visit
        them (with bottom entry states).
        """
        seen: Dict[int, bool] = {}
        order: List[int] = []

        def dfs(block_id: int) -> None:
            seen[block_id] = True
            for succ in sorted(self.blocks[block_id].succs):
                if succ not in seen:
                    dfs(succ)
            order.append(block_id)

        dfs(self.entry)
        order.reverse()
        for block_id in sorted(self.blocks):
            if block_id not in seen:
                order.append(block_id)
        return order


class _LoopFrame:
    """Break/continue targets of the innermost enclosing loop."""

    def __init__(self, header: int, after: int) -> None:
        self.header = header
        self.after = after


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.current: int = self.cfg.entry
        self.loops: List[_LoopFrame] = []
        #: Entry blocks of the active ``except`` handlers; every
        #: statement emitted while this is non-empty may transfer there.
        self.handlers: List[List[int]] = []
        #: True once the current block ended in a jump (return/raise/
        #: break/continue): the next entry opens an unreachable block.
        self.dead = False

    # -- low-level emission --------------------------------------------

    def _start_block(self, *preds: int) -> int:
        block = self.cfg.new_block()
        for pred in preds:
            self.cfg.add_edge(pred, block.block_id)
        self.current = block.block_id
        self.dead = False
        return block.block_id

    def _seal_into(self, dst: int) -> None:
        """Edge from the current block to ``dst`` unless control already
        left the block via a jump."""
        if not self.dead:
            self.cfg.add_edge(self.current, dst)

    def emit(self, entry: CFGEntry) -> None:
        """Append one entry to the current block, giving every statement
        inside a ``try`` body its own block with handler edges."""
        if self.dead:
            self._start_block()
        self.cfg.blocks[self.current].entries.append(entry)
        if self.handlers:
            src = self.current
            for handler_entry in self.handlers[-1]:
                self.cfg.add_edge(src, handler_entry)
            nxt = self.cfg.new_block()
            self.cfg.add_edge(src, nxt.block_id)
            self.current = nxt.block_id

    def _jump(self, dst: int) -> None:
        self._seal_into(dst)
        self.dead = True

    # -- statements ----------------------------------------------------

    def build(self, fn: FunctionNode) -> CFG:
        self.visit_body(fn.body)
        self._seal_into(self.cfg.exit)
        return self.cfg

    def visit_body(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            self.visit_stmt(stmt)

    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.If):
            self._visit_if(stmt)
        elif isinstance(stmt, ast.While):
            self._visit_while(stmt)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._visit_for(stmt)
        elif isinstance(stmt, ast.Try):
            self._visit_try(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._visit_with(stmt)
        elif isinstance(stmt, ast.Match):
            self._visit_match(stmt)
        elif isinstance(stmt, (ast.Return, ast.Raise)):
            self.emit(stmt)
            self._jump(self.cfg.exit)
        elif isinstance(stmt, ast.Break):
            self.emit(stmt)
            if self.loops:
                self._jump(self.loops[-1].after)
            else:  # pragma: no cover - syntactically invalid source
                self._jump(self.cfg.exit)
        elif isinstance(stmt, ast.Continue):
            self.emit(stmt)
            if self.loops:
                self._jump(self.loops[-1].header)
            else:  # pragma: no cover - syntactically invalid source
                self._jump(self.cfg.exit)
        else:
            # Simple statements — including nested function/class
            # definitions, which stay opaque here.
            self.emit(stmt)

    def _visit_if(self, stmt: ast.If) -> None:
        self.emit(stmt.test)
        cond_block = self.current
        cond_dead = self.dead
        after = self.cfg.new_block()

        self._start_block()
        if not cond_dead:
            self.cfg.add_edge(cond_block, self.current)
        self.visit_body(stmt.body)
        self._seal_into(after.block_id)

        if stmt.orelse:
            self._start_block()
            if not cond_dead:
                self.cfg.add_edge(cond_block, self.current)
            self.visit_body(stmt.orelse)
            self._seal_into(after.block_id)
        elif not cond_dead:
            self.cfg.add_edge(cond_block, after.block_id)

        self.current = after.block_id
        self.dead = False

    def _visit_while(self, stmt: ast.While) -> None:
        header = self.cfg.new_block()
        self._seal_into(header.block_id)
        self.current = header.block_id
        self.dead = False
        self.emit(stmt.test)
        header_end = self.current
        after = self.cfg.new_block()

        self.loops.append(_LoopFrame(header.block_id, after.block_id))
        self._start_block(header_end)
        self.visit_body(stmt.body)
        self._seal_into(header.block_id)
        self.loops.pop()

        if stmt.orelse:
            self._start_block(header_end)
            self.visit_body(stmt.orelse)
            self._seal_into(after.block_id)
        else:
            self.cfg.add_edge(header_end, after.block_id)
        self.current = after.block_id
        self.dead = False

    def _visit_for(self, stmt: Union[ast.For, ast.AsyncFor]) -> None:
        header = self.cfg.new_block()
        self._seal_into(header.block_id)
        self.current = header.block_id
        self.dead = False
        # The loop header entry is the For node itself: transfer
        # functions model the iterable evaluation + target binding,
        # rules inspect ``stmt.iter`` with this block's entry state.
        self.emit(stmt)
        header_end = self.current
        after = self.cfg.new_block()

        self.loops.append(_LoopFrame(header.block_id, after.block_id))
        self._start_block(header_end)
        self.visit_body(stmt.body)
        self._seal_into(header.block_id)
        self.loops.pop()

        if stmt.orelse:
            self._start_block(header_end)
            self.visit_body(stmt.orelse)
            self._seal_into(after.block_id)
        else:
            self.cfg.add_edge(header_end, after.block_id)
        self.current = after.block_id
        self.dead = False

    def _visit_try(self, stmt: ast.Try) -> None:
        handler_entries: List[int] = [
            self.cfg.new_block().block_id for _ in stmt.handlers
        ]
        after = self.cfg.new_block()

        if handler_entries:
            self.handlers.append(handler_entries)
        self.visit_body(stmt.body)
        if handler_entries:
            self.handlers.pop()
        body_end = self.current
        body_dead = self.dead

        # else runs only when the body completed normally.
        if stmt.orelse:
            self._start_block()
            if not body_dead:
                self.cfg.add_edge(body_end, self.current)
            self.visit_body(stmt.orelse)
            body_end = self.current
            body_dead = self.dead
        if not body_dead:
            self.cfg.add_edge(body_end, after.block_id)

        for handler, entry in zip(stmt.handlers, handler_entries):
            self.current = entry
            self.dead = False
            self.visit_body(handler.body)
            self._seal_into(after.block_id)

        self.current = after.block_id
        self.dead = False

        # finally: straight-line code after the merge (approximate —
        # exceptional exits through finally are not modelled; the
        # may-analyses here only lose extra widening, never soundness
        # on the normal paths they report on).
        if stmt.finalbody:
            self.visit_body(stmt.finalbody)

    def _visit_with(self, stmt: Union[ast.With, ast.AsyncWith]) -> None:
        for item in stmt.items:
            self.emit(item.context_expr)
        self.visit_body(stmt.body)

    def _visit_match(self, stmt: ast.Match) -> None:
        self.emit(stmt.subject)
        subject_block = self.current
        subject_dead = self.dead
        after = self.cfg.new_block()
        for case in stmt.cases:
            self._start_block()
            if not subject_dead:
                self.cfg.add_edge(subject_block, self.current)
            if case.guard is not None:
                self.emit(case.guard)
            self.visit_body(case.body)
            self._seal_into(after.block_id)
        # No case may match.
        if not subject_dead:
            self.cfg.add_edge(subject_block, after.block_id)
        self.current = after.block_id
        self.dead = False


def build_cfg(fn: FunctionNode) -> CFG:
    """Build the CFG of one ``def`` / ``async def`` body."""
    return _Builder().build(fn)


def iter_child_expressions(entry: CFGEntry) -> List[ast.AST]:
    """All AST nodes of one CFG entry, *excluding* nested function,
    lambda and class bodies (those have their own CFGs).

    For loop headers (``ast.For`` entries) only the iterable is walked —
    the body statements live in their own blocks.
    """
    roots: List[ast.AST]
    if isinstance(entry, (ast.For, ast.AsyncFor)):
        roots = [entry.target, entry.iter]
    else:
        roots = [entry]
    out: List[ast.AST] = []
    stack = list(roots)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            # Opaque: nested scopes are analysed separately. (A lambda's
            # default expressions do evaluate here, but defaults inside
            # emission paths are rare enough to ignore.)
            out.append(node)
            continue
        out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    return out


def iter_functions(
    tree: ast.Module,
) -> List[Tuple[str, FunctionNode, Optional[str]]]:
    """Every function in a module, with qualname and enclosing class.

    Yields ``(qualname, node, class_name)`` where ``class_name`` is the
    *immediately* enclosing class (None for free / nested functions) —
    the granularity the effect summaries and RACE rules key on.
    Deterministic: syntactic order.
    """
    out: List[Tuple[str, FunctionNode, Optional[str]]] = []

    def walk(node: ast.AST, prefix: str, cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                out.append((qual, child, cls))
                walk(child, f"{qual}.", None)
            elif isinstance(child, ast.ClassDef):
                walk(child, f"{prefix}{child.name}.", child.name)
            else:
                # Prefix/class only change at def/class boundaries, so
                # plain recursion finds defs under loops, withs, tries…
                walk(child, prefix, cls)

    walk(tree, "", None)
    return out
