"""Backend selection for the optionally-compiled hot core.

The simulation substrate (:mod:`repro.sim`) and the protocol core
(:mod:`repro.core`) can be compiled to native extension modules with
mypyc (``REPRO_MYPYC=1 pip install -e .`` — see ``setup.py``). The
pure-python source stays the golden reference: both backends must
produce bit-identical runs (enforced by
:mod:`repro.harness.differential`), and the compiled build is purely a
performance feature.

This module is imported *first* by :mod:`repro`'s ``__init__`` (before
any of the compilable modules), because it owns the escape hatch:
setting ``REPRO_COMPILED=0`` in the environment installs a meta-path
finder that forces the listed modules to load from ``.py`` source even
when compiled extensions are installed, so a miscompiled or stale
extension can never block the reference path. ``REPRO_COMPILED=1`` (or
unset) uses the compiled modules when present and silently falls back
to source when not.

It also hosts the :func:`mypyc_attr` shim: the real decorator lives in
``mypy_extensions``, which is only needed at build time. At runtime the
shim is a no-op, so the annotated classes import fine on interpreters
without the mypy toolchain.
"""

from __future__ import annotations

import importlib.machinery
import importlib.util
import os
import sys
from importlib.abc import MetaPathFinder
from importlib.machinery import ModuleSpec
from types import ModuleType
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

#: Modules eligible for mypyc compilation, in dependency order. This is
#: the single source of truth: ``setup.py`` reads it to build the
#: extension list and :func:`backend_info` reads it to report what is
#: actually compiled in the running interpreter.
COMPILED_MODULES = (
    "repro.sim.events",
    "repro.sim.clock",
    "repro.sim.costs",
    "repro.sim.latency",
    "repro.sim.network",
    "repro.sim.process",
    "repro.core.epoch",
    "repro.core.config",
    "repro.core.messages",
    "repro.core.state",
    "repro.core.gc",
    "repro.core.process",
)

#: Native extension suffixes (``.so`` on POSIX, ``.pyd`` on Windows).
_EXT_SUFFIXES = tuple(importlib.machinery.EXTENSION_SUFFIXES)

_T = TypeVar("_T")

try:  # pragma: no cover - exercised only with the build toolchain
    from mypy_extensions import mypyc_attr
except ImportError:

    def mypyc_attr(*attrs: str, **kwargs: Any) -> Callable[[_T], _T]:
        """No-op stand-in for ``mypy_extensions.mypyc_attr``.

        The real decorator only carries build-time metadata for mypyc
        (e.g. ``allow_interpreted_subclasses=True``); at runtime it
        returns the class unchanged, and so does this shim.
        """

        def deco(obj: _T) -> _T:
            return obj

        return deco


class _SourceForcer(MetaPathFinder):
    """Meta-path finder that pins the listed modules to ``.py`` source.

    Installed at the *front* of ``sys.meta_path`` when
    ``REPRO_COMPILED=0``, so it wins against the path finders that would
    otherwise prefer a compiled extension sitting next to the source.
    """

    def __init__(self, names: Sequence[str], root: str) -> None:
        self._names = frozenset(names)
        self._root = root

    def find_spec(
        self,
        fullname: str,
        path: Optional[Sequence[str]] = None,
        target: Optional[ModuleType] = None,
    ) -> Optional[ModuleSpec]:
        if fullname not in self._names:
            return None
        source = os.path.join(self._root, fullname.replace(".", os.sep) + ".py")
        if not os.path.isfile(source):  # pragma: no cover - defensive
            return None
        loader = importlib.machinery.SourceFileLoader(fullname, source)
        return importlib.util.spec_from_file_location(fullname, source, loader=loader)


def _install_source_forcer() -> None:
    # repro/_backend.py lives at <root>/repro/_backend.py; module paths
    # in COMPILED_MODULES are rooted at <root>.
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    sys.meta_path.insert(0, _SourceForcer(COMPILED_MODULES, root))


def compiled_requested() -> bool:
    """False iff the environment forces the pure-python backend."""
    return os.environ.get("REPRO_COMPILED", "1") != "0"


if not compiled_requested():
    _install_source_forcer()


def _is_compiled(mod: ModuleType) -> bool:
    origin = getattr(mod, "__file__", None)
    return origin is not None and origin.endswith(_EXT_SUFFIXES)


def backend_info() -> Dict[str, Any]:
    """Describe which backend the running process is actually using.

    Returns a dict with:

    * ``backend`` — ``"compiled"`` when every eligible module loaded as
      a native extension, ``"pure-python"`` when none did, ``"mixed"``
      otherwise (a broken install; the differential harness treats it
      as compiled so the mismatch is caught, not masked).
    * ``requested`` — the ``REPRO_COMPILED`` contract in effect.
    * ``compiled_modules`` — the eligible modules that are compiled.
    * ``eligible_modules`` — everything in :data:`COMPILED_MODULES`.

    Only modules already imported are inspected; importing ``repro``
    imports all of them, so from user code the answer is complete.
    """
    compiled: List[str] = []
    for name in COMPILED_MODULES:
        mod = sys.modules.get(name)
        if mod is not None and _is_compiled(mod):
            compiled.append(name)
    if not compiled:
        backend = "pure-python"
    elif len(compiled) == len(COMPILED_MODULES):
        backend = "compiled"
    else:  # pragma: no cover - only reachable with a partial build
        backend = "mixed"
    return {
        "backend": backend,
        "requested": "compiled" if compiled_requested() else "pure-python",
        "compiled_modules": compiled,
        "eligible_modules": list(COMPILED_MODULES),
    }
