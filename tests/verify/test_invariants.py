"""Tests for the runtime invariant monitor."""

import pytest

from helpers import MiniSystem, random_workload
from repro.core.epoch import Epoch
from repro.verify import PropertyViolation, attach_monitors
from repro.verify.invariants import InvariantMonitor
from repro.sim.latency import JitteredLatency


def test_monitors_pass_on_clean_runs():
    sys_ = MiniSystem(n_groups=3, latency=JitteredLatency(1.0, 0.2))
    monitors = attach_monitors(sys_.processes)
    assert len(monitors) == 9
    random_workload(sys_, 50, seed=2)
    sys_.run_to_quiescence()
    assert all(m.checks_run > 0 for m in monitors)


def test_monitors_pass_during_failover():
    from repro.core import PrimCastProcess, uniform_groups
    from repro.election import make_oracles
    from repro.sim import ConstantLatency, FailureInjector, Network, Scheduler, child_rng

    config = uniform_groups(2, 3)
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(1, "inv"))
    procs = {pid: PrimCastProcess(pid, config, sched, net) for pid in config.all_pids}
    monitors = attach_monitors(procs)
    oracles = make_oracles(config.groups, procs, sched, 5.0)
    for pid, p in procs.items():
        p.omega = oracles[config.group_of[pid]]
        p.omega.subscribe(p._on_omega_output)
    injector = FailureInjector(sched, procs)
    for i in range(20):
        sched.call_at(i * 1.0, procs[4].a_multicast, {0, 1}, None)
    injector.crash_at(0, 3.0)
    sched.run(until=300)
    # No PropertyViolation raised and the survivors kept making checks.
    assert all(m.checks_run > 0 for m in monitors if m.proc.pid != 0)


def test_clock_regression_detected():
    sys_ = MiniSystem(n_groups=2)
    monitor = InvariantMonitor(sys_.processes[0])
    sys_.multicast(0, {0})
    sys_.run(until=10)
    sys_.processes[0].clock = -1
    with pytest.raises(PropertyViolation, match="backwards"):
        monitor.check()


def test_epoch_regression_detected():
    sys_ = MiniSystem(n_groups=2)
    monitor = InvariantMonitor(sys_.processes[1])
    sys_.processes[1].e_prom = Epoch(3, 1)
    monitor.check()
    sys_.processes[1].e_prom = Epoch(0, 0)
    sys_.processes[1].e_cur = Epoch(0, 0)
    with pytest.raises(PropertyViolation, match="backwards"):
        monitor.check()


def test_role_inconsistency_detected():
    sys_ = MiniSystem(n_groups=2)
    monitor = InvariantMonitor(sys_.processes[1])
    sys_.processes[1].role = "primary"  # but epoch owned by pid 0
    with pytest.raises(PropertyViolation, match="primary"):
        monitor.check()


def test_pending_not_in_t_detected():
    sys_ = MiniSystem(n_groups=2)
    monitor = InvariantMonitor(sys_.processes[0])
    sys_.processes[0].pending.add(("ghost", 0))
    with pytest.raises(PropertyViolation, match="not in T"):
        monitor.check()


def test_bad_delivery_final_detected():
    sys_ = MiniSystem(n_groups=2)
    proc = sys_.processes[0]
    monitor = InvariantMonitor(proc)
    from repro.core.messages import Multicast

    with pytest.raises(PropertyViolation, match="above own clock"):
        proc._deliver_probe = None
        monitor._on_deliver(proc, Multicast((9, 9), frozenset({0})), proc.clock + 10)
