"""Heartbeat-based leader oracle Ω for the asyncio backend (§2.1).

The simulation's :class:`~repro.election.omega.OmegaOracle` reads each
process's ``crashed`` flag — local knowledge that does not exist across
OS processes. The net backend implements the same oracle abstraction
with the classic partially-synchronous construction [Aguilera et al.,
DISC'01]: every node heartbeats its group peers at a fixed interval; a
peer not heard from within the suspicion timeout is suspected; the
output is the first non-suspected member in preference order. Both
implementations satisfy :class:`repro.net.runtime.LeaderOracle`, so the
protocol process cannot tell them apart.

Startup matches the sim: the initial output is the group's first member
(the configured initial primary), and every peer starts with a startup
grace period (``grace_ms``, default the suspicion timeout) so a slow
first heartbeat does not trigger a spurious election while the cluster
is still wiring up. All three intervals are carried in the Topology
JSON, so a bench can stretch the heartbeat cadence instead of paying
oracle traffic on the measured path.

Callbacks fire from scheduler context (the oracle's tick is a scheduler
timer), preserving the same serialisation the sim oracle provides.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

LeaderCallback = Callable[[int, int], None]  # (group_id, leader_pid)

#: Defaults tuned for localhost clusters: sub-second failover without
#: false suspicions under normal scheduling jitter.
DEFAULT_HB_INTERVAL_MS = 50.0
DEFAULT_SUSPECT_MS = 500.0


class HeartbeatOmega:
    """Leader oracle for one group, driven by heartbeat receipt times.

    Args:
        group_id: the group this oracle serves.
        members: group member pids in preference order (first correct
            member wins — same rule as the sim oracle).
        own_pid: the hosting node's pid (never suspected locally).
        scheduler: the node's scheduler facade (timers + ``now``).
        send_heartbeat: callback emitting one heartbeat round to the
            group peers (wired to the node's transport).
        hb_interval_ms: heartbeat/evaluation period.
        suspect_ms: silence threshold before a peer is suspected.
        grace_ms: startup window during which a never-heard peer is not
            suspected (``None`` — the default — means ``suspect_ms``,
            the pre-configurable behaviour).
    """

    def __init__(
        self,
        group_id: int,
        members: List[int],
        own_pid: int,
        scheduler: Any,
        send_heartbeat: Callable[[], None],
        hb_interval_ms: float = DEFAULT_HB_INTERVAL_MS,
        suspect_ms: float = DEFAULT_SUSPECT_MS,
        grace_ms: float | None = None,
    ) -> None:
        if not members:
            raise ValueError("group must have at least one member")
        if hb_interval_ms <= 0 or suspect_ms <= 0:
            raise ValueError("heartbeat and suspicion intervals must be positive")
        if grace_ms is not None and grace_ms <= 0:
            raise ValueError("grace period must be positive")
        self.group_id = group_id
        self.members = list(members)
        self.own_pid = own_pid
        self.scheduler = scheduler
        self.send_heartbeat = send_heartbeat
        self.hb_interval_ms = hb_interval_ms
        self.suspect_ms = suspect_ms
        self.grace_ms = suspect_ms if grace_ms is None else grace_ms
        self.leader = members[0]
        self._subscribers: List[LeaderCallback] = []
        self._last_heard: Dict[int, float] = {}
        self._running = False

    # -- oracle interface (LeaderOracle) ---------------------------------

    def subscribe(self, callback: LeaderCallback) -> None:
        """Register ``callback(group_id, leader_pid)``; fires immediately
        with the current output (Ω always has an output)."""
        self._subscribers.append(callback)
        callback(self.group_id, self.leader)

    # -- lifecycle -------------------------------------------------------

    def start(self) -> None:
        """Prime the grace period and start the heartbeat/suspect timer.

        A peer never heard from counts as last heard at ``now +
        grace_ms - suspect_ms``: suspicion starts exactly ``grace_ms``
        after start, independent of the suspicion threshold.
        """
        if self._running:
            return
        self._running = True
        primed = self.scheduler.now + self.grace_ms - self.suspect_ms
        for pid in self.members:
            if pid != self.own_pid:
                self._last_heard[pid] = primed
        self.scheduler.call_after(self.hb_interval_ms, self._tick)

    def stop(self) -> None:
        self._running = False

    def heard_from(self, pid: int) -> None:
        """Record a heartbeat (or any frame) from a group member."""
        self._last_heard[pid] = self.scheduler.now

    def suspected(self, pid: int) -> bool:
        """True when ``pid`` is currently suspected by this node."""
        if pid == self.own_pid:
            return False
        last = self._last_heard.get(pid)
        if last is None:
            return True
        return (self.scheduler.now - last) > self.suspect_ms

    # -- internals -------------------------------------------------------

    def _elect(self) -> int:
        for pid in self.members:
            if not self.suspected(pid):
                return pid
        # Everyone suspected (e.g. total partition): keep the previous
        # output, matching the sim oracle's all-crashed behaviour.
        return self.leader

    def _tick(self) -> None:
        if not self._running:
            return
        self.send_heartbeat()
        new_leader = self._elect()
        if new_leader != self.leader:
            self.leader = new_leader
            for callback in self._subscribers:
                callback(self.group_id, new_leader)
        self.scheduler.call_after(self.hb_interval_ms, self._tick)
