"""Shared plumbing for the baseline protocols.

All protocols in this repo (PrimCast and the baselines it is evaluated
against) expose the same duck-typed endpoint surface, so the workload
harness can swap them freely:

* ``a_multicast(dest_groups, payload) -> Multicast``
* ``add_deliver_hook(hook)`` with ``hook(process, multicast, final_ts)``
* ``delivery_log`` — ``[(mid, final_ts, sim_time), ...]``
* ``delivered`` — set of delivered mids
* ``gid`` — the process's group id
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Set, Tuple

from ..core.config import GroupConfig
from ..core.messages import MessageId, Multicast
from ..rmcast.fifo import RMcastProcess
from ..sim.costs import CostModel
from ..sim.events import Scheduler
from ..sim.network import Network

DeliverHook = Callable[["GroupProtocolProcess", Multicast, int], None]


class GroupProtocolProcess(RMcastProcess):
    """Base for group-based atomic multicast processes."""

    def __init__(
        self,
        pid: int,
        config: GroupConfig,
        scheduler: Scheduler,
        network: Network,
        cost_model: Optional[CostModel] = None,
        relay: bool = False,
        batching_ms: float = 0.0,
    ):
        super().__init__(
            pid, scheduler, network, cost_model, relay=relay, batching_ms=batching_ms
        )
        if pid not in config.group_of:
            raise ValueError(f"pid {pid} is not a member of any group")
        self.config = config
        self.gid = config.group_of[pid]
        self.group_members = config.members(self.gid)
        self.delivered: Set[MessageId] = set()
        self.delivery_log: List[Tuple[MessageId, int, float]] = []
        self.deliver_hooks: List[DeliverHook] = []
        self._next_seq = 0

    def add_deliver_hook(self, hook: DeliverHook) -> None:
        """Register ``hook(process, multicast, final_ts)`` on a-deliver."""
        self.deliver_hooks.append(hook)

    def a_multicast(self, dest: Iterable[int], payload: Any = None) -> Multicast:
        """Atomically multicast ``payload`` to destination groups."""
        mid = (self.pid, self._next_seq)
        self._next_seq += 1
        multicast = Multicast(mid, frozenset(dest), payload)
        self.a_multicast_m(multicast)
        return multicast

    def a_multicast_m(self, multicast: Multicast) -> None:
        """Protocol-specific submission; override."""
        raise NotImplementedError

    def _record_delivery(self, multicast: Multicast, final_ts: int) -> None:
        self.delivered.add(multicast.mid)
        self.delivery_log.append((multicast.mid, final_ts, self.scheduler.now))
        for hook in self.deliver_hooks:
            hook(self, multicast, final_ts)
