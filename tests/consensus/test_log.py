"""Tests for the replicated log (multi-decree Paxos)."""

import pytest

from repro.consensus import ReplicatedLog
from repro.sim import ConstantLatency, JitteredLatency, Network, Scheduler, child_rng
from repro.sim.process import SimProcess


class LogHost(SimProcess):
    def __init__(self, pid, sched, net, members):
        super().__init__(pid, sched, net)
        self.applied = []
        self.log = ReplicatedLog(
            pid,
            members,
            send_fn=self._send_all,
            on_apply=lambda slot, cmd: self.applied.append((slot, cmd)),
        )

    def _send_all(self, pids, msg):
        for dst in pids:
            self.send(dst, msg)

    def on_message(self, src, msg):
        assert self.log.handle(src, msg)


def build(n=3, latency=None):
    sched = Scheduler()
    net = Network(sched, latency or ConstantLatency(1.0), child_rng(4, "log"))
    members = list(range(n))
    hosts = [LogHost(i, sched, net, members) for i in members]
    return sched, hosts


def test_commands_applied_in_slot_order_everywhere():
    sched, hosts = build()
    for i in range(10):
        hosts[0].log.append(f"cmd-{i}")
    sched.run()
    expected = [(i, f"cmd-{i}") for i in range(10)]
    for h in hosts:
        assert h.applied == expected


def test_apply_waits_for_gaps():
    """A slot decided out of order is buffered until the gap closes."""
    sched, hosts = build()
    host = hosts[1]
    host.log._on_decide(("slot", 2), "c")
    assert host.applied == []
    host.log._on_decide(("slot", 0), "a")
    assert host.applied == [(0, "a")]
    host.log._on_decide(("slot", 1), "b")
    assert host.applied == [(0, "a"), (1, "b"), (2, "c")]
    assert host.log.decided_upto() == 3


def test_only_leader_appends():
    sched, hosts = build()
    with pytest.raises(RuntimeError):
        hosts[1].log.append("nope")


def test_jitter_does_not_reorder_application():
    sched, hosts = build(n=5, latency=JitteredLatency(2.0, 0.5))
    for i in range(40):
        hosts[0].log.append(i)
    sched.run()
    for h in hosts:
        assert [cmd for _, cmd in h.applied] == list(range(40))


def test_minority_crash_still_decides():
    sched, hosts = build(n=5)
    hosts[3].crash()
    hosts[4].crash()
    for i in range(5):
        hosts[0].log.append(i)
    sched.run()
    for h in hosts[:3]:
        assert len(h.applied) == 5


def test_value_at():
    sched, hosts = build()
    hosts[0].log.append("x")
    sched.run()
    assert hosts[2].log.value_at(0) == "x"
    assert hosts[2].log.value_at(99) is None
