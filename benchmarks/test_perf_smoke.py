"""Perf smoke bench: substrate wall-clock, §7.1 batching delta, and the
parallel sweep executor + result cache scaling pass.

Unlike the figure/table benches this one times the *simulator itself*:
it pins the >= 2x wall-clock speedup of the substrate overhaul against
the seed-revision baseline on a standard Fig-3 load point (batching off,
so the run is bit-identical to the seed protocol behaviour), measures
the wire-message reduction of the opt-in ack/bump batching layer, times
the Fig-3 reduced sweep serial vs ``--jobs N`` vs warm-cache, and
records everything in ``BENCH_perf.json`` at the repository root.

Runs with plain pytest — no pytest-benchmark fixture needed::

    PYTHONPATH=src python -m pytest benchmarks/test_perf_smoke.py -q

``REPRO_JOBS`` sets the worker count of the sweep-scaling pass (default:
the machine's CPU count; CI pins 2).
"""

import os
from dataclasses import asdict

from repro.harness.perf import (
    SEED_BASELINE,
    batching_delta,
    measure_campaign_pool,
    measure_chaos_campaign,
    measure_fleet_scale,
    measure_load_point,
    measure_steady_state,
    measure_sweep_scaling,
    speedup_vs_seed,
    update_bench,
)


def test_substrate_speedup_vs_seed():
    # compaction off: the state-GC daemon adds timer events of its own,
    # and this test pins the *seed* event schedule exactly.
    perf = measure_load_point(
        protocol="primcast",
        n_dest_groups=2,
        outstanding=32,
        warmup_ms=300.0,
        measure_ms=400.0,
        batching_ms=0.0,
        repeats=3,
        point=SEED_BASELINE["point"],
        compaction_interval_ms=0.0,
    )
    speedup = speedup_vs_seed(perf)
    payload = asdict(perf)
    payload["speedup_vs_seed"] = speedup
    update_bench("substrate", payload)
    print(
        f"\n{perf.point}: wall {perf.wall_s:.2f}s (seed {SEED_BASELINE['wall_s']}s), "
        f"{perf.events_per_sec:,.0f} events/s, speedup {speedup:.2f}x"
    )
    # Determinism guard: the optimised substrate must execute exactly the
    # event schedule the seed did.
    assert perf.events == SEED_BASELINE["events"]
    # The tentpole acceptance bar: >= 2x vs the seed revision.
    assert speedup >= 2.0, (
        f"substrate speedup regressed: {speedup:.2f}x < 2x "
        f"({perf.wall_s:.2f}s vs seed {SEED_BASELINE['wall_s']}s)"
    )


def test_batching_reduces_wire_messages():
    delta = batching_delta(
        protocol="primcast", n_dest_groups=2, outstanding=8, batching_ms=2.0
    )
    update_bench("batching", delta)
    off, on = delta["off"], delta["on"]
    print(
        f"\nbatching {delta['batching_ms']}ms: wire messages "
        f"{off['wire_messages']} -> {on['wire_messages']} "
        f"(-{delta['wire_reduction']:.0%}), "
        f"throughput {off['throughput']:.0f} -> {on['throughput']:.0f} msg/s"
    )
    # Batching must merge a substantial share of the ack/bump traffic
    # into batch wire messages without wrecking throughput.
    assert on["wire_messages"] < off["wire_messages"]
    assert delta["wire_reduction"] > 0.2
    assert on["message_counts"].get("batch", 0) > 0
    assert on["throughput"] > 0.8 * off["throughput"]


def test_parallel_sweep_and_result_cache_scaling():
    """Fig-3 reduced sweep (d=2, 16 points): serial vs parallel vs warm
    cache, recorded as the ``parallel_sweep`` section of BENCH_perf.json.

    Correctness gates are hard (bit-identical rows at any job count;
    warm pass serves every point from cache, i.e. zero simulation);
    wall-clock gates are soft because shared runners are noisy and the
    parallel speedup is bounded by the machine's core count — the
    recorded artifact is the signal.
    """
    jobs = int(os.environ.get("REPRO_JOBS", "0"))
    scaling = measure_sweep_scaling(jobs=jobs)
    update_bench("parallel_sweep", scaling)
    print(
        f"\n{scaling['point']}: serial {scaling['serial_s']:.1f}s, "
        f"jobs={scaling['jobs']} {scaling['parallel_s']:.1f}s "
        f"({scaling['parallel_speedup']:.2f}x), warm cache "
        f"{scaling['warm_cache_s']:.2f}s ({scaling['cache_speedup']:.0f}x, "
        f"{scaling['warm_hits']}/{scaling['points']} hits)"
    )
    # The executor contract: fan-out and memoization change wall-clock
    # only — every row stays field-for-field identical to serial.
    assert scaling["identical"]
    assert scaling["warm_identical"]
    # Warm cache == zero simulation executed.
    assert scaling["warm_ran"] == 0
    assert scaling["warm_hits"] == scaling["points"]
    assert scaling["warm_cache_s"] < scaling["serial_s"]


def test_campaign_pool_runtime():
    """Persistent worker-pool campaign runtime, recorded as the
    ``campaign_pool`` section of BENCH_perf.json.

    Three sub-measurements, all hard-gated (DESIGN.md §11):

    * **overhead** — a 200-case campaign of free probe specs through the
      pre-PR-8 fresh-``Pool``-per-sweep path vs one persistent
      :class:`WorkerPool`; the pool must cut non-simulation overhead
      (spawn + import + dispatch) >= 3x at the same job count;
    * **thousand-seed chaos campaign** — must complete clean, and a
      resume over the streamed-in result cache must re-execute zero
      cases while reproducing the byte-identical report;
    * **fleet scale** — the paper's 8-group/24-process deployment at
      d=8 plus the 20-group/60-process LAN fleet, pooled rows
      field-for-field identical to serial.
    """
    jobs = int(os.environ.get("REPRO_JOBS", "0")) or 2
    overhead = measure_campaign_pool(jobs=jobs)
    campaign = measure_chaos_campaign(jobs=jobs)
    fleet = measure_fleet_scale(jobs=jobs)
    payload = {"overhead": overhead, "chaos_campaign": campaign, "fleet": fleet}
    update_bench("campaign_pool", payload)
    print(
        f"\ncampaign_pool: {overhead['cases']} cases, fresh-pool "
        f"{overhead['fresh_pool_s']:.2f}s vs persistent "
        f"{overhead['persistent_pool_s']:.2f}s "
        f"({overhead['overhead_reduction']:.1f}x); "
        f"{campaign['seeds']}-seed campaign {campaign['cold_s']:.1f}s "
        f"({campaign['violations']} violations), resume "
        f"{campaign['resume_simulated']} re-runs; fleet "
        f"{fleet['max_processes']} procs identical={fleet['identical']}"
    )
    # Amortized fan-out: the acceptance bar is >= 3x less orchestration
    # overhead than the fresh-pool-per-sweep path on a >= 200-case
    # campaign.
    assert overhead["cases"] >= 200
    assert overhead["overhead_reduction"] >= 3.0, (
        f"persistent pool overhead gate: {overhead['overhead_reduction']:.2f}x "
        f"< 3x ({overhead['persistent_pool_s']:.3f}s vs fresh "
        f"{overhead['fresh_pool_s']:.3f}s)"
    )
    # Workers are spawned once and reused across every batch.
    assert overhead["pool"]["spawned"] == jobs
    assert overhead["pool"]["batches"] == overhead["batches"]
    # The 1000-seed campaign completes clean and checkpoint/resume is
    # exact: zero re-executions, byte-identical report.
    assert campaign["seeds"] >= 1000
    assert campaign["violations"] == 0
    assert campaign["cold_simulated"] == campaign["seeds"]
    assert campaign["resume_simulated"] == 0
    assert campaign["resume_hits"] == campaign["seeds"]
    assert campaign["resume_identical"]
    # Fleet scale: >= 8 groups (24+ processes) through the pool, rows
    # identical to serial.
    assert fleet["max_processes"] >= 60
    assert any(p["processes"] >= 24 for p in fleet["points"])
    assert fleet["identical"]


def test_steady_state_memory_bound():
    """Sustained LAN run, state GC on vs off, recorded as the
    ``steady_state`` section of BENCH_perf.json.

    Hard gates are the tentpole acceptance criteria: GC-on peak
    tracemalloc bytes past warmup under half of GC-off, and delivered
    throughput unchanged (the simulated schedule is identical, so the
    ratio is exactly 1.0 — asserted with a little float slack).
    Events/sec drift within a run is recorded but soft: wall-clock on
    shared runners is noisy.
    """
    steady = measure_steady_state()
    update_bench("steady_state", steady)
    on, off = steady["gc_on"], steady["gc_off"]
    print(
        f"\n{steady['point']}: peak {on['peak_bytes'] / 1e6:.1f}MB (GC on, "
        f"{on['compaction_runs']} sweeps, {on['compaction_freed']} freed) vs "
        f"{off['peak_bytes'] / 1e6:.1f}MB (GC off) = {steady['peak_ratio']:.2f}x; "
        f"throughput {on['throughput']:.0f} vs {off['throughput']:.0f} msg/s, "
        f"drift {on['events_per_sec_drift']:.2f} vs {off['events_per_sec_drift']:.2f}"
    )
    # The tentpole memory bar: bounded steady state means well under
    # half the unbounded run's peak on a sustained workload.
    assert steady["peak_ratio"] < 0.5, (
        f"state GC memory bound regressed: GC-on peak is "
        f"{steady['peak_ratio']:.2f}x of GC-off (bar: < 0.5)"
    )
    # Identical schedules deliver identical messages: GC must not cost
    # throughput (ratio exactly 1.0 up to float formatting).
    assert steady["throughput_ratio"] > 0.999
    assert on["delivered"] == off["delivered"]
    assert on["compaction_runs"] > 0 and on["compaction_freed"] > 0


def test_compiled_core_restructuring_speedup():
    """Compiled-core PR gates, recorded as the ``compiled_core`` section
    of BENCH_perf.json.

    Two independent bars (DESIGN.md §9):

    * the pure-python restructuring (slotted hot classes, per-pair
      channel cache, bitmask ack trackers, monomorphic run loop) must be
      >= 1.2x over the pre-restructuring substrate record — the compiled
      backend is opt-in, so the interpreter path has to pay for itself;
    * when the mypyc extensions are built, the compiled backend must be
      >= 3x over the same record (measured in a REPRO_COMPILED=1
      subprocess). Without the build toolchain the compiled half is
      recorded as unavailable — never silently measured as pure python.

    The event-count pin doubles as the determinism guard: both backends
    execute exactly the seed schedule.
    """
    import json
    import subprocess
    import sys

    from repro.harness.perf import PRE_RESTRUCTURE_BASELINE

    perf = measure_load_point(
        protocol="primcast",
        n_dest_groups=2,
        outstanding=32,
        warmup_ms=300.0,
        measure_ms=400.0,
        batching_ms=0.0,
        repeats=5,
        point=PRE_RESTRUCTURE_BASELINE["point"],
        compaction_interval_ms=0.0,
    )
    assert perf.events == PRE_RESTRUCTURE_BASELINE["events"]
    pure_ratio = PRE_RESTRUCTURE_BASELINE["wall_s"] / perf.wall_s

    payload = {
        "restructure_baseline": PRE_RESTRUCTURE_BASELINE,
        "pure_python": asdict(perf),
        "pure_python_speedup_vs_prerestructure": round(pure_ratio, 4),
        "pure_python_speedup_vs_seed": round(speedup_vs_seed(perf), 4),
    }

    env = dict(os.environ)
    env["REPRO_COMPILED"] = "1"
    probe = subprocess.run(
        [
            sys.executable,
            "-c",
            "import json, repro; print(json.dumps(repro.backend_info()))",
        ],
        capture_output=True,
        text=True,
        env=env,
    )
    assert probe.returncode == 0, probe.stderr
    compiled_available = json.loads(probe.stdout)["backend"] != "pure-python"

    compiled_ratio = None
    if compiled_available:
        run = subprocess.run(
            [sys.executable, "-m", "repro.harness.perf", "--json", "--repeats", "5"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert run.returncode == 0, run.stdout + run.stderr
        row = json.loads(run.stdout)
        assert row["backend"] == "compiled"
        assert row["events"] == PRE_RESTRUCTURE_BASELINE["events"]
        compiled_ratio = PRE_RESTRUCTURE_BASELINE["wall_s"] / row["wall_s"]
        payload["compiled"] = {
            "status": "measured",
            "row": row,
            "speedup_vs_prerestructure": round(compiled_ratio, 4),
        }
    else:
        payload["compiled"] = {
            "status": "unavailable",
            "reason": "mypyc build toolchain not installed in this "
            "environment (REPRO_MYPYC=1 install required)",
        }

    update_bench("compiled_core", payload)
    print(
        f"\ncompiled_core: pure-python {perf.wall_s:.2f}s = "
        f"{pure_ratio:.2f}x vs pre-restructure "
        f"{PRE_RESTRUCTURE_BASELINE['wall_s']}s; compiled "
        + (f"{compiled_ratio:.2f}x" if compiled_ratio else "unavailable")
    )
    assert pure_ratio >= 1.2, (
        f"pure-python restructuring gate: {pure_ratio:.2f}x < 1.2x "
        f"({perf.wall_s:.2f}s vs pre-restructure "
        f"{PRE_RESTRUCTURE_BASELINE['wall_s']}s)"
    )
    if compiled_ratio is not None:
        assert compiled_ratio >= 3.0, (
            f"compiled backend gate: {compiled_ratio:.2f}x < 3x "
            f"vs pre-restructure {PRE_RESTRUCTURE_BASELINE['wall_s']}s"
        )
