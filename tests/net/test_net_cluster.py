"""In-process asyncio cluster tests: differential vs sim + kill failover.

These run the *real* asyncio backend — real sockets on loopback, real
monotonic clocks, the same ``PrimCastProcess`` objects as the simulator
— inside a single OS process (every node is a task on one event loop),
which keeps them fast enough for tier-1. The multi-OS-process variant
of exactly this workload runs in CI's ``net-smoke`` job via
``python -m repro.net diff``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.net.cluster import ClusterSpec, make_topology, run_cluster_inprocess
from repro.net.differential import (
    diff_cluster_result,
    run_sim_reference,
    verify_cluster_logs,
)
from repro.net.workload import (
    expected_count,
    make_client_plans,
    make_workload,
    plans_expected_count,
)


def _run(spec: ClusterSpec, tmp_path, kill_pid=None, kill_after=0):
    topology = make_topology(spec)
    return asyncio.run(
        run_cluster_inprocess(
            topology, tmp_path, kill_pid=kill_pid, kill_after=kill_after
        )
    )


def test_workload_is_deterministic_and_rooted_in_group_zero():
    a = make_workload(3, 20, seed=9)
    b = make_workload(3, 20, seed=9)
    assert a == b
    assert all(0 in dest for dest in a)
    assert make_workload(3, 20, seed=10) != a
    assert expected_count(a, 0) == 20


def test_asyncio_cluster_matches_sim_reference(tmp_path):
    spec = ClusterSpec(n_groups=2, group_size=3, n_messages=8, seed=5)
    result = _run(spec, tmp_path)
    assert result.ok, [(o.pid, o.exit_code) for o in result.outcomes.values()]
    problems = diff_cluster_result(result)
    assert problems == []
    # Sanity: the sim reference itself delivered the full workload.
    reference = run_sim_reference(result.topology)
    workload = result.topology.workload()
    for pid in range(spec.group_size):  # group 0 sees every message
        assert len(reference[pid]) == len(workload)


def test_asyncio_cluster_survives_killed_leader(tmp_path):
    # Kill group 1's initial leader (pid 3) after 2 driver deliveries:
    # the survivors must elect a new leader, resume delivery, finish the
    # whole workload, and still agree with the failure-free simulator.
    spec = ClusterSpec(
        n_groups=2,
        group_size=3,
        n_messages=8,
        seed=5,
        kill_pid=3,
        kill_after=2,
        suspect_ms=300.0,
    )
    result = _run(spec, tmp_path, kill_pid=3, kill_after=2)
    assert 3 not in result.survivors
    workload = result.topology.workload()
    config = result.topology.make_config()
    for pid in result.survivors:
        outcome = result.outcomes[pid]
        assert outcome.exit_code == 0, (pid, outcome.exit_code)
        assert len(outcome.delivered) == expected_count(
            workload, config.group_of[pid]
        )
    assert diff_cluster_result(result) == []
    # At least one survivor in the victim's group observed the epoch
    # change that failover requires.
    epochs = [
        (result.outcomes[pid].summary or {}).get("epochs_seen", 0)
        for pid in result.survivors
        if config.group_of[pid] == 1
    ]
    assert any(e > 0 for e in epochs), epochs


def test_asyncio_cluster_binary_codec_matches_sim_reference(tmp_path):
    # The exact sequential differential must hold bit-identically under
    # the binary codec + write coalescing: the wire encoding is
    # transport plumbing, invisible to the protocol.
    spec = ClusterSpec(
        n_groups=2, group_size=3, n_messages=8, seed=5, codec="binary"
    )
    result = _run(spec, tmp_path)
    assert result.ok, [(o.pid, o.exit_code) for o in result.outcomes.values()]
    assert diff_cluster_result(result) == []
    # The nodes really spoke binary: coalescing stats show multi-frame
    # writes and binary frames are far smaller than the JSON baseline.
    stats = [
        (o.summary or {}).get("transport", {}) for o in result.outcomes.values()
    ]
    assert all(s.get("frames_sent", 0) > 0 for s in stats)
    total_frames = sum(s["frames_sent"] for s in stats)
    total_bytes = sum(s["bytes_sent"] for s in stats)
    assert total_bytes / total_frames < 150  # JSON averages ~270 B/frame


def test_open_loop_cluster_passes_statistical_checks(tmp_path):
    # K concurrent windowed clients over real sockets: the exact
    # differential no longer applies (interleaving is timing-dependent)
    # but every safety property must hold over the merged logs.
    spec = ClusterSpec(
        n_groups=2,
        group_size=3,
        n_messages=24,
        seed=7,
        driver_mode="open",
        clients=4,
        window=3,
        rate_hz=200.0,
        codec="binary",
    )
    result = _run(spec, tmp_path)
    assert result.ok, [(o.pid, o.exit_code) for o in result.outcomes.values()]
    assert verify_cluster_logs(result) == []
    summaries = [o.summary for o in result.outcomes.values() if o.summary]
    assert sum(s["submitted"] for s in summaries) == spec.n_messages
    # Submitters measured their own end-to-end latencies.
    assert any(s["latencies_ms"] for s in summaries)


def test_client_plans_are_deterministic_and_home_rooted():
    homes = [0, 1, 0, 1]
    a = make_client_plans(2, 20, 4, seed=3, home_gids=homes)
    b = make_client_plans(2, 20, 4, seed=3, home_gids=homes)
    assert a == b
    assert make_client_plans(2, 20, 4, seed=4, home_gids=homes) != a
    # Round-robin deal: 20 messages over 4 clients = 5 each.
    assert [len(plan) for plan in a] == [5, 5, 5, 5]
    # The pin: every destination set includes the client's home group
    # (the submitter must observe its own deliveries to free its
    # window slot).
    for cid, plan in enumerate(a):
        assert all(homes[cid] in dests for dests in plan)
    assert sum(plans_expected_count(a, g) for g in (0, 1)) >= 20


def test_cluster_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(n_groups=2, group_size=3, n_messages=4, kill_pid=0).validate()
    with pytest.raises(ValueError):
        ClusterSpec(n_groups=2, group_size=2, n_messages=4, kill_pid=3).validate()
    with pytest.raises(ValueError):
        ClusterSpec(n_groups=2, group_size=3, n_messages=4, kill_pid=99).validate()
    ClusterSpec(n_groups=2, group_size=3, n_messages=4, kill_pid=3).validate()
    # Open-driver validation: needs clients/window >= 1, no kill.
    with pytest.raises(ValueError):
        ClusterSpec(
            n_groups=2, group_size=3, n_messages=4, driver_mode="open", clients=0
        ).validate()
    with pytest.raises(ValueError):
        ClusterSpec(
            n_groups=2, group_size=3, n_messages=4, driver_mode="open", kill_pid=3
        ).validate()
    with pytest.raises(ValueError):
        ClusterSpec(n_groups=2, group_size=3, n_messages=4, codec="msgpack").validate()
    ClusterSpec(
        n_groups=2, group_size=3, n_messages=4, driver_mode="open", clients=2
    ).validate()
