"""White-Box atomic multicast [Gotsman, Lefort, Chockler — DSN'19] (§4.2).

The stronger of the paper's two baselines: collision-free/failure-free
latency of 3/5 steps at group *primaries* and 4/6 at followers. Unlike
PrimCast, followers cannot deliver on their own — they follow explicit
``deliver`` messages from their primary, which is where the extra
communication step comes from, and both primaries and followers must wait
for quorums before forwarding information (the behaviour §7.5 blames for
White-Box's convoy sensitivity).

Protocol (failure-free path, the one the paper's evaluation exercises):

1. The sender sends ``m`` to the primary of each group in ``m.dest``.
2. Each primary picks a local timestamp from its clock and sends it as an
   ``accept`` to every process in every destination group.
3. A process that has the accept from *every* primary in ``m.dest``
   stores its group's proposal, bumps its clock to the largest proposal,
   and acks to each primary in ``m.dest``.
4. A primary with all accepts and a quorum of acks *from each
   destination group* fixes the final timestamp (max of proposals),
   a-delivers in final-timestamp order, and sends ``deliver`` to its
   followers.
5. Followers a-deliver in the order of the primary's deliver messages.

Message complexity per multicast to k groups of n (Table 1):
``k + k²n + k²n + kn``.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..core.config import GroupConfig
from ..core.messages import MessageId, Multicast
from ..sim.costs import CostModel
from ..sim.events import Scheduler
from ..sim.network import Network
from .base import GroupProtocolProcess
from .delivery import DeliveryQueue


class WbStart:
    """Step 1: sender → destination primaries."""

    __slots__ = ("multicast",)
    kind = "start"

    def __init__(self, multicast: Multicast):
        self.multicast = multicast

    @property
    def mid(self) -> MessageId:
        return self.multicast.mid


class WbAccept:
    """Step 2: primary's local-timestamp proposal, to all dest processes."""

    __slots__ = ("multicast", "group", "ts", "sender")
    kind = "wb-accept"

    def __init__(self, multicast: Multicast, group: int, ts: int, sender: int):
        self.multicast = multicast
        self.group = group
        self.ts = ts
        self.sender = sender

    @property
    def mid(self) -> MessageId:
        return self.multicast.mid


class WbAck:
    """Step 3: destination process → each destination primary."""

    __slots__ = ("mid", "group", "sender")
    kind = "wb-ack"

    def __init__(self, mid: MessageId, group: int, sender: int):
        self.mid = mid
        self.group = group
        self.sender = sender


class WbDeliver:
    """Step 4→5: primary → followers, delivery order inside the group."""

    __slots__ = ("multicast", "final_ts")
    kind = "wb-deliver"

    def __init__(self, multicast: Multicast, final_ts: int):
        self.multicast = multicast
        self.final_ts = final_ts

    @property
    def mid(self) -> MessageId:
        return self.multicast.mid


WHITEBOX_KINDS = ("start", "wb-accept", "wb-ack", "wb-deliver")


class WhiteBoxProcess(GroupProtocolProcess):
    """One group member of the White-Box protocol (stable primaries)."""

    def __init__(
        self,
        pid: int,
        config: GroupConfig,
        scheduler: Scheduler,
        network: Network,
        cost_model: Optional[CostModel] = None,
        batching_ms: float = 0.0,
    ):
        super().__init__(
            pid, config, scheduler, network, cost_model, batching_ms=batching_ms
        )
        self.is_primary = config.initial_leader(self.gid) == pid
        self.clock = 0
        # shared: accepts seen per message (gid -> ts)
        self._accepts: Dict[MessageId, Dict[int, int]] = {}
        self._multicasts: Dict[MessageId, Multicast] = {}
        self._acked: Set[MessageId] = set()
        # primary-only state
        self._my_ts: Dict[MessageId, int] = {}
        self._acks: Dict[MessageId, Dict[int, Set[int]]] = {}
        self._final: Dict[MessageId, int] = {}
        self._queue = DeliveryQueue(self._min_final)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def a_multicast_m(self, multicast: Multicast) -> None:
        """Step 1: to the primary of each destination group."""
        primaries = [self.config.initial_leader(g) for g in sorted(multicast.dest)]
        self.r_multicast(WbStart(multicast), primaries)

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    def on_r_deliver(self, origin: int, payload: Any) -> None:
        if isinstance(payload, WbAccept):
            self._on_accept(payload)
        elif isinstance(payload, WbAck):
            self._on_ack(payload)
        elif isinstance(payload, WbStart):
            self._on_start(payload.multicast)
        elif isinstance(payload, WbDeliver):
            self._on_deliver_msg(payload)
        else:
            raise TypeError(f"unexpected payload {payload!r}")

    def _on_start(self, multicast: Multicast) -> None:
        """Step 2 (primaries only receive starts)."""
        if not self.is_primary:
            raise AssertionError("start reached a follower")
        mid = multicast.mid
        if mid in self._my_ts or mid in self.delivered:
            return
        self._multicasts[mid] = multicast
        self.clock += 1
        self._my_ts[mid] = self.clock
        self._queue.add_pending(mid)
        accept = WbAccept(multicast, self.gid, self.clock, self.pid)
        self.r_multicast(accept, self.config.dest_pids(multicast.dest))

    def _on_accept(self, msg: WbAccept) -> None:
        """Step 3, plus final-timestamp tracking at primaries."""
        mid = msg.mid
        self._multicasts.setdefault(mid, msg.multicast)
        accepts = self._accepts.setdefault(mid, {})
        accepts[msg.group] = msg.ts
        multicast = msg.multicast
        if len(accepts) == len(multicast.dest):
            highest = max(accepts.values())
            if highest > self.clock:
                self.clock = highest
            if mid not in self._acked:
                self._acked.add(mid)
                ack = WbAck(mid, self.gid, self.pid)
                for gid in sorted(multicast.dest):
                    self.r_multicast(ack, [self.config.initial_leader(gid)])
            if self.is_primary:
                self._final[mid] = highest
                self._maybe_commit(mid)
                self._try_deliver()

    def _on_ack(self, msg: WbAck) -> None:
        if not self.is_primary:
            return
        self._acks.setdefault(msg.mid, {}).setdefault(msg.group, set()).add(msg.sender)
        self._maybe_commit(msg.mid)
        self._try_deliver()

    def _on_deliver_msg(self, msg: WbDeliver) -> None:
        """Step 5: followers deliver in the primary's order (FIFO link)."""
        if self.is_primary:
            return
        if msg.mid not in self.delivered:
            self._record_delivery(msg.multicast, msg.final_ts)

    # ------------------------------------------------------------------
    # primary delivery logic
    # ------------------------------------------------------------------

    def _maybe_commit(self, mid: MessageId) -> None:
        """Step 4 commit check: all accepts (final known) plus a quorum
        of acks from every destination group."""
        if self._queue.is_committed(mid) or mid not in self._queue.pending:
            return
        final = self._final.get(mid)
        if final is None:
            return
        multicast = self._multicasts[mid]
        acks = self._acks.get(mid, {})
        for gid in multicast.dest:
            if not self.config.has_quorum(gid, acks.get(gid, ())):
                return
        self._queue.commit(mid, final)

    def _min_final(self, mid: MessageId) -> int:
        """Lower bound on the final timestamp of a pending message: the
        largest proposal known for it (at least our own local ts)."""
        accepts = self._accepts.get(mid)
        bound = self._my_ts.get(mid, 0)
        if accepts:
            bound = max(bound, max(accepts.values()))
        return bound

    def _try_deliver(self) -> None:
        # New messages get ts > clock >= final; other pending messages
        # cannot drop below the largest proposal seen for them (the
        # queue's monotone bound).
        while True:
            popped = self._queue.pop_deliverable(self.clock)
            if popped is None:
                return
            mid, final = popped
            multicast = self._multicasts[mid]
            self._record_delivery(multicast, final)
            followers = [p for p in self.group_members if p != self.pid]
            self.r_multicast(WbDeliver(multicast, final), followers)
