"""Property-based tests (hypothesis) on core invariants.

Strategies generate random workloads — senders, destination sets, send
times, network jitter — and assert the §2.2 atomic multicast properties
plus protocol-level invariants on the resulting executions, for PrimCast
and both baselines.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import MiniSystem
from repro.core.config import GroupConfig
from repro.harness.metrics import percentile
from repro.sim.latency import JitteredLatency
from repro.verify import check_all

# Keep runs small: each example spins a full simulation.
FAST = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

workload_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8),  # sender pid (3 groups x 3)
        st.sets(st.integers(min_value=0, max_value=2), min_size=1, max_size=3),
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
    ),
    min_size=1,
    max_size=25,
)


def run_protocol(protocol, workload, seed=1, jitter=False, hybrid=False):
    latency = JitteredLatency(1.0, 0.3) if jitter else None
    sys_ = MiniSystem(
        protocol=protocol, n_groups=3, latency=latency, seed=seed, hybrid_clock=hybrid
    )
    sent = []
    for sender, dest, when in workload:
        sys_.scheduler.call_at(
            when,
            lambda s=sender, d=frozenset(dest): sent.append(
                sys_.processes[s].a_multicast(d)
            ),
        )
    sys_.run_to_quiescence()
    sys_.multicasts = {m.mid: m for m in sent}
    # Validity: with no failures, every multicast is delivered somewhere.
    delivered = set()
    for log in sys_.logs.values():
        delivered.update(mid for mid, _, _ in log)
    assert delivered == set(sys_.multicasts)
    return sys_


@FAST
@given(workload=workload_st, seed=st.integers(min_value=0, max_value=10**6))
def test_primcast_properties_hold(workload, seed):
    sys_ = run_protocol("primcast", workload, seed=seed, jitter=True)
    check_all(
        sys_.logs, set(sys_.multicasts), sys_.dest_pids_of(), sys_.correct_pids()
    )


@FAST
@given(workload=workload_st)
def test_primcast_hc_properties_hold(workload):
    sys_ = run_protocol("primcast", workload, jitter=True, hybrid=True)
    check_all(
        sys_.logs, set(sys_.multicasts), sys_.dest_pids_of(), sys_.correct_pids()
    )


@FAST
@given(workload=workload_st)
def test_whitebox_properties_hold(workload):
    sys_ = run_protocol("whitebox", workload, jitter=True)
    check_all(
        sys_.logs, set(sys_.multicasts), sys_.dest_pids_of(), sys_.correct_pids()
    )


@FAST
@given(workload=workload_st)
def test_fastcast_properties_hold(workload):
    sys_ = run_protocol("fastcast", workload, jitter=True)
    check_all(
        sys_.logs, set(sys_.multicasts), sys_.dest_pids_of(), sys_.correct_pids()
    )


@FAST
@given(workload=workload_st)
def test_classic_properties_hold(workload):
    sys_ = run_protocol("classic", workload, jitter=True)
    check_all(
        sys_.logs, set(sys_.multicasts), sys_.dest_pids_of(), sys_.correct_pids()
    )


@FAST
@given(
    clocks=st.dictionaries(
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=0, max_value=1000),
        min_size=0,
        max_size=5,
    )
)
def test_quorum_clock_is_quorum_intersection_safe(clocks):
    """quorum-clock() invariant (§5.2.3): any future primary must pick a
    starting clock >= quorum-clock(), because it reads a quorum and any
    two quorums intersect."""
    config = GroupConfig([[0, 1, 2, 3, 4]])
    qc = config.quorum_clock_value(0, clocks)
    values = [clocks.get(pid, 0) for pid in range(5)]
    # For EVERY possible promise quorum, the max clock in it is >= qc.
    from itertools import combinations

    for quorum in combinations(range(5), 3):
        assert max(values[p] for p in quorum) >= qc


@FAST
@given(
    data=st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=200),
    q=st.floats(min_value=0, max_value=100),
)
def test_percentile_bounds(data, q):
    p = percentile(data, q)
    assert min(data) <= p <= max(data)


@FAST
@given(st.data())
def test_deliveries_monotone_in_final_ts(data):
    workload = data.draw(workload_st)
    sys_ = run_protocol("primcast", workload)
    for log in sys_.logs.values():
        keys = [(ts, mid) for mid, ts, _ in log]
        assert keys == sorted(keys)
