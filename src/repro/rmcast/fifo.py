"""FIFO non-uniform reliable multicast (§2.2).

PrimCast and the baselines communicate exclusively through
``r-multicast`` / ``r-deliver``. The properties required are Validity,
Integrity, Non-uniform agreement and FIFO order; non-uniformity permits
one-communication-step implementations [Hadzilacos & Toueg 94], which is
what the paper's latency arithmetic assumes.

Implementation notes:

* FIFO order comes from the per-pair FIFO channels of the simulated
  network (the prototype relies on TCP the same way, §7.1).
* Integrity (deliver at most once, only if multicast) is enforced with a
  per-origin sequence number and a duplicate filter.
* Non-uniform agreement: with reliable channels, direct per-destination
  sends suffice while the sender is correct; messages multicast by a
  process that crashes mid-send may be lost, which non-uniform agreement
  allows. An optional *relay* mode re-forwards every first delivery to
  the remaining destinations, making delivery resilient to sender crashes
  at the cost of redundant traffic.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional, Set, Tuple

from ..sim.costs import CostModel
from ..sim.events import Scheduler
from ..sim.network import Network
from ..sim.process import SimProcess


class Envelope:
    """Wire wrapper for an r-multicast payload.

    Exposes the payload's ``kind`` so the CPU cost model charges for the
    actual protocol message being carried.
    """

    __slots__ = ("origin", "seq", "payload", "dests", "relayed")

    def __init__(self, origin: int, seq: int, payload: Any, dests: Tuple[int, ...], relayed: bool = False):
        self.origin = origin
        self.seq = seq
        self.payload = payload
        self.dests = dests
        self.relayed = relayed

    @property
    def kind(self) -> str:
        return getattr(self.payload, "kind", "rm")

    @property
    def mid(self):
        """Multicast id of the payload if it has one (for tracing)."""
        return getattr(self.payload, "mid", None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Envelope {self.origin}:{self.seq} {self.kind}>"


class FifoReliableMulticast:
    """Per-process endpoint of the reliable multicast layer.

    Args:
        owner: the process this endpoint belongs to.
        relay: enable crash-resilient relaying of first deliveries.
    """

    def __init__(self, owner: SimProcess, relay: bool = False):
        self.owner = owner
        self.relay = relay
        self._next_seq = 0
        self._delivered: Set[Tuple[int, int]] = set()

    def multicast(self, payload: Any, dests: Iterable[int]) -> None:
        """r-multicast ``payload`` to process ids ``dests``.

        The sender delivers its own message too when it is a destination
        (self-channel, zero latency).
        """
        dests = tuple(dests)
        env = Envelope(self.owner.pid, self._next_seq, payload, dests)
        self._next_seq += 1
        for dst in dests:
            self.owner.send(dst, env)

    def handle(self, src: int, env: Envelope) -> Optional[Tuple[int, Any]]:
        """Process an incoming envelope.

        Returns ``(origin, payload)`` exactly once per multicast (the
        r-delivery), or ``None`` for duplicates.
        """
        key = (env.origin, env.seq)
        if key in self._delivered:
            return None
        self._delivered.add(key)
        if self.relay and not env.relayed and env.origin != self.owner.pid:
            fwd = Envelope(env.origin, env.seq, env.payload, env.dests, relayed=True)
            for dst in env.dests:
                if dst != self.owner.pid and dst != env.origin:
                    self.owner.send(dst, fwd)
        return env.origin, env.payload


class RMcastProcess(SimProcess):
    """A simulated process that communicates via reliable multicast.

    Subclasses implement :meth:`on_r_deliver`; everything arriving over
    the network is unwrapped and deduplicated by the rmcast endpoint.
    """

    def __init__(
        self,
        pid: int,
        scheduler: Scheduler,
        network: Network,
        cost_model: Optional[CostModel] = None,
        relay: bool = False,
    ):
        super().__init__(pid, scheduler, network, cost_model)
        self.rm = FifoReliableMulticast(self, relay=relay)

    def r_multicast(self, payload: Any, dests: Iterable[int]) -> None:
        """r-multicast ``payload`` to the given process ids."""
        self.rm.multicast(payload, dests)

    def on_message(self, src: int, msg: Any) -> None:
        if isinstance(msg, Envelope):
            result = self.rm.handle(src, msg)
            if result is not None:
                origin, payload = result
                self.on_r_deliver(origin, payload)
        else:
            self.on_raw_message(src, msg)

    def on_r_deliver(self, origin: int, payload: Any) -> None:
        """Handle an r-delivered payload. Override in subclasses."""
        raise NotImplementedError

    def on_raw_message(self, src: int, msg: Any) -> None:
        """Handle a non-rmcast message (e.g. client requests)."""
        raise NotImplementedError(
            f"{type(self).__name__} got unexpected raw message {msg!r}"
        )
