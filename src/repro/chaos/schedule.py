"""Fault schedules: JSON-canonical, seed-derived lists of fault events.

A :class:`FaultSchedule` is the unit the whole chaos subsystem revolves
around: the explorer *generates* them from a seed, the nemesis *applies*
them to a built scenario, the shrinker *minimizes* them, and the CLI
*replays* them from a file. Determinism is the contract at every step:

* :func:`generate_schedule` derives every choice from
  ``child_rng(seed, "chaos-schedule")`` — same seed, same schedule,
  byte-identical canonical JSON;
* a schedule round-trips through :meth:`FaultSchedule.to_json` /
  :meth:`FaultSchedule.from_json` without loss, so a replay file
  re-triggers the exact event sequence of the run that produced it.

Three fault kinds cover the adversarial space the paper's correctness
argument cares about:

* ``"crash"`` — a crash-stop failure (§2.1), targeted at a concrete pid
  (``"pid:N"``) or at whichever process currently leads a group
  (``"leader:G"``, resolved at fire time). Triggers are either absolute
  times or *protocol hooks* (:data:`repro.core.process.PROBE_EVENTS`):
  "crash the leader at its 3rd ack quorum" rather than "at t=17.3ms".
* ``"delay"`` — a per-link message-delay spike: every message departing
  on matching ``(src, dst)`` links inside a time window is delayed by a
  constant extra, modeling a congested or flapping path before GST.
* ``"skew"`` — a clock-skew perturbation: one process's physical clock
  offset jumps at a given time (only observable under the §6
  hybrid-clock variant, harmless otherwise).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..core.process import PROBE_EVENTS
from ..sim.failures import max_failures
from ..sim.rng import child_rng

#: Fault kinds understood by the nemesis.
FAULT_KINDS = ("crash", "delay", "skew")

#: Probe events the generator draws crash triggers from. "deliver" is
#: excluded: crashing on delivery is covered by time triggers and makes
#: schedules needlessly noisy.
TRIGGER_EVENTS = ("start", "propose", "ack_quorum", "epoch_change")


@dataclass(frozen=True)
class Trigger:
    """When a fault event fires.

    ``kind == "at"`` fires at absolute simulated time ``time_ms``.
    ``kind == "on"`` fires when the ``nth`` matching protocol probe
    event (:data:`repro.core.process.PROBE_EVENTS`) is observed —
    optionally restricted to probes at process ``pid`` — then applies
    the fault ``offset_ms`` later (``0`` = inline, inside the very
    event that fired the probe, so in-progress sends are lost).
    """

    kind: str  # "at" | "on"
    time_ms: float = 0.0
    event: str = ""
    pid: Optional[int] = None
    nth: int = 1
    offset_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("at", "on"):
            raise ValueError(f"unknown trigger kind {self.kind!r}")
        if self.kind == "on":
            if self.event not in PROBE_EVENTS:
                raise ValueError(f"unknown probe event {self.event!r}")
            if self.nth < 1:
                raise ValueError("nth must be at least 1")


@dataclass(frozen=True)
class FaultEvent:
    """One fault. Only the fields of its ``kind`` are meaningful.

    crash: ``target`` (``"pid:N"`` / ``"leader:G"``), ``over_budget``
    (bypass the quorum-budget guard), ``trigger`` (time or hook).
    delay: ``src`` / ``dst`` pids (``-1`` = any), ``extra_ms`` added to
    each matching departure inside ``[trigger.time_ms, trigger.time_ms +
    duration_ms)``.
    skew: ``pid`` whose physical clock offset jumps by ``skew_us``
    microseconds at ``trigger.time_ms``.
    """

    kind: str
    trigger: Trigger
    # crash fields
    target: str = ""
    over_budget: bool = False
    # delay fields
    src: int = -1
    dst: int = -1
    extra_ms: float = 0.0
    duration_ms: float = 0.0
    # skew fields
    pid: int = -1
    skew_us: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.kind == "crash" and not (
            self.target.startswith("pid:") or self.target.startswith("leader:")
        ):
            raise ValueError(f"bad crash target {self.target!r}")
        if self.kind in ("delay", "skew") and self.trigger.kind != "at":
            raise ValueError(f"{self.kind} events only support 'at' triggers")

    def canonical(self) -> Dict[str, Any]:
        """JSON-safe dict with a stable field set."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultEvent":
        payload = dict(data)
        payload["trigger"] = Trigger(**payload["trigger"])
        return cls(**payload)


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered list of fault events bound to one chaos case.

    ``scenario`` names a chaos scenario (see
    :data:`repro.chaos.explorer.CHAOS_SCENARIOS`), ``seed`` the case
    seed the schedule was generated for (the same seed also drives the
    workload and the simulation substrate on replay).
    """

    scenario: str
    seed: int
    events: Tuple[FaultEvent, ...] = field(default=())

    def canonical(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "events": [event.canonical() for event in self.events],
        }

    def to_json(self) -> str:
        """Stable serialization: sorted keys, compact separators."""
        return json.dumps(self.canonical(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSchedule":
        return cls(
            scenario=data["scenario"],
            seed=int(data["seed"]),
            events=tuple(FaultEvent.from_dict(e) for e in data["events"]),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    def replace_events(self, events: List[FaultEvent]) -> "FaultSchedule":
        """Same case, different event list (used by the shrinker)."""
        return FaultSchedule(self.scenario, self.seed, tuple(events))

    def save(self, path: Path) -> None:
        path.write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: Path) -> "FaultSchedule":
        return cls.from_json(path.read_text(encoding="utf-8"))


@dataclass(frozen=True)
class ScheduleShape:
    """What the generator needs to know about the target deployment."""

    n_groups: int
    group_size: int
    horizon_ms: float
    hybrid_clock: bool = False

    def members(self, gid: int) -> List[int]:
        """Pids of group ``gid`` under the uniform placement every chaos
        scenario uses (mirrors ``repro.core.config.uniform_groups``)."""
        base = gid * self.group_size
        return list(range(base, base + self.group_size))


def generate_schedule(
    scenario: str,
    seed: int,
    shape: ScheduleShape,
    allow_over_budget: bool = False,
    max_delays: int = 3,
    max_skews: int = 2,
) -> FaultSchedule:
    """Derive a fault schedule for ``(scenario, seed)`` deterministically.

    Crashes stay within each group's :func:`~repro.sim.failures.
    max_failures` budget unless ``allow_over_budget`` is set, in which
    case a final over-budget crash may be appended (safety must still
    hold; liveness is expected to be lost for affected messages).
    Delay windows and extras are bounded well inside the horizon so a
    quiesced run is actually quiescent — no fault may still be holding
    traffic when the post-run property checkers assume quiescence.
    """
    rng = child_rng(seed, f"chaos-schedule:{scenario}")
    events: List[FaultEvent] = []

    # --- crashes, budgeted per group -----------------------------------
    budget = {g: max_failures(shape.group_size) for g in range(shape.n_groups)}
    n_crashes = rng.randint(0, sum(budget.values()))
    fault_window = shape.horizon_ms * 0.25
    for _ in range(n_crashes):
        open_groups = sorted(g for g, left in budget.items() if left > 0)
        if not open_groups:
            break
        gid = rng.choice(open_groups)
        budget[gid] -= 1
        style = rng.random()
        if style < 0.4:
            target = f"leader:{gid}"
        else:
            target = f"pid:{rng.choice(shape.members(gid))}"
        if rng.random() < 0.5:
            trigger = Trigger(kind="at", time_ms=round(rng.uniform(1.0, fault_window), 3))
        else:
            trigger = Trigger(
                kind="on",
                event=rng.choice(TRIGGER_EVENTS),
                nth=rng.randint(1, 12),
                offset_ms=rng.choice((0.0, 0.1, 1.0)),
            )
        events.append(FaultEvent(kind="crash", trigger=trigger, target=target))

    if allow_over_budget and rng.random() < 0.5:
        gid = rng.randrange(shape.n_groups)
        target = f"pid:{rng.choice(shape.members(gid))}"
        events.append(
            FaultEvent(
                kind="crash",
                trigger=Trigger(kind="at", time_ms=round(rng.uniform(1.0, fault_window), 3)),
                target=target,
                over_budget=True,
            )
        )

    # --- per-link delay spikes -----------------------------------------
    all_pids = list(range(shape.n_groups * shape.group_size))
    for _ in range(rng.randint(0, max_delays)):
        src = rng.choice(all_pids + [-1])
        dst = rng.choice([p for p in all_pids if p != src] + [-1])
        start = round(rng.uniform(0.0, shape.horizon_ms * 0.3), 3)
        events.append(
            FaultEvent(
                kind="delay",
                trigger=Trigger(kind="at", time_ms=start),
                src=src,
                dst=dst,
                extra_ms=round(rng.uniform(5.0, 100.0), 3),
                duration_ms=round(rng.uniform(10.0, shape.horizon_ms * 0.1), 3),
            )
        )

    # --- clock-skew perturbations (HC variant only) --------------------
    if shape.hybrid_clock:
        for _ in range(rng.randint(0, max_skews)):
            events.append(
                FaultEvent(
                    kind="skew",
                    trigger=Trigger(
                        kind="at",
                        time_ms=round(rng.uniform(0.0, shape.horizon_ms * 0.3), 3),
                    ),
                    pid=rng.choice(all_pids),
                    skew_us=rng.randint(-3000, 3000),
                )
            )

    return FaultSchedule(scenario=scenario, seed=seed, events=tuple(events))
