"""`--backend net` load points for the harness CLI.

Runs a localhost cluster (real sockets, real clocks) shaped like a
harness point run and reports a :class:`~repro.harness.runner.RunResult`
with ``backend="net"`` so exported rows and BENCH entries are never
mistaken for simulator numbers.

Scope: the net point is a *latency* measurement of the real transport
stack, not a throughput sweep — the driver submits sequentially with
one outstanding message (the shape whose outcome the differential
harness can check exactly), so ``outstanding`` is pinned to 1 and
throughput is simply messages over the workload's wall time. Every
message targets all ``n_dest_groups`` groups, matching the harness
meaning of ``--dests``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Optional

from ..harness.metrics import summarize
from ..harness.runner import RunResult
from .cluster import ClusterSpec, launch_cluster

#: Scenario name recorded for net rows: there is no latency model to
#: name — the wire is the loopback interface.
NET_SCENARIO = "localhost"


def run_net_point(
    protocol: str = "primcast",
    n_dest_groups: int = 2,
    n_messages: int = 32,
    seed: int = 1,
    group_size: int = 3,
    rundir: Optional[Path] = None,
    run_timeout_s: float = 120.0,
) -> RunResult:
    """One localhost-cluster load point; blocking, returns a RunResult.

    Latency samples are the driver's submit→a-deliver wall times, the
    direct net analogue of the harness's client-side measurement.
    """
    if protocol != "primcast":
        raise ValueError(
            f"the net backend runs the primcast protocol only, not {protocol!r}"
        )
    if n_dest_groups < 1:
        raise ValueError("need at least one destination group")
    spec = ClusterSpec(
        n_groups=n_dest_groups,
        group_size=group_size,
        n_messages=n_messages,
        seed=seed,
        # Every message targets all groups: n_dest_groups destinations,
        # same meaning as the harness --dests flag.
        extra_group_p=1.0,
        run_timeout_s=run_timeout_s,
    )
    if rundir is None:
        rundir = Path(tempfile.mkdtemp(prefix="repro-net-point-"))
    result = launch_cluster(spec, rundir)
    if not result.ok:
        raise RuntimeError(
            f"net point cluster failed (rundir: {rundir}); see node-*.log"
        )
    driver = result.outcomes[result.topology.driver_pid]
    summary = driver.summary or {}
    latencies = [float(l) for l in summary.get("latencies_ms", [])]
    workload_ms = float(summary.get("workload_ms", 0.0)) or 1.0
    message_counts: dict = {}
    events = 0
    for outcome in result.outcomes.values():
        for kind, count in (outcome.summary or {}).get("message_counts", {}).items():
            message_counts[kind] = message_counts.get(kind, 0) + count
        events += (outcome.summary or {}).get("events", 0)
    return RunResult(
        protocol=protocol,
        scenario=NET_SCENARIO,
        n_dest_groups=n_dest_groups,
        outstanding=1,
        throughput=n_messages / (workload_ms / 1000.0),
        latency=summarize(latencies),
        samples=[],
        message_counts=message_counts,
        events=events,
        backend="net",
    )
