"""Weak leader-election oracle Ω (§2.1).

Each group ``g`` has an oracle Ω_g that outputs one member of ``g`` at
every process, with the property that eventually every correct process is
given the same correct leader. In a partially synchronous system this is
implementable with heartbeats [Aguilera et al., DISC'01]; in the
simulation we implement it as a failure detector that periodically scans
the group for crashed members and elects the lowest-pid correct process.
The polling interval models detection delay: after a crash, the output
changes within one interval, and subscribers are notified through their
normal CPU queue (the oracle is local knowledge, not a network message).

For stable-leader experiments (all of §7) polling can be disabled, making
the oracle static and event-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:
    from ..net.runtime import ProcessLike, SchedulerAPI

LeaderCallback = Callable[[int, int], None]  # (group_id, leader_pid)


class OmegaOracle:
    """Leader oracle for one group.

    Args:
        group_id: id of the group this oracle serves.
        members: pids of the group members, in preference order (the
            first correct one is elected).
        processes: pid → process map (any ``ProcessLike``), used to
            observe crashes.
        scheduler: shared scheduler (``SchedulerAPI``, for polling).
        poll_interval_ms: crash-detection interval; ``None`` disables
            detection and pins the initial leader forever.
    """

    def __init__(
        self,
        group_id: int,
        members: List[int],
        processes: Dict[int, "ProcessLike"],
        scheduler: "SchedulerAPI",
        poll_interval_ms: Optional[float] = None,
    ):
        if not members:
            raise ValueError("group must have at least one member")
        self.group_id = group_id
        self.members = list(members)
        self.processes = processes
        self.scheduler = scheduler
        self.poll_interval_ms = poll_interval_ms
        self.leader = members[0]
        self._subscribers: List[LeaderCallback] = []
        if poll_interval_ms is not None:
            if poll_interval_ms <= 0:
                raise ValueError("poll interval must be positive")
            scheduler.call_after(poll_interval_ms, self._poll)

    def subscribe(self, callback: LeaderCallback) -> None:
        """Register ``callback(group_id, leader_pid)`` on output changes.

        The callback fires immediately with the current output, matching
        the oracle abstraction (Ω always has an output).
        """
        self._subscribers.append(callback)
        callback(self.group_id, self.leader)

    def _elect(self) -> int:
        for pid in self.members:
            proc = self.processes.get(pid)
            if proc is not None and not proc.crashed:
                return pid
        # All members crashed; keep the last output (no correct process
        # is left to care).
        return self.leader

    def _poll(self) -> None:
        new_leader = self._elect()
        if new_leader != self.leader:
            self.leader = new_leader
            for callback in self._subscribers:
                callback(self.group_id, new_leader)
        self.scheduler.call_after(self.poll_interval_ms, self._poll)


def make_oracles(
    groups: List[List[int]],
    processes: Dict[int, "ProcessLike"],
    scheduler: "SchedulerAPI",
    poll_interval_ms: Optional[float] = None,
) -> Dict[int, OmegaOracle]:
    """Create one Ω oracle per group; returns group_id → oracle."""
    return {
        gid: OmegaOracle(gid, members, processes, scheduler, poll_interval_ms)
        for gid, members in enumerate(groups)
    }
