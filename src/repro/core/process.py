"""PrimCast replica process — Algorithms 1, 2 and 3 of the paper.

One :class:`PrimCastProcess` per server. Processes communicate only via
FIFO non-uniform reliable multicast (``r_multicast`` / ``on_r_deliver``),
exactly as the pseudocode does. The predicates of Algorithm 1 are
evaluated incrementally with the trackers in :mod:`repro.core.state`; the
literal scan-based predicates live in :mod:`repro.core.spec` and the test
suite cross-checks the two.

The hybrid-clock modification of §6 is a one-line change to the proposal
rule (``clock = max(clock + 1, real-clock())``), enabled with
``hybrid_clock=True`` and a :class:`~repro.sim.clock.PhysicalClock`.
"""

from __future__ import annotations

import heapq
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
    Type,
)

from .._backend import mypyc_attr
from ..rmcast.fifo import Envelope, RMcastProcess
from ..sim.clock import PhysicalClock
from ..sim.costs import CostModel
from .config import GroupConfig

if TYPE_CHECKING:
    from ..net.runtime import LeaderOracle, SchedulerAPI, TransportAPI
from .epoch import Epoch, initial_epoch
from .messages import (
    Ack,
    AcceptEpoch,
    Bump,
    EpochPromise,
    MessageId,
    Multicast,
    NewEpoch,
    NewState,
    Start,
)
from .state import AckTracker, ClockTracker

# Process roles (the paper's `state` variable, Algorithm 1 line 8 and
# Algorithm 3).
PRIMARY = "primary"
FOLLOWER = "follower"
CANDIDATE = "candidate"
PROMISED = "promised"

DeliverHook = Callable[["PrimCastProcess", Multicast, int], None]

#: Probe hooks observe protocol step boundaries: ``hook(process, event,
#: data)`` where ``event`` is one of :data:`PROBE_EVENTS` and ``data``
#: is the message id (or the new epoch for ``"epoch_change"``). Used by
#: the chaos nemesis (:mod:`repro.chaos.nemesis`) to trigger faults at
#: protocol-relevant moments instead of wall-clock times.
ProbeHook = Callable[["PrimCastProcess", str, Any], None]

#: Events fired through :meth:`PrimCastProcess.add_probe_hook`:
#:
#: * ``"start"`` — a ⟨start, m⟩ tuple was r-delivered (line 33), before
#:   any local timestamp exists for m at this process;
#: * ``"propose"`` — this process appended a local timestamp for m to T
#:   and is about to ack it (lines 36-39);
#: * ``"ack_quorum"`` — a group's local timestamp for m was decided at
#:   this process (the group's ack quorum completed, lines 40-41);
#: * ``"epoch_change"`` — this process started an epoch change
#:   (Algorithm 3, lines 58-60); data is the new promised epoch;
#: * ``"deliver"`` — m was a-delivered here (lines 54-56);
#: * ``"truncate"`` — :meth:`PrimCastProcess.compact_delivered` dropped
#:   a group-stable prefix of T; data is the sorted tuple of truncated
#:   message ids (used by the chaos/verify layer to check truncation
#:   safety).
PROBE_EVENTS = ("start", "propose", "ack_quorum", "epoch_change", "deliver", "truncate")

# T entries: (epoch the proposal was made in, the multicast, local ts).
TEntry = Tuple[Epoch, Multicast, int]


@mypyc_attr(native_class=False)
class PrimCastProcess(RMcastProcess):
    """A PrimCast group member.

    Compiled as a *non-native* class even under mypyc: it inherits the
    interpreted :class:`RMcastProcess`, and test/verify layers wrap
    ``on_r_deliver`` as an instance attribute — both incompatible with
    a native class's fixed layout.

    Args:
        pid: this process's id (must belong to a group in ``config``).
        config: group membership and quorum system.
        scheduler / network / cost_model: simulation substrate.
        omega: leader oracle for this process's group; ``None`` pins the
            initial leader (no primary changes possible).
        physical_clock: loosely synchronized clock, required when
            ``hybrid_clock`` is set.
        hybrid_clock: enable the §6 proposal rule.
    """

    #: Test-only mutation switch for shrinker self-validation
    #: (tests/chaos): when flipped to True (as an instance attribute by
    #: the chaos explorer's ``mutation`` option), delivery skips the
    #: deliverable() guards of Algorithm 1 lines 28-30 and delivers a
    #: message as soon as its final timestamp is decided — without
    #: waiting for the quorum-clock to pass it. This deliberately breaks
    #: ordering under concurrency; it exists so the explorer/shrinker
    #: pipeline can prove it finds and minimizes such bugs. Never set in
    #: production code paths.
    _chaos_no_quorum_wait: bool = False

    def __init__(
        self,
        pid: int,
        config: GroupConfig,
        scheduler: "SchedulerAPI",
        network: "TransportAPI",
        cost_model: Optional[CostModel] = None,
        omega: Optional["LeaderOracle"] = None,
        physical_clock: Optional[PhysicalClock] = None,
        hybrid_clock: bool = False,
        relay: bool = False,
        enable_bumps: bool = True,
        batching_ms: float = 0.0,
    ) -> None:
        super().__init__(
            pid, scheduler, network, cost_model, relay=relay, batching_ms=batching_ms
        )
        if pid not in config.group_of:
            raise ValueError(f"pid {pid} is not a member of any group")
        if hybrid_clock and physical_clock is None:
            raise ValueError("hybrid_clock requires a physical_clock")
        self.config = config
        self.gid = config.group_of[pid]
        self.group_members = config.members(self.gid)
        self.physical_clock = physical_clock
        self.hybrid_clock = hybrid_clock
        # Ablation switch (§5.2.5): without bump messages, quorum-clock()
        # cannot advance past remote timestamps and messages whose final
        # timestamp comes from a remote group stall. Tests/benches only.
        self.enable_bumps = enable_bumps

        # --- Algorithm 1 state (lines 1-8) ---
        leader0 = config.initial_leader(self.gid)
        self.clock = 0
        self.e_cur: Epoch = initial_epoch(leader0)
        self.e_prom: Epoch = initial_epoch(leader0)
        self.role = PRIMARY if leader0 == pid else FOLLOWER
        self.delivered: Set[MessageId] = set()  # D
        self.t_list: List[TEntry] = []  # T (sequence)
        self.t_by_mid: Dict[MessageId, Tuple[Epoch, int]] = {}

        # --- watermark-based T truncation (see compact_delivered) ---
        # Absolute T position of t_list[0]: positions below _t_base were
        # truncated after every group member reported them delivered.
        self._t_base = 0
        # Count of leading t_list entries delivered locally (a lazy scan
        # cursor; advanced in _delivered_prefix_len, reset on NewState).
        self._t_delivered_prefix = 0
        # Latest delivered-prefix report per group member, piggybacked on
        # ack/bump traffic: pid -> (epoch the report was made in,
        # absolute delivered prefix). Only reports made in our own E_cur
        # gate truncation — lineages of different epochs are not
        # position-comparable.
        self._peer_dp: Dict[int, Tuple[Epoch, int]] = {}
        # Cached outgoing report tuple, shared across acks until the
        # local delivered prefix (or epoch) changes.
        self._dp_cache: Optional[Tuple[Epoch, int]] = None

        # --- M, tracked incrementally ---
        self.started: Dict[MessageId, Multicast] = {}
        # Ack trackers per message, indexed by destination group id in a
        # preallocated list (None = no acks from that group yet). A list
        # of n_groups slots replaces the old per-message dict: indexing
        # is allocation-free and monomorphic, which matters because
        # _on_ack consults it for every ack of every message.
        self.acks: Dict[MessageId, List[Optional[AckTracker]]] = {}
        self.clocks = ClockTracker(self.group_members)
        self.my_acks: Set[Tuple[MessageId, Epoch, int]] = set()

        # --- primary change bookkeeping (Algorithm 3) ---
        self.promises: Dict[Epoch, Dict[int, EpochPromise]] = {}
        self.accepts: Dict[Epoch, Set[int]] = {}
        self._new_state_sent: Set[Epoch] = set()

        # --- delivery bookkeeping ---
        self.pending: Set[MessageId] = set()  # in T, not delivered
        self._final_cache: Dict[MessageId, int] = {}
        # Heap of (final_ts, mid) for pending messages whose final ts is
        # decided; stale entries (delivered mids) are skipped lazily.
        self._finals_heap: List[Tuple[int, MessageId]] = []
        # Lazy min-heap over pending messages, keyed by
        # ``max(largest decided local ts, own T timestamp)`` — a
        # per-message monotone surrogate for min-ts that is exact
        # wherever it can affect a delivery decision (see
        # _pending_min_excluding). Stale keys are valid lower bounds and
        # entries are refreshed on demand.
        self._min_heap: List[Tuple[int, MessageId]] = []
        self.deliver_hooks: List[DeliverHook] = []
        self.delivery_log: List[Tuple[MessageId, int, float]] = []
        # Probe hooks stay None unless installed, so the hot paths pay
        # one is-None check per step boundary and nothing more.
        self.probe_hooks: Optional[List[ProbeHook]] = None

        # Cached quorum-clock() value; invalidated whenever the clock
        # observations it derives from change (see quorum_clock()).
        self._qclock_cache: Optional[int] = None

        # r-deliver dispatch by payload class: one dict lookup instead of
        # a cascade of isinstance checks on the hottest protocol path.
        # The table holds bound handlers, so instrumentation that
        # replaces a handler on the instance (e.g. ConvoyProbe) must
        # update the table entry as well; wrapping ``on_r_deliver``
        # itself needs no such step — the message fast path defers to it
        # whenever it is overridden on the instance.
        self._r_dispatch: Dict[Type[Any], Callable[[int, Any], None]] = {
            Ack: self._on_ack,
            Start: self._on_start,
            Bump: self._on_bump,
            NewEpoch: self._on_new_epoch,
            EpochPromise: self._on_epoch_promise,
            NewState: self._on_new_state,
            AcceptEpoch: self._on_accept_epoch,
        }

        self._next_seq = 0
        self.omega = omega
        if omega is not None:
            omega.subscribe(self._on_omega_output)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def a_multicast(self, dest: Iterable[int], payload: Any = None) -> Multicast:
        """Atomically multicast ``payload`` to the destination groups.

        Algorithm 2, line 31: r-multicast ⟨start, m⟩ to every process of
        every destination group. Returns the multicast handle; delivery
        is signalled through :attr:`deliver_hooks`.
        """
        mid = (self.pid, self._next_seq)
        self._next_seq += 1
        multicast = Multicast(mid, frozenset(dest), payload)
        self.a_multicast_m(multicast)
        return multicast

    def a_multicast_m(self, multicast: Multicast) -> None:
        """a-multicast a pre-built :class:`Multicast` (line 31)."""
        for gid in sorted(multicast.dest):
            if not 0 <= gid < self.config.n_groups:
                raise ValueError(f"unknown destination group {gid}")
        self.r_multicast(Start(multicast), self.config.dest_pids(multicast.dest))

    def add_deliver_hook(self, hook: DeliverHook) -> None:
        """Register ``hook(process, multicast, final_ts)`` on a-deliver."""
        self.deliver_hooks.append(hook)

    def add_probe_hook(self, hook: ProbeHook) -> None:
        """Register ``hook(process, event, data)`` at every protocol step
        boundary (see :data:`PROBE_EVENTS`)."""
        if self.probe_hooks is None:
            self.probe_hooks = []
        self.probe_hooks.append(hook)

    def _probe(self, event: str, data: Any) -> None:
        hooks = self.probe_hooks
        if hooks is not None:
            for hook in hooks:
                hook(self, event, data)

    def compact_delivered(self) -> int:
        """Release per-message tracking state of delivered messages.

        The pseudocode's M and T grow forever; a deployment compacts
        them. Two mechanisms:

        * Ack trackers and cached finals of already-delivered messages
          are no longer consulted (min-clock contributions were folded
          into the incremental ClockTracker on receipt), so they are
          dropped. A straggler ack for a compacted message merely
          rebuilds an (unused) tracker, swept again on the next call.
        * The T prefix below the *group-stable watermark* — the minimum
          delivered prefix every group member reported under the current
          epoch — is truncated: ``t_list`` / ``t_by_mid`` / ``started``
          / ``my_acks`` entries of truncated positions are released.
          Truncation is safe because (a) every member has delivered
          those entries, so they can never become pending again, and
          (b) every member has already *transmitted* its acks for them
          (acks precede delivery on every path), so the epoch-activation
          resend of lines 75-81 is never needed for them. The suffix
          plus ``_t_base`` is exactly what EpochPromise/NewState carry,
          making a primary change O(undelivered) instead of O(history).

        The delivered-set D and the clock state are kept — they feed
        duplicate suppression, re-propose guards and quorum clocks.

        Returns the number of messages whose state was released.
        """
        freed = 0
        delivered = self.delivered
        t_by_mid = self.t_by_mid
        for mid in list(self._final_cache):
            if mid in delivered:
                self.acks.pop(mid, None)
                del self._final_cache[mid]
                freed += 1
        # T truncation below the group-stable watermark.
        cut = self._stable_watermark() - self._t_base
        if cut > 0:
            removed = self.t_list[:cut]
            del self.t_list[:cut]
            self._t_base += cut
            self._t_delivered_prefix -= cut
            self._dp_cache = None
            dropped: Set[MessageId] = set()
            for _, multicast, _ in removed:
                mid = multicast.mid
                if mid not in t_by_mid:
                    continue
                dropped.add(mid)
                del t_by_mid[mid]
            if dropped:
                # Drop *every* my_acks tuple of a truncated message, not
                # just the T-entry tuple: the same mid acked under older
                # epochs would otherwise leak its stale tuples forever.
                if self.my_acks:
                    self.my_acks = {
                        t for t in self.my_acks if t[0] not in dropped
                    }
                if self.probe_hooks is not None:
                    self._probe("truncate", tuple(sorted(dropped)))
        # Delivered messages no longer in T (truncated above, or dropped
        # by a NewState install): their started entries are unreachable.
        for mid in list(self.started):
            if mid in delivered and mid not in t_by_mid:
                del self.started[mid]
        # Straggler-rebuilt ack trackers: an ack arriving after delivery
        # re-creates a tracker nothing reads (the first mechanism freed
        # it together with the cached final). Delivered-ness alone makes
        # it garbage — no send is ever conditioned on a tracker of a
        # delivered message.
        for mid in list(self.acks):
            if mid in delivered:
                del self.acks[mid]
        return freed

    # ------------------------------------------------------------------
    # delivered-prefix watermark (state GC)
    # ------------------------------------------------------------------

    def _delivered_prefix_len(self) -> int:
        """Advance and return the count of leading locally-delivered
        t_list entries. Amortized O(1): the cursor only moves forward
        (deliveries never un-happen) until a NewState install resets it.
        """
        t_list = self.t_list
        delivered = self.delivered
        i = self._t_delivered_prefix
        n = len(t_list)
        while i < n and t_list[i][1].mid in delivered:
            i += 1
        self._t_delivered_prefix = i
        return i

    def _dp_report(self) -> Tuple[Epoch, int]:
        """The delivered-prefix report piggybacked on outgoing acks and
        bumps: (current epoch, absolute delivered prefix). Cached so the
        common many-acks-per-delivery case shares one tuple."""
        dp = self._t_base + self._delivered_prefix_len()
        cached = self._dp_cache
        if cached is not None and cached[1] == dp and cached[0] == self.e_cur:
            return cached
        cached = (self.e_cur, dp)
        self._dp_cache = cached
        return cached

    def _stable_watermark(self) -> int:
        """Highest absolute T position every group member (self included)
        reported delivered under the current epoch.

        A missing or stale-epoch report pins the watermark at ``_t_base``
        (no truncation): a member whose report was made under a different
        epoch may hold a different T lineage, so its positions are not
        comparable to ours. After a member crashes its report eventually
        goes stale on the next epoch change and the watermark freezes —
        conservative but safe (memory stops shrinking, correctness is
        unaffected).
        """
        e_cur = self.e_cur
        peer_dp = self._peer_dp
        low = self._t_base + self._delivered_prefix_len()
        for pid in self.group_members:
            if pid == self.pid:
                continue
            rec = peer_dp.get(pid)
            if rec is None or rec[0] != e_cur:
                return self._t_base
            if rec[1] < low:
                low = rec[1]
        return low

    # ------------------------------------------------------------------
    # r-deliver dispatch
    # ------------------------------------------------------------------

    def on_message(self, src: int, msg: Any) -> None:
        # Fast path for the overwhelmingly common case: a first-delivery,
        # non-relayed envelope. Combines the rmcast dedupe with payload
        # dispatch in one frame; relay mode, batches, duplicates via
        # subclassed envelopes and raw messages take the generic path.
        # Instrumentation (spec recorder, invariant checkers) wraps
        # on_r_deliver as an instance attribute — honour such overrides.
        if msg.__class__ is Envelope:
            rm = self.rm
            if not rm.relay and "on_r_deliver" not in self.__dict__:
                # Watermark dedupe (see FifoReliableMulticast.handle):
                # channel FIFO makes per-origin seqs strictly increasing,
                # so one int per origin replaces the historical key set.
                origin = msg.origin
                seq = msg.seq
                high = rm._dedupe_high
                try:
                    if seq <= high[origin]:
                        return
                except KeyError:
                    pass
                high[origin] = seq
                payload = msg.payload
                try:
                    handler = self._r_dispatch[payload.__class__]
                except KeyError:
                    self.on_r_deliver(origin, payload)
                    return
                handler(origin, payload)
                return
        super().on_message(src, msg)

    def on_r_deliver(self, origin: int, payload: Any) -> None:
        handler = self._r_dispatch.get(payload.__class__)
        if handler is None:
            # Subclassed payloads fall back to the isinstance scan once,
            # then are memoized in the dispatch table.
            for cls, h in list(self._r_dispatch.items()):
                if isinstance(payload, cls):
                    self._r_dispatch[payload.__class__] = h
                    handler = h
                    break
            else:
                raise TypeError(f"unexpected r-delivered payload: {payload!r}")
        handler(origin, payload)

    # ------------------------------------------------------------------
    # Algorithm 2 — timestamping
    # ------------------------------------------------------------------

    def _on_start(self, origin: int, start: Start) -> None:
        """Lines 33-34 plus the standing proposal rule (line 35)."""
        multicast = start.multicast
        # The delivered guard only matters after compaction swept the
        # started entry: a late-arriving start for a delivered message
        # must not resurrect state (with GC off it is a no-op — delivered
        # implies a started entry exists).
        if multicast.mid not in self.started and multicast.mid not in self.delivered:
            self.started[multicast.mid] = multicast
            if self.probe_hooks is not None:
                self._probe("start", multicast.mid)
            if self.role == PRIMARY and self._proposable(multicast):
                self._propose(multicast)

    def _proposable(self, multicast: Multicast) -> bool:
        """Line 24: start seen, no local ts decided, not yet in T."""
        if self.gid not in multicast.dest:
            return False
        # Delivered messages are never re-proposable. With GC off this is
        # implied by the t_by_mid / tracker checks below; once compaction
        # truncates T and sweeps trackers it must be explicit.
        if multicast.mid in self.delivered:
            return False
        if multicast.mid in self.t_by_mid:
            return False
        trackers = self.acks.get(multicast.mid)
        tracker = trackers[self.gid] if trackers is not None else None
        return tracker is None or tracker.local_ts is None

    def _propose(self, multicast: Multicast) -> None:
        """Lines 36-39 (with the §6 hybrid-clock rule when enabled)."""
        if self.hybrid_clock:
            assert self.physical_clock is not None  # enforced in __init__
            self.clock = max(self.clock + 1, self.physical_clock.read_us())
        else:
            self.clock += 1
        self._t_append(self.e_cur, multicast, self.clock)
        if self.probe_hooks is not None:
            self._probe("propose", multicast.mid)
        self._send_ack(multicast, self.e_cur, self.clock)

    def _t_append(self, epoch: Epoch, multicast: Multicast, ts: int) -> None:
        mid = multicast.mid
        self.t_list.append((epoch, multicast, ts))
        self.t_by_mid[mid] = (epoch, ts)
        self.started.setdefault(mid, multicast)
        if mid not in self.delivered:
            self.pending.add(mid)
            # Seed the lazy heaps; the bound is refreshed on demand.
            # ts is a valid lower bound of the heap key (see
            # _pending_min_excluding).
            heapq.heappush(self._min_heap, (ts, mid))
            final = self._final_cache.get(mid)
            if final is not None:
                heapq.heappush(self._finals_heap, (final, mid))
            else:
                # Computes, caches and enqueues the final timestamp if
                # all local timestamps happen to be decided already.
                self.final_ts(mid)

    def _send_ack(self, multicast: Multicast, epoch: Epoch, ts: int) -> None:
        self.my_acks.add((multicast.mid, epoch, ts))
        ack = Ack(multicast, self.gid, epoch, ts, self.pid, self._dp_report())
        self.r_multicast(ack, self.config.dest_pids(multicast.dest))

    def _on_ack(self, origin: int, ack: Ack) -> None:
        """Lines 40-45 (own group) and 46-50 (remote group)."""
        multicast = ack.multicast
        mid = multicast.mid
        # Localize the ack fields once: this handler runs for every ack
        # of every message (the single most frequent protocol event).
        group = ack.group
        epoch = ack.epoch
        ts = ack.ts
        sender = ack.sender
        config = self.config
        # A remote ack doubles as a start tuple (line 47); for own-group
        # acks the multicast object it carries is the same payload, so
        # storing it is equivalent to having r-delivered the start. The
        # delivered guard keeps a straggler ack from resurrecting a
        # compaction-swept started entry (no-op with GC off).
        started = self.started
        if mid not in started and mid not in self.delivered:
            started[mid] = multicast
        acks = self.acks
        try:
            trackers = acks[mid]
        except KeyError:
            trackers = acks[mid] = [None] * config.n_groups
        tracker = trackers[group]
        if tracker is None:
            tracker = trackers[group] = AckTracker()
        decided_now = tracker.add_ack(config, group, epoch, ts, sender, mid)
        changed = False
        if group == self.gid:
            # Group-mate: record its piggybacked delivered-prefix report
            # (the watermark input of compact_delivered).
            rep = ack.dp
            if rep is not None:
                self._peer_dp[sender] = rep
            # Clock value implicitly propagated inside the group (§5.2.4).
            # Inlined ClockTracker.observe (the most frequent tracker
            # update of a run; the tracker method remains the reference
            # for every other call site).
            clocks = self.clocks
            if epoch > self.e_cur:
                clocks.deferred.append((epoch, ts, sender))
            else:
                # sender is a member of our own group here (it stamped
                # ``group == self.gid`` on its own ack), so its slot
                # always exists in the tracker's values dict.
                values = clocks.values
                if ts > values[sender]:
                    values[sender] = ts
                    changed = True
                    self._qclock_cache = None
            if (
                sender == epoch.leader
                and epoch == self.e_cur
                and self.role == FOLLOWER
                and mid not in self.t_by_mid
                # Never re-append a delivered (possibly truncated) entry.
                and mid not in self.delivered
            ):
                # Accept the primary's proposal and echo our own ack
                # (lines 42-45).
                self._t_append(self.e_cur, multicast, ts)
                if ts > self.clock:
                    self.clock = ts
                self._send_ack(multicast, self.e_cur, ts)
        else:
            # Remote ack: raise our clock and tell the group (lines 48-50).
            if ts > self.clock:
                self.clock = ts
                if self.enable_bumps:
                    self.r_multicast(
                        Bump(self.e_prom, self.clock, self.pid, self._dp_report()),
                        self.group_members,
                    )
            if self.role == PRIMARY and self._proposable(multicast):
                # The piggybacked start makes m proposable (line 35).
                self._propose(multicast)
        if decided_now:
            # Cache (and enqueue for delivery) the final timestamp as
            # soon as the last local timestamp is decided.
            self.final_ts(mid)
            if self.probe_hooks is not None:
                self._probe("ack_quorum", mid)
        if decided_now or changed:
            self._try_deliver()

    def _on_bump(self, origin: int, bump: Bump) -> None:
        """Lines 51-52: record the clock observation."""
        rep = bump.dp
        if rep is not None:
            self._peer_dp[bump.sender] = rep
        if self.clocks.observe(self.e_cur, bump.epoch, bump.ts, bump.sender):
            self._qclock_cache = None
            self._try_deliver()

    # ------------------------------------------------------------------
    # Algorithm 1 — predicates (incremental forms)
    # ------------------------------------------------------------------

    def final_ts(self, mid: MessageId) -> Optional[int]:
        """Line 12: max of all local timestamps once every destination
        group's local ts is decided, else None (⊥)."""
        cached = self._final_cache.get(mid)
        if cached is not None:
            return cached
        multicast = self.started.get(mid)
        if multicast is None:
            return None
        trackers = self.acks.get(mid)
        if trackers is None:
            return None
        final = 0
        for gid in multicast.dest:
            tracker = trackers[gid]
            if tracker is None:
                return None
            ts = tracker.decided_ts
            if ts is None:
                return None
            if ts > final:
                final = ts
        self._final_cache[mid] = final
        if mid in self.pending:
            heapq.heappush(self._finals_heap, (final, mid))
        return final

    def local_ts(self, mid: MessageId, gid: int) -> Optional[int]:
        """Line 9: the decided local timestamp of ``mid`` in group
        ``gid``, or None (⊥)."""
        trackers = self.acks.get(mid)
        if trackers is None or not 0 <= gid < len(trackers):
            return None
        tracker = trackers[gid]
        return None if tracker is None else tracker.local_ts

    def min_clock(self, pid: int) -> int:
        """Line 15 (for members of this process's group)."""
        return self.clocks.min_clock(pid)

    def quorum_clock(self) -> int:
        """Line 17: lower bound for the starting clock of any epoch
        higher than E_cur, via quorum intersection.

        Cached between clock changes: every mutation of the min-clock
        observations (acks, bumps, epoch advances) clears the cache, so
        the quorum computation runs once per change instead of once per
        delivery attempt.
        """
        cached = self._qclock_cache
        if cached is None:
            cached = self.config.quorum_clock_value(self.gid, self.clocks.values)
            self._qclock_cache = cached
        return cached

    def min_ts(self, mid: MessageId) -> int:
        """Line 19: lower bound for final-ts(mid). Public wrapper used by
        tests; delivery uses the inlined version."""
        leader_clock = self.clocks.min_clock(self.e_cur.leader)
        qclock = self.quorum_clock()
        return self._min_ts(mid, leader_clock, qclock)

    def _min_ts(self, mid: MessageId, leader_clock: int, qclock: int) -> int:
        multicast = self.started[mid]
        known_max = 0
        trackers = self.acks.get(mid)
        if trackers is not None:
            for gid in multicast.dest:
                tracker = trackers[gid]
                if tracker is not None:
                    ts = tracker.decided_ts
                    if ts is not None and ts > known_max:
                        known_max = ts
        lower = leader_clock + 1 if leader_clock <= qclock else qclock + 1
        entry = self.t_by_mid.get(mid)
        if entry is not None and entry[1] < lower:
            lower = entry[1]
        return known_max if known_max > lower else lower

    # ------------------------------------------------------------------
    # delivery (lines 26-30 and 53-56)
    # ------------------------------------------------------------------

    def _pending_min_excluding(
        self, exclude: MessageId
    ) -> Optional[Tuple[int, MessageId]]:
        """Smallest heap entry over pending messages other than
        ``exclude``, for the line-30 comparison in :meth:`_try_deliver`.

        Every pending message is in T (pending is only populated by
        ``_t_append``), so its min-ts is
        ``max(known_max, min(base_lower, t_ts))`` where ``known_max`` is
        the largest decided local ts, ``t_ts`` its timestamp in T and
        ``base_lower = min(leader-clock, quorum-clock) + 1``. The heap
        key used here is ``max(known_max, t_ts)`` — it drops the
        ``base_lower`` term, making keys *per-message monotone* (so lazy
        refreshing needs no global input) while preserving every
        delivery decision: _try_deliver only consults the result after
        establishing ``final < base_lower``, and wherever the key
        differs from true min-ts (``t_ts >= base_lower``) both exceed
        ``final``, so neither can satisfy the blocking comparison.

        Stale tops are recomputed and pushed back until the top is
        current; entries for delivered messages are dropped.
        """
        heap = self._min_heap
        set_aside: Optional[List[Tuple[int, MessageId]]] = None
        result: Optional[Tuple[int, MessageId]] = None
        pending = self.pending
        started = self.started
        acks = self.acks
        t_by_mid = self.t_by_mid
        heappop = heapq.heappop
        heapreplace = heapq.heapreplace
        while heap:
            top = heap[0]
            mid = top[1]
            if mid not in pending:
                heappop(heap)
                continue
            if mid == exclude:
                if set_aside is None:
                    set_aside = []
                set_aside.append(heappop(heap))
                continue
            current = t_by_mid[mid][1]
            trackers = acks.get(mid)
            if trackers is not None:
                for gid in started[mid].dest:
                    tracker = trackers[gid]
                    if tracker is not None:
                        ts = tracker.decided_ts
                        if ts is not None and ts > current:
                            current = ts
            if current > top[0]:
                heapreplace(heap, (current, mid))
                continue
            result = top
            break
        if set_aside:
            for entry in set_aside:
                heapq.heappush(heap, entry)
        return result

    def _try_deliver(self) -> None:
        """Deliver every message whose ``deliverable`` predicate holds.

        It suffices to repeatedly examine the pending message with the
        smallest ``(final-ts, id)``: if that one is not deliverable, no
        other pending message can be — line 30 would fail against it,
        since min-ts(m) <= final-ts(m) for every pending m.
        """
        if self.role not in (PRIMARY, FOLLOWER):
            return
        finals = self._finals_heap
        if not finals:
            return
        leader_clock = self.clocks.values.get(self.e_cur.leader, 0)
        qclock = self.quorum_clock()
        pending = self.pending
        heappop = heapq.heappop
        while finals:
            best_final, best_mid = finals[0]
            if best_mid not in pending:
                heappop(finals)
                continue
            if self._chaos_no_quorum_wait:
                # Test-only mutation (see the class attribute): deliver
                # on final-ts decision alone, skipping lines 28-30.
                heappop(finals)
                self._deliver(best_mid, best_final)
                continue
            # Lines 28-29: no new proposal in E_cur or in any later
            # epoch may be smaller than final-ts(m).
            if best_final > leader_clock or best_final > qclock:
                return
            # Line 30: strictly smaller than the smallest possible
            # timestamp of any other pending message.
            other = self._pending_min_excluding(best_mid)
            if other is not None and (best_final, best_mid) >= other:
                return
            heappop(finals)
            self._deliver(best_mid, best_final)

    def _deliver(self, mid: MessageId, final: int) -> None:
        """Lines 54-56."""
        self.delivered.add(mid)
        self.pending.discard(mid)
        multicast = self.started[mid]
        self.delivery_log.append((mid, final, self.scheduler.now))
        if self.probe_hooks is not None:
            self._probe("deliver", mid)
        for hook in self.deliver_hooks:
            hook(self, multicast, final)

    # ------------------------------------------------------------------
    # Algorithm 3 — primary change
    # ------------------------------------------------------------------

    def _on_omega_output(self, gid: int, leader_pid: int) -> None:
        """Line 57: when Ω outputs us and we are not primary/candidate,
        start an epoch change."""
        if self.crashed:
            return
        if leader_pid == self.pid and self.role not in (PRIMARY, CANDIDATE):
            self._start_epoch_change()

    def _start_epoch_change(self) -> None:
        """Lines 58-60."""
        self.role = CANDIDATE
        self.e_prom = self.e_prom.next_for(self.pid)
        if self.probe_hooks is not None:
            self._probe("epoch_change", self.e_prom)
        self.r_multicast(NewEpoch(self.e_prom), self.group_members)

    def _on_new_epoch(self, origin: int, msg: NewEpoch) -> None:
        """Lines 61-64."""
        epoch = msg.epoch
        if epoch < self.e_prom:
            return
        if self.pid != epoch.leader:
            self.role = PROMISED
        self.e_prom = epoch
        # The promise carries only the live suffix of T plus the absolute
        # position it starts at: everything below _t_base is delivered at
        # every group member (the truncation precondition), so the
        # candidate never needs it — primary change is O(undelivered).
        promise = EpochPromise(
            epoch, self.pid, self.clock, self.e_cur, list(self.t_list), self._t_base
        )
        self.r_multicast(promise, [epoch.leader])

    def _on_epoch_promise(self, origin: int, msg: EpochPromise) -> None:
        """Lines 65-69."""
        if self.role != CANDIDATE or msg.epoch != self.e_prom:
            return
        if msg.epoch in self._new_state_sent:
            return
        bucket = self.promises.setdefault(msg.epoch, {})
        bucket[msg.sender] = msg
        if not self.config.has_quorum(self.gid, bucket.keys()):
            return
        promises = list(bucket.values())
        e_max = max(p.e_cur for p in promises)
        candidates = [p for p in promises if p.e_cur == e_max]
        # Longest T by *absolute* end position (t_base + suffix length):
        # within one epoch lineage all Ts are prefix-consistent, so the
        # largest end position is the most complete — identical to the
        # untruncated longest-suffix winner when nothing was truncated.
        winner = max(candidates, key=lambda p: p.t_base + len(p.t_seq))
        start_ts = max(p.clock for p in promises)
        self._new_state_sent.add(msg.epoch)
        self.r_multicast(
            NewState(msg.epoch, list(winner.t_seq), start_ts, winner.t_base),
            self.group_members,
        )

    def _on_new_state(self, origin: int, msg: NewState) -> None:
        """Lines 70-74."""
        if msg.epoch != self.e_prom:
            return
        # Install the carried suffix at its absolute base position. Every
        # entry the winner truncated (below msg.t_base) is delivered at
        # every member that contributed an epoch-fresh report — including
        # any entry of our own old T below our own _t_base — so dropping
        # our local prefix loses nothing. Entries of *our* T below
        # msg.t_base but above our _t_base are re-installed verbatim via
        # the carried suffix when the winner had them; if we truncated
        # further than the winner, the suffix re-adds entries we already
        # delivered (harmless: pending excludes delivered mids, and the
        # next compaction sweeps them again).
        self.t_list = list(msg.t_seq)
        self._t_base = msg.t_base
        self._t_delivered_prefix = 0
        self._dp_cache = None
        self.t_by_mid = {m.mid: (epoch, ts) for epoch, m, ts in self.t_list}
        self.pending = {
            m.mid for _, m, _ in self.t_list if m.mid not in self.delivered
        }
        for _, multicast, _ in self.t_list:
            self.started.setdefault(multicast.mid, multicast)
        # Rebuild the delivery heaps from the new T (the T timestamps,
        # which seed the min-heap keys, may have changed).
        self._min_heap = [(self.t_by_mid[mid][1], mid) for mid in sorted(self.pending)]
        heapq.heapify(self._min_heap)
        self._finals_heap = [
            (self._final_cache[mid], mid)
            for mid in sorted(self.pending)
            if mid in self._final_cache
        ]
        heapq.heapify(self._finals_heap)
        for mid in sorted(self.pending):
            if mid not in self._final_cache:
                self.final_ts(mid)
        self.e_cur = msg.epoch
        self.clocks.advance_epoch(self.e_cur)
        self._qclock_cache = None
        # Epoch bookkeeping below the new E_cur can never be read again
        # (every consumer compares against E_cur / E_prom, both >= it).
        for epoch in sorted(e for e in self.promises if e < self.e_cur):
            del self.promises[epoch]
        for epoch in sorted(e for e in self.accepts if e < self.e_cur):
            del self.accepts[epoch]
        self._new_state_sent = {e for e in sorted(self._new_state_sent) if e >= self.e_cur}
        if msg.ts > self.clock:
            self.clock = msg.ts
        self.r_multicast(AcceptEpoch(self.e_cur, self.pid), self.group_members)
        self._check_epoch_activation()

    def _on_accept_epoch(self, origin: int, msg: AcceptEpoch) -> None:
        """Collect accepts; lines 75-81 re-checked."""
        self.accepts.setdefault(msg.epoch, set()).add(msg.sender)
        self._check_epoch_activation()

    def _check_epoch_activation(self) -> None:
        """Lines 75-81: once at E_cur = E_prom with a quorum of accepts,
        assume the follower/primary role and (re)send missing acks for
        every tuple in T, in T's order."""
        if self.role not in (PROMISED, CANDIDATE):
            return
        if self.e_cur != self.e_prom:
            return
        if not self.config.has_quorum(self.gid, self.accepts.get(self.e_cur, ())):
            return
        self.role = FOLLOWER if self.role == PROMISED else PRIMARY
        for epoch, multicast, ts in self.t_list:
            if (multicast.mid, epoch, ts) not in self.my_acks:
                self._send_ack(multicast, epoch, ts)
        if self.role == PRIMARY:
            # Standing rule (line 35): propose everything proposable.
            for multicast in list(self.started.values()):
                if self._proposable(multicast):
                    self._propose(multicast)
        self._try_deliver()
