"""Applications built on the atomic multicast layer.

Currently a partitioned, replicated key-value store — the class of
system the paper's introduction motivates (§1): each replica group holds
a shard, atomic multicast orders single-shard commands locally and
cross-shard transactions globally.
"""

from .cluster import KvCluster
from .kvstore import (
    Command,
    Delete,
    Get,
    Increment,
    KvReplica,
    Put,
    Transaction,
    partition_of,
)

__all__ = [
    "KvCluster",
    "KvReplica",
    "Command",
    "Put",
    "Get",
    "Delete",
    "Increment",
    "Transaction",
    "partition_of",
]
