"""Tests for the partitioned KV store application."""

import random

import pytest

from repro.apps import (
    Delete,
    Get,
    Increment,
    KvCluster,
    Put,
    Transaction,
    partition_of,
)


@pytest.fixture
def cluster():
    return KvCluster(n_partitions=3, replicas_per_partition=3)


class TestSharding:
    def test_partition_of_stable(self):
        assert partition_of("alice", 3) == partition_of("alice", 3)

    def test_partition_of_in_range(self):
        for i in range(200):
            assert 0 <= partition_of(f"k{i}", 5) < 5

    def test_all_partitions_used(self):
        hit = {partition_of(f"k{i}", 3) for i in range(100)}
        assert hit == {0, 1, 2}


class TestBasicOps:
    def test_put_then_get(self, cluster):
        results = []
        cluster.submit(Put("alice", 10))
        cluster.submit(Get("alice"), results.append)
        cluster.run()
        assert results == [10]

    def test_put_returns_previous(self, cluster):
        results = []
        cluster.submit(Put("k", "v1"))
        cluster.submit(Put("k", "v2"), results.append)
        cluster.run()
        assert results == ["v1"]

    def test_get_missing_is_none(self, cluster):
        results = []
        cluster.submit(Get("nope"), results.append)
        cluster.run()
        assert results == [None]

    def test_delete(self, cluster):
        results = []
        cluster.submit(Put("k", 1))
        cluster.submit(Delete("k"), results.append)
        cluster.submit(Delete("k"), results.append)
        cluster.run()
        assert results == [True, False]

    def test_increment(self, cluster):
        results = []
        cluster.submit(Increment("ctr", 5), results.append)
        cluster.submit(Increment("ctr", 2), results.append)
        cluster.run()
        assert results == [5, 7]


class TestReplication:
    def test_all_replicas_converge(self, cluster):
        for i in range(30):
            cluster.submit(Put(f"key-{i}", i))
        cluster.run()
        cluster.assert_replicas_converged()

    def test_divergence_detected(self, cluster):
        cluster.submit(Put("k", 1))
        cluster.run()
        some_replica = next(iter(cluster.replicas.values()))
        some_replica.state["poison"] = 1
        with pytest.raises(AssertionError, match="diverged"):
            cluster.assert_replicas_converged()


class TestTransactions:
    def test_cross_partition_transfer_conserves_total(self, cluster):
        # Find two keys on different partitions.
        keys = [f"acct-{i}" for i in range(50)]
        a = next(k for k in keys if partition_of(k, 3) == 0)
        b = next(k for k in keys if partition_of(k, 3) == 1)
        cluster.submit(Put(a, 100))
        cluster.submit(Put(b, 100))
        cluster.run()
        cluster.submit(Transaction([("incr", a, -30), ("incr", b, +30)]))
        cluster.run(until=2000)
        results = {}
        cluster.submit(Get(a), lambda v: results.__setitem__("a", v))
        cluster.submit(Get(b), lambda v: results.__setitem__("b", v))
        cluster.run(until=3000)
        assert results == {"a": 70, "b": 130}
        cluster.assert_replicas_converged()

    def test_transactions_ordered_against_local_ops(self, cluster):
        """A transaction and a local increment on a shared key are
        applied in the same order at every replica of the partition."""
        keys = [f"x-{i}" for i in range(50)]
        a = next(k for k in keys if partition_of(k, 3) == 0)
        b = next(k for k in keys if partition_of(k, 3) == 2)
        for _ in range(10):
            cluster.submit(Transaction([("incr", a, 1), ("incr", b, 1)]))
            cluster.submit(Increment(a, 1))
        cluster.run(until=5000)
        cluster.assert_replicas_converged()
        states = cluster.partition_states(partition_of(a, 3))
        assert states[0][a] == 20

    def test_empty_transaction_rejected(self):
        with pytest.raises(ValueError):
            Transaction([])

    def test_bad_op_rejected(self):
        with pytest.raises(ValueError):
            Transaction([("mul", "k", 2)])


class TestRouting:
    def test_submit_through_wrong_partition_rejected(self, cluster):
        key = next(f"k{i}" for i in range(50) if partition_of(f"k{i}", 3) == 1)
        wrong = cluster.replicas[cluster.config.members(0)[0]]
        with pytest.raises(ValueError, match="route the"):
            wrong.submit(Put(key, 1))

    def test_replica_for_picks_touching_partition(self, cluster):
        cmd = Put("somekey", 1)
        replica = cluster.replica_for(cmd)
        assert replica.partition in cmd.partitions(3)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            KvCluster(protocol="zab")


class TestAcrossProtocols:
    @pytest.mark.parametrize("protocol", ["primcast", "whitebox", "fastcast"])
    def test_random_workload_converges(self, protocol):
        cluster = KvCluster(protocol=protocol, seed=5)
        rng = random.Random(42)
        total = 0
        for i in range(60):
            if rng.random() < 0.6:
                amount = rng.randint(1, 9)
                total += amount
                cluster.submit(Increment(f"acct-{rng.randrange(20)}", amount))
            else:
                src = f"acct-{rng.randrange(20)}"
                dst = f"acct-{rng.randrange(20)}"
                if src != dst:
                    cluster.submit(
                        Transaction([("incr", src, -1), ("incr", dst, 1)])
                    )
        cluster.run(until=20000)
        cluster.assert_replicas_converged()
        held = sum(
            sum(states[0].values())
            for states in (
                cluster.partition_states(p) for p in range(3)
            )
        )
        assert held == total
