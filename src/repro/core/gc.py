"""Periodic state compaction for PrimCast processes.

The protocol layer exposes :meth:`PrimCastProcess.compact_delivered` —
an idempotent sweep that releases ack trackers, cached finals and the
group-stable delivered prefix of T. This module drives it: a
:class:`CompactionDaemon` is a self-rescheduling scheduler timer that
sweeps every process at a fixed simulated-time interval, giving a run
O(in-flight) steady-state memory instead of O(messages ever sent).

Schedule neutrality: a tick emits no messages, draws no randomness and
touches no protocol variable that feeds a send — it only discards state
the protocol can no longer read. The only observable difference between
a run with and without the daemon is the scheduler's event count (one
event per tick), which is why the pinned goldens assert bit-identical
delivery orders/timestamps in both modes while pinning separate event
totals.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim.events import Scheduler
from .process import PrimCastProcess

#: Default sweep interval (simulated ms). Frequent enough that steady
#: state memory stays within one in-flight window of the floor, sparse
#: enough that tick overhead is invisible next to protocol traffic.
DEFAULT_COMPACTION_INTERVAL_MS = 250.0


class CompactionDaemon:
    """Sweeps a set of processes with ``compact_delivered`` on a timer.

    Args:
        scheduler: the simulation scheduler driving the system.
        processes: pid -> process map; swept in pid order every tick.
        interval_ms: simulated time between sweeps (must be > 0; callers
            that want compaction off simply never construct a daemon).

    Attributes:
        runs: ticks fired so far.
        freed: total messages whose tracking state was released.
    """

    __slots__ = ("scheduler", "interval_ms", "_procs", "runs", "freed", "_started")

    def __init__(
        self,
        scheduler: Scheduler,
        processes: Dict[int, PrimCastProcess],
        interval_ms: float = DEFAULT_COMPACTION_INTERVAL_MS,
    ) -> None:
        if interval_ms <= 0.0:
            raise ValueError(f"interval_ms must be positive, got {interval_ms}")
        self.scheduler = scheduler
        self.interval_ms = interval_ms
        self._procs: List[PrimCastProcess] = [
            processes[pid] for pid in sorted(processes)
        ]
        self.runs = 0
        self.freed = 0
        self._started = False

    def start(self) -> None:
        """Arm the first tick. Idempotent."""
        if self._started:
            return
        self._started = True
        self.scheduler.call_after(self.interval_ms, self._tick)

    def _tick(self) -> None:
        self.runs += 1
        for proc in self._procs:
            if not proc.crashed:
                self.freed += proc.compact_delivered()
        self.scheduler.call_after(self.interval_ms, self._tick)


def attach_compaction(
    scheduler: Scheduler,
    processes: Dict[int, PrimCastProcess],
    interval_ms: float = DEFAULT_COMPACTION_INTERVAL_MS,
) -> CompactionDaemon:
    """Build and start a :class:`CompactionDaemon` over ``processes``."""
    daemon = CompactionDaemon(scheduler, processes, interval_ms)
    daemon.start()
    return daemon
