"""Figure 4 — WAN with distributed leaders: 2 and 4 destinations.

The convoy-effect deployment: each group in its own region, 90 ms RTT
between regions, 30 ms inside. Regenerates both subfigures and asserts:

* PrimCast delivers at every destination about one intra-group step
  (~15 ms one-way) earlier than FastCast and well below White-Box's
  all-replica p95 (§7.5);
* latency rises with load for every protocol (the convoy effect);
* PrimCast sustains the highest throughput.

Known deviation (DESIGN.md): with the simulator's idealized per-message
clock propagation, group clocks track the global maximum within ~one
cross-group step, so the *steady-state* gap between plain PrimCast and
PrimCast HC is smaller than in the paper's Fig 4; the worst-case convoy
gap (5Δ vs 4Δ+2ε) is reproduced exactly by the Table 1 /
hybrid-clock-ablation benches.
"""

from conftest import full_mode

from repro.harness.experiments import figure4
from repro.harness.report import max_throughput_by_protocol, print_results
from repro.harness.runner import run_load_point
from repro.workload.scenarios import wan_distributed_leaders


def test_fig4_wan_distributed(benchmark):
    by_dest = figure4(full=full_mode())
    for d, results in by_dest.items():
        print_results(
            f"Figure 4: WAN distributed leaders, {d} destination groups", results
        )
    benchmark.pedantic(
        run_load_point,
        args=("primcast", wan_distributed_leaders(), 2, 4),
        kwargs=dict(warmup_ms=400, measure_ms=500, keep_samples=False),
        rounds=1,
        iterations=1,
    )

    for d, results in by_dest.items():
        by_key = {(r.protocol, r.outstanding): r for r in results}
        loads = sorted({r.outstanding for r in results})
        low, high = loads[0], loads[-1]

        # PrimCast beats both baselines' p95 at low load, by roughly an
        # intra-group communication step (>= 10 ms) vs FastCast.
        pc = by_key[("primcast", low)].latency["p95"]
        assert pc + 10.0 <= by_key[("fastcast", low)].latency["p95"], f"d={d}"
        assert pc + 10.0 <= by_key[("whitebox", low)].latency["p95"], f"d={d}"

        # Convoy: p50 latency grows with load for every protocol.
        for proto in ("primcast", "whitebox", "fastcast"):
            assert (
                by_key[(proto, high)].latency["p50"]
                > by_key[(proto, low)].latency["p50"]
            ), f"{proto} d={d}"

        peak = max_throughput_by_protocol(results)
        assert peak["primcast"] >= peak["whitebox"], f"d={d}"
        assert peak["primcast"] >= 1.5 * peak["fastcast"], f"d={d}"
