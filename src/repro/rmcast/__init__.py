"""FIFO non-uniform reliable multicast (the paper's §2.2 primitives)."""

from .fifo import Envelope, FifoReliableMulticast, RMcastProcess

__all__ = ["Envelope", "FifoReliableMulticast", "RMcastProcess"]
