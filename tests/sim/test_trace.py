"""Tests for message-flight tracing."""

import pytest

from repro.sim import ConstantLatency, Network, Scheduler, child_rng
from repro.sim.process import SimProcess
from repro.sim.trace import Flight, record_flights, render_exchanges


class Msg:
    __slots__ = ("kind", "mid")

    def __init__(self, kind="m", mid=None):
        self.kind = kind
        self.mid = mid


class Echo(SimProcess):
    def on_message(self, src, msg):
        pass


def build():
    sched = Scheduler()
    net = Network(sched, ConstantLatency(2.0), child_rng(1, "tr"))
    procs = [Echo(i, sched, net) for i in range(3)]
    return sched, net, procs


def test_flights_recorded_with_arrivals():
    sched, net, procs = build()
    flights = record_flights(net)
    procs[0].send(1, Msg("hello", mid=(0, 0)))
    sched.run()
    assert flights == [Flight(0, 1, "hello", (0, 0), 0.0, 2.0)]


def test_self_send_has_zero_trip():
    sched, net, procs = build()
    flights = record_flights(net)
    procs[0].send(0, Msg())
    sched.run()
    assert flights[0].depart == flights[0].arrival


def test_render_skips_self_sends_and_sorts():
    flights = [
        Flight(1, 2, "b", None, 5.0, 7.0),
        Flight(0, 0, "self", None, 1.0, 1.0),
        Flight(0, 1, "a", None, 1.0, 3.0),
    ]
    out = render_exchanges(flights)
    lines = out.splitlines()
    assert len(lines) == 2
    assert "a" in lines[0] and "b" in lines[1]
    assert "self" not in out


def test_render_with_filter_and_labels():
    flights = [
        Flight(0, 1, "a", None, 1.0, 3.0),
        Flight(0, 2, "b", None, 1.0, 3.0),
    ]
    out = render_exchanges(
        flights,
        include=lambda f: f.kind == "a",
        label_of=lambda pid: f"replica{pid}",
    )
    assert "replica0" in out and "replica1" in out
    assert "b" not in out


def test_tracing_does_not_change_behaviour():
    sched1, net1, procs1 = build()
    record_flights(net1)
    procs1[0].send(1, Msg())
    end1 = sched1.run()
    sched2, net2, procs2 = build()
    procs2[0].send(1, Msg())
    end2 = sched2.run()
    assert end1 == end2
    assert net1.messages_sent == net2.messages_sent
