"""Per-peer TCP connection manager for the asyncio backend.

Topology is a full mesh: every node *dials* one outgoing connection to
each peer and *accepts* one incoming connection from each peer. A
node's frames to a given peer all travel on its single outgoing
connection, so per-``(src, dst)`` FIFO — the property the rmcast
watermark dedupe requires of any transport — is inherited from TCP's
byte-stream ordering, exactly as the paper's prototype relies on it
(§7.1).

Reliability model:

* An outgoing frame stays in the peer's send queue until a ``drain()``
  of the connection succeeds. On connection failure the undrained tail
  is retransmitted after reconnect; a frame the peer *did* receive may
  therefore arrive twice, which is safe — the rmcast layer deduplicates
  by ``(origin, seq)`` and the control frames (hello/heartbeat) are
  idempotent.
* Reconnects use exponential backoff (:data:`BACKOFF_BASE_S` doubling
  to :data:`BACKOFF_CAP_S`), reset after a successful connect. A dead
  peer costs one pending connect attempt per backoff interval and
  nothing else.

The first frame on every connection is a ``hello`` identifying the
dialing node; all subsequent frames on that connection are attributed
to that pid. Incoming connections are read-only (responses travel on
the receiver's own outgoing connection).

Write coalescing (the throughput path): with ``coalesce`` on, outgoing
frames are *staged* in a per-peer byte buffer instead of being handed
to the connection one at a time. The first staged frame schedules one
``call_soon`` flush, so every frame produced by the current cascade of
event-loop callbacks — a handler burst typically fans the same Batch
out to five peers and acks back — lands in a single ``write()`` per
peer instead of one per frame. A buffer crossing
:data:`COALESCE_MAX_BYTES` is flushed immediately, bounding both
staging latency and single-write size. Coalescing changes only *write
grouping*, never order: per-``(src, dst)`` FIFO is preserved because
staging is strictly FIFO per peer.

Backpressure: each peer connection tracks its queued (staged + unsent)
bytes. When the total crosses ``max_queue_bytes`` the transport reports
:meth:`Transport.overloaded`; open-loop drivers poll it to defer
submissions instead of growing the queue without bound. Frames are
never dropped — the rmcast layer has retransmit-on-reconnect but no
loss recovery inside a live connection, so shedding load must happen at
the submission edge, not the wire.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from collections import deque

from .codec import FrameDecoder, encode_frame

#: Reconnect backoff: first retry after BACKOFF_BASE_S, doubling per
#: failure up to BACKOFF_CAP_S.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 1.0

#: Coalescing buffer flush threshold: a peer's staged bytes are flushed
#: to its connection as soon as they cross this, independent of the
#: per-drain ``call_soon`` flush.
COALESCE_MAX_BYTES = 64 * 1024

#: Default per-transport backpressure threshold (staged + unsent bytes
#: across all peers) above which ``overloaded()`` reports True.
MAX_QUEUE_BYTES = 4 * 1024 * 1024

#: Callback invoked for every decoded frame: ``on_frame(src_pid, obj)``.
FrameHandler = Callable[[int, Dict[str, Any]], None]

#: Substrate probe: ``probe(event, data)`` (see Runtime.probe).
ProbeFn = Callable[[str, Any], None]


class PeerConnection:
    """One outgoing connection: queue, writer task, reconnect loop."""

    def __init__(
        self,
        own_pid: int,
        peer_pid: int,
        host: str,
        port: int,
        probe: ProbeFn,
    ) -> None:
        self.own_pid = own_pid
        self.peer_pid = peer_pid
        self.host = host
        self.port = port
        self._probe = probe
        self._queue: Deque[Tuple[bytes, int]] = deque()
        self._wakeup = asyncio.Event()
        self._task: Optional[asyncio.Task[None]] = None
        #: Set while a connection is established (first hello written).
        self.connected = asyncio.Event()
        self._closing = False
        self.frames_sent = 0
        self.bytes_sent = 0
        #: Socket write+drain cycles; ``frames_sent / writes`` is the
        #: coalescing ratio the bench records.
        self.writes = 0
        self.queued_bytes = 0
        self.connects = 0
        self.reconnects = 0

    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(self._run())

    def send_bytes(self, data: bytes, frames: int = 1) -> None:
        """Queue one write (possibly many coalesced frames); event-loop
        context only."""
        self._queue.append((data, frames))
        self.queued_bytes += len(data)
        self._wakeup.set()

    def queued(self) -> int:
        return len(self._queue)

    async def _run(self) -> None:
        backoff = BACKOFF_BASE_S
        while not self._closing:
            try:
                reader, writer = await asyncio.open_connection(self.host, self.port)
            except OSError:
                self._probe("connect_failed", self.peer_pid)
                await self._sleep(backoff)
                backoff = min(backoff * 2.0, BACKOFF_CAP_S)
                continue
            try:
                writer.write(encode_frame({"t": "hello", "pid": self.own_pid}))
                await writer.drain()
            except (ConnectionError, OSError):
                writer.close()
                await self._sleep(backoff)
                backoff = min(backoff * 2.0, BACKOFF_CAP_S)
                continue
            backoff = BACKOFF_BASE_S
            self.connects += 1
            self.connected.set()
            self._probe("connect", self.peer_pid)
            try:
                await self._pump(writer)
                # _pump only returns on clean close.
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
                return
            except (ConnectionError, OSError):
                self.connected.clear()
                self.reconnects += 1
                self._probe("reconnect", self.peer_pid)
                writer.close()
                await self._sleep(backoff)
                backoff = min(backoff * 2.0, BACKOFF_CAP_S)

    async def _pump(self, writer: asyncio.StreamWriter) -> None:
        """Drain the queue into the socket until close is requested.

        Frames are only dequeued after a successful ``drain()``; a
        failure mid-batch leaves the whole batch queued for the next
        connection (at-least-once, deduplicated upstream).
        """
        queue = self._queue
        while True:
            if not queue:
                if self._closing:
                    return
                self._wakeup.clear()
                if not queue and not self._closing:
                    await self._wakeup.wait()
                continue
            batch = len(queue)
            for i in range(batch):
                writer.write(queue[i][0])
            await writer.drain()
            for _ in range(batch):
                data, frames = queue.popleft()
                self.queued_bytes -= len(data)
                self.frames_sent += frames
                self.bytes_sent += len(data)
            self.writes += 1

    async def _sleep(self, seconds: float) -> None:
        # Backoff sleep that close() can cut short via the wakeup event.
        try:
            await asyncio.wait_for(self._wakeup.wait(), timeout=seconds)
            self._wakeup.clear()
        except asyncio.TimeoutError:
            pass

    async def close(self) -> None:
        self._closing = True
        self._wakeup.set()
        if self._task is not None:
            try:
                await asyncio.wait_for(self._task, timeout=2.0)
            except asyncio.TimeoutError:
                self._task.cancel()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


class Transport:
    """The node-level transport: one server, one dialer per peer.

    Args:
        pid: this node's process id.
        addresses: pid -> (host, port) for every node (self included).
        on_frame: synchronous handler for every decoded incoming frame;
            runs on the event loop, one frame at a time (handler
            atomicity is preserved by construction).
        probe: substrate event hook.
        coalesce: stage outgoing frames per peer and flush once per
            event-loop drain (see module docstring). Off restores the
            PR-9 one-write-per-frame behaviour.
        coalesce_max_bytes: flush a peer's staged buffer immediately
            once it crosses this size.
        max_queue_bytes: total queued-bytes threshold above which
            :meth:`overloaded` reports True (backpressure signal; no
            frame is ever dropped).
    """

    def __init__(
        self,
        pid: int,
        addresses: Dict[int, Tuple[str, int]],
        on_frame: FrameHandler,
        probe: Optional[ProbeFn] = None,
        coalesce: bool = True,
        coalesce_max_bytes: int = COALESCE_MAX_BYTES,
        max_queue_bytes: int = MAX_QUEUE_BYTES,
    ) -> None:
        self.pid = pid
        self.addresses = dict(addresses)
        self.on_frame = on_frame
        self.probe: ProbeFn = probe if probe is not None else (lambda e, d: None)
        self.coalesce = coalesce
        self.coalesce_max_bytes = coalesce_max_bytes
        self.max_queue_bytes = max_queue_bytes
        self.peers: Dict[int, PeerConnection] = {}
        self._pending: Dict[int, bytearray] = {}
        self._pending_frames: Dict[int, int] = {}
        self._flush_scheduled = False
        self.overload_events = 0
        self._over = False
        self._server: Optional[asyncio.base_events.Server] = None
        self.frames_received = 0

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start every peer dialer.

        Dialers begin immediately so ``send_frame`` can *queue* from the
        moment the node is up — an incoming frame may trigger replies
        before our own outgoing links are established (peers finish
        their barriers at different times), and those replies must park
        in the per-peer queue rather than fail.
        """
        host, port = self.addresses[self.pid]
        self._server = await asyncio.start_server(self._accept, host, port)
        for peer_pid, (peer_host, peer_port) in sorted(self.addresses.items()):
            if peer_pid == self.pid:
                continue
            conn = PeerConnection(self.pid, peer_pid, peer_host, peer_port, self.probe)
            self.peers[peer_pid] = conn
            conn.start()

    async def connect_all(self, timeout_s: float = 30.0) -> None:
        """Wait until every outgoing link is up (dialing started in
        :meth:`start`; reconnect loops keep retrying underneath)."""
        waiters = [conn.connected.wait() for conn in self.peers.values()]
        if waiters:
            await asyncio.wait_for(asyncio.gather(*waiters), timeout=timeout_s)

    async def flush(self, timeout_s: float = 2.0) -> bool:
        """Best-effort: wait until every peer's queue drained (True) or
        the timeout passed (False — e.g. a dead peer's queue)."""
        self._flush_pending()
        deadline = asyncio.get_running_loop().time() + timeout_s
        while True:
            if all(conn.queued() == 0 for conn in self.peers.values()):
                return True
            if asyncio.get_running_loop().time() >= deadline:
                return False
            await asyncio.sleep(0.01)

    async def close(self) -> None:
        self._flush_pending()
        for conn in self.peers.values():
            await conn.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    # -- sending ---------------------------------------------------------

    def send_frame(self, dst: int, obj: Dict[str, Any]) -> None:
        """Encode and queue one frame for ``dst`` (event-loop context)."""
        if dst == self.pid:
            # Self-frames never touch a socket (the host facade delivers
            # locally before reaching here; this is a safety net).
            self.on_frame(self.pid, obj)
            return
        self.send_frame_bytes(dst, encode_frame(obj))

    def send_frame_bytes(self, dst: int, data: bytes) -> None:
        """Queue a pre-encoded frame (fan-out encodes once per frame).

        With coalescing on, the frame is staged in the peer's buffer;
        one ``call_soon`` flush per drain hands all staged bytes to the
        connections in a single write each.
        """
        conn = self.peers.get(dst)
        if conn is None:
            raise KeyError(f"no connection for pid {dst}")
        if not self.coalesce:
            conn.send_bytes(data)
            return
        buf = self._pending.get(dst)
        if buf is None:
            buf = self._pending[dst] = bytearray()
            self._pending_frames[dst] = 0
        buf += data
        self._pending_frames[dst] += 1
        if len(buf) >= self.coalesce_max_bytes:
            self._flush_peer(dst)
        elif not self._flush_scheduled:
            self._flush_scheduled = True
            asyncio.get_running_loop().call_soon(self._flush_pending)

    def _flush_peer(self, dst: int) -> None:
        buf = self._pending.pop(dst, None)
        if not buf:
            return
        frames = self._pending_frames.pop(dst, 0)
        self.peers[dst].send_bytes(bytes(buf), frames)

    def _flush_pending(self) -> None:
        self._flush_scheduled = False
        for dst in list(self._pending):
            self._flush_peer(dst)

    # -- backpressure ----------------------------------------------------

    def queued_bytes(self) -> int:
        """Staged + unsent bytes across all peers."""
        pending = sum(len(b) for b in self._pending.values())
        return pending + sum(c.queued_bytes for c in self.peers.values())

    def overloaded(self) -> bool:
        """True while queued bytes exceed ``max_queue_bytes``. Open-loop
        drivers poll this to defer submissions (frames themselves are
        never dropped)."""
        over = self.queued_bytes() > self.max_queue_bytes
        if over and not self._over:
            self.overload_events += 1
            self.probe("overloaded", self.queued_bytes())
        self._over = over
        return over

    # -- receiving -------------------------------------------------------

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        decoder = FrameDecoder()
        src: Optional[int] = None
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                for frame in decoder.feed(data):
                    if src is None:
                        if frame.get("t") != "hello":
                            return  # protocol violation; drop connection
                        src = int(frame["pid"])
                        self.probe("peer_hello", src)
                        continue
                    self.frames_received += 1
                    self.on_frame(src, frame)
        except (ConnectionError, OSError):
            pass
        except asyncio.CancelledError:
            # Loop teardown (node shutdown) cancels in-flight reads;
            # nothing to salvage on this connection.
            pass
        finally:
            writer.close()

    # -- stats -----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        frames_sent = sum(c.frames_sent for c in self.peers.values())
        writes = sum(c.writes for c in self.peers.values())
        return {
            "frames_received": self.frames_received,
            "frames_sent": frames_sent,
            "bytes_sent": sum(c.bytes_sent for c in self.peers.values()),
            "writes": writes,
            "coalesce_ratio": (frames_sent / writes) if writes else 0.0,
            "connects": sum(c.connects for c in self.peers.values()),
            "reconnects": sum(c.reconnects for c in self.peers.values()),
            "queued": sum(c.queued() for c in self.peers.values()),
            "overload_events": self.overload_events,
        }
