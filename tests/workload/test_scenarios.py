"""Tests for the Table 2 deployment scenarios."""

import random

import pytest

from repro.workload.scenarios import (
    LAN_RTT_MS,
    all_scenarios,
    lan_scenario,
    wan_colocated_leaders,
    wan_distributed_leaders,
)


@pytest.fixture
def rng():
    return random.Random(1)


def test_three_scenarios_at_paper_scale():
    scenarios = all_scenarios()
    assert len(scenarios) == 3
    for s in scenarios:
        assert s.n_groups == 8
        assert s.group_size == 3
        config = s.make_config()
        assert len(config.all_pids) == 24


def test_lan_latency_uniform(rng):
    s = lan_scenario()
    model = s.make_latency(s.make_config())
    # One-way mean = RTT/2 everywhere.
    assert model.mean(0, 23) == pytest.approx(LAN_RTT_MS / 2)
    assert model.mean(5, 6) == pytest.approx(LAN_RTT_MS / 2)


class TestColocatedLeaders:
    def test_leaders_share_a_region(self):
        s = wan_colocated_leaders()
        config = s.make_config()
        model = s.make_latency(config)
        leaders = [config.initial_leader(g) for g in range(8)]
        for a in leaders:
            for b in leaders:
                if a != b:
                    assert model.mean(a, b) == pytest.approx(LAN_RTT_MS / 2)

    def test_intra_group_rtts_match_table2(self):
        s = wan_colocated_leaders()
        config = s.make_config()
        model = s.make_latency(config)
        g0 = config.members(0)
        rtts = sorted(
            round(2 * model.mean(a, b), 2)
            for i, a in enumerate(g0)
            for b in g0[i + 1 :]
        )
        assert rtts == [60.0, 76.0, 130.0]


class TestDistributedLeaders:
    def test_cross_group_is_90ms_rtt(self):
        s = wan_distributed_leaders()
        config = s.make_config()
        model = s.make_latency(config)
        l0 = config.initial_leader(0)
        l1 = config.initial_leader(1)
        assert 2 * model.mean(l0, l1) == pytest.approx(90.0)

    def test_intra_group_is_30ms_rtt(self):
        s = wan_distributed_leaders()
        config = s.make_config()
        model = s.make_latency(config)
        g0 = config.members(0)
        assert 2 * model.mean(g0[0], g0[1]) == pytest.approx(30.0)

    def test_each_replica_in_own_datacenter(self):
        s = wan_distributed_leaders()
        config = s.make_config()
        model = s.make_latency(config)
        g0 = config.members(0)
        # distinct sites -> never the LAN diagonal
        for i, a in enumerate(g0):
            for b in g0[i + 1 :]:
                assert 2 * model.mean(a, b) > 1.0


def test_table2_rows_render():
    for s in all_scenarios():
        row = s.table2_row()
        assert len(row) == 4
        assert s.name in row[0]


def test_custom_sizes_supported():
    s = wan_distributed_leaders(n_groups=3, group_size=5)
    config = s.make_config()
    assert config.n_groups == 3
    model = s.make_latency(config)
    assert 2 * model.mean(config.members(0)[0], config.members(2)[0]) == pytest.approx(90.0)
