"""Experiment runner: build a system, drive a workload, collect stats.

The runner is the glue between the substrates: it instantiates a
scenario (Table 2), one protocol process per replica, loosely
synchronized clocks for the HC variant, closed-loop clients, and runs the
simulation for a warmup + measurement window. Throughput counts each
client message once (at its issuing client); latency is measured at the
client, from submission to a-delivery at its replica — both exactly as
§7.2 defines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..baselines.fastcast import FastCastProcess
from ..baselines.whitebox import WhiteBoxProcess
from ..core.config import GroupConfig
from ..core.process import PrimCastProcess
from ..election.omega import OmegaOracle, make_oracles
from ..sim.clock import make_clocks
from ..sim.costs import CostModel, default_cost_model
from ..sim.events import Scheduler
from ..sim.network import Network
from ..sim.rng import child_rng
from ..workload.generator import Client, make_clients
from ..workload.scenarios import Scenario
from .metrics import summarize

#: Names accepted by :func:`build_system` / :func:`run_load_point`.
PROTOCOLS = ("primcast", "primcast-hc", "whitebox", "fastcast")


@dataclass
class System:
    """A fully wired simulated deployment."""

    protocol: str
    scenario: Scenario
    scheduler: Scheduler
    network: Network
    config: GroupConfig
    processes: Dict[int, Any]
    oracles: Optional[Dict[int, OmegaOracle]] = None

    @property
    def replicas(self) -> List[Any]:
        return [self.processes[pid] for pid in self.config.all_pids]


def build_system(
    protocol: str,
    scenario: Scenario,
    seed: int = 1,
    cost_model: Optional[CostModel] = None,
    omega_poll_ms: Optional[float] = None,
    epsilon_ms: Optional[float] = None,
    batching_ms: float = 0.0,
) -> System:
    """Instantiate one protocol deployment on one scenario.

    Args:
        protocol: one of :data:`PROTOCOLS`.
        seed: root seed; all randomness derives from it.
        cost_model: CPU cost model (defaults to the calibrated one).
        omega_poll_ms: enable crash detection for PrimCast's Ω with this
            polling interval (None = static leaders, no failure handling
            needed for stable-leader experiments).
        epsilon_ms: clock skew bound override for the HC variant.
        batching_ms: opt-in ack/bump coalescing window per channel
            (models the prototype's §7.1 TCP batching); 0 = off, which
            is wire-identical to the seed behaviour.
    """
    if protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}; pick from {PROTOCOLS}")
    config = scenario.make_config()
    scheduler = Scheduler()
    network = Network(
        scheduler, scenario.make_latency(config), child_rng(seed, "latency")
    )
    costs = cost_model if cost_model is not None else default_cost_model()

    processes: Dict[int, Any] = {}
    oracles: Optional[Dict[int, OmegaOracle]] = None
    if protocol in ("primcast", "primcast-hc"):
        hybrid = protocol == "primcast-hc"
        eps = epsilon_ms if epsilon_ms is not None else scenario.epsilon_ms
        clocks = make_clocks(
            scheduler, config.all_pids, eps, child_rng(seed, "clock-skew")
        )
        # Build processes first, then oracles (oracles observe processes).
        for pid in config.all_pids:
            processes[pid] = PrimCastProcess(
                pid,
                config,
                scheduler,
                network,
                costs,
                omega=None,
                physical_clock=clocks[pid],
                hybrid_clock=hybrid,
                batching_ms=batching_ms,
            )
        if omega_poll_ms is not None:
            oracles = make_oracles(config.groups, processes, scheduler, omega_poll_ms)
            for pid, proc in processes.items():
                proc.omega = oracles[config.group_of[pid]]
                proc.omega.subscribe(proc._on_omega_output)
    elif protocol == "whitebox":
        for pid in config.all_pids:
            processes[pid] = WhiteBoxProcess(
                pid, config, scheduler, network, costs, batching_ms=batching_ms
            )
    else:  # fastcast
        for pid in config.all_pids:
            processes[pid] = FastCastProcess(
                pid, config, scheduler, network, costs, batching_ms=batching_ms
            )

    return System(protocol, scenario, scheduler, network, config, processes, oracles)


@dataclass
class RunResult:
    """Aggregated outcome of one load point."""

    protocol: str
    scenario: str
    n_dest_groups: int
    outstanding: int
    #: delivered client messages per second (each counted once)
    throughput: float
    #: latency stats in ms over all clients (mean/p50/p95/p99/count)
    latency: Dict[str, float]
    #: per-sample latencies (client pid, deliver time, latency ms)
    samples: List[Tuple[int, float, float]] = field(repr=False, default_factory=list)
    #: wire messages by kind over the whole run
    message_counts: Dict[str, int] = field(default_factory=dict)
    events: int = 0

    @property
    def throughput_kmsgs(self) -> float:
        """Throughput in thousands of msg/s (the paper's x axis)."""
        return self.throughput / 1000.0

    def latencies_for(self, pids: Set[int]) -> List[float]:
        """Latency samples restricted to clients at the given replicas
        (used to isolate White-Box leader deliveries in Fig 5)."""
        return [lat for pid, _, lat in self.samples if pid in pids]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict capturing every field exactly.

        The shared serialization for the result cache, ``export.py`` and
        ``perf.py``; floats survive a JSON round trip bit-exactly
        (``json`` emits ``repr``-precision), so
        ``RunResult.from_dict(r.to_dict()) == r``.
        """
        return {
            "protocol": self.protocol,
            "scenario": self.scenario,
            "n_dest_groups": self.n_dest_groups,
            "outstanding": self.outstanding,
            "throughput": self.throughput,
            "latency": dict(self.latency),
            "samples": [[pid, when, lat] for pid, when, lat in self.samples],
            "message_counts": dict(self.message_counts),
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunResult":
        """Inverse of :meth:`to_dict` (JSON lists become sample tuples)."""
        return cls(
            protocol=data["protocol"],
            scenario=data["scenario"],
            n_dest_groups=data["n_dest_groups"],
            outstanding=data["outstanding"],
            throughput=data["throughput"],
            latency=dict(data["latency"]),
            samples=[(pid, when, lat) for pid, when, lat in data["samples"]],
            message_counts=dict(data["message_counts"]),
            events=data["events"],
        )


def run_load_point(
    protocol: str,
    scenario: Scenario,
    n_dest_groups: int,
    outstanding: int,
    seed: int = 1,
    warmup_ms: float = 500.0,
    measure_ms: float = 1000.0,
    cost_model: Optional[CostModel] = None,
    epsilon_ms: Optional[float] = None,
    keep_samples: bool = True,
    batching_ms: float = 0.0,
) -> RunResult:
    """Run one (protocol, scenario, destinations, load) point.

    Clients issue messages from t=0; samples delivered inside
    ``[warmup_ms, warmup_ms + measure_ms)`` are counted.

    ``batching_ms > 0`` enables the per-channel ack/bump coalescing layer
    (§7.1 batching); the default of 0 is wire-identical to no batching.
    """
    system = build_system(
        protocol,
        scenario,
        seed=seed,
        cost_model=cost_model,
        epsilon_ms=epsilon_ms,
        batching_ms=batching_ms,
    )
    rng = child_rng(seed, "workload")
    clients = make_clients(
        system.replicas, n_dest_groups, system.config.n_groups, outstanding, rng
    )
    for client in clients:
        client.start()
    end = warmup_ms + measure_ms
    system.scheduler.run(until=end)
    for client in clients:
        client.stop()

    # Latencies are collected unconditionally (the summary needs them);
    # the per-sample (pid, when, lat) tuples only when the caller asked —
    # at high load a full sweep would otherwise hold every sample of
    # every point in memory just to throw them away.
    samples: List[Tuple[int, float, float]] = []
    latencies: List[float] = []
    for client in clients:
        for pid, when, lat in client.samples:
            if warmup_ms <= when < end:
                latencies.append(lat)
                if keep_samples:
                    samples.append((pid, when, lat))
    throughput = len(latencies) / (measure_ms / 1000.0)
    return RunResult(
        protocol=protocol,
        scenario=scenario.name,
        n_dest_groups=n_dest_groups,
        outstanding=outstanding,
        throughput=throughput,
        latency=summarize(latencies),
        samples=samples,
        message_counts=dict(system.network.counts_by_kind),
        events=system.scheduler.events_processed,
    )
