"""EFF3xx — effect/purity contracts checked via the summary layer.

* **EFF301** — a function declared pure (by the ``@pure`` marker
  decorator or the config's ``declared_pure`` patterns) must have an
  empty transitive write effect: no ``self`` writes, no foreign-object
  writes, no sends. The paper's timestamp predicates (local-ts, min-ts,
  final-ts — Algorithm 1 lines 9/12/19) are mathematical functions of
  the recorded tuple set; the differential tests call them at arbitrary
  points mid-execution, which is only sound if they observe without
  perturbing.
* **EFF302** — observer modules (``repro.verify``, ``repro.core.spec``)
  must be read-only on *foreign* protocol state: a monitor may keep its
  own books (``self.acks`` of a recorder is its own state) and may
  rebind wrapper hooks, but a write that reaches a process's shared
  protocol attributes (``proc.clock = …``, ``self.proc.pending.add(…)``)
  would let the measurement instrument corrupt the experiment.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from .base import Finding, ModuleInfo, Rule, register
from .config import AnalysisConfig
from .effects import compute_module_effects


def _has_pure_decorator(node: ast.AST, config: AnalysisConfig) -> bool:
    decorators = getattr(node, "decorator_list", [])
    for dec in decorators:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name: Optional[str] = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name in config.pure_decorators:
            return True
    return False


@register
class Eff301DeclaredPureWrites(Rule):
    """Declared-pure functions must have an empty write effect."""

    rule_id = "EFF301"
    title = "declared-pure function has a write/send effect"
    default_severity = "error"

    def check(self, mod: ModuleInfo, config: AnalysisConfig) -> Iterator[Finding]:
        effects = compute_module_effects(mod, config)
        for info in effects.functions.values():
            declared = config.is_declared_pure(
                mod.module, info.qualname
            ) or _has_pure_decorator(info.node, config)
            if not declared:
                continue
            eff = info.effects
            problems: List[str] = []
            if eff.writes:
                problems.append(f"writes self.{{{', '.join(sorted(eff.writes))}}}")
            if eff.foreign_writes:
                problems.append(
                    "writes foreign "
                    f"{{{', '.join(sorted(eff.foreign_writes))}}}"
                )
            if eff.sends:
                problems.append("sends messages")
            if problems:
                yield self.finding(
                    mod,
                    info.node,
                    f"declared pure but {'; '.join(problems)} "
                    "(transitively); drop the declaration or the effect",
                    context=info.qualname,
                )


@register
class Eff302ObserverWritesProtocolState(Rule):
    """Verify/monitor code must be read-only on foreign protocol state."""

    rule_id = "EFF302"
    title = "observer mutates protocol state of an observed process"
    default_severity = "error"

    def applies_to(self, module: str, config: AnalysisConfig) -> bool:
        scope = config.scope_override.get(self.rule_id, config.eff_readonly_scope)
        return any(
            module == prefix or module.startswith(prefix + ".") for prefix in scope
        )

    def check(self, mod: ModuleInfo, config: AnalysisConfig) -> Iterator[Finding]:
        protected = set(config.race_shared_attrs)
        visitor = _ForeignWriteVisitor(config, protected)
        visitor.visit(mod.tree)
        for attr, node, context in visitor.hits:
            yield self.finding(
                mod,
                node,
                f"observer writes protocol attribute {attr!r} of an observed "
                "object; monitors must be read-only on protocol state",
                context=context,
            )


class _ForeignWriteVisitor(ast.NodeVisitor):
    """Writes to protected attrs through non-bare-self receivers, with
    accurate per-node locations (the summary layer only has sets)."""

    def __init__(self, config: AnalysisConfig, protected: set[str]) -> None:
        self.config = config
        self.protected = protected
        self.hits: List[tuple[str, ast.AST, str]] = []
        self._stack: List[str] = []

    @property
    def _context(self) -> str:
        return ".".join(self._stack)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    # -- stores --------------------------------------------------------

    def _check_store(self, target: ast.expr) -> None:
        while isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(elt)
            return
        if isinstance(target, ast.Starred):
            self._check_store(target.value)
            return
        if not isinstance(target, ast.Attribute):
            return
        if target.attr not in self.protected:
            return
        # ``self.clock = …`` is the observer's own attribute — fine.
        # ``proc.clock = …`` / ``self.proc.clock = …`` is foreign.
        if isinstance(target.value, ast.Name) and target.value.id == "self":
            return
        self.hits.append((target.attr, target, self._context))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_store(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_store(target)
        self.generic_visit(node)

    # -- mutator calls -------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in self.config.mutator_methods
            and isinstance(func.value, ast.Attribute)
            and func.value.attr in self.protected
        ):
            receiver = func.value.value
            is_own = isinstance(receiver, ast.Name) and receiver.id == "self"
            if not is_own:
                self.hits.append((func.value.attr, func.value, self._context))
        self.generic_visit(node)
