"""Unit tests for the shared timestamp-order delivery queue."""

import pytest

from repro.baselines.delivery import DeliveryQueue

A, B, C = ("a", 1), ("b", 1), ("c", 1)


class Bounds:
    """Mutable monotone bound provider."""

    def __init__(self):
        self.values = {}

    def set(self, mid, value):
        assert value >= self.values.get(mid, 0), "bounds must be monotone"
        self.values[mid] = value

    def __call__(self, mid):
        return self.values.get(mid, 0)


@pytest.fixture
def bounds():
    return Bounds()


def test_commit_then_pop(bounds):
    q = DeliveryQueue(bounds)
    q.add_pending(A)
    q.commit(A, 5)
    assert q.pop_deliverable(clock=10) == (A, 5)
    assert q.pop_deliverable(clock=10) is None
    assert A not in q.pending


def test_clock_guard(bounds):
    q = DeliveryQueue(bounds)
    q.add_pending(A)
    q.commit(A, 5)
    assert q.pop_deliverable(clock=4) is None
    assert q.pop_deliverable(clock=5) == (A, 5)


def test_blocked_by_pending_with_smaller_bound(bounds):
    q = DeliveryQueue(bounds)
    q.add_pending(A)
    q.add_pending(B)
    q.commit(A, 5)
    bounds.set(B, 3)
    assert q.pop_deliverable(clock=10) is None  # B may end below 5
    bounds.set(B, 6)
    assert q.pop_deliverable(clock=10) == (A, 5)


def test_equal_bound_ties_break_by_id(bounds):
    q = DeliveryQueue(bounds)
    q.add_pending(A)
    q.add_pending(B)
    q.commit(A, 5)
    bounds.set(B, 5)
    # (5, A) < (5, B): A may go first.
    assert q.pop_deliverable(clock=10) == (A, 5)
    # But B committed at 5 cannot pass a pending (5, A): id order.
    q2 = DeliveryQueue(bounds)
    bounds.values = {}
    q2.add_pending(A)
    q2.add_pending(B)
    q2.commit(B, 5)
    bounds.set(A, 5)
    assert q2.pop_deliverable(clock=10) is None


def test_delivery_in_final_order(bounds):
    q = DeliveryQueue(bounds)
    for mid in (A, B, C):
        q.add_pending(mid)
    for mid, final in ((C, 9), (A, 7), (B, 8)):
        bounds.set(mid, final)
        q.commit(mid, final)
    out = []
    while True:
        popped = q.pop_deliverable(clock=100)
        if popped is None:
            break
        out.append(popped)
    assert out == [(A, 7), (B, 8), (C, 9)]


def test_commit_is_idempotent(bounds):
    q = DeliveryQueue(bounds)
    q.add_pending(A)
    q.commit(A, 5)
    q.commit(A, 99)  # ignored
    assert q.pop_deliverable(clock=100) == (A, 5)
    assert q.pop_deliverable(clock=100) is None


def test_add_pending_idempotent(bounds):
    q = DeliveryQueue(bounds)
    q.add_pending(A)
    q.add_pending(A)
    q.commit(A, 1)
    assert q.pop_deliverable(clock=10) == (A, 1)
    assert q.pop_deliverable(clock=10) is None


def test_stale_bound_refreshed_lazily(bounds):
    q = DeliveryQueue(bounds)
    q.add_pending(A)
    q.add_pending(B)
    q.commit(A, 5)
    # B's heap entry is stale (0); its true bound is already 8.
    bounds.set(B, 8)
    assert q.pop_deliverable(clock=10) == (A, 5)


def test_excluded_entry_restored(bounds):
    """The candidate's own bound entry must survive a failed pop."""
    q = DeliveryQueue(bounds)
    q.add_pending(A)
    q.add_pending(B)
    bounds.set(B, 4)
    q.commit(B, 4)
    bounds.set(A, 2)  # A blocks B
    assert q.pop_deliverable(clock=10) is None
    # Later A commits at 2 and must still be tracked as a blocker/pending.
    q.commit(A, 2)
    assert q.pop_deliverable(clock=10) == (A, 2)
    assert q.pop_deliverable(clock=10) == (B, 4)


def test_many_messages_scale(bounds):
    q = DeliveryQueue(bounds)
    n = 2000
    mids = [("m", i) for i in range(n)]
    for mid in mids:
        q.add_pending(mid)
    for i, mid in enumerate(reversed(mids)):
        q.commit(mid, n - i)
        bounds.set(mid, n - i)
    out = []
    while True:
        popped = q.pop_deliverable(clock=10 * n)
        if popped is None:
            break
        out.append(popped[1])
    assert out == sorted(out)
    assert len(out) == n
