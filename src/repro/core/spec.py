"""Literal, scan-based reference implementation of Algorithm 1.

:class:`~repro.core.process.PrimCastProcess` evaluates the paper's
predicates incrementally for performance. This module re-derives the same
values by brute-force scans over a literally recorded tuple set ``M``,
exactly as the pseudocode defines them. The test suite attaches a
:class:`SpecRecorder` to running processes and cross-checks the two
implementations on random executions (differential testing).

Known, deliberate deviations of the fast path (documented in DESIGN.md),
both delivery-conservative and excluded from the differential comparison:

1. own-group acks also store the carried multicast in ``started`` (the
   spec only adds ⟨start, m⟩ for *remote* acks, line 47) — the ack
   physically carries the payload, so this only widens when
   ``proposable`` can fire;
2. a process only delivers messages present in its T sequence, while the
   literal ``deliverable`` (line 26) would, in rare channel reorderings,
   allow delivery from ack quorums alone one event earlier.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .config import GroupConfig
from .epoch import Epoch
from .messages import Ack, Bump, MessageId, Multicast, Start
from .process import PrimCastProcess

# Literal M tuples.
AckTuple = Tuple[str, MessageId, int, Epoch, int, int]  # ack, m, h, E, ts, q
BumpTuple = Tuple[str, Epoch, int, int]  # bump, E, ts, q
StartTuple = Tuple[str, MessageId]  # start, m


class SpecRecorder:
    """Records every r-delivered tuple of one process into a literal M."""

    def __init__(self, proc: PrimCastProcess) -> None:
        self.proc = proc
        self.acks: List[AckTuple] = []
        self.bumps: List[BumpTuple] = []
        self.starts: Set[MessageId] = set()
        self.multicasts: Dict[MessageId, Multicast] = {}

    def record(self, origin: int, payload: object) -> None:
        if isinstance(payload, Ack):
            self.acks.append(
                ("ack", payload.mid, payload.group, payload.epoch, payload.ts, payload.sender)
            )
            self.multicasts[payload.mid] = payload.multicast
            if payload.group != self.proc.gid:
                self.starts.add(payload.mid)  # line 47
        elif isinstance(payload, Start):
            self.starts.add(payload.mid)
            self.multicasts[payload.mid] = payload.multicast
        elif isinstance(payload, Bump):
            self.bumps.append(("bump", payload.epoch, payload.ts, payload.sender))

    # ------------------------------------------------------------------
    # Algorithm 1, literal predicates
    # ------------------------------------------------------------------

    def local_ts(self, config: GroupConfig, mid: MessageId, group: int) -> Optional[int]:
        """Line 9: ts such that a quorum of ``group`` acked (m, E', ts)
        for a single epoch E'."""
        by_key: Dict[Tuple[Epoch, int], Set[int]] = {}
        for _, m, h, epoch, ts, q in self.acks:
            if m != mid or h != group:
                continue
            by_key.setdefault((epoch, ts), set()).add(q)
        for (epoch, ts), senders in sorted(by_key.items()):
            if config.has_quorum(group, senders):
                return ts
        return None

    def min_clock(self, config: GroupConfig, e_cur: Epoch, q: int) -> int:
        """Line 15: highest ts seen from ``q`` in own-group acks or bumps
        from epoch E_cur or earlier."""
        gid = self.proc.gid
        best = 0
        for _, _, h, epoch, ts, sender in self.acks:
            if h == gid and sender == q and epoch <= e_cur and ts > best:
                best = ts
        for _, epoch, ts, sender in self.bumps:
            if sender == q and epoch <= e_cur and ts > best:
                best = ts
        return best

    def quorum_clock(self, config: GroupConfig, e_cur: Epoch) -> int:
        """Line 17: max ts such that a quorum has min-clock ≥ ts."""
        gid = self.proc.gid
        clocks = {q: self.min_clock(config, e_cur, q) for q in config.members(gid)}
        return config.quorum_clock_value(gid, clocks)

    def final_ts(self, config: GroupConfig, mid: MessageId) -> Optional[int]:
        """Line 12: max over all destination groups, all decided."""
        multicast = self.multicasts.get(mid)
        if multicast is None:
            return None
        values: List[int] = []
        for gid in multicast.dest:
            ts = self.local_ts(config, mid, gid)
            if ts is None:
                return None
            values.append(ts)
        return max(values)

    def min_ts(self, config: GroupConfig, e_cur: Epoch, mid: MessageId) -> int:
        """Line 19, using the process's T for the proposal lookup."""
        multicast = self.multicasts[mid]
        known = [
            ts
            for gid in multicast.dest
            if (ts := self.local_ts(config, mid, gid)) is not None
        ]
        known_max = max(known) if known else 0
        entry = self.proc.t_by_mid.get(mid)
        t_ts: float = entry[1] if entry is not None else float("inf")
        lower = min(
            t_ts,
            1 + self.min_clock(config, e_cur, e_cur.leader),
            1 + self.quorum_clock(config, e_cur),
        )
        return int(max(known_max, lower))


def attach_spec_recorder(proc: PrimCastProcess) -> SpecRecorder:
    """Wrap ``proc.on_r_deliver`` to mirror every tuple into a literal M."""
    recorder = SpecRecorder(proc)
    original = proc.on_r_deliver

    def wrapped(origin: int, payload: object) -> None:
        recorder.record(origin, payload)
        original(origin, payload)

    proc.on_r_deliver = wrapped  # type: ignore[method-assign]
    return recorder
