"""repro.chaos — deterministic fault-schedule exploration.

The chaos subsystem stress-tests the protocol implementations under
adversarial fault schedules and turns any property violation into a
minimal, replayable counterexample:

* :mod:`~repro.chaos.schedule` — seed-derived, JSON-canonical
  :class:`FaultSchedule` (crashes, per-link delay spikes, clock skew);
* :mod:`~repro.chaos.nemesis` — applies a schedule to a built system
  via the failure injector, transmit wrapping and protocol probe hooks;
* :mod:`~repro.chaos.explorer` — seeded campaigns over N schedules,
  checked by the §2.2 property suite and the invariant monitors;
* :mod:`~repro.chaos.shrink` — delta-debugging minimization of a
  violating schedule into a replayable reproducer;
* :mod:`~repro.chaos.cli` — ``python -m repro.chaos run|replay|shrink``.
"""

from .explorer import (
    CHAOS_SCENARIOS,
    CampaignReport,
    CaseResult,
    CaseSpec,
    ChaosScenario,
    run_campaign,
    run_case,
)
from .nemesis import Nemesis
from .schedule import (
    FaultEvent,
    FaultSchedule,
    ScheduleShape,
    Trigger,
    generate_schedule,
)
from .shrink import ShrinkResult, shrink_case

__all__ = [
    "CHAOS_SCENARIOS",
    "CampaignReport",
    "CaseResult",
    "CaseSpec",
    "ChaosScenario",
    "FaultEvent",
    "FaultSchedule",
    "Nemesis",
    "ScheduleShape",
    "ShrinkResult",
    "Trigger",
    "generate_schedule",
    "run_campaign",
    "run_case",
    "shrink_case",
]
