"""Framework primitives for the repro static-analysis pass.

The pass is a set of small AST rules, each checking one determinism or
protocol-contract hazard that the runtime monitors
(:mod:`repro.verify.invariants`) could only catch after the fact — or
not at all, when the hazard happens to be latent on the tested schedules.
Rules are registered in a module-level registry keyed by rule id
(``DET0xx`` for determinism, ``PROTO1xx`` for protocol contracts) and
run by :mod:`repro.analysis.engine` over parsed source modules.

A rule yields :class:`Finding` objects; the engine filters them through
the per-rule allowlist and severity overrides of the active
:class:`~repro.analysis.config.AnalysisConfig`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .config import AnalysisConfig

#: Recognised severities, most severe first.
SEVERITIES: Tuple[str, ...] = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    #: ``module::qualname`` of the enclosing scope — the key the
    #: allowlist matches against (see ``AnalysisConfig.is_allowed``).
    context: str

    def format(self) -> str:
        """Human-readable one-liner (``path:line:col: RULE severity: msg``)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} {self.severity}: {self.message}"
        )

    def to_json(self) -> Dict[str, object]:
        """JSON-serialisable representation (stable key order)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }


@dataclass(frozen=True)
class ModuleInfo:
    """A parsed source module handed to every rule."""

    path: str
    module: str  # dotted module name, e.g. "repro.core.process"
    tree: ast.Module
    source: str


class Rule:
    """Base class for all analysis rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scope`` is a tuple of dotted module prefixes the rule applies to; a
    config may narrow or widen it per deployment. An empty scope means
    every analysed module.
    """

    rule_id: str = ""
    title: str = ""
    default_severity: str = "error"
    scope: Tuple[str, ...] = ()

    def applies_to(self, module: str, config: "AnalysisConfig") -> bool:
        """True when ``module`` falls inside this rule's scope."""
        scope = config.scope_override.get(self.rule_id, self.scope)
        if not scope:
            return True
        return any(
            module == prefix or module.startswith(prefix + ".") for prefix in scope
        )

    def check(self, mod: ModuleInfo, config: "AnalysisConfig") -> Iterator[Finding]:
        """Yield every violation of this rule in ``mod``."""
        raise NotImplementedError

    def finding(
        self,
        mod: ModuleInfo,
        node: ast.AST,
        message: str,
        context: str = "",
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            rule=self.rule_id,
            severity=self.default_severity,
            path=mod.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            context=f"{mod.module}::{context}" if context else mod.module,
        )


#: Global rule registry, keyed by rule id. Populated by :func:`register`.
RULES: Dict[str, Rule] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: instantiate and register a rule."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"rule class {cls.__name__} has no rule_id")
    if rule.rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id}")
    if rule.default_severity not in SEVERITIES:
        raise ValueError(f"rule {rule.rule_id}: bad severity {rule.default_severity}")
    RULES[rule.rule_id] = rule
    return cls


class ContextVisitor(ast.NodeVisitor):
    """Node visitor tracking the enclosing class/function qualname.

    Rules subclass this to report the scope a violation occurred in; the
    allowlist matches against ``module::qualname`` strings built from
    :attr:`context`.
    """

    def __init__(self) -> None:
        self._stack: List[str] = []

    @property
    def context(self) -> str:
        return ".".join(self._stack)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()
