"""Persistent worker-pool campaign runtime.

:class:`WorkerPool` replaces the fresh-``multiprocessing.Pool``-per-sweep
fan-out of PR 3 with long-lived worker processes that consume
:class:`~repro.harness.parallel.WorkSpec` items from one shared work
queue across an entire *campaign* — multi-figure sweeps, chaos
campaigns, differential runs. Three properties are load-bearing:

* **Amortized fan-out** — workers are spawned once (lazily, on the first
  parallel batch) and reused for every subsequent :meth:`WorkerPool.run`
  call, so a campaign of hundreds of sweeps pays worker spawn + import
  exactly once instead of once per sweep. ``BENCH_perf.json``'s
  ``campaign_pool`` entry measures the per-case overhead of both paths.

* **Dynamic scheduling, deterministic output** — dispatch is
  work-stealing (every idle worker pulls the next spec from the shared
  queue, so one long straggler case cannot serialize the rest of the
  batch behind it), but results are reassembled **by spec index** before
  they are returned. The output of :meth:`run` is therefore a pure
  function of the spec list — byte-identical to the serial loop at any
  job count, and independent of completion order. Pinned by
  ``tests/harness/test_pool.py``.

* **Streaming completion** — the optional ``on_result`` callback fires
  in *completion* order, as each result crosses back into the parent.
  :class:`~repro.harness.parallel.SweepExecutor` uses it to write every
  finished case into the content-addressed result cache immediately,
  which is what makes a killed campaign resumable with zero re-runs of
  completed cases (checkpoint/resume falls out of the PR 3 cache).

``jobs=1`` runs every spec inline in the calling process — no worker
processes, byte-for-byte the historical serial path.

Determinism: this module draws no randomness and never reads a clock —
queue poll timeouts are constants, not time reads. It is inside the
DET001 static-analysis scope (``repro.analysis.config.DET_SCOPE``):
specs carry their seeds explicitly, and the pool only moves them.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import traceback
import weakref
from typing import Any, Callable, Dict, List, Optional, Sequence

#: Seconds between liveness checks while waiting on the result queue.
#: A constant poll interval, not a wall-clock read: the pool never makes
#: a decision based on *when* something happened, only whether a worker
#: silently died while work was outstanding.
_POLL_INTERVAL_S = 0.25

#: Seconds to wait for a worker to drain its sentinel on a clean close
#: before falling back to terminate().
_CLOSE_JOIN_S = 5.0


class WorkerCrash(RuntimeError):
    """A worker process died or a spec raised inside a worker.

    Carries enough context to replay the failing spec serially: the spec
    index within the batch and, for in-spec exceptions, the worker-side
    traceback text.
    """

    def __init__(self, message: str, spec_index: Optional[int] = None) -> None:
        super().__init__(message)
        self.spec_index = spec_index


def run_spec(spec: Any) -> Any:
    """Execute one work spec (module-level so it pickles by reference)."""
    return spec.run()


def default_mp_context() -> str:
    """Start method for worker pools: ``fork`` where available (cheap,
    inherits the imported simulator), else ``spawn``. Either produces
    identical results — workers only consume the explicit spec seed."""
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


def _worker_main(worker_id: str, tasks: Any, results: Any) -> None:
    """Worker loop: pull ``(index, spec)``, run it, push the outcome.

    A spec that raises is reported as an ``"err"`` record (type name,
    message, formatted traceback) instead of killing the worker — the
    parent decides whether to abort the batch. ``None`` is the shutdown
    sentinel.
    """
    while True:
        item = tasks.get()
        if item is None:
            break
        index, spec = item
        try:
            result = spec.run()
        except BaseException as exc:  # noqa: BLE001 - forwarded to parent
            results.put(
                (
                    "err",
                    index,
                    (type(exc).__name__, str(exc), traceback.format_exc()),
                    worker_id,
                )
            )
            continue
        results.put(("ok", index, result, worker_id))


def _terminate_procs(procs: List[Any], queues: List[Any]) -> None:
    """Hard-stop helper shared by terminate() and the GC finalizer."""
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(timeout=1.0)
    for q in queues:
        try:
            q.cancel_join_thread()
            q.close()
        except (OSError, ValueError):
            pass
    procs.clear()


class WorkerPool:
    """Long-lived worker processes consuming specs from a shared queue.

    Args:
        jobs: worker processes. 1 runs every spec inline (no processes).
        mp_context: multiprocessing start method (default: ``fork`` when
            available, else ``spawn``).

    Workers are spawned lazily on the first parallel :meth:`run` and
    persist until :meth:`close` / :meth:`terminate` (or garbage
    collection — a finalizer terminates leaked workers). Reuse across
    batches is the whole point: :meth:`stats` reports how many workers
    were ever spawned vs how many batches/specs they served.
    """

    def __init__(self, jobs: int = 1, mp_context: Optional[str] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.mp_context = mp_context
        self._ctx = multiprocessing.get_context(mp_context or default_mp_context())
        self._procs: List[Any] = []
        self._queues: List[Any] = []
        self._tasks: Optional[Any] = None
        self._results: Optional[Any] = None
        self._closed = False
        self._next_worker = 0
        # lifetime counters (the "pool-reuse stats" of BENCH_perf.json)
        self._spawned = 0
        self._batches = 0
        self._dispatched = 0
        self._inline = 0
        self._per_worker: Dict[str, int] = {}
        self._finalizer = weakref.finalize(
            self, _terminate_procs, self._procs, self._queues
        )

    # -- lifecycle ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_workers(self) -> None:
        if self._tasks is None:
            self._tasks = self._ctx.Queue()
            self._results = self._ctx.Queue()
            self._queues.extend([self._tasks, self._results])
        # Replace workers that died between batches (a crashed case can
        # take its worker down); respawns show up in the spawn counter so
        # a bench that expected pure reuse can see the difference.
        self._procs[:] = [p for p in self._procs if p.is_alive()]
        while len(self._procs) < self.jobs:
            worker_id = f"w{self._next_worker}"
            self._next_worker += 1
            proc = self._ctx.Process(
                target=_worker_main,
                args=(worker_id, self._tasks, self._results),
                name=f"repro-pool-{worker_id}",
                daemon=True,
            )
            proc.start()
            self._procs.append(proc)
            self._spawned += 1

    def close(self) -> None:
        """Shut workers down cleanly (drain sentinels, then join)."""
        if self._closed:
            return
        self._closed = True
        if self._tasks is not None:
            for _ in self._procs:
                self._tasks.put(None)
            for proc in self._procs:
                proc.join(timeout=_CLOSE_JOIN_S)
        _terminate_procs(self._procs, self._queues)
        self._finalizer.detach()

    def terminate(self) -> None:
        """Hard-stop every worker immediately (error paths, aborts)."""
        if self._closed:
            return
        self._closed = True
        _terminate_procs(self._procs, self._queues)
        self._finalizer.detach()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- execution ------------------------------------------------------

    def run(
        self,
        specs: Sequence[Any],
        on_result: Optional[Callable[[int, Any, Any], None]] = None,
    ) -> List[Any]:
        """Execute every spec; results come back in **spec order**.

        ``on_result(index, spec, result)`` fires in *completion* order as
        each case finishes (the streaming-checkpoint hook). An exception
        from ``on_result`` — e.g. a deliberate abort — terminates the
        workers and propagates; results already reported remain reported.

        A spec that raises inside a worker aborts the batch with
        :class:`WorkerCrash` carrying the worker-side traceback. A worker
        that dies silently (OOM kill, segfault) is detected by liveness
        polling and also raises :class:`WorkerCrash`.
        """
        if self._closed:
            raise RuntimeError("WorkerPool is closed")
        self._batches += 1
        n = len(specs)
        if n == 0:
            return []
        if self.jobs == 1:
            return self._run_inline(specs, on_result)
        return self._run_parallel(specs, on_result)

    def _run_inline(
        self,
        specs: Sequence[Any],
        on_result: Optional[Callable[[int, Any, Any], None]],
    ) -> List[Any]:
        results: List[Any] = []
        for index, spec in enumerate(specs):
            result = run_spec(spec)
            self._inline += 1
            self._per_worker["inline"] = self._per_worker.get("inline", 0) + 1
            if on_result is not None:
                on_result(index, spec, result)
            results.append(result)
        return results

    def _run_parallel(
        self,
        specs: Sequence[Any],
        on_result: Optional[Callable[[int, Any, Any], None]],
    ) -> List[Any]:
        self._ensure_workers()
        assert self._tasks is not None and self._results is not None
        for index, spec in enumerate(specs):
            self._tasks.put((index, spec))
        self._dispatched += len(specs)
        results: List[Any] = [None] * len(specs)
        received = 0
        while received < len(specs):
            try:
                kind, index, payload, worker_id = self._results.get(
                    timeout=_POLL_INTERVAL_S
                )
            except queue_mod.Empty:
                dead = [p.name for p in self._procs if not p.is_alive()]
                if dead:
                    self.terminate()
                    raise WorkerCrash(
                        f"worker(s) {dead} died with "
                        f"{len(specs) - received} case(s) outstanding"
                    ) from None
                continue
            if kind == "err":
                exc_type, message, tb_text = payload
                self.terminate()
                raise WorkerCrash(
                    f"spec {index} raised {exc_type} in {worker_id}: "
                    f"{message}\n{tb_text}",
                    spec_index=index,
                )
            results[index] = payload
            self._per_worker[worker_id] = self._per_worker.get(worker_id, 0) + 1
            received += 1
            if on_result is not None:
                try:
                    on_result(index, specs[index], payload)
                except BaseException:
                    # The caller is aborting mid-batch (checkpoint tests
                    # do exactly this): stop the workers so no further
                    # results race the unwind, then propagate.
                    self.terminate()
                    raise
        return results

    # -- accounting -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Lifetime pool-reuse counters (JSON-safe).

        * ``spawned`` — worker processes ever created (reuse shows as
          ``spawned == jobs`` across many batches; respawns after a
          worker death push it higher);
        * ``batches`` — :meth:`run` calls served;
        * ``dispatched`` / ``inline`` — specs executed via the work
          queue vs inline (``jobs=1``);
        * ``per_worker`` — completed case count by worker id, the
          work-stealing balance evidence.
        """
        return {
            "jobs": self.jobs,
            "spawned": self._spawned,
            "batches": self._batches,
            "dispatched": self._dispatched,
            "inline": self._inline,
            "per_worker": dict(sorted(self._per_worker.items())),
        }
