"""Tests for the experiment runner and reporting."""

import pytest

from repro.harness.report import (
    THROUGHPUT_HEADERS,
    format_table,
    max_throughput_by_protocol,
    print_results,
    throughput_latency_rows,
)
from repro.harness.runner import PROTOCOLS, RunResult, build_system, run_load_point
from repro.sim.costs import zero_cost_model
from repro.workload.scenarios import lan_scenario


def small_scenario():
    return lan_scenario(n_groups=3, group_size=3)


class TestBuildSystem:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_builds_all_protocols(self, protocol):
        system = build_system(protocol, small_scenario())
        assert len(system.processes) == 9
        assert len(system.replicas) == 9

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            build_system("zab", small_scenario())

    def test_primcast_with_oracles(self):
        system = build_system("primcast", small_scenario(), omega_poll_ms=5.0)
        assert system.oracles is not None
        assert set(system.oracles) == {0, 1, 2}

    def test_hc_gets_physical_clocks(self):
        system = build_system("primcast-hc", small_scenario(), epsilon_ms=1.5)
        for proc in system.replicas:
            assert proc.hybrid_clock
            assert abs(proc.physical_clock.offset_us) <= 1500

    def test_deterministic_by_seed(self):
        r1 = run_load_point(
            "primcast", small_scenario(), 2, 2, seed=5, warmup_ms=20, measure_ms=50,
            cost_model=zero_cost_model(),
        )
        r2 = run_load_point(
            "primcast", small_scenario(), 2, 2, seed=5, warmup_ms=20, measure_ms=50,
            cost_model=zero_cost_model(),
        )
        assert r1.throughput == r2.throughput
        assert r1.latency == r2.latency

    def test_different_seed_differs(self):
        kw = dict(warmup_ms=20, measure_ms=50, cost_model=zero_cost_model())
        r1 = run_load_point("primcast", small_scenario(), 2, 2, seed=5, **kw)
        r2 = run_load_point("primcast", small_scenario(), 2, 2, seed=6, **kw)
        assert r1.samples != r2.samples


class TestRunLoadPoint:
    def test_result_shape(self):
        r = run_load_point(
            "primcast", small_scenario(), 2, 2, warmup_ms=20, measure_ms=50,
            cost_model=zero_cost_model(),
        )
        assert r.protocol == "primcast"
        assert r.throughput > 0
        assert r.latency["p95"] >= r.latency["p50"] > 0
        assert r.throughput_kmsgs == pytest.approx(r.throughput / 1000.0)
        assert r.message_counts["start"] > 0
        assert r.events > 0

    def test_warmup_excluded(self):
        r = run_load_point(
            "primcast", small_scenario(), 1, 1, warmup_ms=30, measure_ms=30,
            cost_model=zero_cost_model(),
        )
        for _, when, _ in r.samples:
            assert 30.0 <= when < 60.0

    def test_latencies_for_filters_by_pid(self):
        r = run_load_point(
            "primcast", small_scenario(), 2, 1, warmup_ms=20, measure_ms=40,
            cost_model=zero_cost_model(),
        )
        all_lats = [lat for _, _, lat in r.samples]
        subset = r.latencies_for({0, 3, 6})
        assert len(subset) < len(all_lats)
        assert set(subset) <= set(all_lats)


class TestStreamingStats:
    def test_streaming_aggregates_match_exact_run(self):
        """Streaming mode bounds collection memory without perturbing the
        run: the schedule, counts and running aggregates are identical;
        only per-sample retention changes."""
        kw = dict(warmup_ms=20, measure_ms=80, seed=3, cost_model=zero_cost_model())
        exact = run_load_point("primcast", small_scenario(), 2, 2, **kw)
        streamed = run_load_point(
            "primcast", small_scenario(), 2, 2, streaming_stats=True, **kw
        )
        assert streamed.events == exact.events  # same simulation schedule
        assert streamed.message_counts == exact.message_counts
        assert streamed.latency["count"] == exact.latency["count"] > 0
        assert streamed.throughput == exact.throughput
        # Mean comes from running sums, so accumulation order differs.
        assert streamed.latency["mean"] == pytest.approx(
            exact.latency["mean"], rel=1e-12
        )
        # At this size no client ring overflows: percentiles exact too.
        for key in ("p50", "p95", "p99"):
            assert streamed.latency[key] == exact.latency[key]
        # The memory saving: no per-sample list is retained.
        assert streamed.samples == []
        assert exact.samples


class TestReport:
    def _results(self):
        return [
            RunResult("primcast", "LAN", 2, 4, 12345.0,
                      {"count": 10, "mean": 1.2, "p50": 1.0, "p95": 2.0, "p99": 3.0}),
            RunResult("fastcast", "LAN", 2, 4, 2345.0,
                      {"count": 10, "mean": 4.2, "p50": 4.0, "p95": 6.0, "p99": 9.0}),
        ]

    def test_rows_match_headers(self):
        rows = throughput_latency_rows(self._results())
        assert len(rows[0]) == len(THROUGHPUT_HEADERS)
        assert rows[0][0] == "primcast"
        assert rows[0][3] == "12.35"

    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [["x", "y"], ["long", "z"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_print_results_smoke(self, capsys):
        print_results("Fig X", self._results())
        out = capsys.readouterr().out
        assert "Fig X" in out and "primcast" in out

    def test_max_throughput(self):
        best = max_throughput_by_protocol(self._results())
        assert best == {"primcast": 12345.0, "fastcast": 2345.0}
