"""Closed-loop client workload (§7.2).

One client is colocated with each replica. Every client keeps a fixed
number of *outstanding* multicasts: it issues them through its replica,
and each time one of its messages is a-delivered at that replica, it
records the end-to-end latency and immediately issues the next one.
System load is swept by raising the outstanding count uniformly.

Destination choice follows the paper: the client's own group is always a
destination; the remaining ``n_dest - 1`` groups are drawn uniformly at
random from the others.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Dict, List, MutableSequence, Optional, Set, Tuple

from ..core.messages import MessageId, Multicast

#: A latency sample: (client pid == replica pid, deliver time ms, latency ms)
Sample = Tuple[int, float, float]


class Client:
    """A closed-loop client attached to one replica.

    Args:
        replica: the protocol process this client submits through (any
            object with ``a_multicast`` / ``add_deliver_hook`` / ``gid``).
        n_dest_groups: destinations per message (own group included).
        n_groups: total groups in the system.
        outstanding: how many multicasts to keep in flight.
        rng: destination-choice randomness.
        payload: opaque payload attached to every message.
        sample_limit: when set, ``samples`` becomes a bounded ring of
            the most recent samples (streaming-stats mode for long runs)
            while the exact running aggregates below keep counting; None
            (the default) keeps every sample, exactly as before.
        measure_from_ms: samples delivered before this simulated time are
            not recorded (they are still completed/reissued) — lets the
            streaming mode skip the warmup window without keeping it.

    Running aggregates (exact regardless of ``sample_limit``):
    ``stat_count`` / ``stat_sum_ms`` / ``stat_min_ms`` / ``stat_max_ms``
    over every *recorded* sample.
    """

    def __init__(
        self,
        replica: Any,
        n_dest_groups: int,
        n_groups: int,
        outstanding: int,
        rng: random.Random,
        payload: Any = None,
        sample_limit: Optional[int] = None,
        measure_from_ms: float = 0.0,
    ):
        if not 1 <= n_dest_groups <= n_groups:
            raise ValueError(
                f"n_dest_groups must be in [1, {n_groups}], got {n_dest_groups}"
            )
        if outstanding < 1:
            raise ValueError("need at least one outstanding message")
        self.replica = replica
        self.n_dest_groups = n_dest_groups
        self.n_groups = n_groups
        self.outstanding = outstanding
        self.rng = rng
        self.payload = payload
        self.sample_limit = sample_limit
        self.measure_from_ms = measure_from_ms
        self.samples: MutableSequence[Sample] = (
            deque(maxlen=sample_limit) if sample_limit is not None else []
        )
        self.stat_count = 0
        self.stat_sum_ms = 0.0
        self.stat_min_ms = float("inf")
        self.stat_max_ms = 0.0
        self.issued = 0
        self.completed = 0
        self.stopped = False
        self._in_flight: Dict[MessageId, float] = {}
        self._other_groups = [g for g in range(n_groups) if g != replica.gid]
        replica.add_deliver_hook(self._on_deliver)

    def start(self) -> None:
        """Issue the initial window of outstanding messages.

        Submission happens on the replica's CPU (clients are colocated
        with their replica, §7.2).
        """
        self.replica.post_job(self._issue_window)

    def _issue_window(self) -> None:
        for _ in range(self.outstanding):
            self._issue_one()

    def _pick_dest(self) -> Set[int]:
        dest = {self.replica.gid}
        if self.n_dest_groups > 1:
            dest.update(self.rng.sample(self._other_groups, self.n_dest_groups - 1))
        return dest

    def _issue_one(self) -> None:
        if self.stopped:
            return
        multicast = self.replica.a_multicast(self._pick_dest(), self.payload)
        self._in_flight[multicast.mid] = self.replica.scheduler.now
        self.issued += 1

    def _on_deliver(self, proc: Any, multicast: Multicast, final_ts: int) -> None:
        sent_at = self._in_flight.pop(multicast.mid, None)
        if sent_at is None:
            return
        now = proc.scheduler.now
        if now >= self.measure_from_ms:
            lat = now - sent_at
            self.samples.append((self.replica.pid, now, lat))
            self.stat_count += 1
            self.stat_sum_ms += lat
            if lat < self.stat_min_ms:
                self.stat_min_ms = lat
            if lat > self.stat_max_ms:
                self.stat_max_ms = lat
        self.completed += 1
        self._issue_one()

    def stop(self) -> None:
        """Stop issuing new messages (in-flight ones may still complete)."""
        self.stopped = True


def make_clients(
    replicas: List[Any],
    n_dest_groups: int,
    n_groups: int,
    outstanding: int,
    rng: random.Random,
    payload: Any = None,
    sample_limit: Optional[int] = None,
    measure_from_ms: float = 0.0,
) -> List[Client]:
    """One client per replica, each with its own derived RNG stream."""
    clients = []
    for replica in replicas:
        client_rng = random.Random(rng.getrandbits(64))
        clients.append(
            Client(
                replica,
                n_dest_groups,
                n_groups,
                outstanding,
                client_rng,
                payload,
                sample_limit=sample_limit,
                measure_from_ms=measure_from_ms,
            )
        )
    return clients
