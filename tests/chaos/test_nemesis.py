"""Unit tests for the nemesis: crash targeting, budgets, delays, hooks."""

from repro.chaos.nemesis import Nemesis
from repro.chaos.schedule import FaultEvent, FaultSchedule, Trigger
from repro.core import PrimCastProcess, uniform_groups
from repro.election import make_oracles
from repro.sim import (
    ConstantLatency,
    FailureInjector,
    Network,
    Scheduler,
    child_rng,
)


def build(seed=1, n_groups=2, group_size=3, omega=True):
    config = uniform_groups(n_groups, group_size)
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(seed, "nemesis-test"))
    procs = {
        pid: PrimCastProcess(pid, config, sched, net) for pid in config.all_pids
    }
    if omega:
        oracles = make_oracles(config.groups, procs, sched, poll_interval_ms=4.0)
        for pid, proc in procs.items():
            proc.omega = oracles[config.group_of[pid]]
            proc.omega.subscribe(proc._on_omega_output)
    return config, sched, net, procs


def nemesis_for(events, config, sched, net, procs, seed=1):
    schedule = FaultSchedule("test", seed, tuple(events))
    injector = FailureInjector(sched, procs)
    nem = Nemesis(schedule, sched, net, config, procs, injector)
    nem.install()
    return nem, injector


def crash(target, trigger, over_budget=False):
    return FaultEvent(
        kind="crash", trigger=trigger, target=target, over_budget=over_budget
    )


class TestCrashInjection:
    def test_time_triggered_pid_crash(self):
        config, sched, net, procs = build()
        nem, inj = nemesis_for(
            [crash("pid:4", Trigger(kind="at", time_ms=5.0))],
            config, sched, net, procs,
        )
        sched.run(until=20.0)
        assert procs[4].crashed
        assert inj.crashed_pids == [4]
        assert nem.applied["crashes"] == 1

    def test_leader_target_kills_group_primary(self):
        config, sched, net, procs = build()
        nem, inj = nemesis_for(
            [crash("leader:1", Trigger(kind="at", time_ms=5.0))],
            config, sched, net, procs,
        )
        sched.run(until=20.0)
        assert nem.applied["crashes"] == 1
        assert inj.crashed_pids and inj.crashed_pids[0] in config.members(1)

    def test_budget_guard_refuses_second_crash_in_group(self):
        config, sched, net, procs = build()
        nem, inj = nemesis_for(
            [
                crash("pid:0", Trigger(kind="at", time_ms=5.0)),
                crash("pid:1", Trigger(kind="at", time_ms=6.0)),
            ],
            config, sched, net, procs,
        )
        sched.run(until=20.0)
        assert inj.crashed_pids == [0]
        assert nem.applied["crashes"] == 1
        assert nem.applied["budget_refused"] == 1

    def test_over_budget_flag_bypasses_guard(self):
        config, sched, net, procs = build()
        nem, inj = nemesis_for(
            [
                crash("pid:0", Trigger(kind="at", time_ms=5.0)),
                crash("pid:1", Trigger(kind="at", time_ms=6.0), over_budget=True),
            ],
            config, sched, net, procs,
        )
        sched.run(until=20.0)
        assert inj.crashed_pids == [0, 1]
        assert nem.applied["crashes"] == 2

    def test_crashed_target_counts_unresolved(self):
        config, sched, net, procs = build()
        nem, _ = nemesis_for(
            [
                crash("pid:3", Trigger(kind="at", time_ms=5.0)),
                crash("pid:3", Trigger(kind="at", time_ms=6.0)),
            ],
            config, sched, net, procs,
        )
        sched.run(until=20.0)
        assert nem.applied["crashes"] == 1
        assert nem.applied["unresolved"] == 1

    def test_install_is_idempotent(self):
        config, sched, net, procs = build()
        nem, inj = nemesis_for(
            [crash("pid:4", Trigger(kind="at", time_ms=5.0))],
            config, sched, net, procs,
        )
        nem.install()
        sched.run(until=20.0)
        assert inj.crashed_pids == [4]


class TestHookTriggers:
    def test_hook_crash_fires_at_step_boundary(self):
        config, sched, net, procs = build()
        nem, inj = nemesis_for(
            [
                crash(
                    "leader:0",
                    Trigger(kind="on", event="ack_quorum", nth=1),
                )
            ],
            config, sched, net, procs,
        )
        procs[0].a_multicast(frozenset({0, 1}), "m0")
        sched.run(until=200.0)
        assert nem.applied["crashes"] == 1
        assert inj.crashed_pids and inj.crashed_pids[0] in config.members(0)

    def test_nth_counts_matching_probes(self):
        config, sched, net, procs = build()
        nem, _ = nemesis_for(
            [
                crash(
                    "leader:0",
                    Trigger(kind="on", event="ack_quorum", nth=3, pid=0),
                )
            ],
            config, sched, net, procs,
        )
        for i in range(2):
            procs[0].a_multicast(frozenset({0}), f"m{i}")
        sched.run(until=200.0)
        # Only two ack quorums can have been observed at pid 0.
        assert nem.applied["crashes"] == 0

    def test_offset_defers_the_crash(self):
        config, sched, net, procs = build()
        nem, inj = nemesis_for(
            [
                crash(
                    "pid:0",
                    Trigger(
                        kind="on", event="ack_quorum", nth=1, offset_ms=50.0
                    ),
                )
            ],
            config, sched, net, procs,
        )
        procs[0].a_multicast(frozenset({0}), "m0")
        sched.run(until=30.0)
        assert not procs[0].crashed
        sched.run(until=200.0)
        assert procs[0].crashed
        assert nem.applied["crashes"] == 1
        assert inj.crashed_pids == [0]


class TestDelaysAndSkew:
    def test_delay_rule_shifts_matching_departures(self):
        config, sched, net, procs = build(omega=False)
        nem, _ = nemesis_for(
            [
                FaultEvent(
                    kind="delay",
                    trigger=Trigger(kind="at", time_ms=0.0),
                    src=0,
                    dst=3,
                    extra_ms=40.0,
                    duration_ms=100.0,
                )
            ],
            config, sched, net, procs,
        )
        assert nem.applied["delays"] == 1
        arrivals = []
        original = procs[3].on_message

        def spy(src, msg):
            arrivals.append((sched.now, src))
            original(src, msg)

        procs[3].on_message = spy
        procs[0].a_multicast(frozenset({1}), "m0")
        sched.run(until=300.0)
        assert arrivals, "pid 3 never heard from pid 0"
        # ConstantLatency(1.0) plus the 40ms spike dominates every
        # 0->3 arrival inside the window.
        assert min(t for t, _ in arrivals) >= 40.0

    def test_delay_outside_window_does_not_apply(self):
        config, sched, net, procs = build(omega=False)
        nemesis_for(
            [
                FaultEvent(
                    kind="delay",
                    trigger=Trigger(kind="at", time_ms=200.0),
                    src=0,
                    dst=3,
                    extra_ms=40.0,
                    duration_ms=50.0,
                )
            ],
            config, sched, net, procs,
        )
        arrivals = []
        original = procs[3].on_message

        def spy(src, msg):
            arrivals.append(sched.now)
            original(src, msg)

        procs[3].on_message = spy
        procs[0].a_multicast(frozenset({1}), "m0")
        sched.run(until=100.0)
        assert arrivals and min(arrivals) < 40.0

    def test_skew_event_shifts_physical_clock(self):
        from repro.sim.clock import PhysicalClock

        config, sched, net, procs = build(omega=False)
        clock = PhysicalClock(sched)
        procs[2].physical_clock = clock
        nem, _ = nemesis_for(
            [
                FaultEvent(
                    kind="skew",
                    trigger=Trigger(kind="at", time_ms=5.0),
                    pid=2,
                    skew_us=1500,
                )
            ],
            config, sched, net, procs,
        )
        sched.run(until=10.0)
        assert clock.offset_us == 1500
        assert nem.applied["skews"] == 1
