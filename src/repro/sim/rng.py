"""Deterministic random-number plumbing.

Every stochastic component of the simulation (latency sampling, clock
offsets, workload destination choices) draws from a child RNG derived from
one root seed and a stable string label. Two runs with the same root seed
are bit-identical; changing one component's draw pattern does not perturb
the others.
"""

from __future__ import annotations

import hashlib
import random


def child_seed(root_seed: int, label: str) -> int:
    """Derive a stable 64-bit seed from ``root_seed`` and ``label``."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def child_rng(root_seed: int, label: str) -> random.Random:
    """Return a :class:`random.Random` seeded from ``(root_seed, label)``."""
    return random.Random(child_seed(root_seed, label))
