"""Weak leader-election oracle Ω per group (§2.1)."""

from .omega import LeaderCallback, OmegaOracle, make_oracles

__all__ = ["OmegaOracle", "make_oracles", "LeaderCallback"]
