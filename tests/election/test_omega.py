"""Unit tests for the Ω leader oracle."""

import pytest

from repro.election.omega import OmegaOracle, make_oracles
from repro.sim.events import Scheduler
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.process import SimProcess
from repro.sim.rng import child_rng


class Dummy(SimProcess):
    def on_message(self, src, msg):
        pass


def build(n=3):
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(1, "o"))
    procs = {i: Dummy(i, sched, net) for i in range(n)}
    return sched, procs


def test_initial_output_is_first_member():
    sched, procs = build()
    oracle = OmegaOracle(0, [0, 1, 2], procs, sched)
    assert oracle.leader == 0


def test_subscribe_fires_immediately():
    sched, procs = build()
    oracle = OmegaOracle(0, [0, 1, 2], procs, sched)
    seen = []
    oracle.subscribe(lambda gid, pid: seen.append((gid, pid)))
    assert seen == [(0, 0)]


def test_static_oracle_never_changes_without_polling():
    sched, procs = build()
    oracle = OmegaOracle(0, [0, 1, 2], procs, sched, poll_interval_ms=None)
    procs[0].crash()
    sched.run(until=1000.0)
    assert oracle.leader == 0


def test_detects_crash_within_one_interval():
    sched, procs = build()
    oracle = OmegaOracle(0, [0, 1, 2], procs, sched, poll_interval_ms=10.0)
    seen = []
    oracle.subscribe(lambda gid, pid: seen.append((sched.now, pid)))
    procs[0].crash()
    sched.run(until=25.0)
    assert oracle.leader == 1
    assert seen[-1][1] == 1
    assert seen[-1][0] <= 10.0 + 1e-9


def test_cascading_crashes_elect_next_correct():
    sched, procs = build()
    oracle = OmegaOracle(0, [0, 1, 2], procs, sched, poll_interval_ms=5.0)
    procs[0].crash()
    procs[1].crash()
    sched.run(until=12.0)
    assert oracle.leader == 2


def test_all_crashed_keeps_last_output():
    sched, procs = build()
    oracle = OmegaOracle(0, [0, 1, 2], procs, sched, poll_interval_ms=5.0)
    for p in procs.values():
        p.crash()
    sched.run(until=12.0)
    assert oracle.leader in (0, 1, 2)


def test_make_oracles_one_per_group():
    sched, procs = build(6)
    oracles = make_oracles([[0, 1, 2], [3, 4, 5]], procs, sched)
    assert set(oracles) == {0, 1}
    assert oracles[0].leader == 0
    assert oracles[1].leader == 3


def test_empty_group_rejected():
    sched, procs = build()
    with pytest.raises(ValueError):
        OmegaOracle(0, [], procs, sched)


def test_bad_poll_interval_rejected():
    sched, procs = build()
    with pytest.raises(ValueError):
        OmegaOracle(0, [0], procs, sched, poll_interval_ms=0.0)


def test_stability_no_spurious_changes():
    sched, procs = build()
    oracle = OmegaOracle(0, [0, 1, 2], procs, sched, poll_interval_ms=1.0)
    changes = []
    oracle.subscribe(lambda gid, pid: changes.append(pid))
    sched.run(until=100.0)
    assert changes == [0]  # only the initial notification
