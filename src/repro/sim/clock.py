"""Loosely synchronized physical clocks (§6).

The hybrid-clock variant of PrimCast assumes each server can read a
hardware clock synchronized to real time within a maximum skew of
``epsilon`` (so any two clocks are within ``2 * epsilon`` of each other).
We model this with a per-process constant offset drawn uniformly from
``[-epsilon, +epsilon]`` plus an optional drift rate. Clock readings are
returned in integer **microseconds** so they can be mixed with the
protocol's integer logical timestamps (``clock = max(clock+1,
real-clock())`` requires a shared domain).
"""

from __future__ import annotations

import random
from typing import Dict, List

from .events import Scheduler

#: Microseconds per simulated millisecond.
US_PER_MS = 1000


class PhysicalClock:
    """A hardware clock with bounded skew from simulated real time.

    Args:
        scheduler: source of true simulated time.
        offset_us: constant offset from true time, in microseconds.
        drift_ppm: clock drift in parts-per-million (0 = perfect rate).
    """

    __slots__ = ("scheduler", "offset_us", "drift_ppm")

    def __init__(
        self, scheduler: Scheduler, offset_us: float = 0.0, drift_ppm: float = 0.0
    ) -> None:
        self.scheduler = scheduler
        self.offset_us = offset_us
        self.drift_ppm = drift_ppm

    def read_us(self) -> int:
        """Current clock reading in integer microseconds."""
        true_us = self.scheduler.now * US_PER_MS
        skewed = true_us * (1.0 + self.drift_ppm * 1e-6) + self.offset_us
        return int(skewed)


def make_clocks(
    scheduler: Scheduler,
    pids: List[int],
    epsilon_ms: float,
    rng: random.Random,
    drift_ppm: float = 0.0,
) -> Dict[int, PhysicalClock]:
    """Create one clock per process with offsets in ``[-eps, +eps]``.

    Args:
        epsilon_ms: maximum skew from real time, in milliseconds
            (pairwise skew is at most ``2 * epsilon_ms``).
    """
    if epsilon_ms < 0:
        raise ValueError("epsilon must be non-negative")
    clocks: Dict[int, PhysicalClock] = {}
    for pid in pids:
        offset_us = rng.uniform(-epsilon_ms, epsilon_ms) * US_PER_MS
        clocks[pid] = PhysicalClock(scheduler, offset_us, drift_ppm)
    return clocks
