"""Differential-harness and perf-history unit tests.

The cross-backend *golden* comparisons live in
``tests/harness/test_determinism_golden.py``; here we test the
machinery itself: fingerprint diffing, the backend subprocess protocol
(including the REPRO_COMPILED=0 escape hatch), the CLI exit codes, and
the BENCH_history append/render pipeline.
"""

import subprocess
import sys

import pytest

from repro._backend import COMPILED_MODULES
from repro.harness.differential import (
    SCENARIOS,
    diff_fingerprints,
    run_backend,
    run_scenario,
)
from repro.harness.perf import (
    HISTORY_BEGIN,
    HISTORY_END,
    append_history,
    history_table,
    read_history,
    update_experiments_history,
)


def test_diff_fingerprints_reports_each_divergent_field():
    ref = {"events": 100, "throughput": 1.5, "sample_checksum": "1.0"}
    same = dict(ref)
    assert diff_fingerprints(ref, same) == []
    cand = {"events": 101, "throughput": 1.5, "sample_checksum": "2.0"}
    mismatches = diff_fingerprints(ref, cand)
    assert len(mismatches) == 2
    assert any(m.startswith("events:") for m in mismatches)
    assert any(m.startswith("sample_checksum:") for m in mismatches)


def test_diff_fingerprints_catches_missing_fields():
    assert diff_fingerprints({"a": 1}, {}) == ["a: reference=1 candidate=None"]


def test_run_scenario_rejects_nothing_but_known_protocols():
    assert set(SCENARIOS) == {"primcast", "primcast-hc", "whitebox", "fastcast"}


def test_worker_roundtrip_and_escape_hatch():
    """The reference worker must run pure python even when the parent
    requested the compiled backend — REPRO_COMPILED=0 is authoritative."""
    payload = run_backend("primcast", compiled=False)
    assert payload["backend_info"]["backend"] == "pure-python"
    assert payload["backend_info"]["requested"] == "pure-python"
    fp = payload["fingerprint"]
    assert fp["protocol"] == "primcast"
    # The worker pins the seed schedule (compaction off).
    assert fp["events"] == 67744
    # And matches an in-process run bit for bit.
    assert diff_fingerprints(fp, run_scenario("primcast")) == []


def test_backend_info_covers_the_compilation_unit():
    import repro

    info = repro.backend_info()
    assert info["eligible_modules"] == list(COMPILED_MODULES)
    assert info["backend"] in ("pure-python", "compiled", "mixed")
    # Whatever this environment is, every eligible module is imported
    # by `import repro`, so the report is complete.
    assert set(info["compiled_modules"]) <= set(info["eligible_modules"])


def test_cli_exit_codes():
    """Exit 0 on identical-or-skipped, 2 under --require-compiled with
    no extensions, 1 only on a real mismatch (not constructible here)."""
    out = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.harness.differential",
            "--scenario",
            "primcast",
        ],
        capture_output=True,
        text=True,
    )
    assert out.returncode == 0, out.stdout + out.stderr
    compiled_available = "skipped" not in out.stdout
    if not compiled_available:
        strict = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.harness.differential",
                "--require-compiled",
                "--scenario",
                "primcast",
            ],
            capture_output=True,
            text=True,
        )
        assert strict.returncode == 2


# ----------------------------------------------------------------------
# perf history pipeline (--append-history)
# ----------------------------------------------------------------------


def _row(ts, wall, note=""):
    return {
        "timestamp": ts,
        "point": "fig3-wan-colocated-d2-o32",
        "wall_s": wall,
        "walls_s": [wall],
        "events": 660110,
        "events_per_sec": 660110 / wall,
        "speedup_vs_seed": 10.139 / wall,
        "backend": "pure-python",
        "note": note,
    }


def test_history_append_read_roundtrip(tmp_path):
    log = tmp_path / "BENCH_history.jsonl"
    append_history(_row("2026-01-01T00:00:00Z", 5.0), path=log)
    append_history(_row("2026-01-02T00:00:00Z", 4.0, "faster"), path=log)
    rows = read_history(path=log)
    assert [r["wall_s"] for r in rows] == [5.0, 4.0]
    assert rows[1]["note"] == "faster"
    # Append-only: a reread after another append sees all three.
    append_history(_row("2026-01-03T00:00:00Z", 3.0), path=log)
    assert len(read_history(path=log)) == 3


def test_history_table_renders_every_row():
    rows = [
        _row("2026-01-01T00:00:00Z", 5.0),
        _row("2026-01-02T00:00:00Z", 4.0, "faster"),
    ]
    table = history_table(rows)
    lines = table.splitlines()
    assert lines[0].startswith("| When (UTC) |")
    assert len(lines) == 2 + len(rows)
    assert "2026-01-02T00:00:00Z" in lines[3]
    assert "faster" in lines[3]
    assert "2.03x" in lines[2]  # 10.139 / 5.0 vs seed


def test_update_experiments_history_rewrites_only_the_marked_block(tmp_path):
    doc = tmp_path / "EXPERIMENTS.md"
    doc.write_text(
        "# Title\n\nprose before\n\n"
        f"{HISTORY_BEGIN}\nstale table\n{HISTORY_END}\n\nprose after\n"
    )
    update_experiments_history([_row("2026-01-01T00:00:00Z", 5.0)], path=doc)
    text = doc.read_text()
    assert "stale table" not in text
    assert "2026-01-01T00:00:00Z" in text
    assert text.startswith("# Title\n\nprose before\n")
    assert text.endswith("prose after\n")
    # Idempotent: regenerating replaces, never accumulates.
    update_experiments_history([_row("2026-01-02T00:00:00Z", 4.0)], path=doc)
    text = doc.read_text()
    assert "2026-01-01T00:00:00Z" not in text
    assert "2026-01-02T00:00:00Z" in text


def test_update_experiments_history_refuses_missing_markers(tmp_path):
    doc = tmp_path / "EXPERIMENTS.md"
    doc.write_text("# Title\n\nno markers here\n")
    with pytest.raises(ValueError):
        update_experiments_history([], path=doc)


def test_repo_experiments_has_the_markers():
    """The real EXPERIMENTS.md must keep the marker pair, or
    --append-history starts failing."""
    from repro.harness.perf import EXPERIMENTS_PATH

    text = EXPERIMENTS_PATH.read_text()
    assert HISTORY_BEGIN in text
    assert HISTORY_END in text
    assert text.index(HISTORY_BEGIN) < text.index(HISTORY_END)
