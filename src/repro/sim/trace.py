"""Message-flight tracing and textual space-time diagrams.

Opt-in recording of every wire message's (src, dst, kind, mid, depart,
arrival), plus a renderer producing a chronological message-exchange
listing — the textual equivalent of the paper's Figure 1 space-time
diagram. Used by the Figure 1 bench and available for debugging any
execution.
"""

from __future__ import annotations

from typing import Any, Callable, List, NamedTuple, Optional, Sequence

from .network import Network


class Flight(NamedTuple):
    """One message's trip across the network."""

    src: int
    dst: int
    kind: str
    mid: Any
    depart: float
    arrival: float


def record_flights(network: Network) -> List[Flight]:
    """Attach a flight log to ``network``; returns the live list.

    Arrival times are reconstructed from the latency model's mean —
    exact on constant-latency networks, which is what diagrams use
    (jittered runs get mean-latency arrivals, still useful for reading
    an execution).
    """
    flights: List[Flight] = []
    latency = network.latency

    def intercept(src: int, dst: int, msg: Any, depart_time: float) -> float:
        arrival = depart_time if src == dst else depart_time + latency.mean(src, dst)
        flights.append(
            Flight(
                src,
                dst,
                getattr(msg, "kind", type(msg).__name__),
                getattr(msg, "mid", None),
                depart_time,
                arrival,
            )
        )
        return depart_time

    network.add_transmit_interceptor(intercept)
    return flights


def render_exchanges(
    flights: Sequence[Flight],
    include: Optional[Callable[[Flight], bool]] = None,
    label_of: Optional[Callable[[int], str]] = None,
) -> str:
    """Chronological message-exchange listing (textual Figure 1).

    Self-sends (a process's own r-multicast delivery) are omitted: they
    take no network trip and would only add noise.

    Args:
        include: extra filter predicate.
        label_of: process labels (default ``p<pid>``).
    """
    label = label_of or (lambda pid: f"p{pid}")
    lines = []
    for flight in sorted(flights, key=lambda f: (f.depart, f.arrival, f.src, f.dst)):
        if flight.src == flight.dst:
            continue
        if include is not None and not include(flight):
            continue
        lines.append(
            f"t={flight.depart:6.2f} -> t={flight.arrival:6.2f}  "
            f"{label(flight.src):>4} -> {label(flight.dst):<4}  {flight.kind}"
        )
    return "\n".join(lines)
