"""Ablation — the ack-merging cost assumption (§7.1).

The paper credits PrimCast's throughput, despite its quadratic ack
pattern, to acknowledgements being tiny and mergeable. Our cost model
encodes this as control messages costing a fraction of payload messages.
This ablation re-runs a LAN load point with that assumption removed
(acks as expensive as payloads): PrimCast's throughput advantage over
White-Box should shrink or invert, showing the headline throughput
result really does hinge on cheap acks — exactly the claim of §7.3.
"""

from repro.harness.report import format_table
from repro.harness.runner import run_load_point
from repro.sim.costs import CostModel, PAYLOAD_COST_MS, default_cost_model
from repro.workload.scenarios import lan_scenario


def expensive_ack_model() -> CostModel:
    """Every message costs like a payload message (no merging)."""
    kinds = [
        "start", "ack", "bump",
        "wb-accept", "wb-ack", "wb-deliver",
        "fc-soft", "fc-hard", "fc-2a", "fc-2b",
    ]
    recv = {k: PAYLOAD_COST_MS for k in kinds}
    send = {k: PAYLOAD_COST_MS / 2 for k in kinds}
    return CostModel(recv, send, PAYLOAD_COST_MS, PAYLOAD_COST_MS / 2)


def _peak(protocol, cost_model):
    best = 0.0
    for outstanding in (8, 32):
        r = run_load_point(
            protocol,
            lan_scenario(),
            2,
            outstanding,
            warmup_ms=80,
            measure_ms=150,
            cost_model=cost_model,
            keep_samples=False,
        )
        best = max(best, r.throughput)
    return best


def test_ack_merging_drives_throughput(benchmark):
    cheap = default_cost_model()
    expensive = expensive_ack_model()

    results = {}
    for proto in ("primcast", "whitebox"):
        results[(proto, "cheap-acks")] = _peak(proto, cheap)
        results[(proto, "expensive-acks")] = _peak(proto, expensive)
    benchmark.pedantic(
        _peak, args=("primcast", cheap), rounds=1, iterations=1
    )

    rows = [
        [variant, proto, f"{tput / 1000:.1f}k"]
        for (proto, variant), tput in sorted(results.items(), key=lambda x: x[0][1])
    ]
    print("\n== Ablation: ack cost (LAN, 2 destinations, peak throughput) ==")
    print(format_table(["cost model", "protocol", "peak tput"], rows))

    cheap_ratio = results[("primcast", "cheap-acks")] / results[("whitebox", "cheap-acks")]
    expensive_ratio = (
        results[("primcast", "expensive-acks")]
        / results[("whitebox", "expensive-acks")]
    )
    # With mergeable acks PrimCast wins clearly; pricing acks like
    # payloads erodes most of that advantage (quadratic ack pattern).
    assert cheap_ratio > 1.5
    assert expensive_ratio < cheap_ratio * 0.7
