"""Property checkers for atomic multicast runs (§2.2 properties)."""

from .genuineness import GenuinenessTracer
from .invariants import InvariantMonitor, attach_monitors
from .properties import (
    PropertyViolation,
    Violation,
    check_acyclic_order,
    check_all,
    check_integrity,
    check_prefix_order,
    check_timestamp_order,
    check_truncation_safety,
    check_uniform_agreement,
    collect_violations,
)

__all__ = [
    "PropertyViolation",
    "Violation",
    "check_integrity",
    "check_uniform_agreement",
    "check_acyclic_order",
    "check_prefix_order",
    "check_timestamp_order",
    "check_truncation_safety",
    "check_all",
    "collect_violations",
    "GenuinenessTracer",
    "InvariantMonitor",
    "attach_monitors",
]
