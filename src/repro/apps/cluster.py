"""Convenience cluster wiring for the KV store.

Bundles the simulation substrate, a protocol deployment and one
:class:`~repro.apps.kvstore.KvReplica` per process, with key-based
routing for client commands. Primarily a demonstration vehicle (examples
and tests); the pieces compose manually just as well.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.config import uniform_groups
from ..core.process import PrimCastProcess
from ..baselines.fastcast import FastCastProcess
from ..baselines.whitebox import WhiteBoxProcess
from ..net.runtime import Runtime, SimRuntime
from ..sim.costs import CostModel
from ..sim.latency import LatencyModel
from .kvstore import Command, KvReplica, partition_of

_PROTOCOLS = {
    "primcast": PrimCastProcess,
    "whitebox": WhiteBoxProcess,
    "fastcast": FastCastProcess,
}


class KvCluster:
    """A simulated KV deployment: partitions × replicas + routing."""

    def __init__(
        self,
        n_partitions: int = 3,
        replicas_per_partition: int = 3,
        protocol: str = "primcast",
        latency: Optional[LatencyModel] = None,
        cost_model: Optional[CostModel] = None,
        seed: int = 1,
        runtime: Optional[Runtime] = None,
    ):
        if protocol not in _PROTOCOLS:
            raise ValueError(f"unknown protocol {protocol!r}")
        self.n_partitions = n_partitions
        self.config = uniform_groups(n_partitions, replicas_per_partition)
        # The cluster sits on the backend-agnostic Runtime seam; by
        # default it builds the simulation backend (same substrate and
        # RNG label as before the seam existed, so behaviour is
        # bit-identical), but any Runtime works.
        self.runtime: Runtime = (
            runtime
            if runtime is not None
            else SimRuntime.local(latency=latency, seed=seed, rng_label="kv")
        )
        self.scheduler = self.runtime.scheduler
        # Concrete-network access for sim-only helpers (trace hooks,
        # message counts); None on backends without one.
        self.network = getattr(self.runtime, "network", None)
        cls = _PROTOCOLS[protocol]
        self.processes: Dict[int, Any] = {
            pid: cls(
                pid, self.config, self.scheduler, self.runtime.transport, cost_model
            )
            for pid in self.config.all_pids
        }
        self.replicas: Dict[int, KvReplica] = {
            pid: KvReplica(proc, n_partitions, runtime=self.runtime)
            for pid, proc in self.processes.items()
        }

    def replica_for(self, command: Command, index: int = 0) -> KvReplica:
        """A replica serving one of the command's partitions."""
        target = min(command.partitions(self.n_partitions))
        pid = self.config.members(target)[index]
        return self.replicas[pid]

    def submit(self, command: Command, on_done=None) -> None:
        """Route ``command`` to an appropriate replica and submit it."""
        self.replica_for(command).submit(command, on_done)

    def run(self, until: float = 1000.0) -> None:
        """Advance the runtime (simulated or real time, per backend)."""
        self.runtime.run(until)

    # -- verification helpers ---------------------------------------------

    def partition_states(self, partition: int) -> List[Dict[str, Any]]:
        """Every replica's state for one partition."""
        return [
            r.state for r in self.replicas.values() if r.partition == partition
        ]

    def assert_replicas_converged(self) -> None:
        """All replicas of each partition hold identical state."""
        for partition in range(self.n_partitions):
            states = self.partition_states(partition)
            first = states[0]
            for state in states[1:]:
                if state != first:
                    raise AssertionError(
                        f"partition {partition} replicas diverged: "
                        f"{state} != {first}"
                    )
