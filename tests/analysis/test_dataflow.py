"""Unit tests for the forward dataflow engine.

The client analyses here are tiny on purpose: a may-have-called-send
boolean (the RACE202 shape) and an assigned-names set. They exercise the
engine's contract — joins at merges, loop convergence, the replay order
of :func:`walk`, and the all-blocks-seeded worklist (a regression test:
a block whose transfer generates facts must be processed even when its
entry state never changes from bottom).
"""

import ast
import textwrap

import pytest

from repro.analysis.cfg import build_cfg, iter_child_expressions, iter_functions
from repro.analysis.dataflow import ForwardAnalysis, analyze, fixpoint, walk


def _cfg(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(iter_functions(tree)[0][1])


def _calls(entry):
    return {
        n.func.id
        for n in iter_child_expressions(entry)
        if isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
    }


class SentAnalysis(ForwardAnalysis):
    """May-have-called-send() — the boolean lattice RACE202 uses."""

    def initial(self):
        return False

    def bottom(self):
        return False

    def join(self, a, b):
        return a or b

    def transfer(self, entry, state):
        return state or "send" in _calls(entry)


class AssignedNames(ForwardAnalysis):
    """Set of local names assigned on some path (a may-analysis)."""

    def initial(self):
        return frozenset()

    def bottom(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, entry, state):
        if isinstance(entry, ast.Assign):
            names = {
                t.id for t in entry.targets if isinstance(t, ast.Name)
            }
            return state | names
        return state


def _state_at(source, marker, analysis):
    """The state observed right before the call ``<marker>()``."""
    cfg = _cfg(source)
    seen = []
    analyze(
        cfg,
        analysis,
        lambda entry, state: seen.append(state)
        if marker in _calls(entry)
        else None,
    )
    assert seen, f"no entry calling {marker}()"
    return seen


def test_straight_line_fact_propagates():
    (state,) = _state_at(
        """
        def f(self):
            send()
            probe()
        """,
        "probe",
        SentAnalysis(),
    )
    assert state is True


def test_fact_before_its_own_statement_is_absent():
    (state,) = _state_at(
        """
        def f(self):
            probe()
            send()
        """,
        "probe",
        SentAnalysis(),
    )
    assert state is False


def test_join_at_if_merge_is_may():
    # send() on one arm only: after the merge, may-sent is True.
    (state,) = _state_at(
        """
        def f(self, x):
            if x:
                send()
            probe()
        """,
        "probe",
        SentAnalysis(),
    )
    assert state is True


def test_branch_local_fact_does_not_leak_to_the_other_arm():
    (state,) = _state_at(
        """
        def f(self, x):
            if x:
                send()
            else:
                probe()
        """,
        "probe",
        SentAnalysis(),
    )
    assert state is False


def test_loop_body_fact_reaches_the_code_after_the_loop():
    """Regression: the worklist must seed *every* block. A send inside
    a loop body generates a fact even though the body block's entry
    state never changes from bottom (False); with only the entry block
    seeded, the post-loop block stayed False and RACE202 missed the
    real send-then-mutate in _check_epoch_activation."""
    (state,) = _state_at(
        """
        def f(self, xs):
            for x in xs:
                send()
            probe()
        """,
        "probe",
        SentAnalysis(),
    )
    assert state is True


def test_loop_back_edge_carries_the_fact_to_the_header():
    # Second iteration sees the first iteration's send: the state at
    # the body entry (via the back edge join) must be True.
    cfg = _cfg(
        """
        def f(self, xs):
            for x in xs:
                probe()
                send()
        """
    )
    states = fixpoint(cfg, SentAnalysis())
    seen = []
    walk(
        cfg,
        SentAnalysis(),
        states,
        lambda entry, state: seen.append(state)
        if "probe" in _calls(entry)
        else None,
    )
    assert seen == [True]


def test_set_lattice_union_at_merge():
    (state,) = _state_at(
        """
        def f(x):
            if x:
                a = 1
            else:
                b = 2
            probe()
        """,
        "probe",
        AssignedNames(),
    )
    assert state == {"a", "b"}


def test_unreachable_code_keeps_bottom_state():
    (state,) = _state_at(
        """
        def f(self):
            send()
            return
            probe()
        """,
        "probe",
        SentAnalysis(),
    )
    # Dead code is replayed from bottom: no facts, no findings.
    assert state is False


def test_walk_replays_blocks_in_rpo_with_intrablock_transfer():
    cfg = _cfg(
        """
        def f(x):
            a = 1
            b = 2
        """
    )
    analysis = AssignedNames()
    states = fixpoint(cfg, analysis)
    observed = []
    walk(cfg, analysis, states, lambda entry, state: observed.append(set(state)))
    assert observed == [set(), {"a"}]


def test_non_monotone_transfer_hits_the_budget():
    class Diverging(ForwardAnalysis):
        def initial(self):
            return 0

        def bottom(self):
            return 0

        def join(self, a, b):
            return max(a, b)

        def transfer(self, entry, state):
            return state + 1  # grows forever around the loop

    cfg = _cfg(
        """
        def f(x):
            while x:
                body()
        """
    )
    with pytest.raises(RuntimeError, match="did not converge"):
        fixpoint(cfg, Diverging())


def test_fixpoint_is_deterministic():
    source = """
        def f(self, x):
            if x:
                send()
            else:
                for i in x:
                    send()
            probe()
    """
    results = set()
    for _ in range(5):
        cfg = _cfg(source)
        states = fixpoint(cfg, SentAnalysis())
        results.add(tuple(sorted(states.items())))
    assert len(results) == 1
