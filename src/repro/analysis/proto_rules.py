"""Protocol-contract rules (PROTO1xx).

Structural contracts the paper's correctness argument (Algorithms 1–3,
§4–5) relies on, checked statically instead of (only) at runtime:

* **PROTO101** — every wire-message class declares a class-level
  ``kind`` string. The CPU cost model, the network's per-kind counters
  and the batching layer all key on ``kind``; an instance-level or
  missing ``kind`` silently drops a message class out of the §7
  accounting.
* **PROTO102** — every handler registered in an r-deliver dispatch
  table exists as a method of the registering class, and the table is
  bound in ``__init__``. A typo in the table raises only when the first
  message of that kind arrives — on a failover path, that can be never
  in tests and always in production.
* **PROTO103** — the Algorithm 1 protocol variables ``clock`` /
  ``e_cur`` / ``e_prom`` are mutated only in the modules the
  conformance map allows (see
  :data:`repro.analysis.config.STATE_CONFORMANCE`), mirroring the
  pseudocode's assignment of every mutation to a numbered line.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, List, Optional, Set, Union

from .base import ContextVisitor, Finding, ModuleInfo, Rule, register

if TYPE_CHECKING:  # pragma: no cover
    from .config import AnalysisConfig

_FuncDef = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def _class_level_assign_names(cls: ast.ClassDef) -> Set[str]:
    """Names assigned at class level (``kind = ...``, ``__slots__ = ...``)."""
    names: Set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if stmt.value is not None:
                names.add(stmt.target.id)
    return names


def _class_kind_value(cls: ast.ClassDef) -> Optional[ast.expr]:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "kind":
                    return stmt.value
    return None


@register
class WireMessagesDeclareKind(Rule):
    rule_id = "PROTO101"
    title = "wire-message classes declare a class-level string kind"

    def applies_to(self, module: str, config: "AnalysisConfig") -> bool:
        scope = config.scope_override.get(self.rule_id, config.wire_message_modules)
        return module in scope

    def check(self, mod: ModuleInfo, config: "AnalysisConfig") -> Iterator[Finding]:
        findings: List[Finding] = []
        for stmt in mod.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            if stmt.name.startswith("_"):
                continue  # private helpers are not wire messages
            names = _class_level_assign_names(stmt)
            if "__slots__" not in names:
                continue  # wire messages in this repo are all slotted
            kind_value = _class_kind_value(stmt)
            if kind_value is None:
                findings.append(
                    self.finding(
                        mod,
                        stmt,
                        f"wire-message class {stmt.name} has no class-level "
                        f"'kind' — the cost model, message counters and "
                        f"batching layer all key on it",
                        stmt.name,
                    )
                )
            elif not (
                isinstance(kind_value, ast.Constant)
                and isinstance(kind_value.value, str)
            ):
                findings.append(
                    self.finding(
                        mod,
                        stmt,
                        f"wire-message class {stmt.name} must bind 'kind' to a "
                        f"string literal (got a computed value)",
                        stmt.name,
                    )
                )
        return iter(findings)


# ----------------------------------------------------------------------
# PROTO102 — dispatch tables reference existing methods, bound in __init__
# ----------------------------------------------------------------------


def _methods_of(cls: ast.ClassDef) -> Set[str]:
    return {
        stmt.name
        for stmt in cls.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


@register
class DispatchHandlersExist(Rule):
    rule_id = "PROTO102"
    title = "r-deliver dispatch tables bind existing methods in __init__"

    def applies_to(self, module: str, config: "AnalysisConfig") -> bool:
        scope = config.scope_override.get(self.rule_id, config.det_scope)
        return any(
            module == prefix or module.startswith(prefix + ".") for prefix in scope
        )

    def check(self, mod: ModuleInfo, config: "AnalysisConfig") -> Iterator[Finding]:
        findings: List[Finding] = []
        dispatch_attrs = set(config.dispatch_attrs)
        for stmt in mod.tree.body:
            if isinstance(stmt, ast.ClassDef):
                findings.extend(self._check_class(mod, stmt, dispatch_attrs))
        return iter(findings)

    def _check_class(
        self, mod: ModuleInfo, cls: ast.ClassDef, dispatch_attrs: Set[str]
    ) -> Iterator[Finding]:
        methods = _methods_of(cls)
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                for target in node.targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr in dispatch_attrs
                    ):
                        continue
                    context = f"{cls.name}.{method.name}"
                    if method.name != "__init__":
                        yield self.finding(
                            mod,
                            node,
                            f"dispatch table self.{target.attr} must be bound "
                            f"in __init__ (bound in {method.name}) so every "
                            f"instance dispatches from construction",
                            context,
                        )
                    if isinstance(node.value, ast.Dict):
                        for value in node.value.values:
                            if (
                                isinstance(value, ast.Attribute)
                                and isinstance(value.value, ast.Name)
                                and value.value.id == "self"
                                and value.attr not in methods
                            ):
                                yield self.finding(
                                    mod,
                                    value,
                                    f"dispatch table self.{target.attr} "
                                    f"registers self.{value.attr}, but "
                                    f"{cls.name} defines no such method",
                                    context,
                                )


# ----------------------------------------------------------------------
# PROTO103 — protocol-state mutations follow the conformance map
# ----------------------------------------------------------------------


class _Proto103Visitor(ContextVisitor):
    def __init__(
        self,
        rule: Rule,
        mod: ModuleInfo,
        config: "AnalysisConfig",
        wire_classes: Set[str],
    ) -> None:
        super().__init__()
        self.rule = rule
        self.mod = mod
        self.config = config
        #: Wire-message classes of this module: their ``__init__`` writes
        #: of ``clock`` / ``e_cur`` / ``e_prom`` are *payload capture*
        #: (the message records the sender's state as a field, Algorithm
        #: 3 line 64), not a mutation of the protocol variables.
        self.wire_classes = wire_classes
        self._class_stack: List[str] = []

        self.findings: List[Finding] = []

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        super().visit_ClassDef(node)
        self._class_stack.pop()

    def _in_wire_message_init(self) -> bool:
        return (
            bool(self._class_stack)
            and self._class_stack[-1] in self.wire_classes
            and bool(self._stack)
            and self._stack[-1] == "__init__"
        )

    def _check_target(self, target: ast.expr, node: ast.AST) -> None:
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return
        allowed = self.config.state_conformance.get(target.attr)
        if allowed is None or self.mod.module in allowed:
            return
        if self._in_wire_message_init():
            return
        self.findings.append(
            self.rule.finding(
                self.mod,
                node,
                f"mutation of protocol state self.{target.attr} outside the "
                f"conformance map (allowed: {', '.join(sorted(allowed))}) — "
                f"Algorithms 1–3 assign every such mutation to a numbered "
                f"line of repro.core.process",
                self.context,
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._check_target(node.target, node)
        self.generic_visit(node)


@register
class ProtocolStateConformance(Rule):
    rule_id = "PROTO103"
    title = "clock/e_cur/e_prom mutations stay inside the conformance map"

    def applies_to(self, module: str, config: "AnalysisConfig") -> bool:
        scope = config.scope_override.get(self.rule_id, config.det_scope)
        return any(
            module == prefix or module.startswith(prefix + ".") for prefix in scope
        )

    def check(self, mod: ModuleInfo, config: "AnalysisConfig") -> Iterator[Finding]:
        wire_classes: Set[str] = set()
        if mod.module in config.wire_message_modules:
            for stmt in mod.tree.body:
                if isinstance(stmt, ast.ClassDef):
                    kind = _class_kind_value(stmt)
                    if (
                        kind is not None
                        and isinstance(kind, ast.Constant)
                        and isinstance(kind.value, str)
                    ):
                        wire_classes.add(stmt.name)
        visitor = _Proto103Visitor(self, mod, config, wire_classes)
        visitor.visit(mod.tree)
        return iter(visitor.findings)
