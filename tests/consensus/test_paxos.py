"""Unit tests for single-decree Paxos."""

from typing import Any, Dict, List

import pytest

from repro.consensus.paxos import Accept, Accepted, PaxosNode, Prepare, Promise
from repro.sim.events import Scheduler
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network
from repro.sim.process import SimProcess
from repro.sim.rng import child_rng


class PaxosHost(SimProcess):
    """A process hosting one PaxosNode, transport = plain sends."""

    def __init__(self, pid, sched, net, members, skip_phase1=True):
        super().__init__(pid, sched, net)
        self.decisions: Dict[Any, Any] = {}
        self.node = PaxosNode(
            pid,
            members,
            send_fn=self._send_all,
            on_decide=self.decisions.__setitem__,
            skip_phase1=skip_phase1,
        )

    def _send_all(self, pids, msg):
        for dst in pids:
            self.send(dst, msg)

    def on_message(self, src, msg):
        assert self.node.handle(src, msg)


def build(n=3, skip_phase1=True):
    sched = Scheduler()
    net = Network(sched, ConstantLatency(1.0), child_rng(9, "paxos"))
    members = list(range(n))
    hosts = [PaxosHost(i, sched, net, members, skip_phase1) for i in members]
    return sched, net, hosts


def decided_values(hosts, instance):
    return [h.decisions.get(instance) for h in hosts]


class TestStableLeaderPath:
    def test_all_learn_same_value(self):
        sched, net, hosts = build()
        hosts[0].node.propose("i1", "v")
        sched.run()
        assert decided_values(hosts, "i1") == ["v", "v", "v"]

    def test_decision_in_two_steps(self):
        sched, net, hosts = build()
        hosts[0].node.propose("i1", "v")
        sched.run()
        # 2a at 1.0, 2b at 2.0 -> everyone decides at 2.0.
        assert sched.now == pytest.approx(2.0)

    def test_on_decide_fires_once(self):
        sched, net, hosts = build()
        fired: List[Any] = []
        hosts[1].node.on_decide = lambda i, v: fired.append((i, v))
        hosts[0].node.propose("i1", "v")
        sched.run()
        assert fired == [("i1", "v")]

    def test_independent_instances(self):
        sched, net, hosts = build()
        hosts[0].node.propose("a", 1)
        hosts[0].node.propose("b", 2)
        sched.run()
        assert decided_values(hosts, "a") == [1, 1, 1]
        assert decided_values(hosts, "b") == [2, 2, 2]


class TestFullProtocol:
    def test_phase1_then_phase2(self):
        sched, net, hosts = build(skip_phase1=False)
        hosts[1].node.propose("i", "x", round_number=1)
        sched.run()
        assert decided_values(hosts, "i") == ["x", "x", "x"]

    def test_higher_ballot_wins_and_preserves_value(self):
        """Once a value may be decided, a later proposer must adopt it."""
        sched, net, hosts = build(skip_phase1=False)
        hosts[0].node.propose("i", "first", round_number=1)
        sched.run()
        assert decided_values(hosts, "i") == ["first"] * 3
        # A competing proposer with a higher ballot must learn "first".
        hosts[2].node.propose("i", "second", round_number=2)
        sched.run()
        # Nothing changed: everyone still has "first".
        assert decided_values(hosts, "i") == ["first"] * 3

    def test_value_adoption_from_partial_acceptance(self):
        """A proposer seeing an accepted value in promises adopts it.

        Hosts 0 and 1 both accepted ("i", ballot(1,0), "v0"), so any
        promise quorum the new proposer gathers contains v0 and the
        proposer must adopt it instead of its own value.
        """
        sched, net, hosts = build(n=3, skip_phase1=False)
        hosts[0].node._on_accept(0, Accept("i", (1, 0), "v0"))
        hosts[1].node._on_accept(0, Accept("i", (1, 0), "v0"))
        sched.run()
        hosts[2].node.propose("i", "v2", round_number=5)
        sched.run()
        values = [v for v in decided_values(hosts, "i") if v is not None]
        assert values and all(v == "v0" for v in values)

    def test_low_ballot_prepare_ignored_after_promise(self):
        sched, net, hosts = build(skip_phase1=False)
        node = hosts[0].node
        node._on_prepare(1, Prepare("i", (5, 1)))
        sent_before = net.messages_sent
        node._on_prepare(2, Prepare("i", (2, 2)))
        assert net.messages_sent == sent_before  # no promise for low ballot

    def test_low_ballot_accept_rejected(self):
        sched, net, hosts = build(skip_phase1=False)
        node = hosts[0].node
        node._on_prepare(1, Prepare("i", (5, 1)))
        node._on_accept(1, Accept("i", (2, 2), "v"))
        assert node._state("i").accepted_ballot is None


class TestQuorums:
    def test_no_decision_without_quorum(self):
        sched, net, hosts = build(n=5)
        # Crash 3 of 5: no quorum of accepted messages can form.
        for h in hosts[2:]:
            h.crash()
        hosts[0].node.propose("i", "v")
        sched.run()
        assert decided_values(hosts[:2], "i") == [None, None]

    def test_decision_with_minority_crashed(self):
        sched, net, hosts = build(n=5)
        hosts[4].crash()
        hosts[3].crash()
        hosts[0].node.propose("i", "v")
        sched.run()
        assert decided_values(hosts[:3], "i") == ["v", "v", "v"]

    def test_is_decided_and_value_accessors(self):
        sched, net, hosts = build()
        assert not hosts[0].node.is_decided("i")
        hosts[0].node.propose("i", "v")
        sched.run()
        assert hosts[0].node.is_decided("i")
        assert hosts[0].node.decided_value("i") == "v"
