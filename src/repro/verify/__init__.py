"""Property checkers for atomic multicast runs (§2.2 properties)."""

from .genuineness import GenuinenessTracer
from .invariants import InvariantMonitor, attach_monitors
from .properties import (
    PropertyViolation,
    check_acyclic_order,
    check_all,
    check_integrity,
    check_prefix_order,
    check_timestamp_order,
    check_uniform_agreement,
)

__all__ = [
    "PropertyViolation",
    "check_integrity",
    "check_uniform_agreement",
    "check_acyclic_order",
    "check_prefix_order",
    "check_timestamp_order",
    "check_all",
    "GenuinenessTracer",
    "InvariantMonitor",
    "attach_monitors",
]
