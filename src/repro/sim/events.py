"""Discrete-event scheduler.

The scheduler is the heart of the simulation substrate: every network
delivery, timer and client action is an event on a single priority queue.
Simulated time is a float in **milliseconds**. Determinism is guaranteed by
breaking ties on an insertion sequence number, so two runs with the same
seed produce identical event orders.

Two scheduling paths share one heap:

* :meth:`Scheduler.call_at` / :meth:`Scheduler.call_after` return an
  :class:`EventHandle` that can be cancelled — used by timers, failure
  injection and client jobs.
* :meth:`Scheduler.schedule` is the allocation-free fast path used by the
  hot loops (network deliveries, CPU-queue serving): no handle object is
  created, the callback and argument tuple go straight into the heap
  entry. The vast majority of events in a load sweep take this path.

Heap entries are plain ``(time, seq, fn, payload)`` tuples so ordering is
decided by C-level float/int comparisons. Fast-path entries carry the
callback in ``fn`` and its argument tuple in ``payload``; cancellable
entries carry ``None`` in ``fn`` and the :class:`EventHandle` in
``payload``. Cancelled handles are skipped when popped; when more than
half the heap is cancelled entries, the heap is compacted in place so a
burst of armed-then-cancelled timers cannot leak memory.
"""

from __future__ import annotations

import gc
import heapq
from math import inf
from typing import Any, Callable, List, Optional, Tuple

#: Heap size below which compaction is not worth the rebuild.
_COMPACT_FLOOR = 64


class EventHandle:
    """Handle returned by :meth:`Scheduler.call_at`, usable to cancel.

    The scheduler's heap holds plain ``(time, seq, None, handle)`` tuples
    so ordering is decided by C-level float/int comparisons; the handle
    itself is never compared.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_scheduler")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: Tuple[Any, ...],
        scheduler: "Scheduler",
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing (no-op if already fired or
        already cancelled)."""
        if not self.cancelled:
            self.cancelled = True
            self._scheduler._on_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "armed"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class Scheduler:
    """A deterministic discrete-event scheduler.

    Usage::

        sched = Scheduler()
        sched.call_after(1.5, handler, arg1, arg2)
        sched.run(until=100.0)
    """

    __slots__ = ("now", "events_processed", "_seq", "_heap", "_cancelled", "_stopped")

    def __init__(self) -> None:
        #: Current simulated time in milliseconds (read-only for users).
        self.now = 0.0
        #: Number of events executed so far (cancelled events excluded).
        self.events_processed = 0
        self._seq = 0
        self._heap: List[Tuple[float, int, Any, Any]] = []
        self._cancelled = 0  # cancelled handles still sitting in the heap
        self._stopped = False

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------

    def schedule(
        self, time: float, fn: Callable[..., Any], args: Tuple[Any, ...] = ()
    ) -> None:
        """Fast path: schedule ``fn(*args)`` at ``time`` with no handle.

        Events scheduled this way cannot be cancelled; the hot loops
        (network delivery, CPU serving) use this to avoid one object
        allocation per event.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule event in the past: {time} < now={self.now}"
            )
        heapq.heappush(self._heap, (time, self._seq, fn, args))
        self._seq += 1

    def call_at(self, time: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated time ``time``."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule event in the past: {time} < now={self.now}"
            )
        handle = EventHandle(time, self._seq, fn, args, self)
        heapq.heappush(self._heap, (time, self._seq, None, handle))
        self._seq += 1
        return handle

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(self.now + delay, fn, *args)

    def stop(self) -> None:
        """Request :meth:`run` to return before the next event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of armed (non-cancelled) events still queued. O(1)."""
        return len(self._heap) - self._cancelled

    # ------------------------------------------------------------------
    # cancelled-entry bookkeeping
    # ------------------------------------------------------------------

    def _on_cancel(self) -> None:
        self._cancelled += 1
        # Lazily compact once cancelled entries dominate the heap, so
        # arming-and-cancelling many timers keeps the heap bounded.
        if self._cancelled * 2 > len(self._heap) and len(self._heap) >= _COMPACT_FLOOR:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        Safe at any point: entry order is fully determined by the unique
        ``(time, seq)`` key, so rebuilding the heap cannot change the
        order in which live events fire. Mutates the heap list in place —
        :meth:`run` holds a reference to it across events.
        """
        heap = self._heap
        heap[:] = [
            entry for entry in heap if entry[2] is not None or not entry[3].cancelled
        ]
        heapq.heapify(heap)
        self._cancelled = 0

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run events in order until the queue drains.

        Args:
            until: if given, stop once the next event would fire strictly
                after this time; ``now`` is advanced to ``until``.
            max_events: if given, stop after executing this many events
                (safety valve against runaway simulations).

        Returns:
            The simulated time at which the run stopped.
        """
        self._stopped = False
        executed = 0
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        time_limit = inf if until is None else until
        event_limit = inf if max_events is None else max_events
        # The event loop allocates millions of short-lived heap-entry
        # tuples and next to no cyclic garbage; the generational GC would
        # run a collection every ~700 of those allocations for nothing,
        # so it is paused for the duration of the loop (refcounting still
        # frees everything acyclic immediately).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        # The executed count is accumulated locally and folded into
        # events_processed on exit (the attribute is only consulted
        # between runs); the finally covers handlers that raise.
        try:
            # Pop-first loop: popping unconditionally and pushing back the
            # (at most one) over-limit entry avoids a peek + re-index of
            # the tuple on every iteration of the hot path.
            while heap and not self._stopped:
                if executed >= event_limit:
                    break
                entry = heappop(heap)
                time, _, fn, payload = entry
                if fn is None:
                    if payload.cancelled:
                        self._cancelled -= 1
                        continue
                    if time > time_limit:
                        heappush(heap, entry)
                        break
                    self.now = time
                    payload.fn(*payload.args)
                else:
                    if time > time_limit:
                        heappush(heap, entry)
                        break
                    self.now = time
                    fn(*payload)
                executed += 1
        finally:
            self.events_processed += executed
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now
