"""Stateful property-based testing of the KV store (hypothesis).

A rule-based state machine drives a KvCluster with random puts,
increments, deletes and cross-partition transactions, mirroring them
into a plain-dict model. After every burst the simulation quiesces and
the rules assert that the replicated state matches the model exactly and
that all replicas of each partition converged — end-to-end evidence that
atomic multicast linearizes the command stream.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.apps import Delete, Increment, KvCluster, Put, Transaction, partition_of

KEYS = [f"key-{i}" for i in range(12)]
key_st = st.sampled_from(KEYS)
value_st = st.integers(min_value=-100, max_value=100)


class KvModelMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = None
        self.model = {}

    @initialize()
    def setup(self):
        self.cluster = KvCluster(n_partitions=3, replicas_per_partition=3)
        self.model = {}

    def _settle(self):
        # Commands complete within a handful of steps; quiesce fully.
        self.cluster.run(until=self.cluster.scheduler.now + 100.0)

    @rule(key=key_st, value=value_st)
    def put(self, key, value):
        self.cluster.submit(Put(key, value))
        self.model[key] = value
        self._settle()

    @rule(key=key_st, amount=st.integers(min_value=-5, max_value=5))
    def increment(self, key, amount):
        self.cluster.submit(Increment(key, amount))
        self.model[key] = self.model.get(key, 0) + amount
        self._settle()

    @rule(key=key_st)
    def delete(self, key):
        self.cluster.submit(Delete(key))
        self.model.pop(key, None)
        self._settle()

    @rule(src=key_st, dst=key_st, amount=st.integers(min_value=1, max_value=9))
    def transfer(self, src, dst, amount):
        if src == dst:
            return
        self.cluster.submit(
            Transaction([("incr", src, -amount), ("incr", dst, amount)])
        )
        self.model[src] = self.model.get(src, 0) - amount
        self.model[dst] = self.model.get(dst, 0) + amount
        self._settle()

    @invariant()
    def replicated_state_matches_model(self):
        if self.cluster is None:
            return
        merged = {}
        for partition in range(3):
            states = self.cluster.partition_states(partition)
            for state in states[1:]:
                assert state == states[0], f"partition {partition} diverged"
            merged.update(states[0])
        assert merged == self.model


KvModelMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestKvModel = KvModelMachine.TestCase
