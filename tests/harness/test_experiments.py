"""Tests for the per-figure experiment definitions (tiny scale)."""

import pytest

from repro.harness.experiments import FIGURE_PROTOCOLS, sweep
from repro.sim.costs import default_cost_model, zero_cost_model
from repro.workload.scenarios import lan_scenario


def tiny():
    return lan_scenario(n_groups=2, group_size=3)


def test_sweep_grid_shape():
    results = sweep(
        ("primcast", "whitebox"),
        tiny(),
        n_dest_groups=2,
        loads=(1, 2),
        warmup_ms=20,
        measure_ms=40,
        cost_model=zero_cost_model(),
    )
    assert len(results) == 4
    assert [(r.protocol, r.outstanding) for r in results] == [
        ("primcast", 1),
        ("primcast", 2),
        ("whitebox", 1),
        ("whitebox", 2),
    ]


def test_sweep_throughput_grows_with_load_before_saturation():
    results = sweep(
        ("primcast",),
        tiny(),
        n_dest_groups=2,
        loads=(1, 4),
        warmup_ms=20,
        measure_ms=60,
        cost_model=zero_cost_model(),
    )
    assert results[1].throughput > results[0].throughput


def test_figure_protocols_are_the_papers_four():
    assert set(FIGURE_PROTOCOLS) == {
        "whitebox",
        "fastcast",
        "primcast",
        "primcast-hc",
    }


def test_samples_dropped_when_not_kept():
    results = sweep(
        ("primcast",),
        tiny(),
        n_dest_groups=1,
        loads=(1,),
        warmup_ms=20,
        measure_ms=40,
        cost_model=zero_cost_model(),
        keep_samples=False,
    )
    assert results[0].samples == []
    assert results[0].latency["count"] > 0


def test_cost_model_scale_validation():
    model = default_cost_model(scale=2.0)
    base = default_cost_model(scale=1.0)

    class M:
        kind = "start"

    assert model.recv_cost(M()) == pytest.approx(2 * base.recv_cost(M()))
    with pytest.raises(ValueError):
        default_cost_model(scale=0.0)
