"""Configuration for the static-analysis pass.

:data:`DEFAULT_CONFIG` encodes this repository's determinism policy and
the protocol conformance map mirroring Algorithms 1–3 of the paper:

* **Determinism scope** — the modules that execute on the simulated
  event path. Everything there must draw randomness through
  :mod:`repro.sim.rng` and read time through ``Scheduler.now``; the
  DET0xx rules enforce it.
* **State conformance** — which modules may mutate the Algorithm 1
  protocol variables ``clock`` / ``e_cur`` / ``e_prom``. The paper's
  correctness argument assigns each mutation to a specific pseudocode
  line, all of which live in :mod:`repro.core.process`; the baselines own
  their *own* per-protocol clocks (§4), so their modules are allowed for
  ``clock`` only.
* **Allowlist** — reviewed exemptions, matched with :mod:`fnmatch`
  patterns against ``module::qualname`` strings. Every entry must carry a
  justification comment; an unexplained entry is a review smell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Mapping, Tuple

#: Modules that run on the simulated event path (determinism scope).
#: ``repro.harness.parallel`` / ``repro.harness.cache`` are not on the
#: event path themselves but feed seeds and memoized results into it, so
#: they are held to the same bar: worker seeds must arrive explicitly in
#: the PointSpec (derived via repro.sim.rng in the runner), never from
#: ambient randomness or the wall clock.
DET_SCOPE: Tuple[str, ...] = (
    "repro.sim",
    "repro.core",
    "repro.baselines",
    "repro.rmcast",
    "repro.election",
    "repro.consensus",
    "repro.harness.parallel",
    "repro.harness.cache",
    "repro.harness.pool",
    "repro.chaos",
)

#: Calls that emit messages or schedule events. A function whose body
#: contains one of these is an *emission context*: iteration order inside
#: it can leak into the event schedule, so DET002 applies there.
EMISSION_CALLS: Tuple[str, ...] = (
    "r_multicast",
    "multicast",
    "a_multicast",
    "a_multicast_m",
    "send",
    "send_many",
    "transmit",
    "schedule",
    "call_at",
    "call_after",
    "post_job",
    "_send_ack",
    "_propose",
)

#: Attribute names treated as set-typed everywhere in scope, on top of
#: per-module inference. ``dest`` is ``Multicast.dest`` (a frozenset of
#: group ids) and crosses module boundaries constantly.
KNOWN_SET_ATTRS: Tuple[str, ...] = (
    "dest",
    "pending",
    "delivered",
    "my_acks",
)

#: Attribute / bare names that hold simulated wall-clock floats; DET004
#: forbids ``==`` / ``!=`` on them.
FLOAT_TIME_ATTRS: Tuple[str, ...] = ("now", "busy_until")
FLOAT_TIME_NAMES: Tuple[str, ...] = ("arrival", "depart_time", "deadline")

#: Container methods that mutate their receiver. The effect summaries
#: turn ``self.x.append(…)`` into a write of ``x``; keep this to methods
#: that *always* mutate so reads never count as writes.
MUTATOR_METHODS: Tuple[str, ...] = (
    "append",
    "appendleft",
    "add",
    "extend",
    "insert",
    "remove",
    "discard",
    "clear",
    "pop",
    "popleft",
    "popitem",
    "update",
    "setdefault",
    "sort",
    "reverse",
    "push",
)

#: Free functions whose *first argument* is mutated in place
#: (``heapq.heappush(self.x, …)`` writes ``x``).
MUTATING_FUNCS: Tuple[str, ...] = (
    "heappush",
    "heappop",
    "heapify",
    "heapreplace",
    "heappushpop",
)

#: Modules whose classes hold per-process protocol state; the RACE2xx
#: rules analyse methods here. Narrower than DET scope on purpose: the
#: harness/chaos drivers hold no protocol state of their own (what they
#: touch on processes, RACE201's foreign-write arm still sees).
RACE_SCOPE: Tuple[str, ...] = (
    "repro.core",
    "repro.sim",
    "repro.rmcast",
    "repro.baselines",
    "repro.election",
    "repro.consensus",
    "repro.harness",
    "repro.chaos",
    # The asyncio backend hosts the same protocol objects on a real
    # event loop; its facades must respect the same handler-context
    # discipline (DESIGN.md §12) — notably NetScheduler.drain, which is
    # the net analogue of Scheduler.run.
    "repro.net",
)

#: Shared per-process protocol state (Algorithms 1–3 variables plus the
#: bookkeeping the delivery decision reads). A mutation of one of these
#: from outside scheduler/handler context is a RACE201; private
#: (underscore) caches are deliberately absent — they are recomputed,
#: never load-bearing across handlers.
RACE_SHARED_ATTRS: Tuple[str, ...] = (
    "clock",
    "e_cur",
    "e_prom",
    "role",
    "t_list",
    "t_by_mid",
    "pending",
    "delivered",
    "started",
    "my_acks",
    "acks",
    "promises",
    "accepts",
)

#: Method-name prefixes that mark scheduler-dispatched handler context:
#: these run to completion on the (single-threaded) event loop, so
#: mutations inside them are serialised by construction.
HANDLER_PREFIXES: Tuple[str, ...] = ("on_", "_on_", "handle_", "_handle_")

#: Reviewed entry points that *are* scheduler context despite their
#: public, non-handler names (fnmatch over ``module::Class.method``).
#: Every entry needs a justification comment — the self-check fails on
#: an unexplained one.
SCHEDULER_CONTEXT_API: Tuple[str, ...] = (
    # a_multicast is Algorithm 1 line 9: the application-facing entry
    # point. The sim calls it from scheduled app events, and the coming
    # asyncio backend must post it onto the process's event loop (DESIGN
    # §10) — it is handler context by contract, not by accident.
    "*::*.a_multicast",
    # compact_delivered is invoked by the GC daemon from a scheduled
    # timer (repro.core.gc), i.e. on the event loop between handlers —
    # same serialisation domain as the handlers themselves.
    "repro.core.process::PrimCastProcess.compact_delivered",
)

#: Epoch variables whose reads go stale across a suspension point
#: (RACE203): any ``await``/``yield`` can admit an epoch change, so a
#: cached ``e_cur``/``e_prom`` must be re-read before use afterwards.
EPOCH_GUARD_ATTRS: Tuple[str, ...] = ("e_cur", "e_prom")

#: Functions declared pure (fnmatch over ``module::qualname``): EFF301
#: requires their transitive write effect to be empty. The spec-level
#: predicates mirror the paper's timestamp functions (local_ts, min_ts,
#: final_ts, …) — referentially transparent by definition there.
DECLARED_PURE: Tuple[str, ...] = (
    # The literal Algorithm 1 predicates: brute-force scans over the
    # recorded tuple set, pure by construction (that is their point).
    "repro.core.spec::SpecRecorder.local_ts",
    "repro.core.spec::SpecRecorder.min_clock",
    "repro.core.spec::SpecRecorder.quorum_clock",
    "repro.core.spec::SpecRecorder.final_ts",
    "repro.core.spec::SpecRecorder.min_ts",
    # Incremental counterparts that must stay read-only so the
    # differential tests can call them at will mid-execution. (final_ts
    # and quorum_clock memoise into private caches and are deliberately
    # NOT declared pure.)
    "repro.core.process::PrimCastProcess.local_ts",
    "repro.core.process::PrimCastProcess.min_clock",
    "repro.core.process::PrimCastProcess._min_ts",
    "repro.core.process::PrimCastProcess._proposable",
)

#: Decorator names that declare a function pure in-source.
PURE_DECORATORS: Tuple[str, ...] = ("pure", "declared_pure")

#: Modules whose classes observe the protocol (EFF302): they may read
#: any process state but must never write the shared protocol
#: attributes of a *foreign* object (their own bookkeeping is fine).
EFF_READONLY_SCOPE: Tuple[str, ...] = (
    "repro.verify",
    "repro.core.spec",
    # Cluster nodes observe their process through deliver/probe hooks;
    # the only protocol-object writes they may make are construction-
    # time wiring (omega attach), checked the same way as the verifiers.
    "repro.net.host",
)

#: Modules whose classes are wire messages (PROTO101).
WIRE_MESSAGE_MODULES: Tuple[str, ...] = (
    "repro.core.messages",
    "repro.rmcast.fifo",
    "repro.baselines.classic",
    "repro.baselines.fastcast",
    "repro.baselines.skeen",
    "repro.baselines.whitebox",
    "repro.consensus.paxos",
)

#: Instance attributes holding r-deliver dispatch tables (PROTO102).
DISPATCH_ATTRS: Tuple[str, ...] = ("_r_dispatch",)

#: Modules whose classes must declare ``__slots__`` (PERF001): exactly
#: the optionally-compiled hot core. Kept as a literal copy of
#: :data:`repro._backend.COMPILED_MODULES` rather than an import so the
#: analysis config stays import-light; the self-check test asserts the
#: two stay in sync.
PERF_SLOTS_SCOPE: Tuple[str, ...] = (
    "repro.sim.events",
    "repro.sim.clock",
    "repro.sim.costs",
    "repro.sim.latency",
    "repro.sim.network",
    "repro.sim.process",
    "repro.core.epoch",
    "repro.core.config",
    "repro.core.messages",
    "repro.core.state",
    "repro.core.gc",
    "repro.core.process",
)

#: Conformance map for PROTO103: protocol-state attribute -> modules
#: allowed to mutate it. Mirrors Algorithms 1–3: every ``clock`` /
#: ``e_cur`` / ``e_prom`` mutation of the pseudocode is a line of
#: Algorithm 1, 2 or 3, all implemented in ``repro.core.process``. The
#: baselines (§4) maintain their own protocol clocks and are allowed for
#: ``clock`` in their own modules only.
STATE_CONFORMANCE: Mapping[str, Tuple[str, ...]] = {
    "clock": (
        "repro.core.process",
        "repro.baselines.classic",
        "repro.baselines.fastcast",
        "repro.baselines.skeen",
        "repro.baselines.whitebox",
    ),
    "e_cur": ("repro.core.process",),
    "e_prom": ("repro.core.process",),
}

#: Reviewed exemptions (fnmatch patterns against ``module::qualname``).
DEFAULT_ALLOW: Mapping[str, Tuple[str, ...]] = {
    # Multicast is the *application* message carried inside wire
    # messages, not a wire message itself; Envelope computes its kind
    # per-payload at construction (fifo.py) — both are exempt from the
    # class-level-kind contract by design.
    "PROTO101": (
        "repro.core.messages::Multicast",
        "repro.rmcast.fifo::Envelope",
        "repro.baselines.skeen::SkeenMulticast",
    ),
    # (The former PROTO103 entry for EpochPromise.__init__ is gone: the
    # rule now proves wire-message payload capture clean by itself.)
    # The standing-proposal rule (Algorithm 1 line 35; Algorithm 3 lines
    # 75-81) *requires* proposing after acking/announcing: an ack or
    # AcceptEpoch goes out, then _propose stamps the next clock value.
    # The emitted messages carry no post-send state (Ack/Bump capture
    # the clock at emission, AcceptEpoch carries only (epoch, pid)), and
    # each handler runs to completion on the scheduler, so send+mutate
    # is atomic with respect to every other handler. The repro.net port
    # must preserve per-process handler atomicity (DESIGN.md §10) —
    # these three sites are the contract's test cases.
    "RACE202": (
        "repro.core.process::PrimCastProcess._on_ack",
        "repro.core.process::PrimCastProcess._on_new_state",
        "repro.core.process::PrimCastProcess._check_epoch_activation",
    ),
    # The process lineage must stay dynamic (no __slots__): SimProcess
    # subclasses (protocols, test doubles) add instance attributes
    # freely, and the spec recorder / invariant monitor wrap
    # PrimCastProcess.on_r_deliver as an *instance* attribute — both
    # require a per-instance dict. Under mypyc they compile with
    # allow_interpreted_subclasses / native_class=False accordingly
    # (see repro/_backend.py).
    "PERF001": (
        "repro.sim.process::SimProcess",
        "repro.core.process::PrimCastProcess",
    ),
}


@dataclass(frozen=True)
class AnalysisConfig:
    """Tunable knobs of one analysis run (immutable)."""

    #: rule id -> fnmatch patterns over ``module::qualname`` (or bare
    #: ``module``) that suppress findings of that rule.
    allow: Mapping[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_ALLOW)
    )
    #: rule id -> severity, overriding the rule's default.
    severity_overrides: Mapping[str, str] = field(default_factory=dict)
    #: rule id -> replacement scope (module prefixes).
    scope_override: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)

    det_scope: Tuple[str, ...] = DET_SCOPE
    emission_calls: Tuple[str, ...] = EMISSION_CALLS
    known_set_attrs: Tuple[str, ...] = KNOWN_SET_ATTRS
    float_time_attrs: Tuple[str, ...] = FLOAT_TIME_ATTRS
    float_time_names: Tuple[str, ...] = FLOAT_TIME_NAMES
    wire_message_modules: Tuple[str, ...] = WIRE_MESSAGE_MODULES
    dispatch_attrs: Tuple[str, ...] = DISPATCH_ATTRS
    perf_slots_scope: Tuple[str, ...] = PERF_SLOTS_SCOPE
    state_conformance: Mapping[str, Tuple[str, ...]] = field(
        default_factory=lambda: dict(STATE_CONFORMANCE)
    )
    mutator_methods: Tuple[str, ...] = MUTATOR_METHODS
    mutating_funcs: Tuple[str, ...] = MUTATING_FUNCS
    race_scope: Tuple[str, ...] = RACE_SCOPE
    race_shared_attrs: Tuple[str, ...] = RACE_SHARED_ATTRS
    handler_prefixes: Tuple[str, ...] = HANDLER_PREFIXES
    scheduler_context_api: Tuple[str, ...] = SCHEDULER_CONTEXT_API
    epoch_guard_attrs: Tuple[str, ...] = EPOCH_GUARD_ATTRS
    declared_pure: Tuple[str, ...] = DECLARED_PURE
    pure_decorators: Tuple[str, ...] = PURE_DECORATORS
    eff_readonly_scope: Tuple[str, ...] = EFF_READONLY_SCOPE

    def is_scheduler_context(self, module: str, class_name: str, method: str) -> bool:
        """True when ``Class.method`` is a reviewed scheduler entry point."""
        context = f"{module}::{class_name}.{method}"
        return any(
            fnmatchcase(context, pat) for pat in self.scheduler_context_api
        )

    def is_declared_pure(self, module: str, qualname: str) -> bool:
        """True when ``module::qualname`` is declared pure by config."""
        context = f"{module}::{qualname}"
        return any(fnmatchcase(context, pat) for pat in self.declared_pure)

    def is_allowed(self, rule_id: str, context: str) -> bool:
        """True when ``context`` (``module::qualname``) is allowlisted."""
        patterns = self.allow.get(rule_id, ())
        module = context.split("::", 1)[0]
        return any(
            fnmatchcase(context, pat) or fnmatchcase(module, pat)
            for pat in patterns
        )

    def severity_for(self, rule_id: str, default: str) -> str:
        return self.severity_overrides.get(rule_id, default)


#: The repository's standing policy.
DEFAULT_CONFIG = AnalysisConfig()
